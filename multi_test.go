package genasm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// multiTestBatch is sized so the capability-weighted split hands the CPU
// child a non-empty shard even next to the GPU child's much larger
// Parallelism (wave of resident blocks): with WithThreads(16) the CPU
// weight is 16 against the GPU's 672, so 512 pairs give the CPU ~11.
const multiTestThreads = 16

func multiTestPairs() []Pair { return testPairs(31, 512, 150, 0.08) }

// TestMultiMatchesCPUBitIdentical is the acceptance pin for the sharding
// composite: multi(cpu,gpu) must return bit-identical results to the cpu
// backend on the same batch, and the batch must actually have been split
// across more than one shard (otherwise the test proves nothing).
func TestMultiMatchesCPUBitIdentical(t *testing.T) {
	ctx := context.Background()
	pairs := multiTestPairs()
	cpuEng, err := NewEngine(WithThreads(multiTestThreads))
	if err != nil {
		t.Fatal(err)
	}
	multiEng, err := NewEngine(WithBackendName("multi(cpu,gpu)"), WithThreads(multiTestThreads))
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpuEng.AlignBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := multiEng.AlignBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if got[i] != want[i] {
			t.Fatalf("pair %d: multi %+v != cpu %+v", i, got[i], want[i])
		}
	}
	st := multiEng.BackendStats()
	if st.Shards < 2 {
		t.Fatalf("batch ran on %d shard(s); the sharding path was not exercised (stats %+v)", st.Shards, st)
	}
	if len(st.Children) != 2 || st.Children[0].Name != "cpu" || st.Children[1].Name != "gpu" {
		t.Fatalf("children stats = %+v", st.Children)
	}
	for _, c := range st.Children {
		if c.Batches == 0 || c.Pairs == 0 {
			t.Fatalf("child %s saw no work: %+v", c.Name, c)
		}
	}
	if st.Children[0].Pairs+st.Children[1].Pairs != uint64(len(pairs)) {
		t.Fatalf("children pairs %d+%d != batch %d",
			st.Children[0].Pairs, st.Children[1].Pairs, len(pairs))
	}
	// The device-backed child's launch surfaces through the generic stats
	// and the deprecated shim alike.
	if _, ok := st.findGPU(); !ok {
		t.Fatal("multi stats carry no device launch")
	}
	if _, ok := multiEng.GPUStats(); !ok {
		t.Fatal("GPUStats shim found no device launch under multi")
	}
}

func TestMultiCapabilitiesAggregate(t *testing.T) {
	cpuEng, err := NewEngine(WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	gpuEng, err := NewEngine(WithBackendName("gpu"))
	if err != nil {
		t.Fatal(err)
	}
	multiEng, err := NewEngine(WithBackendName("multi"), WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	c, g, m := cpuEng.Capabilities(), gpuEng.Capabilities(), multiEng.Capabilities()
	if m.Parallelism != c.Parallelism+g.Parallelism {
		t.Fatalf("multi parallelism %d != cpu %d + gpu %d", m.Parallelism, c.Parallelism, g.Parallelism)
	}
	if m.PreferredBatch != c.PreferredBatch+g.PreferredBatch {
		t.Fatalf("multi preferred batch %d != cpu %d + gpu %d", m.PreferredBatch, c.PreferredBatch, g.PreferredBatch)
	}
}

func TestMultiSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"multi(", "malformed"},
		{"multi(cpu,gpu", "malformed"},
		{"multi()", "empty child"},
		{"multi(cpu,,gpu)", "empty child"},
		{"multi(cpu,tpu)", "unknown backend"},
		{"multi(cpu,multi(gpu))", "nests multi"},
		{"multix", "unknown backend"},
	}
	for _, tc := range cases {
		_, err := NewEngine(WithBackendName(tc.spec))
		if err == nil {
			t.Fatalf("%s: accepted", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: err %q does not contain %q", tc.spec, err, tc.wantSub)
		}
	}
	// The unknown-child error must still list the valid names.
	_, err := NewEngine(WithBackendName("multi(cpu,tpu)"))
	if !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("multi child error %q lists no valid names", err)
	}
}

// failBackend fails every batch; registered once as "failbe" so multi
// specs can include a deterministically broken child.
type failBackend struct{}

var errFailBackend = errors.New("injected backend failure")

func (failBackend) AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error) {
	return nil, errFailBackend
}
func (failBackend) Capabilities() Capabilities {
	// Same weight as the 2-thread CPU child used in the tests, so both
	// shards of a 2-child split are non-empty for any batch of >= 2 pairs.
	return Capabilities{Parallelism: 2, PreferredBatch: 2}
}
func (failBackend) Stats() BackendStats { return BackendStats{Name: "failbe"} }

var registerFailOnce sync.Once

func registerFailBackend() {
	registerFailOnce.Do(func() {
		Register("failbe", func(string, Config, BackendOptions) (Backend, error) {
			return failBackend{}, nil
		})
	})
}

func TestMultiShardErrorAttribution(t *testing.T) {
	registerFailBackend()
	eng, err := NewEngine(WithBackendName("multi(cpu,failbe)"), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	pairs := testPairs(33, 16, 150, 0.08)
	_, err = eng.AlignBatch(context.Background(), pairs)
	if err == nil {
		t.Fatal("broken shard did not fail the batch")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err %v (%T) is not a ShardError", err, err)
	}
	if se.Backend != "failbe" {
		t.Fatalf("failure attributed to %q, want failbe (err %v)", se.Backend, err)
	}
	if se.Lo >= se.Hi || se.Hi > len(pairs) {
		t.Fatalf("implausible shard range [%d,%d) for %d pairs", se.Lo, se.Hi, len(pairs))
	}
	if !errors.Is(err, errFailBackend) {
		t.Fatalf("err %v does not unwrap to the child failure", err)
	}
	for _, want := range []string{"failbe", "shard", fmt.Sprint(se.Lo)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err %q does not mention %q", err, want)
		}
	}
}

// shortBackend returns fewer results than pairs with a nil error — a
// contract violation a composite must surface, not truncate over.
type shortBackend struct{}

func (shortBackend) AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error) {
	return make([]Result, len(pairs)/2), nil
}
func (shortBackend) Capabilities() Capabilities {
	return Capabilities{Parallelism: 2, PreferredBatch: 2}
}
func (shortBackend) Stats() BackendStats { return BackendStats{Name: "shortbe"} }

var registerShortOnce sync.Once

func TestMultiRejectsShortChildResults(t *testing.T) {
	registerShortOnce.Do(func() {
		Register("shortbe", func(string, Config, BackendOptions) (Backend, error) {
			return shortBackend{}, nil
		})
	})
	eng, err := NewEngine(WithBackendName("multi(cpu,shortbe)"), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AlignBatch(context.Background(), testPairs(37, 8, 150, 0.08))
	var se *ShardError
	if !errors.As(err, &se) || se.Backend != "shortbe" {
		t.Fatalf("err = %v, want ShardError attributed to shortbe", err)
	}
	if !strings.Contains(err.Error(), "results for") {
		t.Fatalf("err %q does not name the contract violation", err)
	}
	// The same violation through a plain Engine (no composite) must fail
	// loudly too, not hand the caller a truncated slice.
	direct, err := NewEngine(WithBackendName("shortbe"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.AlignBatch(context.Background(), testPairs(38, 4, 150, 0.08)); err == nil {
		t.Fatal("engine accepted a short result slice from the backend")
	}
	// Align's batch-of-one fallback hits the same guard instead of
	// panicking on an empty slice.
	one := testPairs(39, 1, 150, 0.08)
	if _, err := direct.Align(context.Background(), one[0].Query, one[0].Ref); err == nil {
		t.Fatal("Align accepted an empty result slice from the backend")
	}
}

func TestMultiContextCancellation(t *testing.T) {
	eng, err := NewEngine(WithBackendName("multi(cpu,gpu)"), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.AlignBatch(cancelled, testPairs(34, 8, 150, 0.08))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// deadlineBackend fails with an error wrapping context.DeadlineExceeded
// — an internal per-batch timeout, not the caller's context.
type deadlineBackend struct{}

func (deadlineBackend) AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error) {
	return nil, fmt.Errorf("device timeout: %w", context.DeadlineExceeded)
}
func (deadlineBackend) Capabilities() Capabilities {
	return Capabilities{Parallelism: 2, PreferredBatch: 2}
}
func (deadlineBackend) Stats() BackendStats { return BackendStats{Name: "deadlinebe"} }

var registerDeadlineOnce sync.Once

// TestMultiKeepsAttributionForChildContextErrors: a context-shaped error
// a child produced on its own (the caller's context is live) must keep
// its ShardError attribution instead of masquerading as a caller-side
// cancellation.
func TestMultiKeepsAttributionForChildContextErrors(t *testing.T) {
	registerDeadlineOnce.Do(func() {
		Register("deadlinebe", func(string, Config, BackendOptions) (Backend, error) {
			return deadlineBackend{}, nil
		})
	})
	eng, err := NewEngine(WithBackendName("multi(cpu,deadlinebe)"), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AlignBatch(context.Background(), testPairs(40, 8, 150, 0.08))
	var se *ShardError
	if !errors.As(err, &se) || se.Backend != "deadlinebe" {
		t.Fatalf("err = %v, want ShardError attributed to deadlinebe", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v lost the wrapped deadline cause", err)
	}
}

func TestMultiEmptyAndTinyBatches(t *testing.T) {
	eng, err := NewEngine(WithBackendName("multi(cpu,gpu)"), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.AlignBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res %v err %v", res, err)
	}
	// A batch smaller than the child count still aligns correctly (some
	// shards are empty).
	one := testPairs(35, 1, 150, 0.08)
	cpuEng, err := NewEngine(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AlignBatch(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpuEng.AlignBatch(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("single-pair multi %+v != cpu %+v", got[0], want[0])
	}
}

// TestMultiMinimumSharePerChild: once the batch has at least one pair
// per child, every child gets a non-empty shard — even when the weights
// are lopsided (1 CPU thread against the GPU's full wave).
func TestMultiMinimumSharePerChild(t *testing.T) {
	eng, err := NewEngine(WithBackendName("multi(cpu,gpu)"), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	pairs := testPairs(36, 2, 150, 0.08)
	if _, err := eng.AlignBatch(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	st := eng.BackendStats()
	if st.Shards != 2 {
		t.Fatalf("2-pair batch ran as %d shards, want 2 (stats %+v)", st.Shards, st)
	}
	for _, c := range st.Children {
		if c.Pairs != 1 {
			t.Fatalf("child %s got %d pairs, want 1", c.Name, c.Pairs)
		}
	}
}
