package genasm

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func testPairs(seed int64, n, length int, rate float64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, n)
	for i := range pairs {
		q := randSeq(rng, length/2+rng.Intn(length))
		pairs[i] = Pair{Query: q, Ref: mutate(rng, q, rate)}
	}
	return pairs
}

// TestEngineBackendParity is the paper's core claim through the public
// API: the same configuration produces bit-identical Results on the CPU
// and GPU backends, for both GenASM variants.
func TestEngineBackendParity(t *testing.T) {
	ctx := context.Background()
	pairs := testPairs(11, 24, 400, 0.1)
	for _, algo := range []Algorithm{GenASM, GenASMUnimproved} {
		cpuEng, err := NewEngine(WithAlgorithm(algo), WithBackend(CPU))
		if err != nil {
			t.Fatal(err)
		}
		gpuEng, err := NewEngine(WithAlgorithm(algo), WithBackend(GPU))
		if err != nil {
			t.Fatal(err)
		}
		cpuRes, err := cpuEng.AlignBatch(ctx, pairs)
		if err != nil {
			t.Fatal(err)
		}
		gpuRes, err := gpuEng.AlignBatch(ctx, pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if cpuRes[i] != gpuRes[i] {
				t.Fatalf("%s pair %d: cpu %+v != gpu %+v", algo, i, cpuRes[i], gpuRes[i])
			}
		}
	}
}

func TestEngineAlignBatchContextCancellation(t *testing.T) {
	// Pre-cancelled context: both backends must refuse immediately.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	small := testPairs(12, 4, 200, 0.1)
	for _, kind := range []BackendKind{CPU, GPU} {
		eng, err := NewEngine(WithBackend(kind))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.AlignBatch(cancelled, small); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v backend: err = %v, want context.Canceled", kind, err)
		}
	}

	// Mid-batch deadline: a batch far larger than 1 ms of work must stop
	// early and report the deadline, on both the threaded and the
	// single-threaded CPU path.
	big := testPairs(13, 2000, 1000, 0.1)
	for _, threads := range []int{1, 4} {
		eng, err := NewEngine(WithThreads(threads))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err = eng.AlignBatch(ctx, big)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("threads=%d: err = %v, want context.DeadlineExceeded", threads, err)
		}
	}
}

func TestEngineOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"unknown algorithm", []Option{WithAlgorithm("bwa")}},
		{"overlap >= window", []Option{WithWindow(16, 20, 4)}},
		{"error budget > window", []Option{WithWindow(64, 24, 70)}},
		{"gpu kernel for edlib", []Option{WithBackend(GPU), WithAlgorithm(Edlib)}},
		{"gpu ablation", []Option{WithBackend(GPU), WithAblation(false, false, true)}},
		{"dent without sene", []Option{WithAblation(true, false, false)}},
		{"unknown backend", []Option{WithBackend(BackendKind(99))}},
	}
	for _, tc := range cases {
		if _, err := NewEngine(tc.opts...); err == nil {
			t.Fatalf("%s: NewEngine accepted invalid options", tc.name)
		}
	}
	// And the zero-option engine must be valid.
	if _, err := NewEngine(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMaxQueryLen(t *testing.T) {
	eng, err := NewEngine(WithMaxQueryLen(100))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	ok := randSeq(rng, 100)
	long := randSeq(rng, 101)
	if _, err := eng.Align(context.Background(), ok, ok); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Align(context.Background(), long, long); err == nil {
		t.Fatal("accepted over-limit query")
	}
	if _, err := eng.AlignBatch(context.Background(), []Pair{{Query: ok, Ref: ok}, {Query: long, Ref: long}}); err == nil {
		t.Fatal("batch accepted over-limit query")
	}
}

// mapAlignFixture builds a genome, a mapper-equipped engine and an input
// read set with known properties: most reads map, read junkIdx is random
// junk (unmapped), read longIdx exceeds the engine's query limit.
func mapAlignFixture(t *testing.T, opts ...Option) (eng *Engine, in []Read, junkIdx, longIdx int) {
	t.Helper()
	ref := GenerateGenome(150_000, 21)
	reads, err := SimulateLongReads(ref, 12, 1500, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	eng, err = NewEngine(append([]Option{
		WithMapper(mapper),
		WithMaxQueryLen(2500),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		in = append(in, Read{Name: r.Name, Seq: r.Seq})
		_ = i
	}
	rng := rand.New(rand.NewSource(3))
	junkIdx = len(in)
	in = append(in, Read{Name: "junk", Seq: randSeq(rng, 300)})
	longIdx = len(in)
	in = append(in, Read{Name: "too-long", Seq: ref[1000:4000]})
	return eng, in, junkIdx, longIdx
}

func TestMapAlignOrderedWithPerItemErrors(t *testing.T) {
	eng, in, junkIdx, longIdx := mapAlignFixture(t)
	out, err := eng.MapAlign(context.Background(), StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]MappedAlignment)
	last := -1
	for m := range out {
		if m.ReadIndex < last {
			t.Fatalf("emission out of order: %d after %d", m.ReadIndex, last)
		}
		last = m.ReadIndex
		seen[m.ReadIndex] = m
	}
	if len(seen) != len(in) {
		t.Fatalf("emitted %d reads, want %d", len(seen), len(in))
	}
	for idx, m := range seen {
		switch idx {
		case junkIdx:
			if !m.Unmapped || m.Err != nil {
				t.Fatalf("junk read: %+v", m)
			}
		case longIdx:
			if m.Err == nil {
				t.Fatal("over-limit read did not surface a per-item error")
			}
		default:
			if m.Err != nil {
				t.Fatalf("read %d: unexpected error %v", idx, m.Err)
			}
			if m.Unmapped {
				continue // rare, but legal for a noisy simulated read
			}
			if m.Result.Cigar == "" || m.Result.Distance > len(m.Read.Seq) {
				t.Fatalf("read %d: implausible result %+v", idx, m.Result)
			}
		}
	}
}

func TestMapAlignAllCandidates(t *testing.T) {
	engBest, in, _, _ := mapAlignFixture(t)
	engAll, _, _, _ := mapAlignFixture(t, WithAllCandidates(true))

	count := func(eng *Engine) (items int, ranks map[int][]int) {
		out, err := eng.MapAlign(context.Background(), StreamReads(in))
		if err != nil {
			t.Fatal(err)
		}
		ranks = make(map[int][]int)
		for m := range out {
			items++
			if !m.Unmapped && m.Err == nil {
				ranks[m.ReadIndex] = append(ranks[m.ReadIndex], m.Rank)
			}
		}
		return items, ranks
	}
	nBest, bestRanks := count(engBest)
	nAll, allRanks := count(engAll)
	if nAll < nBest {
		t.Fatalf("all-candidates emitted %d < best-only %d", nAll, nBest)
	}
	for idx, rs := range bestRanks {
		if len(rs) != 1 || rs[0] != 0 {
			t.Fatalf("best-only read %d ranks %v", idx, rs)
		}
	}
	for idx, rs := range allRanks {
		for want, got := range rs {
			if got != want {
				t.Fatalf("read %d ranks %v not contiguous", idx, rs)
			}
		}
	}
}

func TestMapAlignRequiresMapper(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapAlign(context.Background(), StreamReads(nil)); err == nil {
		t.Fatal("MapAlign without a mapper accepted")
	}
}

func TestMapAlignCancellationClosesStream(t *testing.T) {
	eng, in, _, _ := mapAlignFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	out, err := eng.MapAlign(ctx, StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The stream must terminate (closed channel) rather than hang.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("MapAlign stream did not close after cancellation")
		}
	}
}

func TestEngineGPUStats(t *testing.T) {
	ctx := context.Background()
	pairs := testPairs(15, 6, 300, 0.1)
	cpuEng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cpuEng.GPUStats(); ok {
		t.Fatal("CPU backend reported GPU stats")
	}
	gpuEng, err := NewEngine(WithBackend(GPU))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gpuEng.GPUStats(); ok {
		t.Fatal("GPU stats before any launch")
	}
	if _, err := gpuEng.AlignBatch(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	st, ok := gpuEng.GPUStats()
	if !ok || st.Seconds <= 0 || st.PairsPerSecond <= 0 || st.Device == "" {
		t.Fatalf("stats %+v ok=%v", st, ok)
	}
}

// TestDeprecatedShimsMatchEngine pins the compatibility contract: the old
// entry points must produce exactly what the Engine produces.
func TestDeprecatedShimsMatchEngine(t *testing.T) {
	ctx := context.Background()
	pairs := testPairs(16, 10, 300, 0.1)

	old, err := AlignBatch(Config{Algorithm: GenASM}, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithAlgorithm(GenASM), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	now, err := eng.AlignBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if old[i] != now[i] {
			t.Fatalf("pair %d: shim %+v != engine %+v", i, old[i], now[i])
		}
	}

	oldGPU, oldSt, err := AlignBatchGPU(GPUConfig{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	gpuEng, err := NewEngine(WithBackend(GPU))
	if err != nil {
		t.Fatal(err)
	}
	nowGPU, err := gpuEng.AlignBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if oldGPU[i] != nowGPU[i] {
			t.Fatalf("pair %d: gpu shim %+v != engine %+v", i, oldGPU[i], nowGPU[i])
		}
	}
	newSt, ok := gpuEng.GPUStats()
	if !ok || oldSt.MakespanCycles != newSt.MakespanCycles {
		t.Fatalf("gpu stats diverge: shim %+v engine %+v", oldSt, newSt)
	}
}

// TestMapAlignManyTinyReads is the server-shaped load test: hundreds of
// short reads streaming through MapAlign must all come back, in order,
// with plausible results — the traffic profile the serving layer feeds
// the engine.
func TestMapAlignManyTinyReads(t *testing.T) {
	ref := GenerateGenome(200_000, 31)
	sim, err := SimulateShortReads(ref, 300, 150, 0.02, 32)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithMapper(mapper))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]Read, len(sim))
	for i, r := range sim {
		in[i] = Read{Name: r.Name, Seq: r.Seq}
	}
	out, err := eng.MapAlign(context.Background(), StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	emitted, mapped, last := 0, 0, -1
	for m := range out {
		if m.ReadIndex < last {
			t.Fatalf("emission out of order: %d after %d", m.ReadIndex, last)
		}
		last = m.ReadIndex
		emitted++
		if m.Err != nil {
			t.Fatalf("read %d: %v", m.ReadIndex, m.Err)
		}
		if m.Unmapped {
			continue
		}
		mapped++
		if m.Result.Distance > len(m.Read.Seq)/2 {
			t.Fatalf("read %d: implausible distance %d for %d bp", m.ReadIndex, m.Result.Distance, len(m.Read.Seq))
		}
	}
	if emitted != len(in) {
		t.Fatalf("emitted %d of %d reads", emitted, len(in))
	}
	if mapped < len(in)*8/10 {
		t.Fatalf("only %d/%d tiny reads mapped", mapped, len(in))
	}
}

// TestMapAlignMixedReferences runs MapAlign pipelines over two different
// references concurrently — the serving layer's multi-genome registry
// shape — and checks each stream resolves its reads against its own
// reference.
func TestMapAlignMixedReferences(t *testing.T) {
	type world struct {
		eng *Engine
		in  []Read
	}
	build := func(seed int64) world {
		ref := GenerateGenome(120_000, seed)
		sim, err := SimulateLongReads(ref, 20, 1200, 0.08, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		mapper, err := NewMapper(ref)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(WithMapper(mapper))
		if err != nil {
			t.Fatal(err)
		}
		in := make([]Read, len(sim))
		for i, r := range sim {
			in[i] = Read{Name: r.Name, Seq: r.Seq}
		}
		return world{eng: eng, in: in}
	}
	worlds := []world{build(41), build(47)}

	type outcome struct {
		mapped int
		err    error
	}
	results := make([]outcome, len(worlds))
	done := make(chan struct{})
	for i, w := range worlds {
		go func(i int, w world) {
			defer func() { done <- struct{}{} }()
			out, err := w.eng.MapAlign(context.Background(), StreamReads(w.in))
			if err != nil {
				results[i].err = err
				return
			}
			for m := range out {
				if m.Err != nil {
					results[i].err = m.Err
					return
				}
				if !m.Unmapped {
					results[i].mapped++
				}
			}
		}(i, w)
	}
	<-done
	<-done
	close(done)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("world %d: %v", i, r.err)
		}
		if r.mapped < len(worlds[i].in)-3 {
			t.Fatalf("world %d: only %d/%d reads mapped", i, r.mapped, len(worlds[i].in))
		}
	}
}

// TestMapAlignMidStreamCancellation cancels after consuming a few
// emissions: the stream must close promptly without emitting the whole
// input, and without goroutine leaks (exercised under -race in CI).
func TestMapAlignMidStreamCancellation(t *testing.T) {
	ref := GenerateGenome(200_000, 51)
	sim, err := SimulateShortReads(ref, 400, 150, 0.02, 52)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(WithMapper(mapper), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]Read, len(sim))
	for i, r := range sim {
		in[i] = Read{Name: r.Name, Seq: r.Seq}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, err := eng.MapAlign(ctx, StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	consumed := 0
	for range out {
		consumed++
		if consumed == 10 {
			cancel()
			break
		}
	}
	// The channel must close; count what trickles out after the cancel.
	deadline := time.After(10 * time.Second)
	trailing := 0
	for {
		select {
		case _, ok := <-out:
			if !ok {
				if trailing+consumed >= len(in) {
					t.Fatalf("cancellation did not truncate the stream (%d emissions)", trailing+consumed)
				}
				if ctx.Err() == nil {
					t.Fatal("context not cancelled")
				}
				return
			}
			trailing++
		case <-deadline:
			t.Fatal("stream did not close after mid-stream cancellation")
		}
	}
}

func TestStreamReads(t *testing.T) {
	in := []Read{{Name: "a"}, {Name: "b"}}
	ch := StreamReads(in)
	var got []string
	for r := range ch {
		got = append(got, r.Name)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}
