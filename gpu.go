package genasm

import (
	"fmt"

	"genasm/internal/dna"
	"genasm/internal/gpu"
	"genasm/internal/gpualign"
)

// GPUConfig configures a batch launch on the simulated GPU.
type GPUConfig struct {
	// Algorithm must be GenASM or GenASMUnimproved (empty = GenASM).
	Algorithm Algorithm
	// Window geometry, as in Config (zero = paper defaults).
	WindowSize, Overlap, ErrorK int
	// TargetBlocksPerSM trades occupancy against per-block shared
	// memory (default 8, as a CUDA launch bound would).
	TargetBlocksPerSM int
}

// GPUStats reports the simulated launch.
type GPUStats struct {
	Device         string
	Seconds        float64
	MakespanCycles uint64
	BlocksPerSM    int
	// SharedBlocks / SpilledBlocks count alignments whose DP working set
	// did / did not fit the block's shared-memory allocation.
	SharedBlocks, SpilledBlocks int
	// PairsPerSecond is the modelled device throughput.
	PairsPerSecond float64
}

// AlignBatchGPU aligns every pair on a simulated NVIDIA A6000. Functional
// results are bit-identical to the corresponding CPU algorithm; timing
// comes from the SIMT cost model (see internal/gpu).
func AlignBatchGPU(cfg GPUConfig, pairs []Pair) ([]Result, GPUStats, error) {
	gcfg := gpualign.DefaultConfig(gpualign.Improved)
	switch cfg.Algorithm {
	case "", GenASM:
	case GenASMUnimproved:
		gcfg.Algorithm = gpualign.Unimproved
	default:
		return nil, GPUStats{}, fmt.Errorf("genasm: algorithm %q has no GPU kernel", cfg.Algorithm)
	}
	if cfg.WindowSize != 0 {
		gcfg.W = cfg.WindowSize
		gcfg.O = cfg.Overlap
	}
	if cfg.ErrorK != 0 {
		gcfg.InitialK = cfg.ErrorK
	}
	if cfg.TargetBlocksPerSM != 0 {
		gcfg.TargetBlocksPerSM = cfg.TargetBlocksPerSM
	}
	gcfg.Device = gpu.A6000()

	jobs := make([]gpualign.Pair, len(pairs))
	for i, p := range pairs {
		jobs[i] = gpualign.Pair{Query: dna.EncodeSeq(p.Query), Ref: dna.EncodeSeq(p.Ref)}
	}
	batch, err := gpualign.AlignBatch(jobs, gcfg)
	if err != nil {
		return nil, GPUStats{}, err
	}
	results := make([]Result, len(pairs))
	var c Config
	c.fillDefaults()
	for i, r := range batch.Results {
		results[i] = Result{
			Distance:    r.Distance,
			Score:       r.Cigar.AffineScore(c.penalties()),
			Cigar:       r.Cigar.String(),
			RefConsumed: r.RefConsumed,
		}
	}
	st := GPUStats{
		Device:         batch.Launch.Device,
		Seconds:        batch.Launch.Seconds,
		MakespanCycles: batch.Launch.MakespanCycles,
		BlocksPerSM:    batch.Launch.BlocksPerSM,
		SharedBlocks:   batch.SharedBlocks,
		SpilledBlocks:  batch.SpilledBlocks,
		PairsPerSecond: batch.Launch.Throughput(),
	}
	return results, st, nil
}
