package genasm

import "context"

// GPUConfig configures a batch launch on the simulated GPU.
type GPUConfig struct {
	// Algorithm must be GenASM or GenASMUnimproved (empty = GenASM).
	Algorithm Algorithm
	// Window geometry, as in Config (zero = paper defaults).
	WindowSize, Overlap, ErrorK int
	// TargetBlocksPerSM trades occupancy against per-block shared
	// memory (default 8, as a CUDA launch bound would).
	TargetBlocksPerSM int
}

// GPUStats reports the simulated launch.
type GPUStats struct {
	Device         string
	Seconds        float64
	MakespanCycles uint64
	BlocksPerSM    int
	// SharedBlocks / SpilledBlocks count alignments whose DP working set
	// did / did not fit the block's shared-memory allocation.
	SharedBlocks, SpilledBlocks int
	// PairsPerSecond is the modelled device throughput.
	PairsPerSecond float64
}

// AlignBatchGPU aligns every pair on a simulated NVIDIA A6000. Functional
// results are bit-identical to the corresponding CPU algorithm; timing
// comes from the SIMT cost model (see internal/gpu).
//
// Deprecated: use NewEngine(WithBackend(GPU), ...) and Engine.AlignBatch;
// launch stats are available from Engine.GPUStats. This shim delegates to
// a throwaway Engine.
func AlignBatchGPU(cfg GPUConfig, pairs []Pair) ([]Result, GPUStats, error) {
	algo := cfg.Algorithm
	if algo == "" {
		algo = GenASM
	}
	opts := []Option{WithBackend(GPU), WithAlgorithm(algo),
		WithWindow(cfg.WindowSize, cfg.Overlap, cfg.ErrorK)}
	if cfg.TargetBlocksPerSM != 0 {
		opts = append(opts, WithGPUBlocksPerSM(cfg.TargetBlocksPerSM))
	}
	eng, err := NewEngine(opts...)
	if err != nil {
		return nil, GPUStats{}, err
	}
	results, err := eng.AlignBatch(context.Background(), pairs)
	if err != nil {
		return nil, GPUStats{}, err
	}
	st, _ := eng.GPUStats()
	return results, st, nil
}
