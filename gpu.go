package genasm

import "context"

// GPUConfig configures a batch launch on the simulated GPU.
type GPUConfig struct {
	// Algorithm must be GenASM or GenASMUnimproved (empty = GenASM).
	Algorithm Algorithm
	// Window geometry, as in Config (zero = paper defaults).
	WindowSize, Overlap, ErrorK int
	// TargetBlocksPerSM trades occupancy against per-block shared
	// memory (default 8, as a CUDA launch bound would).
	TargetBlocksPerSM int
}

// GPUStats reports one simulated device launch (one AlignBatch call, or
// one read's candidate batch under MapAlign). Every figure is per-launch,
// not cumulative across the engine's lifetime.
type GPUStats struct {
	// Device names the simulated device model (e.g. "NVIDIA RTX A6000").
	Device string `json:"device"`
	// Seconds is the modelled wall-clock time of the launch: MakespanCycles
	// divided by the device clock.
	Seconds float64 `json:"seconds"`
	// MakespanCycles is the modelled cycle count of the launch's critical
	// path (block schedule plus L2/DRAM bandwidth floors).
	MakespanCycles uint64 `json:"makespan_cycles"`
	// BlocksPerSM is the occupancy the launch ran at.
	BlocksPerSM int `json:"blocks_per_sm"`
	// SharedBlocks / SpilledBlocks count pairs (one pair = one thread
	// block) whose DP working set did / did not fit the block's
	// shared-memory allocation; spilled blocks pay the L2/DRAM path.
	SharedBlocks  int `json:"shared_blocks"`
	SpilledBlocks int `json:"spilled_blocks"`
	// PairsPerSecond is this launch's modelled throughput: the batch's
	// pair count divided by Seconds. It is zero for an empty launch.
	PairsPerSecond float64 `json:"pairs_per_second"`
}

// AlignBatchGPU aligns every pair on a simulated NVIDIA A6000. Functional
// results are bit-identical to the corresponding CPU algorithm; timing
// comes from the SIMT cost model (see internal/gpu).
//
// Deprecated: use NewEngine(WithBackendName("gpu"), ...) and
// Engine.AlignBatch; launch stats are available from
// Engine.BackendStats().GPU. This shim delegates to a throwaway Engine.
func AlignBatchGPU(cfg GPUConfig, pairs []Pair) ([]Result, GPUStats, error) {
	algo := cfg.Algorithm
	if algo == "" {
		algo = GenASM
	}
	opts := []Option{WithBackend(GPU), WithAlgorithm(algo),
		WithWindow(cfg.WindowSize, cfg.Overlap, cfg.ErrorK)}
	if cfg.TargetBlocksPerSM != 0 {
		opts = append(opts, WithGPUBlocksPerSM(cfg.TargetBlocksPerSM))
	}
	eng, err := NewEngine(opts...)
	if err != nil {
		return nil, GPUStats{}, err
	}
	//lint:allow ctxflow deprecated pre-Engine shim has no ctx parameter to thread; callers wanting cancellation migrate to Engine.AlignBatch
	results, err := eng.AlignBatch(context.Background(), pairs)
	if err != nil {
		return nil, GPUStats{}, err
	}
	st, _ := eng.GPUStats()
	return results, st, nil
}
