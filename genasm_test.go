package genasm

import (
	"math/rand"
	"strings"
	"testing"
)

func randSeq(rng *rand.Rand, n int) []byte {
	alpha := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(4)]
	}
	return s
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	alpha := []byte("ACGT")
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, alpha[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, alpha[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = []byte("A")
	}
	return out
}

func TestEveryAlgorithmAlignsConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randSeq(rng, 500)
	r := mutate(rng, q, 0.08)
	for _, algo := range Algorithms() {
		a, err := New(Config{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		res, err := a.Align(q, r)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Cigar == "" {
			t.Fatalf("%s: empty cigar", algo)
		}
		if res.Distance < 0 || res.Distance > len(q)+len(r) {
			t.Fatalf("%s: implausible distance %d", algo, res.Distance)
		}
		if res.RefConsumed <= 0 || res.RefConsumed > len(r) {
			t.Fatalf("%s: refConsumed %d", algo, res.RefConsumed)
		}
	}
}

func TestEditDistanceAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ed, err := New(Config{Algorithm: Edlib})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(Config{Algorithm: SWG})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 30; iter++ {
		q := randSeq(rng, 1+rng.Intn(150))
		r := mutate(rng, q, 0.2)
		a, err := ed.Align(q, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sw.Align(q, r)
		if err != nil {
			t.Fatal(err)
		}
		// SWG optimizes affine score, Edlib edit distance; on these
		// near-identity pairs Edlib's distance is the true optimum
		// and SWG's cannot beat it.
		if b.Distance < a.Distance {
			t.Fatalf("iter %d: swg distance %d < edlib %d", iter, b.Distance, a.Distance)
		}
	}
}

func TestPerfectMatchAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 300)
	for _, algo := range Algorithms() {
		a, _ := New(Config{Algorithm: algo})
		res, err := a.Align(s, s)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Distance != 0 {
			t.Fatalf("%s: distance %d on identical sequences", algo, res.Distance)
		}
		if res.Score != 2*len(s) {
			t.Fatalf("%s: score %d want %d", algo, res.Score, 2*len(s))
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	if _, err := New(Config{Algorithm: "bwa"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestAblationTogglesOnlyForImproved(t *testing.T) {
	if _, err := New(Config{Algorithm: GenASMUnimproved, DisableET: true}); err == nil {
		t.Fatal("accepted toggles on unimproved")
	}
	if _, err := New(Config{Algorithm: GenASM, DisableET: true}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pairs := make([]Pair, 20)
	for i := range pairs {
		q := randSeq(rng, 200+rng.Intn(200))
		pairs[i] = Pair{Query: q, Ref: mutate(rng, q, 0.1)}
	}
	cfg := Config{Algorithm: GenASM}
	batch, err := AlignBatch(cfg, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, err := single.Align(p.Query, p.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("pair %d: batch %+v != single %+v", i, batch[i], want)
		}
	}
}

func TestAlignBatchEmptyAndInvalid(t *testing.T) {
	if res, err := AlignBatch(Config{}, nil, 0); err != nil || len(res) != 0 {
		t.Fatal("empty batch")
	}
	if _, err := AlignBatch(Config{Algorithm: "nope"}, []Pair{{}}, 1); err == nil {
		t.Fatal("accepted bad config")
	}
}

func TestGPUBatchMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := make([]Pair, 10)
	for i := range pairs {
		q := randSeq(rng, 400)
		pairs[i] = Pair{Query: q, Ref: mutate(rng, q, 0.1)}
	}
	gpuRes, st, err := AlignBatchGPU(GPUConfig{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := AlignBatch(Config{Algorithm: GenASM}, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if gpuRes[i] != cpuRes[i] {
			t.Fatalf("pair %d: gpu %+v cpu %+v", i, gpuRes[i], cpuRes[i])
		}
	}
	if st.Seconds <= 0 || st.PairsPerSecond <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.SpilledBlocks != 0 {
		t.Fatalf("improved kernel spilled %d blocks", st.SpilledBlocks)
	}
	if _, _, err := AlignBatchGPU(GPUConfig{Algorithm: Edlib}, pairs); err == nil {
		t.Fatal("accepted GPU launch for edlib")
	}
}

func TestWorkloadPipelineThroughPublicAPI(t *testing.T) {
	ref := GenerateGenome(150_000, 9)
	if len(ref) != 150_000 {
		t.Fatal("genome length")
	}
	reads, err := SimulateLongReads(ref, 10, 2000, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	aligner, err := New(Config{Algorithm: GenASM})
	if err != nil {
		t.Fatal(err)
	}
	aligned := 0
	for _, r := range reads {
		cands := mapper.Candidates(r.Seq)
		if len(cands) == 0 {
			continue
		}
		c := cands[0]
		query := r.Seq
		if c.RevComp {
			query = ReverseComplement(query)
		}
		res, err := aligner.Align(query, ref[c.Start:c.End])
		if err != nil {
			t.Fatal(err)
		}
		// 10% error reads: the committed distance should be well under
		// 20% of the read length at the true locus.
		if res.Distance < len(query)/5 {
			aligned++
		}
	}
	if aligned < 8 {
		t.Fatalf("only %d/10 reads aligned well", aligned)
	}
}

func TestSimulateShortReads(t *testing.T) {
	ref := GenerateGenome(50_000, 10)
	reads, err := SimulateShortReads(ref, 20, 150, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if r.RefSpan != 150 {
			t.Fatalf("span %d", r.RefSpan)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTN"))
	if string(got) != "NACGT" {
		t.Fatalf("revcomp %q", got)
	}
}

func TestCigarStringsParseable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randSeq(rng, 300)
	r := mutate(rng, q, 0.15)
	for _, algo := range Algorithms() {
		a, _ := New(Config{Algorithm: algo})
		res, err := a.Align(q, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cigar {
			if !strings.ContainsRune("0123456789=XID", c) {
				t.Fatalf("%s: unexpected cigar char %q in %s", algo, c, res.Cigar)
			}
		}
	}
}
