package genasm

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestBackendUsageListsRegistry(t *testing.T) {
	usage := BackendUsage()
	for _, want := range []string{"cpu", "gpu", "multi"} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage %q does not list %q", usage, want)
		}
	}
}

func TestBackendsListsBuiltins(t *testing.T) {
	names := Backends()
	for _, want := range []string{"cpu", "gpu", "multi"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		fn()
	}
	okFactory := func(string, Config, BackendOptions) (Backend, error) { return nil, nil }
	mustPanic("empty name", func() { Register("", okFactory) })
	mustPanic("nil factory", func() { Register("nilfactory", nil) })
	mustPanic("duplicate name", func() { Register("cpu", okFactory) })
	mustPanic("parameterized name", func() { Register("multi(cpu,gpu)", okFactory) })
}

func TestNewEngineUnknownBackendListsNames(t *testing.T) {
	_, err := NewEngine(WithBackendName("tpu"))
	if err == nil {
		t.Fatal("NewEngine accepted unknown backend")
	}
	for _, want := range []string{"tpu", "cpu", "gpu", "multi"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// The deprecated enum shim resolves through the same registry, so an
	// invalid kind gets the same self-diagnosing error.
	if _, err := NewEngine(WithBackend(BackendKind(99))); err == nil ||
		!strings.Contains(err.Error(), "cpu") {
		t.Fatalf("WithBackend(99): err = %v, want unknown-backend listing", err)
	}
}

// TestLeafBackendsRejectParameterizedSpecs: "cpu(8)" resolves to the cpu
// factory by base name, but silently dropping the parameters would let a
// typo rename the engine (fingerprint, metrics) while configuring
// nothing — leaf factories must reject any spec that is not their name.
func TestLeafBackendsRejectParameterizedSpecs(t *testing.T) {
	for _, spec := range []string{"cpu(8)", "gpu(fast)", "cpu()"} {
		_, err := NewEngine(WithBackendName(spec))
		if err == nil {
			t.Fatalf("%s: accepted", spec)
		}
		if !strings.Contains(err.Error(), "takes no parameters") {
			t.Fatalf("%s: err = %v, want parameter rejection", spec, err)
		}
	}
}

// countingBackend wraps a child Backend and counts calls: the shape of a
// third-party driver registered from outside the package.
type countingBackend struct {
	child Backend
	calls int
	mu    sync.Mutex
}

func (b *countingBackend) AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return b.child.AlignBatch(ctx, cfg, pairs)
}
func (b *countingBackend) Capabilities() Capabilities { return b.child.Capabilities() }
func (b *countingBackend) Stats() BackendStats {
	st := b.child.Stats()
	st.Name = "counting"
	return st
}

var (
	registerCountingOnce sync.Once
	// lastCounting records the most recent counting backend constructed,
	// so tests can assert the registry handed the engine their instance.
	// Factories run from any goroutine calling NewEngine, hence the lock.
	lastCountingMu sync.Mutex
	lastCounting   *countingBackend
)

func registerCountingBackend() {
	registerCountingOnce.Do(func() {
		Register("counting", func(name string, cfg Config, opts BackendOptions) (Backend, error) {
			child, err := newCPUBackend(cfg, opts.Threads)
			if err != nil {
				return nil, err
			}
			b := &countingBackend{child: child}
			lastCountingMu.Lock()
			lastCounting = b
			lastCountingMu.Unlock()
			return b, nil
		})
	})
}

func TestRegisteredBackendServesEngine(t *testing.T) {
	registerCountingBackend()
	eng, err := NewEngine(WithBackendName("counting"))
	if err != nil {
		t.Fatal(err)
	}
	lastCountingMu.Lock()
	be := lastCounting
	lastCountingMu.Unlock()
	pairs := testPairs(21, 6, 200, 0.1)
	got, err := eng.AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if be.calls != 1 {
		t.Fatalf("registered backend saw %d calls, want 1", be.calls)
	}
	cpuEng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpuEng.AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: counting %+v != cpu %+v", i, got[i], want[i])
		}
	}
	if eng.BackendName() != "counting" {
		t.Fatalf("BackendName() = %q", eng.BackendName())
	}
	if st := eng.BackendStats(); st.Name != "counting" || st.Pairs != uint64(len(pairs)) {
		t.Fatalf("BackendStats() = %+v", st)
	}
}

// TestConcurrentNewEngine exercises the registry under -race: engine
// construction on every builtin name, name listing, and late
// registration racing each other.
func TestConcurrentNewEngine(t *testing.T) {
	registerCountingBackend()
	pairs := testPairs(22, 2, 120, 0.1)
	names := []string{"cpu", "gpu", "multi", "multi(cpu,gpu)", "counting"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, name := range names {
				eng, err := NewEngine(WithBackendName(name), WithThreads(2))
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if _, err := eng.AlignBatch(context.Background(), pairs); err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if len(Backends()) < 4 {
					t.Errorf("Backends() shrank: %v", Backends())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestErrQueryTooLongSentinel(t *testing.T) {
	eng, err := NewEngine(WithMaxQueryLen(50))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	long := randSeq(rng, 51)
	if _, err := eng.Align(context.Background(), long, long); !errors.Is(err, ErrQueryTooLong) {
		t.Fatalf("Align err = %v, want ErrQueryTooLong", err)
	}
	_, err = eng.AlignBatch(context.Background(), []Pair{{Query: long, Ref: long}})
	if !errors.Is(err, ErrQueryTooLong) {
		t.Fatalf("AlignBatch err = %v, want ErrQueryTooLong", err)
	}
	if !strings.Contains(err.Error(), "pair 0") || !strings.Contains(err.Error(), "51") {
		t.Fatalf("error %q lost its context", err)
	}
}

// capBackend reports a structural MaxQueryLen; the engine must tighten
// its admission limit to it.
type capBackend struct{ Backend }

func (b capBackend) Capabilities() Capabilities {
	c := b.Backend.Capabilities()
	c.MaxQueryLen = 40
	return c
}

var registerCappedOnce sync.Once

func TestBackendCapabilityTightensMaxQueryLen(t *testing.T) {
	registerCappedOnce.Do(func() {
		Register("capped", func(name string, cfg Config, opts BackendOptions) (Backend, error) {
			child, err := newCPUBackend(cfg, opts.Threads)
			if err != nil {
				return nil, err
			}
			return capBackend{child}, nil
		})
	})
	for _, tc := range []struct {
		optLimit, want int
	}{
		{0, 40},   // no guardrail: the backend's structural limit rules
		{100, 40}, // looser guardrail: tightened to the backend
		{30, 30},  // tighter guardrail: kept
	} {
		eng, err := NewEngine(WithBackendName("capped"), WithMaxQueryLen(tc.optLimit))
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.MaxQueryLen(); got != tc.want {
			t.Fatalf("opt limit %d: MaxQueryLen() = %d, want %d", tc.optLimit, got, tc.want)
		}
	}
	eng, _ := NewEngine(WithBackendName("capped"))
	rng := rand.New(rand.NewSource(24))
	long := randSeq(rng, 41)
	if _, err := eng.Align(context.Background(), long, long); !errors.Is(err, ErrQueryTooLong) {
		t.Fatalf("err = %v, want ErrQueryTooLong from capability limit", err)
	}
}

func TestEngineCapabilitiesAndStats(t *testing.T) {
	cpuEng, err := NewEngine(WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	caps := cpuEng.Capabilities()
	if caps.Parallelism != 3 || caps.PreferredBatch != 12 {
		t.Fatalf("cpu caps = %+v", caps)
	}
	pairs := testPairs(25, 5, 200, 0.1)
	if _, err := cpuEng.AlignBatch(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	st := cpuEng.BackendStats()
	if st.Name != "cpu" || st.Batches != 1 || st.Pairs != 5 || st.GPU != nil {
		t.Fatalf("cpu stats = %+v", st)
	}

	gpuEng, err := NewEngine(WithBackendName("gpu"))
	if err != nil {
		t.Fatal(err)
	}
	gcaps := gpuEng.Capabilities()
	if gcaps.Parallelism <= 0 || gcaps.PreferredBatch != gcaps.Parallelism {
		t.Fatalf("gpu caps = %+v", gcaps)
	}
	if st := gpuEng.BackendStats(); st.GPU != nil {
		t.Fatalf("gpu stats before any launch = %+v", st)
	}
	if _, err := gpuEng.AlignBatch(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	st = gpuEng.BackendStats()
	if st.Name != "gpu" || st.GPU == nil || st.GPU.Seconds <= 0 {
		t.Fatalf("gpu stats after launch = %+v", st)
	}
	// The deprecated shim must agree with the generic snapshot.
	shim, ok := gpuEng.GPUStats()
	if !ok || shim != *st.GPU {
		t.Fatalf("GPUStats shim %+v != BackendStats.GPU %+v", shim, st.GPU)
	}
}
