package genasm_test

import (
	"context"
	"fmt"
	"log"

	"genasm"
)

// ExampleNewEngine builds the default engine (improved GenASM, CPU
// backend) and aligns one query against one candidate region.
func ExampleNewEngine() {
	eng, err := genasm.NewEngine(
		genasm.WithAlgorithm(genasm.GenASM),
		genasm.WithBackendName("cpu"), // or "gpu", "multi(cpu,gpu)" — see Backends()
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Align(context.Background(),
		[]byte("GATTACAGATTACA"),
		[]byte("GATTACACATTACA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Distance, res.Cigar)
	// Output: 1 7=1X6=
}

// ExampleEngine_AlignBatch aligns a batch of pairs; results are
// index-aligned with the input and the whole call is context-aware.
func ExampleEngine_AlignBatch() {
	eng, err := genasm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	pairs := []genasm.Pair{
		{Query: []byte("ACGTACGTAC"), Ref: []byte("ACGTACGTAC")},
		{Query: []byte("ACGTACGTAC"), Ref: []byte("ACGTTACGTAC")},
	}
	results, err := eng.AlignBatch(context.Background(), pairs)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("pair %d: distance %d\n", i, r.Distance)
	}
	// Output:
	// pair 0: distance 0
	// pair 1: distance 1
}

// ExampleWithBackendName selects the sharding composite backend through
// the driver-style registry; results are bit-identical to any single
// backend's.
func ExampleWithBackendName() {
	eng, err := genasm.NewEngine(genasm.WithBackendName("multi(cpu,gpu)"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Align(context.Background(),
		[]byte("GATTACAGATTACA"),
		[]byte("GATTACACATTACA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eng.BackendName(), res.Distance, res.Cigar)
	// Output: multi(cpu,gpu) 1 7=1X6=
}

// ExampleEngine_MapAlign runs the full read-mapping pipeline: candidate
// location on a minimizer/chaining Mapper, then alignment of the best
// candidate, streamed in input order.
func ExampleEngine_MapAlign() {
	ref := genasm.GenerateGenome(30_000, 1)
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := genasm.NewEngine(genasm.WithMapper(mapper))
	if err != nil {
		log.Fatal(err)
	}
	reads := []genasm.Read{{Name: "r1", Seq: ref[12_000:12_400]}}
	out, err := eng.MapAlign(context.Background(), genasm.StreamReads(reads))
	if err != nil {
		log.Fatal(err)
	}
	for m := range out {
		if m.Err != nil || m.Unmapped {
			log.Fatal("read did not map")
		}
		fmt.Println(m.Read.Name, "distance", m.Result.Distance, "rev-comp", m.Candidate.RevComp)
	}
	// Output: r1 distance 0 rev-comp false
}
