package genasm

import (
	"genasm/internal/dna"
	"genasm/internal/genome"
	"genasm/internal/minimap"
	"genasm/internal/readsim"
)

// Workload helpers: everything needed to reproduce the paper's pipeline
// (genome -> simulated long reads -> candidate locations -> alignment)
// through the public API. The examples/ programs are built on these.

// GenerateGenome returns a synthetic reference with human-like GC content
// and repeat structure (see internal/genome for the knobs).
func GenerateGenome(length int, seed int64) []byte {
	cfg := genome.DefaultConfig(length)
	cfg.Seed = seed
	return genome.Generate(cfg).Seq
}

// SimulatedRead is one read with ground truth.
type SimulatedRead struct {
	Name string
	Seq  []byte
	Qual []byte
	// The read was drawn from ref[Pos : Pos+RefSpan]; RevComp reads are
	// reported in read orientation.
	Pos, RefSpan int
	RevComp      bool
	Errors       int
}

// SimulateLongReads draws PacBio-like long reads (PBSIM2-style error
// model: indel-dominated, ~meanLen length, per-read error-rate jitter
// around errorRate).
func SimulateLongReads(ref []byte, n, meanLen int, errorRate float64, seed int64) ([]SimulatedRead, error) {
	p := readsim.PacBioCLR()
	p.MeanLength = meanLen
	p.LengthSD = meanLen / 10
	p.ErrorRate = errorRate
	return simulate(ref, n, p, seed)
}

// SimulateShortReads draws Illumina-like short reads (substitution-
// dominated errors).
func SimulateShortReads(ref []byte, n, length int, errorRate float64, seed int64) ([]SimulatedRead, error) {
	p := readsim.Illumina()
	p.MeanLength = length
	p.ErrorRate = errorRate
	return simulate(ref, n, p, seed)
}

func simulate(ref []byte, n int, p readsim.Profile, seed int64) ([]SimulatedRead, error) {
	reads, err := readsim.Simulate(ref, n, p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]SimulatedRead, len(reads))
	for i, r := range reads {
		out[i] = SimulatedRead{Name: r.Name, Seq: r.Seq, Qual: r.Qual,
			Pos: r.Pos, RefSpan: r.RefSpan, RevComp: r.RevComp, Errors: r.Errors}
	}
	return out, nil
}

// CandidateRegion is one mapping location a read should be aligned
// against.
type CandidateRegion struct {
	Start, End int
	RevComp    bool
	Score      float64
}

// Mapper finds candidate mapping locations with minimizer seeding and
// chaining (minimap2-like, reporting all chains as with -P). Lookups are
// read-only, so one Mapper serves any number of goroutines.
type Mapper struct {
	ix  *minimap.Index
	opt minimap.ChainOpts
	ref []byte
}

// NewMapper indexes a reference. The Mapper keeps ref (without copying),
// so candidate regions can be sliced back out with Region.
func NewMapper(ref []byte) (*Mapper, error) {
	ix, err := minimap.BuildIndexRaw(ref, minimap.DefaultIndexConfig())
	if err != nil {
		return nil, err
	}
	return &Mapper{ix: ix, opt: minimap.DefaultChainOpts(), ref: ref}, nil
}

// Ref returns the indexed reference sequence.
func (m *Mapper) Ref() []byte { return m.ref }

// Region returns the reference slice a candidate points at. The region is
// clamped to the reference bounds, so a stale or corrupted CandidateRegion
// (e.g. deserialized from a cache or a remote caller) yields the valid
// intersection — possibly empty — instead of a panic.
func (m *Mapper) Region(c CandidateRegion) []byte {
	start, end := c.Start, c.End
	if start < 0 {
		start = 0
	}
	if end > len(m.ref) {
		end = len(m.ref)
	}
	if start >= end {
		return nil
	}
	return m.ref[start:end]
}

// Candidates returns every chained candidate location for the read, best
// first, with a 100 bp flank.
func (m *Mapper) Candidates(read []byte) []CandidateRegion {
	cands := m.ix.LocateRaw(read, m.opt, 100)
	out := make([]CandidateRegion, len(cands))
	for i, c := range cands {
		out[i] = CandidateRegion{Start: c.RefStart, End: c.RefEnd, RevComp: c.RevComp, Score: c.Score}
	}
	return out
}

// ReverseComplement returns the reverse complement of a raw ASCII
// sequence.
func ReverseComplement(seq []byte) []byte {
	return dna.DecodeSeq(dna.ReverseComplement(dna.EncodeSeq(seq)))
}
