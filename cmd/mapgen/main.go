// Command mapgen generates candidate mapping locations for reads against a
// reference with minimizer seeding and chaining (minimap2-like, -P
// semantics: all chains). Output is a TSV:
//
//	read  strand  refStart  refEnd  chainScore
//
// These are the (read, reference region) pairs the paper's aligner
// comparison consumes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"genasm"
	"genasm/internal/cliutil"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTA/FASTQ (required)")
		outPath   = flag.String("out", "-", "output TSV (- = stdout)")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	die(cliutil.WriteAtomic(*outPath, func(out io.Writer) error {
		return run(*refPath, *readsPath, out, os.Stderr)
	}))
}

// run executes the candidate-generation pipeline; factored out of main so
// the whole CLI path is testable.
func run(refPath, readsPath string, out, summary io.Writer) error {
	rf, err := os.Open(refPath)
	if err != nil {
		return err
	}
	refs, err := genome.ReadFASTA(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no sequences in %s", refPath)
	}
	reads, err := readsim.LoadReadsFile(readsPath)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(out)
	mapper, err := genasm.NewMapper(refs[0].Seq)
	if err != nil {
		return err
	}
	total := 0
	for _, rd := range reads {
		for _, c := range mapper.Candidates(rd.Seq) {
			strand := "+"
			if c.RevComp {
				strand = "-"
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.0f\n", rd.Name, strand, c.Start, c.End, c.Score)
			total++
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(summary, "mapgen: %d candidate locations for %d reads\n", total, len(reads))
	return nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapgen:", err)
		os.Exit(1)
	}
}
