// Command mapgen generates candidate mapping locations for reads against a
// reference with minimizer seeding and chaining (minimap2-like, -P
// semantics: all chains). Output is a TSV:
//
//	read  strand  refStart  refEnd  chainScore
//
// These are the (read, reference region) pairs the paper's aligner
// comparison consumes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"genasm"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTA/FASTQ (required)")
		outPath   = flag.String("out", "-", "output TSV (- = stdout)")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	rf, err := os.Open(*refPath)
	die(err)
	refs, err := genome.ReadFASTA(rf)
	rf.Close()
	die(err)
	if len(refs) == 0 {
		die(fmt.Errorf("no sequences in %s", *refPath))
	}

	var reads []readsim.Read
	f, err := os.Open(*readsPath)
	die(err)
	if strings.HasSuffix(*readsPath, ".fq") || strings.HasSuffix(*readsPath, ".fastq") {
		reads, err = readsim.ReadFASTQ(f)
	} else {
		var recs []genome.Record
		recs, err = genome.ReadFASTA(f)
		for _, r := range recs {
			reads = append(reads, readsim.Read{Name: r.Name, Seq: r.Seq})
		}
	}
	f.Close()
	die(err)

	out := os.Stdout
	if *outPath != "-" {
		of, err := os.Create(*outPath)
		die(err)
		defer of.Close()
		out = of
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	mapper, err := genasm.NewMapper(refs[0].Seq)
	die(err)
	total := 0
	for _, rd := range reads {
		for _, c := range mapper.Candidates(rd.Seq) {
			strand := "+"
			if c.RevComp {
				strand = "-"
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.0f\n", rd.Name, strand, c.Start, c.End, c.Score)
			total++
		}
	}
	fmt.Fprintf(os.Stderr, "mapgen: %d candidate locations for %d reads\n", total, len(reads))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapgen:", err)
		os.Exit(1)
	}
}
