package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"genasm/internal/genome"
	"genasm/internal/readsim"
)

// writeTestData materializes a genome and simulated reads as files
// (mirrors cmd/genasm-align's fixture).
func writeTestData(t *testing.T, dir string) (refPath, fqPath string, reads []readsim.Read, refLen int) {
	t.Helper()
	cfg := genome.DefaultConfig(120_000)
	ref := genome.Generate(cfg)
	refLen = len(ref.Seq)

	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(rf, []genome.Record{ref}); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	prof := readsim.PacBioCLR()
	prof.MeanLength, prof.LengthSD = 1500, 200
	reads, err = readsim.Simulate(ref.Seq, 8, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	fqPath = filepath.Join(dir, "reads.fastq")
	qf, err := os.Create(fqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := readsim.WriteFASTQ(qf, reads); err != nil {
		t.Fatal(err)
	}
	qf.Close()
	return refPath, fqPath, reads, refLen
}

// TestRunGoldenShape: the TSV output has the documented record shape,
// plausible coordinates, and covers most reads.
func TestRunGoldenShape(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, reads, refLen := writeTestData(t, dir)
	var out, summary bytes.Buffer
	if err := run(refPath, fqPath, &out, &summary); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < len(reads)-1 {
		t.Fatalf("%d candidate lines for %d reads", len(lines), len(reads))
	}
	covered := map[string]bool{}
	for _, line := range lines {
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			t.Fatalf("malformed record %q", line)
		}
		if f[1] != "+" && f[1] != "-" {
			t.Fatalf("bad strand in %q", line)
		}
		start, err1 := strconv.Atoi(f[2])
		end, err2 := strconv.Atoi(f[3])
		if err1 != nil || err2 != nil || start >= end || end > refLen+200 {
			t.Fatalf("bad coordinates in %q", line)
		}
		if _, err := strconv.ParseFloat(f[4], 64); err != nil {
			t.Fatalf("bad chain score in %q", line)
		}
		covered[f[0]] = true
	}
	if len(covered) < len(reads)-1 {
		t.Fatalf("only %d/%d reads produced candidates", len(covered), len(reads))
	}
	if !strings.Contains(summary.String(), "candidate locations") {
		t.Fatalf("summary %q", summary.String())
	}
}

// TestRunDeterministic: two runs over the same input produce identical
// output (golden-stability without a checked-in file).
func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir)
	var a, b bytes.Buffer
	if err := run(refPath, fqPath, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(refPath, fqPath, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("output differs between identical runs")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir)
	if err := run(filepath.Join(dir, "missing.fa"), fqPath, io.Discard, io.Discard); err == nil {
		t.Fatal("missing reference accepted")
	}
	if err := run(refPath, filepath.Join(dir, "missing.fq"), io.Discard, io.Discard); err == nil {
		t.Fatal("missing reads accepted")
	}
	empty := filepath.Join(dir, "empty.fa")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, fqPath, io.Discard, io.Discard); err == nil {
		t.Fatal("empty reference accepted")
	}
}

func TestLoadReadsFormats(t *testing.T) {
	dir := t.TempDir()
	_, fqPath, reads, _ := writeTestData(t, dir)
	fq, err := readsim.LoadReadsFile(fqPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fq) != len(reads) {
		t.Fatalf("fq=%d want %d", len(fq), len(reads))
	}
	// FASTA branch.
	faPath := filepath.Join(dir, "reads.fa")
	recs := make([]genome.Record, len(reads))
	for i, r := range reads {
		recs[i] = genome.Record{Name: r.Name, Seq: r.Seq}
	}
	ff, err := os.Create(faPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(ff, recs); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	fa, err := readsim.LoadReadsFile(faPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(reads) || !bytes.Equal(fa[0].Seq, fq[0].Seq) {
		t.Fatal("formats disagree")
	}
}
