package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"genasm"
	"genasm/internal/cigar"
	"genasm/internal/genome"
	"genasm/internal/samfmt"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// writeTestData materializes a deterministic genome and simulated reads
// as files and returns the ground truth.
func writeTestData(t *testing.T, dir string, n, meanLen int, readSeed int64) (refPath, fqPath string, truth map[string]genasm.SimulatedRead, refLen int) {
	t.Helper()
	ref := genasm.GenerateGenome(50_000, 1)
	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(rf, []genome.Record{{Name: "synthetic", Seq: ref}}); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	reads, err := genasm.SimulateLongReads(ref, n, meanLen, 0.08, readSeed)
	if err != nil {
		t.Fatal(err)
	}
	truth = make(map[string]genasm.SimulatedRead, len(reads))
	var fq bytes.Buffer
	for _, r := range reads {
		truth[r.Name] = r
		fmt.Fprintf(&fq, "@%s\n%s\n+\n%s\n", r.Name, r.Seq, r.Qual)
	}
	fqPath = filepath.Join(dir, "reads.fastq")
	if err := os.WriteFile(fqPath, fq.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return refPath, fqPath, truth, len(ref)
}

func mapToString(t *testing.T, o options) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), o, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func testOptions(refPath, fqPath, format string) options {
	o := defaultOptions()
	o.refPath, o.readsPath, o.format = refPath, fqPath, format
	o.commandLine = "genasm-map -test" // pinned for golden stability
	return o
}

// TestGolden pins the exact SAM and PAF bytes for a fixed workload. Run
// with -update to regenerate testdata after an intentional change.
func TestGolden(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir, 8, 1200, 11)
	for _, format := range []string{"sam", "paf"} {
		got := mapToString(t, testOptions(refPath, fqPath, format))
		goldenPath := filepath.Join("testdata", "golden."+format)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run go test ./cmd/genasm-map -update): %v", err)
		}
		if got != string(want) {
			t.Errorf("%s output drifted from %s;\ngot:\n%s\nwant:\n%s", format, goldenPath, got, want)
		}
	}
}

// TestRoundTripGroundTruth is the pipeline's end-to-end check: simulated
// reads with known origins go through genasm-map, and every mapped
// primary SAM record's POS and strand must recover the simulator's
// ground truth (POS within the candidate flank of the true origin).
func TestRoundTripGroundTruth(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, truth, refLen := writeTestData(t, dir, 30, 1500, 23)
	out := mapToString(t, testOptions(refPath, fqPath, "sam"))

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "@HD\tVN:1.6") {
		t.Fatalf("first line %q is not an @HD header", lines[0])
	}
	wantSQ := fmt.Sprintf("@SQ\tSN:synthetic\tLN:%d", refLen)
	if !strings.Contains(out, wantSQ) {
		t.Fatalf("missing %q in header", wantSQ)
	}
	mapped, unmapped := 0, 0
	for _, line := range lines {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) < 11 {
			t.Fatalf("record %q has %d fields, want >= 11", line, len(f))
		}
		flag, err := strconv.Atoi(f[1])
		if err != nil {
			t.Fatalf("bad FLAG in %q", line)
		}
		tr, ok := truth[f[0]]
		if !ok {
			t.Fatalf("record for unknown read %q", f[0])
		}
		if flag&samfmt.FlagUnmapped != 0 {
			unmapped++
			continue
		}
		if flag&samfmt.FlagSecondary != 0 {
			continue
		}
		mapped++
		if gotRev := flag&samfmt.FlagRevComp != 0; gotRev != tr.RevComp {
			t.Errorf("read %s: strand %v, ground truth %v", f[0], gotRev, tr.RevComp)
		}
		pos, err := strconv.Atoi(f[3])
		if err != nil || pos < 1 {
			t.Fatalf("bad POS in %q", line)
		}
		// The candidate region is anchored by the chain's first minimizer
		// hit; allow the 100 bp flank plus indel drift.
		if d := pos - 1 - tr.Pos; d < -150 || d > 150 {
			t.Errorf("read %s: POS %d vs ground-truth origin %d (drift %d)", f[0], pos-1, tr.Pos, d)
		}
		// NM must agree with both the reported distance and the CIGAR.
		cg, err := cigar.Parse(f[5])
		if err != nil {
			t.Fatalf("read %s: CIGAR %q: %v", f[0], f[5], err)
		}
		nm := -1
		for _, tag := range f[11:] {
			if v, ok := strings.CutPrefix(tag, "NM:i:"); ok {
				nm, err = strconv.Atoi(v)
				if err != nil {
					t.Fatalf("read %s: bad NM tag %q", f[0], tag)
				}
			}
		}
		if nm != cg.EditCost() {
			t.Errorf("read %s: NM %d != CIGAR edit cost %d", f[0], nm, cg.EditCost())
		}
		if got := cg.QueryLen(); got != len(f[9]) {
			t.Errorf("read %s: CIGAR consumes %d query bases, SEQ has %d", f[0], got, len(f[9]))
		}
	}
	if mapped+unmapped != len(truth) {
		t.Fatalf("%d primary + %d unmapped records for %d reads", mapped, unmapped, len(truth))
	}
	if mapped < len(truth)*8/10 {
		t.Fatalf("only %d/%d reads mapped", mapped, len(truth))
	}
}

// TestUnmappedReadGetsFlag4 feeds one read from a foreign genome: it must
// surface exactly once, as an unmapped FLAG 4 record with starred fields.
func TestUnmappedReadGetsFlag4(t *testing.T) {
	dir := t.TempDir()
	refPath, _, _, _ := writeTestData(t, dir, 2, 1200, 11)
	foreign := genasm.GenerateGenome(60_000, 99)
	fqPath := filepath.Join(dir, "foreign.fastq")
	body := fmt.Sprintf("@alien\n%s\n+\n%s\n", foreign[10_000:10_400], strings.Repeat("I", 400))
	if err := os.WriteFile(fqPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	out := mapToString(t, testOptions(refPath, fqPath, "sam"))
	var recs []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "@") {
			recs = append(recs, line)
		}
	}
	if len(recs) != 1 {
		t.Fatalf("%d records for one foreign read:\n%s", len(recs), out)
	}
	f := strings.Split(recs[0], "\t")
	if f[0] != "alien" || f[1] != "4" || f[2] != "*" || f[3] != "0" || f[5] != "*" {
		t.Fatalf("unmapped record %q", recs[0])
	}
	// PAF has no unmapped representation: the same input yields no records.
	pafOut := mapToString(t, testOptions(refPath, fqPath, "paf"))
	if strings.TrimSpace(pafOut) != "" {
		t.Fatalf("PAF emitted %q for an unmapped read", pafOut)
	}
}

// TestAllCandidatesEmitsSecondary checks -all produces secondary (0x100)
// records on a repeat-rich genome.
func TestAllCandidatesEmitsSecondary(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir, 12, 1200, 31)
	o := testOptions(refPath, fqPath, "sam")
	o.all = true
	out := mapToString(t, o)
	secondary := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&samfmt.FlagSecondary != 0 {
			secondary++
			if f[4] != "0" {
				t.Fatalf("secondary record with MAPQ %s: %q", f[4], line)
			}
		}
	}
	if secondary == 0 {
		t.Fatal("-all emitted no secondary records on a repeat-rich genome")
	}
}

// TestBackendsAgree pins backend equivalence end-to-end: the GPU
// backend and the multi(cpu,gpu) sharding composite must emit SAM
// byte-identical to the CPU backend's.
func TestBackendsAgree(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir, 6, 800, 41)
	cpuOpts := testOptions(refPath, fqPath, "sam")
	cpu := mapToString(t, cpuOpts)
	for _, backend := range []string{"gpu", "multi(cpu,gpu)"} {
		o := cpuOpts
		o.backend = backend
		if got := mapToString(t, o); got != cpu {
			t.Fatalf("backend %s emitted SAM different from cpu", backend)
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir, 2, 800, 11)
	bad := []options{
		func() options { o := testOptions(refPath, fqPath, "bam"); return o }(),
		func() options { o := testOptions(refPath, fqPath, "sam"); o.backend = "tpu"; return o }(),
		func() options { o := testOptions(refPath, fqPath, "sam"); o.algo = "nope"; return o }(),
		func() options { o := testOptions(filepath.Join(dir, "missing.fa"), fqPath, "sam"); return o }(),
		func() options { o := testOptions(refPath, filepath.Join(dir, "missing.fq"), "sam"); return o }(),
	}
	for i, o := range bad {
		if err := run(context.Background(), o, new(bytes.Buffer), io.Discard); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

// TestMaxQuerySkipsReads: reads over the -max-query guardrail are
// skipped with a stderr warning — they cost neither the run nor the
// other reads' records, and they get no unmapped record either.
func TestMaxQuerySkipsReads(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, truth, _ := writeTestData(t, dir, 4, 1200, 11)
	o := testOptions(refPath, fqPath, "sam")
	o.maxQuery = 10 // every simulated read is far longer
	var out, warns bytes.Buffer
	if err := run(context.Background(), o, &out, &warns); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "@") {
			t.Fatalf("skipped read still produced record %q", line)
		}
	}
	if got := strings.Count(warns.String(), "skipping read"); got != len(truth) {
		t.Fatalf("%d skip warnings for %d reads:\n%s", got, len(truth), warns.String())
	}
}

// TestMultiRefSinglePrimary: a read mapping on several reference
// sequences keeps exactly one primary record; later sequences' hits are
// demoted to secondary (FLAG 0x100, MAPQ 0).
func TestMultiRefSinglePrimary(t *testing.T) {
	dir := t.TempDir()
	ref := genasm.GenerateGenome(40_000, 5)
	refPath := filepath.Join(dir, "multi.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	// Two near-identical contigs: every read from one maps on both.
	if err := genome.WriteFASTA(rf, []genome.Record{
		{Name: "ctgA", Seq: ref},
		{Name: "ctgB", Seq: ref},
	}); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	reads, err := genasm.SimulateLongReads(ref, 5, 1000, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	var fq bytes.Buffer
	for _, r := range reads {
		fmt.Fprintf(&fq, "@%s\n%s\n+\n%s\n", r.Name, r.Seq, r.Qual)
	}
	fqPath := filepath.Join(dir, "reads.fastq")
	if err := os.WriteFile(fqPath, fq.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := mapToString(t, testOptions(refPath, fqPath, "sam"))
	primaries := map[string]int{}
	secondaries := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		flag, _ := strconv.Atoi(f[1])
		if flag&(samfmt.FlagUnmapped|samfmt.FlagSecondary) == 0 {
			primaries[f[0]]++
		}
		if flag&samfmt.FlagSecondary != 0 {
			secondaries++
			if f[4] != "0" {
				t.Fatalf("secondary record with MAPQ %s: %q", f[4], line)
			}
		}
	}
	for name, n := range primaries {
		if n != 1 {
			t.Errorf("read %s has %d primary records", name, n)
		}
	}
	if secondaries == 0 {
		t.Fatal("duplicate contigs produced no secondary records")
	}
}
