// Command genasm-map is the end-to-end read mapper: FASTA reference plus
// FASTA/FASTQ reads in, standard SAM (default) or PAF out, so the
// pipeline's results feed samtools/paftools and compare directly against
// conventional mappers.
//
// Reads stream through the genasm.Engine map-align pipeline (candidate
// location by minimizer chaining, then alignment on the selected backend
// and algorithm); records are emitted in input order and the output file
// is written atomically, so an interrupted or failed run never leaves a
// truncated SAM behind.
//
//	genasm-map -ref chr1.fa -reads reads.fastq -out reads.sam
//	genasm-map -ref chr1.fa -reads reads.fastq -format paf -algo edlib -backend cpu
//
// SAM records carry FLAG (0x4 unmapped, 0x10 reverse strand, 0x100
// secondary with -all), 1-based POS, a chain-score MAPQ, the extended
// (=/X/I/D) CIGAR, and NM/AS tags. Reads that map to no reference
// sequence appear once as FLAG 4 records (SAM only; PAF has no unmapped
// representation). With a multi-sequence reference every sequence gets
// an @SQ line and reads are mapped against each sequence independently;
// a read that maps on several sequences keeps one primary record (its
// first mapping sequence, in reference order) and is flagged secondary
// elsewhere. Reads the pipeline rejects (e.g. over -max-query) are
// skipped with a warning on stderr rather than failing the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"genasm"
	"genasm/internal/cliutil"
	"genasm/internal/genome"
	"genasm/internal/readsim"
	"genasm/internal/samfmt"
)

// version labels the @PG header line of emitted SAM.
const version = "0.3.0"

// options collects every flag so the whole mapping path is testable.
type options struct {
	refPath   string
	readsPath string
	outPath   string
	format    string
	algo      string
	backend   string
	threads   int
	maxQuery  int
	all       bool
	// commandLine is recorded in the SAM @PG CL field; main derives it
	// from the real arguments, tests pin it for golden stability.
	commandLine string
}

func defaultOptions() options {
	return options{outPath: "-", format: "sam", algo: "genasm", backend: "cpu"}
}

func main() {
	o := defaultOptions()
	flag.StringVar(&o.refPath, "ref", "", "reference FASTA (required)")
	flag.StringVar(&o.readsPath, "reads", "", "reads FASTA/FASTQ (required)")
	flag.StringVar(&o.outPath, "out", o.outPath, "output path (- = stdout), written atomically")
	flag.StringVar(&o.format, "format", o.format, "output format: sam | paf")
	flag.StringVar(&o.algo, "algo", o.algo, "algorithm: genasm | genasm-unimproved | edlib | ksw2 | swg")
	flag.StringVar(&o.backend, "backend", o.backend, genasm.BackendUsage())
	flag.IntVar(&o.threads, "threads", 0, "worker threads (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQuery, "max-query", 0, "skip reads longer than this with a warning (0 = unlimited)")
	flag.BoolVar(&o.all, "all", false, "align every candidate location (secondary records), not just the best")
	flag.Parse()
	if o.refPath == "" || o.readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	o.commandLine = "genasm-map " + strings.Join(os.Args[1:], " ")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := cliutil.WriteAtomic(o.outPath, func(out io.Writer) error {
		return run(ctx, o, out, os.Stderr)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "genasm-map:", err)
		os.Exit(1)
	}
}

// engineOptions translates the flags into genasm Engine options for one
// reference's mapper. The backend name is resolved by NewEngine through
// the registry; an unknown name fails there with every valid name in
// the error.
func (o options) engineOptions(mapper *genasm.Mapper) []genasm.Option {
	opts := []genasm.Option{
		genasm.WithAlgorithm(genasm.Algorithm(o.algo)),
		genasm.WithBackendName(o.backend),
		genasm.WithMapper(mapper),
		genasm.WithAllCandidates(o.all),
	}
	if o.threads > 0 {
		opts = append(opts, genasm.WithThreads(o.threads))
	}
	if o.maxQuery > 0 {
		opts = append(opts, genasm.WithMaxQueryLen(o.maxQuery))
	}
	return opts
}

// run executes the full mapping pipeline against out, warning about
// skipped reads on logw. It is the whole CLI minus flag parsing and
// atomic-file plumbing, so tests drive it directly.
func run(ctx context.Context, o options, out, logw io.Writer) error {
	// Early returns (a per-read error mid-stream) must tear down the
	// MapAlign pipeline rather than leak its goroutines.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	format, err := samfmt.ParseFormat(o.format)
	if err != nil {
		return err
	}
	refFile, err := os.Open(o.refPath)
	if err != nil {
		return err
	}
	refs, err := genome.ReadFASTA(refFile)
	refFile.Close()
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no sequences in %s", o.refPath)
	}
	reads, err := readsim.LoadReadsFile(o.readsPath)
	if err != nil {
		return err
	}
	in := make([]genasm.Read, len(reads))
	for i, rd := range reads {
		in[i] = genasm.Read{Name: rd.Name, Seq: rd.Seq, Qual: rd.Qual}
	}

	samRefs := make([]samfmt.Ref, len(refs))
	for i, r := range refs {
		samRefs[i] = samfmt.Ref{Name: r.Name, Length: len(r.Seq)}
	}
	w := samfmt.NewWriter(out, format, samRefs, samfmt.Program{
		Name: "genasm-map", Version: version, CommandLine: o.commandLine,
	})

	// mappedAny tracks which reads produced at least one record across
	// every reference sequence; reads that mapped nowhere are emitted
	// once as FLAG 4 records after the last pass (SAM only). Reads the
	// pipeline rejects (e.g. over -max-query) are skipped with a warning
	// — a per-read problem never costs the rest of the run its output.
	mappedAny := make([]bool, len(in))
	skipped := make([]bool, len(in))
	for ri, ref := range refs {
		mapper, err := genasm.NewMapper(ref.Seq)
		if err != nil {
			return err
		}
		eng, err := genasm.NewEngine(o.engineOptions(mapper)...)
		if err != nil {
			return err
		}
		mals, err := eng.MapAlign(ctx, genasm.StreamReads(in))
		if err != nil {
			return err
		}
		for m := range mals {
			if m.Err != nil {
				if err := ctx.Err(); err != nil {
					return err // cancelled: the per-read error is just its echo
				}
				if !skipped[m.ReadIndex] {
					skipped[m.ReadIndex] = true
					fmt.Fprintf(logw, "genasm-map: skipping read %q: %v\n", m.Read.Name, m.Err)
				}
				continue
			}
			if m.Unmapped {
				continue
			}
			// SAM permits one primary record per read: if an earlier
			// reference sequence already produced it, this sequence's
			// best hit is demoted to secondary (Rank > 0 renders as FLAG
			// 0x100 with MAPQ 0).
			if mappedAny[m.ReadIndex] && m.Rank == 0 {
				m.Rank = 1
			}
			if err := w.Write(samRefs[ri], m); err != nil {
				return err
			}
			mappedAny[m.ReadIndex] = true
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if format == samfmt.SAM {
		for i, rd := range in {
			if mappedAny[i] || skipped[i] {
				continue
			}
			if err := w.Write(samfmt.Ref{}, genasm.MappedAlignment{ReadIndex: i, Read: rd, Unmapped: true}); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}
