// Command readsim simulates long or short reads from a FASTA reference (or
// from a freshly generated synthetic genome) with the PBSIM2-like error
// model, writing FASTQ with ground-truth read names
// (read_<i>_<pos>_<span>_<strand>).
package main

import (
	"flag"
	"fmt"
	"os"

	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (omit to generate a synthetic genome)")
		genomeLen = flag.Int("genome", 1_000_000, "synthetic genome length when -ref is omitted")
		n         = flag.Int("n", 500, "number of reads")
		meanLen   = flag.Int("len", 10_000, "mean read length")
		errRate   = flag.Float64("error", 0.10, "mean error rate")
		profile   = flag.String("profile", "pacbio", "error profile: pacbio | illumina")
		seed      = flag.Int64("seed", 1, "random seed")
		outPath   = flag.String("out", "-", "output FASTQ (- = stdout)")
		refOut    = flag.String("ref-out", "", "also write the (possibly generated) reference FASTA here")
	)
	flag.Parse()

	var ref genome.Record
	if *refPath != "" {
		f, err := os.Open(*refPath)
		die(err)
		recs, err := genome.ReadFASTA(f)
		f.Close()
		die(err)
		if len(recs) == 0 {
			die(fmt.Errorf("no sequences in %s", *refPath))
		}
		ref = recs[0]
	} else {
		cfg := genome.DefaultConfig(*genomeLen)
		cfg.Seed = *seed
		ref = genome.Generate(cfg)
	}
	if *refOut != "" {
		f, err := os.Create(*refOut)
		die(err)
		die(genome.WriteFASTA(f, []genome.Record{ref}))
		die(f.Close())
	}

	var prof readsim.Profile
	switch *profile {
	case "pacbio":
		prof = readsim.PacBioCLR()
	case "illumina":
		prof = readsim.Illumina()
	default:
		die(fmt.Errorf("unknown profile %q", *profile))
	}
	prof.MeanLength = *meanLen
	if *profile == "pacbio" {
		prof.LengthSD = *meanLen / 10
	}
	prof.ErrorRate = *errRate

	reads, err := readsim.Simulate(ref.Seq, *n, prof, *seed)
	die(err)

	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		die(err)
		defer f.Close()
		out = f
	}
	die(readsim.WriteFASTQ(out, reads))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}
