// Command readsim simulates long or short reads from a FASTA reference (or
// from a freshly generated synthetic genome) with the PBSIM2-like error
// model, writing FASTQ with ground-truth read names
// (read_<i>_<pos>_<span>_<strand>).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genasm/internal/cliutil"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

// options collects every flag so the whole CLI path is testable.
type options struct {
	refPath   string
	genomeLen int
	n         int
	meanLen   int
	errRate   float64
	profile   string
	seed      int64
	refOut    string
}

func defaultOptions() options {
	return options{
		genomeLen: 1_000_000,
		n:         500,
		meanLen:   10_000,
		errRate:   0.10,
		profile:   "pacbio",
		seed:      1,
	}
}

func main() {
	o := defaultOptions()
	outPath := flag.String("out", "-", "output FASTQ (- = stdout)")
	flag.StringVar(&o.refPath, "ref", "", "reference FASTA (omit to generate a synthetic genome)")
	flag.IntVar(&o.genomeLen, "genome", o.genomeLen, "synthetic genome length when -ref is omitted")
	flag.IntVar(&o.n, "n", o.n, "number of reads")
	flag.IntVar(&o.meanLen, "len", o.meanLen, "mean read length")
	flag.Float64Var(&o.errRate, "error", o.errRate, "mean error rate")
	flag.StringVar(&o.profile, "profile", o.profile, "error profile: pacbio | illumina")
	flag.Int64Var(&o.seed, "seed", o.seed, "random seed")
	flag.StringVar(&o.refOut, "ref-out", "", "also write the (possibly generated) reference FASTA here")
	flag.Parse()

	die(cliutil.WriteAtomic(*outPath, func(out io.Writer) error {
		return run(o, out)
	}))
}

// run executes the simulation pipeline; factored out of main so the whole
// CLI path is testable.
func run(o options, out io.Writer) error {
	var ref genome.Record
	if o.refPath != "" {
		f, err := os.Open(o.refPath)
		if err != nil {
			return err
		}
		recs, err := genome.ReadFASTA(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("no sequences in %s", o.refPath)
		}
		ref = recs[0]
	} else {
		cfg := genome.DefaultConfig(o.genomeLen)
		cfg.Seed = o.seed
		ref = genome.Generate(cfg)
	}
	if o.refOut != "" {
		f, err := os.Create(o.refOut)
		if err != nil {
			return err
		}
		if err := genome.WriteFASTA(f, []genome.Record{ref}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var prof readsim.Profile
	switch o.profile {
	case "pacbio":
		prof = readsim.PacBioCLR()
		prof.LengthSD = o.meanLen / 10
	case "illumina":
		prof = readsim.Illumina()
	default:
		return fmt.Errorf("unknown profile %q", o.profile)
	}
	prof.MeanLength = o.meanLen
	prof.ErrorRate = o.errRate

	reads, err := readsim.Simulate(ref.Seq, o.n, prof, o.seed)
	if err != nil {
		return err
	}
	return readsim.WriteFASTQ(out, reads)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}
