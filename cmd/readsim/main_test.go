package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genasm/internal/genome"
	"genasm/internal/readsim"
)

// simulate runs the CLI path with small, fast parameters.
func simulate(t *testing.T, mutate func(*options)) ([]readsim.Read, string) {
	t.Helper()
	o := defaultOptions()
	o.genomeLen = 60_000
	o.n = 12
	o.meanLen = 1000
	mutate(&o)
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.ReadFASTQ(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("output is not parseable FASTQ: %v", err)
	}
	return reads, out.String()
}

// TestRunSyntheticGenomeGolden: without -ref a genome is generated and
// the FASTQ output round-trips with ground-truth names.
func TestRunSyntheticGenomeGolden(t *testing.T) {
	reads, raw := simulate(t, func(o *options) {})
	if len(reads) != 12 {
		t.Fatalf("%d reads, want 12", len(reads))
	}
	for _, r := range reads {
		if !strings.HasPrefix(r.Name, "read_") {
			t.Fatalf("read name %q lacks ground-truth prefix", r.Name)
		}
		if len(r.Seq) == 0 || len(r.Seq) != len(r.Qual) {
			t.Fatalf("read %s: seq %d qual %d", r.Name, len(r.Seq), len(r.Qual))
		}
	}
	// Deterministic for a fixed seed.
	_, raw2 := simulate(t, func(o *options) {})
	if raw != raw2 {
		t.Fatal("same seed produced different output")
	}
	// Different seed, different output.
	_, raw3 := simulate(t, func(o *options) { o.seed = 99 })
	if raw == raw3 {
		t.Fatal("different seed produced identical output")
	}
}

func TestRunIlluminaProfile(t *testing.T) {
	reads, _ := simulate(t, func(o *options) {
		o.profile = "illumina"
		o.meanLen = 150
		o.errRate = 0.02
	})
	for _, r := range reads {
		if len(r.Seq) > 400 {
			t.Fatalf("illumina read of %d bp", len(r.Seq))
		}
	}
}

func TestRunFromReferenceAndRefOut(t *testing.T) {
	dir := t.TempDir()
	cfg := genome.DefaultConfig(50_000)
	cfg.Seed = 7
	rec := genome.Generate(cfg)
	refPath := filepath.Join(dir, "ref.fa")
	f, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(f, []genome.Record{rec}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	refOut := filepath.Join(dir, "echo.fa")
	reads, _ := simulate(t, func(o *options) {
		o.refPath = refPath
		o.refOut = refOut
	})
	if len(reads) != 12 {
		t.Fatalf("%d reads", len(reads))
	}
	ef, err := os.Open(refOut)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	echoed, err := genome.ReadFASTA(ef)
	if err != nil {
		t.Fatal(err)
	}
	if len(echoed) != 1 || !bytes.Equal(echoed[0].Seq, rec.Seq) {
		t.Fatal("-ref-out did not echo the reference")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	o := defaultOptions()
	o.genomeLen = 10_000
	o.n = 2
	o.meanLen = 500
	o.profile = "nanopore"
	if err := run(o, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
	o = defaultOptions()
	o.refPath = filepath.Join(t.TempDir(), "missing.fa")
	if err := run(o, &out); err == nil {
		t.Fatal("missing reference accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.fa")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	o.refPath = empty
	if err := run(o, &out); err == nil {
		t.Fatal("empty reference accepted")
	}
}
