// Command genasm-eval reproduces the paper's full evaluation: it builds the
// workload (synthetic genome -> PBSIM2-like reads -> minimap2-like -P
// candidate locations) and prints one table per reported result:
//
//	E1  DP-table memory footprint      (paper: 24x reduction)
//	E2  DP-table memory accesses       (paper: 12x reduction)
//	E3  CPU aligner comparison         (paper: 15.2x KSW2, 1.7x Edlib, 1.9x unimproved)
//	E4  GPU (simulated A6000) vs CPU   (paper: 4.1x own CPU, 5.9x unimproved GPU, 62x KSW2, 7.2x Edlib)
//	A1  per-improvement ablation
//	A2  window geometry sweep
//	A3  short reads
//
// See EXPERIMENTS.md for paper-vs-measured discussion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"genasm"
	"genasm/internal/eval"
)

func main() {
	var (
		genomeLen = flag.Int("genome", 2_000_000, "synthetic genome length (bp)")
		reads     = flag.Int("reads", 100, "number of simulated long reads (paper: 500)")
		readLen   = flag.Int("readlen", 10_000, "mean read length (paper: 10kb)")
		errRate   = flag.Float64("error", 0.10, "mean read error rate")
		seed      = flag.Int64("seed", 7, "workload seed")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "CPU threads for E3/A1-A3")
		backend   = flag.String("backend", "multi(cpu,gpu)",
			"engine backend for E5, any registered name: "+strings.Join(genasm.Backends(), " | "))
		maxPairs = flag.Int("max-pairs", 0, "cap candidate pairs (0 = all)")
		quick    = flag.Bool("quick", false, "small workload for a fast smoke run")
		withSWG  = flag.Bool("swg", false, "include the quadratic SWG reference in E3 (slow)")
		skipSlow = flag.Bool("skip-ablations", false, "skip A1-A3")
	)
	flag.Parse()

	// Interrupts cancel the in-flight experiment instead of killing the
	// process mid-table; once cancelled, the handler is released so a
	// second Ctrl-C terminates immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	cfg := eval.WorkloadConfig{GenomeLen: *genomeLen, Reads: *reads, ReadLen: *readLen,
		ErrorRate: *errRate, Seed: *seed, MaxPairs: *maxPairs}
	if *quick {
		cfg = eval.QuickWorkload()
	}

	fmt.Printf("building workload: %d bp genome, %d reads of ~%d bp at %.0f%% error...\n",
		cfg.GenomeLen, cfg.Reads, cfg.ReadLen, 100*cfg.ErrorRate)
	w, err := eval.BuildWorkload(cfg)
	die(err)
	fmt.Printf("candidate pairs: %d (%d query bases)\n\n", len(w.Pairs), w.TotalBases)

	die(ctx.Err()) // ctx-unaware experiment: honour a pending interrupt here
	t1, err := eval.E1MemoryFootprint(w)
	die(err)
	fmt.Println(t1.Format())

	die(ctx.Err()) // ctx-unaware experiment: honour a pending interrupt here
	t2, err := eval.E2MemoryAccesses(w)
	die(err)
	fmt.Println(t2.Format())

	t3, times, err := eval.E3CPU(ctx, w, *threads, *withSWG)
	die(err)
	fmt.Println(t3.Format())

	t4, err := eval.E4GPU(ctx, w, times)
	die(err)
	fmt.Println(t4.Format())

	t5, err := eval.E5Backend(ctx, w, *backend, *threads)
	die(err)
	fmt.Println(t5.Format())

	if *skipSlow {
		return
	}
	a1, err := eval.A1Ablation(ctx, w, *threads)
	die(err)
	fmt.Println(a1.Format())

	a2, err := eval.A2WindowSweep(ctx, w, *threads)
	die(err)
	fmt.Println(a2.Format())

	a3, err := eval.A3ShortReads(ctx, *threads)
	die(err)
	fmt.Println(a3.Format())

	die(ctx.Err()) // ctx-unaware experiment: honour a pending interrupt here
	a4, err := eval.A4Accuracy(w)
	die(err)
	fmt.Println(a4.Format())

	die(ctx.Err()) // ctx-unaware experiment: honour a pending interrupt here
	a5, err := eval.A5OccupancySweep(w)
	die(err)
	fmt.Println(a5.Format())

	die(ctx.Err()) // ctx-unaware experiment: honour a pending interrupt here
	a6, err := eval.A6Devices(w)
	die(err)
	fmt.Println(a6.Format())

	a7, err := eval.A7ThreadScaling(ctx, w, *threads)
	die(err)
	fmt.Println(a7.Format())
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genasm-eval:", err)
		os.Exit(1)
	}
}
