package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"genasm/internal/genome"
	"genasm/internal/readsim"
)

// writeTestData materializes a genome and simulated reads as files.
func writeTestData(t *testing.T, dir string) (refPath, fqPath, faPath string, reads []readsim.Read) {
	t.Helper()
	cfg := genome.DefaultConfig(120_000)
	ref := genome.Generate(cfg)

	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(rf, []genome.Record{ref}); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	prof := readsim.PacBioCLR()
	prof.MeanLength, prof.LengthSD = 1500, 200
	reads, err = readsim.Simulate(ref.Seq, 8, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	fqPath = filepath.Join(dir, "reads.fastq")
	qf, err := os.Create(fqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := readsim.WriteFASTQ(qf, reads); err != nil {
		t.Fatal(err)
	}
	qf.Close()

	faPath = filepath.Join(dir, "reads.fa")
	ff, err := os.Create(faPath)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]genome.Record, len(reads))
	for i, r := range reads {
		recs[i] = genome.Record{Name: r.Name, Seq: r.Seq}
	}
	if err := genome.WriteFASTA(ff, recs); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	return refPath, fqPath, faPath, reads
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, reads := writeTestData(t, dir)

	var out bytes.Buffer
	if err := run(refPath, fqPath, "genasm", "cpu", false, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(reads) {
		t.Fatalf("%d output lines for %d reads", len(lines), len(reads))
	}
	mapped := 0
	for _, line := range lines {
		fields := strings.Split(line, "\t")
		if len(fields) == 4 && fields[3] == "unmapped" {
			continue
		}
		if len(fields) != 9 {
			t.Fatalf("malformed record %q", line)
		}
		dist, err := strconv.Atoi(fields[6])
		if err != nil || dist < 0 {
			t.Fatalf("bad distance in %q", line)
		}
		readLen, _ := strconv.Atoi(fields[1])
		if dist > readLen/3 {
			t.Fatalf("implausible distance %d for %d bp read", dist, readLen)
		}
		mapped++
	}
	if mapped < len(reads)-1 {
		t.Fatalf("only %d/%d reads mapped", mapped, len(reads))
	}
}

func TestRunFASTAReadsAndAllCandidates(t *testing.T) {
	dir := t.TempDir()
	refPath, _, faPath, reads := writeTestData(t, dir)
	var best, all bytes.Buffer
	if err := run(refPath, faPath, "edlib", "cpu", false, &best); err != nil {
		t.Fatal(err)
	}
	if err := run(refPath, faPath, "edlib", "cpu", true, &all); err != nil {
		t.Fatal(err)
	}
	nBest := strings.Count(best.String(), "\n")
	nAll := strings.Count(all.String(), "\n")
	if nAll < nBest || nBest < len(reads)-2 {
		t.Fatalf("best=%d all=%d reads=%d", nBest, nAll, len(reads))
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir)
	var out bytes.Buffer
	if err := run(refPath, fqPath, "not-an-algo", "cpu", false, &out); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run(filepath.Join(dir, "missing.fa"), fqPath, "genasm", "cpu", false, &out); err == nil {
		t.Fatal("accepted missing reference")
	}
	empty := filepath.Join(dir, "empty.fa")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, fqPath, "genasm", "cpu", false, &out); err == nil {
		t.Fatal("accepted empty reference")
	}
}

func TestLoadReadsFormats(t *testing.T) {
	dir := t.TempDir()
	_, fqPath, faPath, reads := writeTestData(t, dir)
	fq, err := readsim.LoadReadsFile(fqPath)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := readsim.LoadReadsFile(faPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fq) != len(reads) || len(fa) != len(reads) {
		t.Fatalf("fq=%d fa=%d want %d", len(fq), len(fa), len(reads))
	}
	if !bytes.Equal(fq[0].Seq, fa[0].Seq) {
		t.Fatal("formats disagree")
	}
	if _, err := readsim.LoadReadsFile(filepath.Join(dir, "nope.fq")); err == nil {
		t.Fatal("accepted missing reads file")
	}
}

// TestRunBackendSelection: any registered backend name resolves through
// the engine registry and produces identical records; an unknown name
// fails with the valid names listed.
func TestRunBackendSelection(t *testing.T) {
	dir := t.TempDir()
	refPath, fqPath, _, _ := writeTestData(t, dir)
	var cpu, gpu, multi bytes.Buffer
	if err := run(refPath, fqPath, "genasm", "cpu", false, &cpu); err != nil {
		t.Fatal(err)
	}
	if err := run(refPath, fqPath, "genasm", "gpu", false, &gpu); err != nil {
		t.Fatal(err)
	}
	if err := run(refPath, fqPath, "genasm", "multi(cpu,gpu)", false, &multi); err != nil {
		t.Fatal(err)
	}
	if cpu.String() != gpu.String() || cpu.String() != multi.String() {
		t.Fatal("backends emitted different records for the same input")
	}
	var out bytes.Buffer
	err := run(refPath, fqPath, "genasm", "tpu", false, &out)
	if err == nil {
		t.Fatal("accepted unknown backend")
	}
	for _, want := range []string{"tpu", "cpu", "gpu", "multi"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("backend error %q does not list %q", err, want)
		}
	}
}
