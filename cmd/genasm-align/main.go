// Command genasm-align maps and aligns reads against a reference: it finds
// candidate locations with minimizer chaining and aligns each read to its
// best candidate with the selected algorithm, emitting PAF-like records:
//
//	read  readLen  strand  refName  refStart  refEnd  distance  score  cigar
//
// Input formats: FASTA reference, FASTA or FASTQ reads.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"genasm"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTA/FASTQ (required)")
		algo      = flag.String("algo", "genasm", "algorithm: genasm | genasm-unimproved | edlib | ksw2 | swg")
		outPath   = flag.String("out", "-", "output path (- = stdout)")
		allCands  = flag.Bool("all", false, "report every candidate location, not just the best")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	out := os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		die(err)
		defer f.Close()
		out = f
	}
	die(run(*refPath, *readsPath, *algo, *allCands, out))
}

// run executes the map-and-align pipeline; factored out of main so the
// whole CLI path is testable.
func run(refPath, readsPath, algo string, allCands bool, out io.Writer) error {
	refFile, err := os.Open(refPath)
	if err != nil {
		return err
	}
	refs, err := genome.ReadFASTA(refFile)
	refFile.Close()
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no sequences in %s", refPath)
	}
	reads, err := loadReads(readsPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	aligner, err := genasm.New(genasm.Config{Algorithm: genasm.Algorithm(algo)})
	if err != nil {
		return err
	}
	for _, ref := range refs {
		mapper, err := genasm.NewMapper(ref.Seq)
		if err != nil {
			return err
		}
		for _, rd := range reads {
			cands := mapper.Candidates(rd.Seq)
			if len(cands) == 0 {
				fmt.Fprintf(w, "%s\t%d\t*\tunmapped\n", rd.Name, len(rd.Seq))
				continue
			}
			n := 1
			if allCands {
				n = len(cands)
			}
			for _, c := range cands[:n] {
				query := rd.Seq
				strand := "+"
				if c.RevComp {
					query = genasm.ReverseComplement(query)
					strand = "-"
				}
				res, err := aligner.Align(query, ref.Seq[c.Start:c.End])
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
					rd.Name, len(rd.Seq), strand, ref.Name,
					c.Start, c.Start+res.RefConsumed, res.Distance, res.Score, res.Cigar)
			}
		}
	}
	return w.Flush()
}

func loadReads(path string) ([]readsim.Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return readsim.ReadFASTQ(f)
	}
	recs, err := genome.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	reads := make([]readsim.Read, len(recs))
	for i, r := range recs {
		reads[i] = readsim.Read{Name: r.Name, Seq: r.Seq}
	}
	return reads, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genasm-align:", err)
		os.Exit(1)
	}
}
