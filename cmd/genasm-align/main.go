// Command genasm-align maps and aligns reads against a reference: it finds
// candidate locations with minimizer chaining and aligns each read to its
// best candidate with the selected algorithm, emitting PAF-like records:
//
//	read  readLen  strand  refName  refStart  refEnd  distance  score  cigar
//
// Input formats: FASTA reference, FASTA or FASTQ reads. Reads stream
// through the genasm.Engine map-align pipeline: alignment runs on all
// cores while records are emitted in input order, and an interrupt
// cancels the in-flight batch cleanly.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"genasm"
	"genasm/internal/cliutil"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (required)")
		readsPath = flag.String("reads", "", "reads FASTA/FASTQ (required)")
		algo      = flag.String("algo", "genasm", "algorithm: genasm | genasm-unimproved | edlib | ksw2 | swg")
		backend   = flag.String("backend", "cpu", genasm.BackendUsage())
		outPath   = flag.String("out", "-", "output path (- = stdout)")
		allCands  = flag.Bool("all", false, "report every candidate location, not just the best")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	die(cliutil.WriteAtomic(*outPath, func(out io.Writer) error {
		return runCtx(ctx, *refPath, *readsPath, *algo, *backend, *allCands, out)
	}))
}

// run executes the map-and-align pipeline; factored out of main so the
// whole CLI path is testable.
func run(refPath, readsPath, algo, backend string, allCands bool, out io.Writer) error {
	return runCtx(context.Background(), refPath, readsPath, algo, backend, allCands, out)
}

func runCtx(ctx context.Context, refPath, readsPath, algo, backend string, allCands bool, out io.Writer) error {
	// Early returns (a per-read error mid-stream) must tear down the
	// MapAlign pipeline rather than leak its goroutines.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	refFile, err := os.Open(refPath)
	if err != nil {
		return err
	}
	refs, err := genome.ReadFASTA(refFile)
	refFile.Close()
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no sequences in %s", refPath)
	}
	reads, err := readsim.LoadReadsFile(readsPath)
	if err != nil {
		return err
	}
	in := make([]genasm.Read, len(reads))
	for i, rd := range reads {
		in[i] = genasm.Read{Name: rd.Name, Seq: rd.Seq}
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	for _, ref := range refs {
		mapper, err := genasm.NewMapper(ref.Seq)
		if err != nil {
			return err
		}
		eng, err := genasm.NewEngine(
			genasm.WithAlgorithm(genasm.Algorithm(algo)),
			genasm.WithBackendName(backend),
			genasm.WithMapper(mapper),
			genasm.WithAllCandidates(allCands),
		)
		if err != nil {
			return err
		}
		mals, err := eng.MapAlign(ctx, genasm.StreamReads(in))
		if err != nil {
			return err
		}
		for m := range mals {
			if m.Err != nil {
				return m.Err
			}
			if m.Unmapped {
				fmt.Fprintf(w, "%s\t%d\t*\tunmapped\n", m.Read.Name, len(m.Read.Seq))
				continue
			}
			strand := "+"
			if m.Candidate.RevComp {
				strand = "-"
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
				m.Read.Name, len(m.Read.Seq), strand, ref.Name,
				m.Candidate.Start, m.Candidate.Start+m.Result.RefConsumed,
				m.Result.Distance, m.Result.Score, m.Result.Cigar)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return w.Flush()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genasm-align:", err)
		os.Exit(1)
	}
}
