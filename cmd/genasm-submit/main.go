// Command genasm-submit is the bulk-lane client for genasm-serve:
// submit a FASTA/FASTQ read set as an asynchronous job (POST /jobs),
// poll it to completion with progress on stderr, and download the
// finished SAM/PAF/JSON result to an atomically written output file.
//
//	genasm-submit -server http://localhost:8080 -ref chr1 \
//	    -reads reads.fastq -format sam -out reads.sam
//
// The job survives this client: interrupting genasm-submit cancels the
// job by default (-cancel-on-interrupt=false leaves it running, to be
// picked up later with plain curl against /jobs/{id}). With -no-wait
// the job ID is printed on stdout and the command returns immediately
// after submission.
//
// See docs/API.md for the /jobs endpoints and docs/OPERATIONS.md for
// how the bulk lane is deployed and sized.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genasm/internal/cliutil"
)

// options collects every flag so the whole submit path is testable.
type options struct {
	server            string
	ref               string
	readsPath         string
	format            string
	all               bool
	out               string
	poll              time.Duration
	timeout           time.Duration
	noWait            bool
	cancelOnInterrupt bool
}

func defaultOptions() options {
	return options{
		format:            "sam",
		out:               "-",
		poll:              500 * time.Millisecond,
		cancelOnInterrupt: true,
	}
}

// jobSnapshot mirrors the server's jobs.Snapshot wire shape (decoded
// loosely: only the fields the client acts on).
type jobSnapshot struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Error       string `json:"error"`
	ReadsTotal  int64  `json:"reads_total"`
	ReadsDone   int64  `json:"reads_done"`
	ReadsFailed int64  `json:"reads_failed"`
	ResultBytes int64  `json:"result_bytes"`
}

func main() {
	o := defaultOptions()
	flag.StringVar(&o.server, "server", "", "genasm-serve base URL, e.g. http://localhost:8080 (required)")
	flag.StringVar(&o.ref, "ref", "", "registered reference name to map against (required)")
	flag.StringVar(&o.readsPath, "reads", "", "reads FASTA/FASTQ file to submit (required)")
	flag.StringVar(&o.format, "format", o.format, "result format: sam | paf | json")
	flag.BoolVar(&o.all, "all", false, "align every candidate location, not just the best")
	flag.StringVar(&o.out, "out", o.out, "result output path (- = stdout), written atomically")
	flag.DurationVar(&o.poll, "poll", o.poll, "poll interval while waiting for the job")
	flag.DurationVar(&o.timeout, "timeout", 0, "give up waiting after this long (0 = wait forever)")
	flag.BoolVar(&o.noWait, "no-wait", false, "submit only: print the job ID on stdout and exit")
	flag.BoolVar(&o.cancelOnInterrupt, "cancel-on-interrupt", o.cancelOnInterrupt,
		"DELETE the job when interrupted while waiting")
	flag.Parse()
	if o.server == "" || o.ref == "" || o.readsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "genasm-submit:", err)
		os.Exit(1)
	}
}

// run submits, polls and fetches. stdout receives the job ID (-no-wait)
// or the result itself (-out -); logw carries progress lines. It is the
// whole CLI minus flag parsing, so tests drive it directly.
func run(ctx context.Context, o options, stdout io.Writer, logw io.Writer) error {
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	base := strings.TrimSuffix(o.server, "/")
	client := &http.Client{}

	snap, err := submit(ctx, client, base, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "genasm-submit: job %s %s (ref=%s, format=%s)\n",
		snap.ID, snap.State, o.ref, o.format)
	if o.noWait {
		fmt.Fprintln(stdout, snap.ID)
		return nil
	}

	snap, err = poll(ctx, client, base, snap.ID, o.poll, logw)
	if err != nil {
		if o.cancelOnInterrupt && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Best effort, on a fresh context: ours is already dead.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if derr := cancelJob(cctx, client, base, snap.ID); derr == nil {
				return fmt.Errorf("interrupted; job %s canceled", snap.ID)
			}
			return fmt.Errorf("interrupted; job %s could not be canceled and may still be running", snap.ID)
		}
		return err
	}
	switch snap.State {
	case "done":
	case "failed", "canceled":
		return fmt.Errorf("job %s %s: %s", snap.ID, snap.State, snap.Error)
	default:
		return fmt.Errorf("job %s in unexpected state %q", snap.ID, snap.State)
	}

	if err := fetch(ctx, client, base, snap.ID, o.out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(logw, "genasm-submit: job %s done: %d/%d reads (%d skipped), %d result bytes -> %s\n",
		snap.ID, snap.ReadsDone, snap.ReadsTotal, snap.ReadsFailed, snap.ResultBytes, o.out)
	return nil
}

// submit POSTs the reads file as a job and decodes the 202 snapshot.
func submit(ctx context.Context, client *http.Client, base string, o options) (jobSnapshot, error) {
	f, err := os.Open(o.readsPath)
	if err != nil {
		return jobSnapshot{}, err
	}
	defer f.Close()
	u := fmt.Sprintf("%s/jobs?ref=%s&format=%s", base,
		url.QueryEscape(o.ref), url.QueryEscape(o.format))
	if o.all {
		u += "&all=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, f)
	if err != nil {
		return jobSnapshot{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var snap jobSnapshot
	if err := doJSON(client, req, http.StatusAccepted, &snap); err != nil {
		return jobSnapshot{}, fmt.Errorf("submitting job: %w", err)
	}
	if snap.ID == "" {
		return jobSnapshot{}, errors.New("server accepted the job but returned no ID")
	}
	return snap, nil
}

// poll GETs the job until it reaches a terminal state, logging progress
// transitions on logw.
func poll(ctx context.Context, client *http.Client, base, id string, every time.Duration, logw io.Writer) (jobSnapshot, error) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastDone int64 = -1
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
		if err != nil {
			return jobSnapshot{ID: id}, err
		}
		var snap jobSnapshot
		if err := doJSON(client, req, http.StatusOK, &snap); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return jobSnapshot{ID: id}, cerr
			}
			return jobSnapshot{ID: id}, fmt.Errorf("polling job %s: %w", id, err)
		}
		switch snap.State {
		case "done", "failed", "canceled":
			return snap, nil
		}
		if snap.ReadsDone != lastDone && snap.ReadsTotal > 0 {
			lastDone = snap.ReadsDone
			fmt.Fprintf(logw, "genasm-submit: job %s %s: %d/%d reads\n",
				id, snap.State, snap.ReadsDone, snap.ReadsTotal)
		}
		select {
		case <-ctx.Done():
			return jobSnapshot{ID: id}, ctx.Err()
		case <-t.C:
		}
	}
}

// fetch downloads the result, writing it atomically to outPath.
func fetch(ctx context.Context, client *http.Client, base, id, outPath string, stdout io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("downloading result: %s", readError(resp))
	}
	if outPath == "-" {
		_, err := io.Copy(stdout, resp.Body)
		return err
	}
	return cliutil.WriteAtomic(outPath, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	})
}

// cancelJob best-effort DELETEs the job.
func cancelJob(ctx context.Context, client *http.Client, base, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("cancel: status %d", resp.StatusCode)
	}
	return nil
}

// doJSON executes req, requires wantStatus, and decodes the body into v.
func doJSON(client *http.Client, req *http.Request, wantStatus int, v any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return errors.New(readError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// readError renders a non-2xx response ({"error": "..."} or raw body)
// as a one-line message.
func readError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}
