package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"genasm"
	"genasm/server"
	"genasm/server/jobs"
)

// startServer boots a real server.Server with the bulk lane enabled and
// one registered reference, returning its base URL and the simulated
// reads written to a FASTQ file.
func startServer(t *testing.T) (base string, readsPath string, nReads int) {
	t.Helper()
	srv, err := server.New(server.Config{
		Scheduler: server.SchedulerConfig{MaxDelay: time.Millisecond},
		Jobs: jobs.Config{
			Dir:        filepath.Join(t.TempDir(), "spool"),
			Workers:    1,
			DrainGrace: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := genasm.GenerateGenome(60_000, 91)
	if _, err := srv.Registry().Add("chr", ref); err != nil {
		t.Fatal(err)
	}
	reads, err := genasm.SimulateLongReads(ref, 6, 500, 0.08, 92)
	if err != nil {
		t.Fatal(err)
	}
	var fastq strings.Builder
	for _, rd := range reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", rd.Name, rd.Seq, rd.Qual)
	}
	readsPath = filepath.Join(t.TempDir(), "reads.fastq")
	if err := os.WriteFile(readsPath, []byte(fastq.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL, readsPath, len(reads)
}

// TestSubmitPollFetch drives the whole CLI path: submit, poll to done,
// download, atomic output file.
func TestSubmitPollFetch(t *testing.T) {
	base, readsPath, _ := startServer(t)
	outPath := filepath.Join(t.TempDir(), "out.sam")
	o := defaultOptions()
	o.server = base
	o.ref = "chr"
	o.readsPath = readsPath
	o.out = outPath
	o.poll = 10 * time.Millisecond

	var stdout, logs bytes.Buffer
	if err := run(context.Background(), o, &stdout, &logs); err != nil {
		t.Fatalf("run: %v (log %s)", err, logs.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "@HD\tVN:1.6") {
		t.Fatalf("output is not SAM: %q...", data[:min(len(data), 60)])
	}
	if !strings.Contains(logs.String(), "done") {
		t.Fatalf("log %q lacks completion line", logs.String())
	}
}

// TestSubmitToStdout: -out - streams the result to stdout.
func TestSubmitToStdout(t *testing.T) {
	base, readsPath, _ := startServer(t)
	o := defaultOptions()
	o.server = base
	o.ref = "chr"
	o.readsPath = readsPath
	o.format = "paf"
	o.poll = 10 * time.Millisecond

	var stdout, logs bytes.Buffer
	if err := run(context.Background(), o, &stdout, &logs); err != nil {
		t.Fatalf("run: %v (log %s)", err, logs.String())
	}
	if stdout.Len() == 0 || strings.HasPrefix(stdout.String(), "@HD") {
		t.Fatalf("stdout %q is not PAF", stdout.String()[:min(stdout.Len(), 60)])
	}
}

// TestSubmitNoWait prints the job ID and returns without polling.
func TestSubmitNoWait(t *testing.T) {
	base, readsPath, _ := startServer(t)
	o := defaultOptions()
	o.server = base
	o.ref = "chr"
	o.readsPath = readsPath
	o.noWait = true

	var stdout, logs bytes.Buffer
	if err := run(context.Background(), o, &stdout, &logs); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(stdout.String())
	if len(id) != 12 {
		t.Fatalf("stdout %q is not a job ID", stdout.String())
	}
}

// TestSubmitErrors: server-side rejections surface as useful errors,
// and a failing run never creates the output file.
func TestSubmitErrors(t *testing.T) {
	base, readsPath, _ := startServer(t)
	outPath := filepath.Join(t.TempDir(), "out.sam")

	o := defaultOptions()
	o.server = base
	o.ref = "ghost"
	o.readsPath = readsPath
	o.out = outPath
	var stdout, logs bytes.Buffer
	err := run(context.Background(), o, &stdout, &logs)
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unknown ref error %v", err)
	}
	if _, statErr := os.Stat(outPath); !os.IsNotExist(statErr) {
		t.Fatalf("failed run created output: %v", statErr)
	}

	o.ref = "chr"
	o.readsPath = filepath.Join(t.TempDir(), "missing.fastq")
	if err := run(context.Background(), o, &stdout, &logs); err == nil {
		t.Fatal("missing reads file accepted")
	}

	o.readsPath = readsPath
	o.format = "bam"
	if err := run(context.Background(), o, &stdout, &logs); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("bad format error %v", err)
	}
}
