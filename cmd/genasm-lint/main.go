// Command genasm-lint runs the project's static-analysis suite
// (internal/lint) over the module: hotalloc, ctxflow, errcmp,
// locksafe, metricname and httpclient.
// It prints one file:line:col diagnostic per unsuppressed
// finding and exits 1 if there are any, 2 on load/type-check failure.
//
// Usage:
//
//	genasm-lint [-C dir] [-hot pkg,pkg,...] [packages]
//
// Packages are module-relative directories ("./server", "internal/core")
// or "./..." for the whole module (the default). Intentional findings
// are suppressed in source with a reasoned directive:
//
//	//lint:allow <analyzer> <reason>
//
// See docs/LINTING.md for the analyzer catalogue and the suppression
// policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"genasm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genasm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "run as if started in this directory")
	hot := fs.String("hot", "", "comma-separated hot-path package override for hotalloc (default: the kernel packages)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: genasm-lint [-C dir] [-hot pkgs] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "genasm-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "genasm-lint:", err)
		return 2
	}

	var hotPkgs []string
	if *hot != "" {
		hotPkgs = strings.Split(*hot, ",")
	}
	analyzers := lint.Default(hotPkgs)

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		got, err := loadPattern(loader, *dir, pat)
		if err != nil {
			fmt.Fprintln(stderr, "genasm-lint:", err)
			return 2
		}
		pkgs = append(pkgs, got...)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(stdout, rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "genasm-lint: %d finding(s); fix or add a reasoned %s\n", len(diags), lint.AllowDirective)
		return 1
	}
	return 0
}

// loadPattern resolves one package pattern: "./..." (or "all") loads the
// whole module, "dir/..." loads a subtree, anything else is a single
// module-relative directory.
func loadPattern(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	switch pat {
	case "./...", "...", "all":
		return loader.LoadAll()
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return loader.LoadTree(filepath.Join(cwd, rest))
	}
	abs, err := filepath.Abs(filepath.Join(cwd, pat))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(loader.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %q is outside module %s", pat, loader.ModulePath)
	}
	ip := loader.ModulePath
	if rel != "." {
		ip += "/" + filepath.ToSlash(rel)
	}
	pkg, err := loader.Load(ip)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		d = parent
	}
}
