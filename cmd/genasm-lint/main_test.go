package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the CI lint gate in test form: the suite must exit
// 0 over this repository, meaning every pre-existing finding is either
// fixed or carries a reasoned //lint:allow.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out, errb strings.Builder
	code := run([]string{"-C", "../.."}, &out, &errb)
	if code != 0 {
		t.Fatalf("genasm-lint exited %d on the repository:\n%s%s", code, out.String(), errb.String())
	}
}

// writeTempModule lays out a throwaway module named genasm (so the
// default hot-path package list applies) with one internal/core file.
func writeTempModule(t *testing.T, coreSrc string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module genasm\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	coreDir := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(coreDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(coreDir, "core.go"), []byte(coreSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestInjectedViolationFails proves the CI lint job has teeth: inject a
// loop allocation into internal/core and the driver must exit non-zero
// naming hotalloc.
func TestInjectedViolationFails(t *testing.T) {
	dir := writeTempModule(t, `package core

func Kernel(n int) []uint64 {
	var rows []uint64
	for d := 0; d < n; d++ {
		row := make([]uint64, n)
		rows = append(rows, row[0])
	}
	return rows
}
`)
	var out, errb strings.Builder
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, wantSub := range []string{"hotalloc", "make inside loop", "append inside loop"} {
		if !strings.Contains(out.String(), wantSub) {
			t.Errorf("diagnostics missing %q:\n%s", wantSub, out.String())
		}
	}
}

// TestSuppressedViolationPasses: the same injection with reasoned
// directives exits 0.
func TestSuppressedViolationPasses(t *testing.T) {
	dir := writeTempModule(t, `package core

func Kernel(n int) []uint64 {
	var rows []uint64
	for d := 0; d < n; d++ {
		//lint:allow hotalloc fixture: justified scratch growth
		row := make([]uint64, n)
		//lint:allow hotalloc fixture: justified amortized append
		rows = append(rows, row[0])
	}
	return rows
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s", code, out.String())
	}
}

// TestUnreasonedSuppressionFails: a directive without a reason both
// reports itself and fails to suppress.
func TestUnreasonedSuppressionFails(t *testing.T) {
	dir := writeTempModule(t, `package core

func Kernel(n int) []uint64 {
	var rows []uint64
	for d := 0; d < n; d++ {
		//lint:allow hotalloc
		rows = append(rows, uint64(d))
	}
	return rows
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "must state a reason") {
		t.Errorf("missing directive-hygiene diagnostic:\n%s", out.String())
	}
}

// TestSinglePackagePattern: explicit package arguments narrow the run.
func TestSinglePackagePattern(t *testing.T) {
	dir := writeTempModule(t, `package core

func Kernel(n int) []uint64 {
	var rows []uint64
	for d := 0; d < n; d++ {
		rows = append(rows, uint64(d))
	}
	return rows
}
`)
	// Lint only internal/core: finds the violation.
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "internal/core"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	// Override the hot list away from internal/core: nothing to find.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-hot", "genasm/internal/other", "internal/core"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s", code, out.String())
	}
}

// TestBrokenCodeExitsTwo: load/type errors are distinct from findings.
func TestBrokenCodeExitsTwo(t *testing.T) {
	dir := writeTempModule(t, "package core\n\nfunc Kernel( {\n")
	var out, errb strings.Builder
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}
