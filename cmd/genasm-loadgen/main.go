// Command genasm-loadgen drives a running genasm-serve with named,
// deterministic load scenarios and gates on latency/error SLOs (see
// internal/loadgen for the scenario catalogue).
//
// Examples:
//
//	# all five scenarios, 10s measured each, human-readable summary
//	genasm-loadgen -url http://localhost:8080 -scenarios all -duration 10s
//
//	# CI regression gate: ceilings from slo.json, BENCH report merged
//	genasm-loadgen -url http://localhost:8080 -scenarios all \
//	    -duration 5s -slo slo.json -out BENCH_5.json
//
// Exit status: 0 when every scenario ran and every SLO ceiling held,
// 1 when an SLO ceiling was violated, 2 on any other failure. The bulk
// scenario needs the server started with -jobs-dir.
//
// See docs/OPERATIONS.md ("Load testing and SLOs") and
// docs/BENCHMARKS.md (schema 3) for the workflow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genasm/internal/loadgen"
)

// errSLOViolated distinguishes a failed gate (exit 1) from an
// operational failure (exit 2).
var errSLOViolated = errors.New("SLO violated")

// options collects every flag so the whole CLI path is testable.
type options struct {
	url       string
	targets   []string // -target: multi-node mode; overrides -url
	scenarios string   // comma-separated names or "all"
	seed      int64
	warmup    time.Duration
	duration  time.Duration
	rate      float64
	conc      int
	genomeLen int
	refName   string
	sloPath   string
	outPath   string // BENCH_*.json to write/merge ("" = none)
}

func defaultOptions() options {
	return options{
		url:       "http://127.0.0.1:8080",
		scenarios: "all",
		seed:      7,
		warmup:    time.Second,
		duration:  5 * time.Second,
		genomeLen: 120_000,
		refName:   "loadgen",
	}
}

// scenarioList resolves the -scenarios flag into plan names.
func scenarioList(v string) ([]string, error) {
	if v == "" || v == "all" {
		return loadgen.Scenarios(), nil
	}
	var out []string
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range loadgen.Scenarios() {
			if s == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scenario %q (want all or a comma list of %s)",
				name, strings.Join(loadgen.Scenarios(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scenarios resolved to an empty list")
	}
	return out, nil
}

// run executes the selected scenarios sequentially, prints a summary
// per scenario, optionally writes the BENCH report, and checks SLOs.
func run(ctx context.Context, o options, out io.Writer) error {
	names, err := scenarioList(o.scenarios)
	if err != nil {
		return err
	}
	var slo loadgen.SLOFile
	haveSLO := o.sloPath != ""
	if haveSLO {
		if slo, err = loadgen.LoadSLO(o.sloPath); err != nil {
			return err
		}
	}

	var results []*loadgen.Result
	var perTarget []*loadgen.Result
	var cluster []loadgen.ClusterRow
	target := o.url
	if len(o.targets) > 0 {
		target = strings.Join(o.targets, ",")
	}
	for _, name := range names {
		fmt.Fprintf(out, "=== %s: warmup %s, measure %s against %s\n", name, o.warmup, o.duration, target)
		cfg := loadgen.Config{
			Scenario:    name,
			Seed:        o.seed,
			Warmup:      o.warmup,
			Duration:    o.duration,
			Rate:        o.rate,
			Concurrency: o.conc,
			GenomeLen:   o.genomeLen,
			RefName:     o.refName,
		}
		if len(o.targets) > 0 {
			// Multi-node mode: the same scenario offered to every target
			// concurrently; SLOs gate the cluster-wide aggregate.
			per, agg, err := loadgen.RunTargets(ctx, cfg, o.targets)
			if err != nil {
				return fmt.Errorf("scenario %s: %w", name, err)
			}
			for _, res := range per {
				printResult(out, res)
			}
			printResult(out, agg)
			perTarget = append(perTarget, per...)
			results = append(results, agg)
			cluster = append(cluster, loadgen.Row(per, agg))
			continue
		}
		cfg.BaseURL = o.url
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		printResult(out, res)
		results = append(results, res)
	}

	if o.outPath != "" {
		rep := loadgen.Report{Target: target, Seed: o.seed, Scenarios: results, PerTarget: perTarget, Cluster: cluster}
		if err := loadgen.WriteBench(o.outPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote serving report to %s\n", o.outPath)
	}

	if haveSLO {
		violations := slo.Check(results)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(out, "SLO VIOLATION: %s\n", v)
			}
			return fmt.Errorf("%d scenario ceiling(s) broken: %w", len(violations), errSLOViolated)
		}
		fmt.Fprintf(out, "SLO: all ceilings held (%d scenario(s) gated)\n", len(slo.Scenarios))
	}
	return nil
}

func printResult(out io.Writer, r *loadgen.Result) {
	name := r.Scenario
	if r.Target != "" {
		name += "@" + r.Target
	}
	fmt.Fprintf(out, "%-9s rps %7.1f/%7.1f  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  req %6d  err %4d  429 %4d  shed %4d\n",
		name, r.AchievedRPS, r.OfferedRPS, r.P50ms, r.P95ms, r.P99ms,
		r.Requests, r.Errors, r.Status429, r.Dropped)
	if r.CacheChecked > 0 {
		fmt.Fprintf(out, "          cache-hit identity: %d checked, %d mismatched\n", r.CacheChecked, r.CacheMismatches)
	}
	if d := r.ServerDelta; d != nil {
		fmt.Fprintf(out, "          server: %d requests, %d pairs done, %d rejected, %d cache hits, %d batches (mean %.1f pairs)\n",
			d.RequestsTotal, d.PairsDoneTotal, d.RejectedTotal, d.CacheHitsTotal, d.BatchesTotal, d.BatchSizeMean)
	}
	if r.LastError != "" {
		fmt.Fprintf(out, "          last error: %s\n", r.LastError)
	}
}

func main() {
	o := defaultOptions()
	flag.StringVar(&o.url, "url", o.url, "base URL of the genasm-serve instance under test")
	flag.Func("target", "multi-node mode: run each scenario against these base URLs concurrently and report per-target plus aggregate results (repeatable or comma-separated; overrides -url)", func(v string) error {
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			o.targets = append(o.targets, part)
		}
		return nil
	})
	flag.StringVar(&o.scenarios, "scenarios", o.scenarios,
		"comma-separated scenario names, or all ("+strings.Join(loadgen.Scenarios(), ", ")+")")
	flag.Int64Var(&o.seed, "seed", o.seed, "workload seed; the same seed offers the identical request sequence")
	flag.DurationVar(&o.warmup, "warmup", o.warmup, "unmeasured warmup phase per scenario (primes caches and connections)")
	flag.DurationVar(&o.duration, "duration", o.duration, "measured phase per scenario")
	flag.Float64Var(&o.rate, "rate", 0, "offered requests/second, open-loop (0 = scenario default)")
	flag.IntVar(&o.conc, "concurrency", 0, "max in-flight requests; beyond it requests are shed client-side (0 = scenario default)")
	flag.IntVar(&o.genomeLen, "genome", o.genomeLen, "synthetic reference length the workload is drawn from")
	flag.StringVar(&o.refName, "ref-name", o.refName, "name the workload reference is uploaded under")
	flag.StringVar(&o.sloPath, "slo", "", "SLO file with per-scenario ceilings; any violation exits 1")
	flag.StringVar(&o.outPath, "out", "", "write (or merge into) a BENCH_*.json report with the schema-3 serving section")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genasm-loadgen:", err)
		if errors.Is(err, errSLOViolated) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}
