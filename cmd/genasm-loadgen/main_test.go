package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"genasm/internal/loadgen"
	"genasm/server"
)

func TestScenarioList(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{in: "all", want: loadgen.Scenarios()},
		{in: "", want: loadgen.Scenarios()},
		{in: "baseline", want: []string{"baseline"}},
		{in: "stress, mixed", want: []string{"stress", "mixed"}},
		{in: "baseline,nope", wantErr: true},
		{in: ",", wantErr: true},
	} {
		got, err := scenarioList(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("scenarioList(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("scenarioList(%q): %v", tc.in, err)
			continue
		}
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("scenarioList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func cliServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func cliOptions(url string) options {
	o := defaultOptions()
	o.url = url
	o.scenarios = "baseline"
	o.warmup = 200 * time.Millisecond
	o.duration = 600 * time.Millisecond
	o.genomeLen = 20_000
	return o
}

// TestRunEndToEnd drives the full CLI path — scenario run, report
// write, SLO gate — against an in-process server.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	ts := cliServer(t)
	dir := t.TempDir()

	t.Run("passes generous SLO and writes report", func(t *testing.T) {
		o := cliOptions(ts.URL)
		o.outPath = filepath.Join(dir, "BENCH.json")
		o.sloPath = filepath.Join(dir, "slo.json")
		slo := `{"scenarios": {"baseline": {"max_p99_ms": 60000, "max_error_rate": 0}}}`
		if err := os.WriteFile(o.sloPath, []byte(slo), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := run(context.Background(), o, &out); err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "all ceilings held") {
			t.Fatalf("missing SLO pass line:\n%s", out.String())
		}
		data, err := os.ReadFile(o.outPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["schema"] != float64(3) || doc["serving"] == nil {
			t.Fatalf("report is not a schema-3 serving doc: %v", doc)
		}
	})

	t.Run("impossible ceiling violates", func(t *testing.T) {
		o := cliOptions(ts.URL)
		o.sloPath = filepath.Join(dir, "impossible.json")
		slo := `{"scenarios": {"baseline": {"max_p99_ms": 0.000001}}}`
		if err := os.WriteFile(o.sloPath, []byte(slo), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run(context.Background(), o, &out)
		if !errors.Is(err, errSLOViolated) {
			t.Fatalf("err = %v, want errSLOViolated\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "SLO VIOLATION") {
			t.Fatalf("violation not printed:\n%s", out.String())
		}
	})

	t.Run("SLO naming unrun scenario violates", func(t *testing.T) {
		o := cliOptions(ts.URL)
		o.sloPath = filepath.Join(dir, "unrun.json")
		slo := `{"scenarios": {"stress": {"max_p99_ms": 60000}}}`
		if err := os.WriteFile(o.sloPath, []byte(slo), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run(context.Background(), o, &out)
		if !errors.Is(err, errSLOViolated) {
			t.Fatalf("err = %v, want errSLOViolated (scenario_not_run)", err)
		}
		if !strings.Contains(out.String(), "scenario_not_run") {
			t.Fatalf("missing scenario_not_run violation:\n%s", out.String())
		}
	})
}

func TestRunBadInputs(t *testing.T) {
	o := cliOptions("http://127.0.0.1:0")
	o.scenarios = "nope"
	if err := run(context.Background(), o, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
	o = cliOptions("http://127.0.0.1:0")
	o.sloPath = filepath.Join(t.TempDir(), "absent.json")
	if err := run(context.Background(), o, &bytes.Buffer{}); err == nil {
		t.Fatal("missing SLO file did not error")
	}
}
