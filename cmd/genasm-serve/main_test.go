package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"genasm"
	"genasm/internal/genome"
	"genasm/internal/obs"
)

func TestParseRefFlag(t *testing.T) {
	cases := []struct {
		in         string
		name, path string
		wantErr    bool
	}{
		{"chr1=ref.fa", "chr1", "ref.fa", false},
		{"g=/data/a=b.fa", "g", "/data/a=b.fa", false}, // first '=' splits
		{"ref.fa", "", "", true},
		{"=ref.fa", "", "", true},
		{"chr1=", "", "", true},
		{"", "", "", true},
	}
	for _, tc := range cases {
		rs, err := parseRefFlag(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("%q: no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if rs.name != tc.name || rs.path != tc.path {
			t.Fatalf("%q: got %+v", tc.in, rs)
		}
	}
}

func TestEngineOptionsValidation(t *testing.T) {
	o := defaultOptions()
	if _, err := buildServer(o); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	o.backend = "tpu"
	_, err := buildServer(o)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The registry's resolution error is self-diagnosing: it lists every
	// registered name.
	for _, want := range []string{"cpu", "gpu", "multi"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("backend error %q does not list %q", err, want)
		}
	}
	o = defaultOptions()
	o.backend = "multi(cpu,gpu)"
	srv, err := buildServer(o)
	if err != nil {
		t.Fatalf("parameterized multi spec rejected: %v", err)
	}
	srv.Close()
	o = defaultOptions()
	o.algo = "bwa"
	if _, err := buildServer(o); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildServerPreloadsRefs(t *testing.T) {
	dir := t.TempDir()
	refPath := writeRefFASTA(t, dir, 32)
	o := defaultOptions()
	o.refs = []refSpec{{name: "chr1", path: refPath}}
	srv, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Registry().Len() != 1 {
		t.Fatalf("refs = %d, want 1", srv.Registry().Len())
	}
	o.refs = []refSpec{{name: "x", path: filepath.Join(dir, "missing.fa")}}
	if _, err := buildServer(o); err == nil {
		t.Fatal("missing reference file accepted")
	}
}

// TestBuildServerJobsLane: -jobs-dir enables the bulk lane (with the
// worker default derived from backend capabilities), an unset flag
// leaves it off, and a stale spool dir is refused at startup.
func TestBuildServerJobsLane(t *testing.T) {
	o := defaultOptions()
	srv, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Jobs() != nil {
		t.Fatal("jobs lane enabled without -jobs-dir")
	}
	srv.Close()

	o.jobsDir = filepath.Join(t.TempDir(), "jobs")
	srv, err = buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Jobs() == nil {
		t.Fatal("jobs lane not enabled by -jobs-dir")
	}
	srv.Close()

	// Leftover spool entries from a previous process: refuse with a
	// clear error instead of silently leaking them.
	if err := os.MkdirAll(filepath.Join(o.jobsDir, "deadbeef0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(o); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale jobs dir error %v", err)
	}
}

// TestRunServesAndShutsDown is the binary's end-to-end smoke test: boot
// on an ephemeral port with a preloaded reference, serve real requests,
// then shut down gracefully on context cancellation.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	refPath := writeRefFASTA(t, dir, 33)
	o := defaultOptions()
	o.addr = "127.0.0.1:0"
	o.batchDelay = time.Millisecond
	o.refs = []refSpec{{name: "chr1", path: refPath}}

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		done <- run(ctx, o, &logs, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("run exited early: %v (log %s)", err, logs.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Refs   int    `json:"refs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Refs != 1 {
		t.Fatalf("health %+v", health)
	}

	g := genasm.GenerateGenome(5_000, 34)
	body := fmt.Sprintf(`{"pairs":[{"query":%q,"ref":%q}]}`, g[100:300], g[100:340])
	resp, err = http.Post(base+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"cigar"`) {
		t.Fatalf("align: %d %s", resp.StatusCode, data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(logs.String(), "shut down") {
		t.Fatalf("log %q lacks shutdown line", logs.String())
	}
}

// TestRunObservabilitySmoke is the observability smoke test: boot the
// binary with JSON logs and a debug listener, drive one /align request,
// then verify (a) /metrics serves both formats and the Prometheus
// payload passes the strict exposition checker, (b) the debug port
// serves pprof, /debug/traces and /metrics, (c) request logs are valid
// JSON lines carrying a trace_id, and (d) /healthz reports the build
// version.
func TestRunObservabilitySmoke(t *testing.T) {
	dir := t.TempDir()
	refPath := writeRefFASTA(t, dir, 35)
	o := defaultOptions()
	o.addr = "127.0.0.1:0"
	o.debugAddr = "127.0.0.1:0"
	o.batchDelay = time.Millisecond
	o.logFormat = "json"
	o.logLevel = "debug"
	o.refs = []refSpec{{name: "chr1", path: refPath}}

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	dbgc := make(chan string, 1)
	done := make(chan error, 1)
	var logs bytes.Buffer
	o.debugReady = func(addr string) { dbgc <- addr }
	go func() {
		done <- run(ctx, o, &logs, func(addr string) { addrc <- addr })
	}()
	var addr, dbg string
	select {
	case addr = <-addrc:
		dbg = <-dbgc
	case err := <-done:
		t.Fatalf("run exited early: %v (log %s)", err, logs.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	get := func(url string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header, data
	}

	g := genasm.GenerateGenome(5_000, 36)
	body := fmt.Sprintf(`{"pairs":[{"query":%q,"ref":%q}]}`, g[200:400], g[200:440])
	resp, err := http.Post(base+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("align response lacks X-Request-Id")
	}

	// JSON metrics (the default format) still decode and include the
	// histogram-derived percentile keys.
	code, _, data := get(base + "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics json: %d %s", code, data)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics json: %v in %s", err, data)
	}
	for _, key := range []string{"requests_total", "latency_ms_p99", "queue_wait_ms_p99", "backend_exec_ms_p99"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("metrics json lacks %q: %s", key, data)
		}
	}

	// Prometheus exposition — via query param and via Accept header, on
	// both the main and the debug listener — must pass the strict checker.
	for _, tc := range []struct{ url, accept string }{
		{base + "/metrics?format=prometheus", ""},
		{base + "/metrics", "text/plain"},
		{"http://" + dbg + "/metrics?format=prometheus", ""},
	} {
		req, err := http.NewRequest(http.MethodGet, tc.url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.url, resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
			t.Fatalf("%s: content type %q", tc.url, ct)
		}
		if errs := obs.CheckExposition(data); len(errs) != 0 {
			t.Fatalf("%s: exposition violations: %v", tc.url, errs)
		}
		if !strings.Contains(string(data), `genasm_requests_total{backend="cpu"}`) {
			t.Fatalf("%s: missing labeled counter in %s", tc.url, data)
		}
	}

	// The debug listener serves pprof and the trace ring.
	if code, _, data := get("http://" + dbg + "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d %s", code, data)
	}
	code, _, data = get("http://" + dbg + "/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("debug traces: %d %s", code, data)
	}
	var ring struct {
		Total  int `json:"total"`
		Traces []struct {
			Name string `json:"name"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(data, &ring); err != nil {
		t.Fatalf("debug traces: %v in %s", err, data)
	}
	if ring.Total < 1 || len(ring.Traces) < 1 {
		t.Fatalf("debug traces empty after /align: %s", data)
	}

	// /healthz reports the build version string.
	code, _, data = get(base + "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, data)
	}
	var health struct {
		Version string `json:"version"`
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(data, &health); err != nil {
		t.Fatal(err)
	}
	if health.Version == "" || health.Backend != "cpu" {
		t.Fatalf("healthz %+v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}

	// Every log line is valid JSON; the /align request line carries a
	// trace_id matching the obs ID shape.
	sawAlign := false
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["path"] == "/align" {
			sawAlign = true
			id, _ := rec["trace_id"].(string)
			if len(id) != 16 {
				t.Fatalf("align log line trace_id %q, want 16 hex chars: %s", id, line)
			}
		}
	}
	if !sawAlign {
		t.Fatalf("no /align request log line in %s", logs.String())
	}
}

func writeRefFASTA(t *testing.T, dir string, seed int64) string {
	t.Helper()
	cfg := genome.DefaultConfig(60_000)
	cfg.Seed = seed
	rec := genome.Generate(cfg)
	path := filepath.Join(dir, "ref.fa")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(f, []genome.Record{rec}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}
