package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"genasm"
	"genasm/internal/genome"
)

func TestParseRefFlag(t *testing.T) {
	cases := []struct {
		in         string
		name, path string
		wantErr    bool
	}{
		{"chr1=ref.fa", "chr1", "ref.fa", false},
		{"g=/data/a=b.fa", "g", "/data/a=b.fa", false}, // first '=' splits
		{"ref.fa", "", "", true},
		{"=ref.fa", "", "", true},
		{"chr1=", "", "", true},
		{"", "", "", true},
	}
	for _, tc := range cases {
		rs, err := parseRefFlag(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("%q: no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if rs.name != tc.name || rs.path != tc.path {
			t.Fatalf("%q: got %+v", tc.in, rs)
		}
	}
}

func TestEngineOptionsValidation(t *testing.T) {
	o := defaultOptions()
	if _, err := buildServer(o); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	o.backend = "tpu"
	_, err := buildServer(o)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The registry's resolution error is self-diagnosing: it lists every
	// registered name.
	for _, want := range []string{"cpu", "gpu", "multi"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("backend error %q does not list %q", err, want)
		}
	}
	o = defaultOptions()
	o.backend = "multi(cpu,gpu)"
	srv, err := buildServer(o)
	if err != nil {
		t.Fatalf("parameterized multi spec rejected: %v", err)
	}
	srv.Close()
	o = defaultOptions()
	o.algo = "bwa"
	if _, err := buildServer(o); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBuildServerPreloadsRefs(t *testing.T) {
	dir := t.TempDir()
	refPath := writeRefFASTA(t, dir, 32)
	o := defaultOptions()
	o.refs = []refSpec{{name: "chr1", path: refPath}}
	srv, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Registry().Len() != 1 {
		t.Fatalf("refs = %d, want 1", srv.Registry().Len())
	}
	o.refs = []refSpec{{name: "x", path: filepath.Join(dir, "missing.fa")}}
	if _, err := buildServer(o); err == nil {
		t.Fatal("missing reference file accepted")
	}
}

// TestBuildServerJobsLane: -jobs-dir enables the bulk lane (with the
// worker default derived from backend capabilities), an unset flag
// leaves it off, and a stale spool dir is refused at startup.
func TestBuildServerJobsLane(t *testing.T) {
	o := defaultOptions()
	srv, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Jobs() != nil {
		t.Fatal("jobs lane enabled without -jobs-dir")
	}
	srv.Close()

	o.jobsDir = filepath.Join(t.TempDir(), "jobs")
	srv, err = buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Jobs() == nil {
		t.Fatal("jobs lane not enabled by -jobs-dir")
	}
	srv.Close()

	// Leftover spool entries from a previous process: refuse with a
	// clear error instead of silently leaking them.
	if err := os.MkdirAll(filepath.Join(o.jobsDir, "deadbeef0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(o); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale jobs dir error %v", err)
	}
}

// TestRunServesAndShutsDown is the binary's end-to-end smoke test: boot
// on an ephemeral port with a preloaded reference, serve real requests,
// then shut down gracefully on context cancellation.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	refPath := writeRefFASTA(t, dir, 33)
	o := defaultOptions()
	o.addr = "127.0.0.1:0"
	o.batchDelay = time.Millisecond
	o.refs = []refSpec{{name: "chr1", path: refPath}}

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		done <- run(ctx, o, &logs, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("run exited early: %v (log %s)", err, logs.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Refs   int    `json:"refs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Refs != 1 {
		t.Fatalf("health %+v", health)
	}

	g := genasm.GenerateGenome(5_000, 34)
	body := fmt.Sprintf(`{"pairs":[{"query":%q,"ref":%q}]}`, g[100:300], g[100:340])
	resp, err = http.Post(base+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"cigar"`) {
		t.Fatalf("align: %d %s", resp.StatusCode, data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(logs.String(), "shut down") {
		t.Fatalf("log %q lacks shutdown line", logs.String())
	}
}

func writeRefFASTA(t *testing.T, dir string, seed int64) string {
	t.Helper()
	cfg := genome.DefaultConfig(60_000)
	cfg.Seed = seed
	rec := genome.Generate(cfg)
	path := filepath.Join(dir, "ref.fa")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := genome.WriteFASTA(f, []genome.Record{rec}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}
