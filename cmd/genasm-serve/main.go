// Command genasm-serve exposes the genasm alignment engine as a batching
// HTTP JSON service (see the server package): concurrent /align and
// /map-align requests coalesce into backend-sized batches, references
// upload once into a shared minimizer index, results are LRU-cached, and
// /metrics + /healthz report operational state. With -jobs-dir set, the
// asynchronous bulk lane (POST /jobs and friends, package server/jobs)
// accepts genome-sized FASTA/FASTQ read sets, runs them through the same
// scheduler in the background, and serves the finished SAM/PAF/JSON for
// download; cmd/genasm-submit is the matching client.
//
// With -upstream set, the process instead becomes a stateless routing
// front over a cluster of genasm-serve nodes: /align and /map-align are
// forwarded to an upstream chosen by consistent hashing on the request's
// reference (with health-checked failover), /refs broadcasts to every
// node, and no local engine runs. See docs/OPERATIONS.md "Running a
// cluster".
//
// Example:
//
//	genasm-serve -addr :8080 -backend cpu -ref chr1=chr1.fa -jobs-dir /var/genasm/jobs
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/align \
//	    -d '{"pairs":[{"query":"ACGTACGT","ref":"ACGTTACGT"}]}'
//
// Cluster front:
//
//	genasm-serve -addr :8080 -upstream node1:8081,node2:8081,node3:8081
//
// See docs/OPERATIONS.md for deployment guidance and docs/API.md for
// the full HTTP reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genasm"
	"genasm/internal/genome"
	"genasm/internal/obs"
	"genasm/server"
	"genasm/server/jobs"

	// Register the remote(host:port) backend so a node can itself shard
	// work across other nodes (e.g. -backend "multi(cpu,remote(b:8081))").
	_ "genasm/internal/remotebk"
)

// options collects every flag so the whole serve path is testable.
type options struct {
	addr        string
	backend     string
	algo        string
	threads     int
	maxQuery    int
	batch       int
	batchDelay  time.Duration
	queue       int
	cacheSize   int
	refs        []refSpec // preloaded name=path references
	jobsDir     string    // empty = bulk job lane disabled
	jobsWorkers int
	jobsTTL     time.Duration
	logFormat   string
	logLevel    string
	slowRequest time.Duration
	traceBuffer int
	debugAddr   string // empty = no debug/pprof listener

	upstreams      []string      // non-empty = front-tier proxy mode
	healthInterval time.Duration // upstream /healthz probe period

	log        *slog.Logger      // built by run from logFormat/logLevel
	debugReady func(addr string) // test hook: reports the bound debug addr
}

type refSpec struct{ name, path string }

func defaultOptions() options {
	return options{
		addr:        ":8080",
		backend:     "cpu",
		algo:        "genasm",
		batch:       0, // 0 = the backend's preferred batch size
		batchDelay:  2 * time.Millisecond,
		queue:       4096,
		cacheSize:   4096,
		jobsTTL:     time.Hour,
		logFormat:   "text",
		logLevel:    "info",
		slowRequest: time.Second,

		healthInterval: time.Second,
	}
}

// parseRefFlag parses a -ref value of the form name=path.fa.
func parseRefFlag(v string) (refSpec, error) {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return refSpec{}, fmt.Errorf("-ref wants name=path.fa, got %q", v)
	}
	return refSpec{name: name, path: path}, nil
}

// engineOptions translates the flags into genasm Engine options. The
// backend name is resolved by NewEngine through the registry; an unknown
// name fails server.New with every valid name in the error.
func (o options) engineOptions() []genasm.Option {
	opts := []genasm.Option{
		genasm.WithAlgorithm(genasm.Algorithm(o.algo)),
		genasm.WithBackendName(o.backend),
	}
	if o.threads > 0 {
		opts = append(opts, genasm.WithThreads(o.threads))
	}
	if o.maxQuery > 0 {
		opts = append(opts, genasm.WithMaxQueryLen(o.maxQuery))
	}
	return opts
}

// buildServer assembles the server and preloads the -ref references.
// With -upstream set it builds the front-tier variant instead: no local
// engine, so engine- and jobs-related flags are rejected rather than
// silently ignored.
func buildServer(o options) (*server.Server, error) {
	if len(o.upstreams) > 0 {
		if o.jobsDir != "" {
			return nil, errors.New("-upstream and -jobs-dir are mutually exclusive: the bulk job lane needs a local engine; run it on the upstream nodes")
		}
		if len(o.refs) > 0 {
			return nil, errors.New("-upstream and -ref are mutually exclusive: upload references through the front (POST /refs broadcasts to every upstream)")
		}
		return server.New(server.Config{
			Proxy: server.ProxyConfig{
				Upstreams:      o.upstreams,
				HealthInterval: o.healthInterval,
			},
			Logger:      o.log,
			SlowRequest: o.slowRequest,
			TraceBuffer: o.traceBuffer,
		})
	}
	srv, err := server.New(server.Config{
		EngineOptions: o.engineOptions(),
		Scheduler: server.SchedulerConfig{
			MaxBatch: o.batch,
			MaxDelay: o.batchDelay,
			MaxQueue: o.queue,
		},
		CacheSize:   o.cacheSize,
		Logger:      o.log, // nil = quiet (server substitutes a no-op logger)
		SlowRequest: o.slowRequest,
		TraceBuffer: o.traceBuffer,
		Jobs: jobs.Config{
			Dir:     o.jobsDir,
			Workers: o.jobsWorkers,
			TTL:     o.jobsTTL,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range o.refs {
		f, err := os.Open(rs.path)
		if err != nil {
			return nil, err
		}
		recs, err := genome.ReadFASTA(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", rs.path, err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("no sequences in %s", rs.path)
		}
		if _, err := srv.Registry().Add(rs.name, recs[0].Seq); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// debugHandler builds the opt-in -debug-addr mux: the full net/http/pprof
// suite plus the server's own introspection endpoints (/debug/traces,
// /metrics, /healthz), so profiling and scraping can live on a private
// port while o.addr stays workload-only.
func debugHandler(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	app := srv.Handler()
	mux.Handle("/debug/traces", app)
	mux.Handle("/metrics", app)
	mux.Handle("/healthz", app)
	return mux
}

// run serves until ctx is cancelled, then shuts down gracefully: the
// listener closes, in-flight requests get shutdownGrace to finish, and
// the scheduler drains. ready (optional) receives the bound address once
// the listener is up — tests use it to learn the :0 port.
func run(ctx context.Context, o options, logw io.Writer, ready func(addr string)) error {
	log, err := obs.NewLogger(logw, o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	o.log = log
	srv, err := buildServer(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	jobsLane := "off"
	if srv.Jobs() != nil {
		jobsLane = o.jobsDir
	}
	build := obs.ReadBuildInfo()
	if p := srv.Proxy(); p != nil {
		log.Info("listening",
			"addr", ln.Addr().String(),
			"mode", "front",
			"upstreams", strings.Join(p.Upstreams(), ","),
			"version", build.Version(),
			"go", build.GoVersion)
	} else {
		log.Info("listening",
			"addr", ln.Addr().String(),
			"backend", srv.Engine().BackendName(),
			"refs", srv.Registry().Len(),
			"jobs", jobsLane,
			"version", build.Version(),
			"go", build.GoVersion)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)

	var dhs *http.Server
	if o.debugAddr != "" {
		dln, derr := net.Listen("tcp", o.debugAddr)
		if derr != nil {
			ln.Close()
			srv.Close()
			return derr
		}
		log.Info("debug listening", "addr", dln.Addr().String())
		if o.debugReady != nil {
			o.debugReady(dln.Addr().String())
		}
		dhs = &http.Server{Handler: debugHandler(srv)}
		go func() {
			if err := dhs.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}

	if ready != nil {
		ready(ln.Addr().String())
	}
	go func() { errc <- hs.Serve(ln) }()

	const shutdownGrace = 10 * time.Second
	shutdownDebug := func(sctx context.Context) {
		if dhs != nil {
			dhs.Shutdown(sctx)
		}
	}
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err = hs.Shutdown(sctx)
		shutdownDebug(sctx)
		srv.Close() // drain the batch scheduler after the listener stops
		log.Info("shut down")
		return err
	case err := <-errc:
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		hs.Shutdown(sctx)
		shutdownDebug(sctx)
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func main() {
	o := defaultOptions()
	flag.StringVar(&o.addr, "addr", o.addr, "listen address")
	flag.StringVar(&o.backend, "backend", o.backend, genasm.BackendUsage())
	flag.StringVar(&o.algo, "algo", o.algo, "algorithm: genasm | genasm-unimproved | edlib | ksw2 | swg")
	flag.IntVar(&o.threads, "threads", 0, "CPU worker threads (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQuery, "max-query", 0, "reject queries longer than this (0 = unlimited)")
	flag.IntVar(&o.batch, "batch", o.batch, "flush a backend batch at this many pending pairs (0 = the backend's preferred batch size)")
	flag.DurationVar(&o.batchDelay, "batch-delay", o.batchDelay, "max time a pair waits for its batch to fill")
	flag.IntVar(&o.queue, "queue", o.queue, "max pairs admitted but not completed (429 beyond)")
	flag.IntVar(&o.cacheSize, "cache", o.cacheSize, "result cache entries (<0 disables)")
	flag.StringVar(&o.jobsDir, "jobs-dir", "", "enable the async bulk job lane (POST /jobs), spooling inputs/results under this directory; must be empty or absent at startup (empty string = lane disabled)")
	flag.IntVar(&o.jobsWorkers, "jobs-workers", 0, "concurrent bulk jobs (0 = backend parallelism/4, min 1)")
	flag.DurationVar(&o.jobsTTL, "jobs-ttl", o.jobsTTL, "how long finished jobs and their spool files are retained before garbage collection")
	flag.StringVar(&o.logFormat, "log-format", o.logFormat, "log output format: text | json")
	flag.StringVar(&o.logLevel, "log-level", o.logLevel, "minimum log level: debug | info | warn | error")
	flag.DurationVar(&o.slowRequest, "slow-request", o.slowRequest, "log a warning with the full span tree for requests slower than this (0 disables)")
	flag.IntVar(&o.traceBuffer, "trace-buffer", 0, "recent request traces retained for GET /debug/traces (0 = default 128)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "optional second listener exposing net/http/pprof, /debug/traces, /metrics and /healthz (empty = disabled)")
	flag.Func("upstream", "front-tier mode: route /align and /map-align to these genasm-serve nodes (host:port, repeatable or comma-separated) by consistent hashing instead of executing locally", func(v string) error {
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			o.upstreams = append(o.upstreams, part)
		}
		return nil
	})
	flag.DurationVar(&o.healthInterval, "health-interval", o.healthInterval, "front-tier mode: upstream /healthz probe period (eject after 2 consecutive failures, readmit on the first success)")
	flag.Func("ref", "preload a reference: name=path.fa (repeatable)", func(v string) error {
		rs, err := parseRefFlag(v)
		if err != nil {
			return err
		}
		o.refs = append(o.refs, rs)
		return nil
	})
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "genasm-serve:", err)
		os.Exit(1)
	}
}
