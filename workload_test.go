package genasm

import (
	"bytes"
	"testing"
)

// TestMapperRegionClamped pins the bounds-safety contract: Region returns
// the valid intersection of a candidate with the reference, never panics,
// for any CandidateRegion — including stale or corrupted ones.
func TestMapperRegionClamped(t *testing.T) {
	ref := GenerateGenome(50_000, 9)
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ref)
	cases := []struct {
		name       string
		c          CandidateRegion
		start, end int // expected intersection; start==end means empty
	}{
		{"in bounds", CandidateRegion{Start: 100, End: 300}, 100, 300},
		{"negative start", CandidateRegion{Start: -50, End: 200}, 0, 200},
		{"end past reference", CandidateRegion{Start: n - 100, End: n + 500}, n - 100, n},
		{"both out of bounds", CandidateRegion{Start: -10, End: n + 10}, 0, n},
		{"entirely before", CandidateRegion{Start: -20, End: -5}, 0, 0},
		{"entirely after", CandidateRegion{Start: n + 5, End: n + 20}, 0, 0},
		{"inverted", CandidateRegion{Start: 300, End: 100}, 0, 0},
		{"empty at bound", CandidateRegion{Start: n, End: n}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mapper.Region(tc.c)
			want := ref[tc.start:tc.end]
			if !bytes.Equal(got, want) {
				t.Fatalf("Region(%+v) = %d bytes, want ref[%d:%d] (%d bytes)",
					tc.c, len(got), tc.start, tc.end, len(want))
			}
		})
	}
}

// TestMapperCandidatesWithinBounds checks the mapper's own candidates
// already respect reference bounds after clamping in Region.
func TestMapperCandidatesWithinBounds(t *testing.T) {
	ref := GenerateGenome(120_000, 4)
	mapper, err := NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := SimulateLongReads(ref, 6, 2000, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range reads {
		for _, c := range mapper.Candidates(rd.Seq) {
			region := mapper.Region(c)
			if len(region) == 0 {
				t.Fatalf("empty region for candidate %+v", c)
			}
			if len(region) > len(ref) {
				t.Fatalf("region longer than reference: %d > %d", len(region), len(ref))
			}
		}
	}
}
