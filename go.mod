module genasm

go 1.22
