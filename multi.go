package genasm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"genasm/internal/obs"
)

// ShardError attributes a composite-backend failure to the shard that
// produced it: which child backend, which contiguous pair range of the
// original batch, and the underlying error (reachable via errors.Is /
// errors.As through Unwrap).
type ShardError struct {
	// Shard is the failing shard's index within the dispatch.
	Shard int
	// Backend is the child backend's spec (e.g. "gpu").
	Backend string
	// Lo and Hi delimit the shard's half-open pair range [Lo, Hi) in the
	// batch handed to the multi backend.
	Lo, Hi int
	// Err is the child backend's error.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("genasm: multi shard %d (%s, pairs [%d,%d)): %v",
		e.Shard, e.Backend, e.Lo, e.Hi, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// multiBackend shards one AlignBatch across N child backends by
// capability-weighted contiguous chunking: each child receives a slice
// of the batch proportional to its Capabilities().Parallelism, the
// shards run concurrently, and the results are stitched back in input
// order — so the concatenation is bit-identical to running the whole
// batch on any single child. It is the library's first scale-out
// primitive: "multi(cpu,gpu)" keeps both backends busy on one batch.
type multiBackend struct {
	spec     string
	children []Backend
	names    []string
	weights  []int
	caps     Capabilities

	batches atomic.Uint64
	pairs   atomic.Uint64
	shards  atomic.Uint64
}

// newMultiBackend parses a "multi" spec — "multi" (children cpu,gpu) or
// "multi(a,b,...)" — and constructs every child through the registry.
// Children must be leaf backends: nesting multi inside multi is rejected
// (it would add a sharding layer with nothing to gain and make the
// weight model recursive).
func newMultiBackend(spec string, cfg Config, opts BackendOptions) (Backend, error) {
	childSpecs := []string{"cpu", "gpu"}
	if rest, ok := strings.CutPrefix(spec, "multi("); ok {
		inner, ok := strings.CutSuffix(rest, ")")
		if !ok {
			return nil, fmt.Errorf("genasm: malformed multi spec %q (want multi(a,b,...))", spec)
		}
		childSpecs = strings.Split(inner, ",")
	} else if spec != "multi" {
		return nil, fmt.Errorf("genasm: malformed multi spec %q (want multi or multi(a,b,...))", spec)
	}
	b := &multiBackend{spec: spec}
	for _, cs := range childSpecs {
		cs = strings.TrimSpace(cs)
		if cs == "" {
			return nil, fmt.Errorf("genasm: multi spec %q has an empty child", spec)
		}
		if baseBackendName(cs) == "multi" {
			return nil, fmt.Errorf("genasm: multi spec %q nests multi; children must be leaf backends", spec)
		}
		child, err := openBackend(cs, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("genasm: multi child %q: %w", cs, err)
		}
		b.children = append(b.children, child)
		b.names = append(b.names, cs)
	}
	for _, child := range b.children {
		caps := child.Capabilities()
		w := max(1, caps.Parallelism)
		b.weights = append(b.weights, w)
		b.caps.Parallelism += w
		b.caps.PreferredBatch += caps.PreferredBatch
		if caps.MaxQueryLen > 0 &&
			(b.caps.MaxQueryLen == 0 || caps.MaxQueryLen < b.caps.MaxQueryLen) {
			b.caps.MaxQueryLen = caps.MaxQueryLen
		}
	}
	return b, nil
}

func (b *multiBackend) Capabilities() Capabilities { return b.caps }

func (b *multiBackend) Stats() BackendStats {
	st := BackendStats{
		Name:    b.spec,
		Batches: b.batches.Load(),
		Pairs:   b.pairs.Load(),
		Shards:  b.shards.Load(),
	}
	for i, child := range b.children {
		cs := child.Stats()
		cs.Name = b.names[i]
		st.Children = append(st.Children, cs)
	}
	return st
}

// shardBounds computes the contiguous half-open pair ranges, one per
// child, proportional to the capability weights (cumulative rounding so
// the sizes sum exactly to n). When the batch has at least one pair per
// child, every child is guaranteed a non-empty shard — an idle child
// would make the composite pointless, and one stolen pair is noise next
// to a weight-sized share — by taking from the largest shard. Batches
// smaller than the child count leave the lightest-weighted children
// empty.
func (b *multiBackend) shardBounds(n int) []int {
	total := 0
	for _, w := range b.weights {
		total += w
	}
	sizes := make([]int, len(b.children))
	acc, prev := 0, 0
	for i, w := range b.weights {
		acc += w
		hi := n * acc / total
		sizes[i] = hi - prev
		prev = hi
	}
	if n >= len(sizes) {
		for i := range sizes {
			for sizes[i] == 0 {
				biggest := 0
				for j := range sizes {
					if sizes[j] > sizes[biggest] {
						biggest = j
					}
				}
				sizes[biggest]--
				sizes[i]++
			}
		}
	}
	bounds := make([]int, len(b.children)+1)
	for i, sz := range sizes {
		bounds[i+1] = bounds[i] + sz
	}
	return bounds
}

func (b *multiBackend) AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error) {
	b.batches.Add(1)
	b.pairs.Add(uint64(len(pairs)))
	if len(pairs) == 0 {
		// Delegate the empty batch to the first child so the ctx-checking
		// contract matches a leaf backend exactly.
		return b.children[0].AlignBatch(ctx, cfg, pairs)
	}
	bounds := b.shardBounds(len(pairs))
	results := make([]Result, len(pairs))
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(b.children))
	// origin is the chronologically first shard failure: the one that
	// triggered cancel(), recorded before the siblings could echo the
	// cancellation back.
	var originOnce sync.Once
	var origin error
	var wg sync.WaitGroup
	shard := 0
	for i, child := range b.children {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		b.shards.Add(1)
		wg.Add(1)
		go func(shard, i, lo, hi int, child Backend) {
			defer wg.Done()
			// Each shard records its own span on the batch trace (if one
			// rides the context): concurrent recording is safe, and the
			// nil trace no-ops.
			sp := obs.StartSpan(ctx, "shard",
				obs.String("backend", b.names[i]), obs.Int("lo", lo), obs.Int("hi", hi))
			res, err := child.AlignBatch(ctx, cfg, pairs[lo:hi])
			sp.End()
			if err == nil && len(res) != hi-lo {
				// A contract-violating child (short or long result slice)
				// must fail loudly, not truncate into zero-valued Results.
				err = fmt.Errorf("backend returned %d results for %d pairs", len(res), hi-lo)
			}
			if err != nil {
				se := &ShardError{Shard: shard, Backend: b.names[i], Lo: lo, Hi: hi, Err: err}
				errs[i] = se
				originOnce.Do(func() { origin = se })
				cancel() // stop the sibling shards promptly
				return
			}
			copy(results[lo:hi], res)
		}(shard, i, lo, hi, child)
		shard++
	}
	wg.Wait()
	// Report a real shard failure over the cancellation echoes it
	// triggered in siblings; among concurrent real failures the lowest
	// child index wins so the attribution is deterministic. When every
	// failure is context-shaped, the caller's actual context decides: if
	// it expired, the bare context error surfaces (as a leaf backend's
	// would); if it is live, some child produced the context error on
	// its own (say, an internal deadline) — the chronologically first
	// failure is that originator, and it keeps its ShardError
	// attribution.
	anyErr := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		anyErr = true
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		return nil, err
	}
	if anyErr {
		if perr := parent.Err(); perr != nil {
			return nil, perr
		}
		return nil, origin
	}
	return results, nil
}
