package genasm

import (
	"context"
	"errors"
	"fmt"

	"genasm/internal/baseline"
	"genasm/internal/cigar"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/edlib"
	"genasm/internal/ksw2"
	"genasm/internal/swg"
)

// Algorithm selects an aligner implementation.
type Algorithm string

const (
	// GenASM is the paper's improved GenASM (default).
	GenASM Algorithm = "genasm"
	// GenASMUnimproved is MICRO'20 GenASM without the improvements.
	GenASMUnimproved Algorithm = "genasm-unimproved"
	// Edlib is the Myers bit-parallel global edit-distance aligner.
	Edlib Algorithm = "edlib"
	// KSW2 is the banded global affine-gap aligner.
	KSW2 Algorithm = "ksw2"
	// SWG is the quadratic Smith-Waterman-Gotoh reference.
	SWG Algorithm = "swg"
)

// Algorithms lists every supported Algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{GenASM, GenASMUnimproved, Edlib, KSW2, SWG}
}

// Config configures an Aligner. The zero value selects improved GenASM
// with the paper's parameters (W=64, O=24, k=12).
type Config struct {
	Algorithm Algorithm
	// GenASM window geometry (GenASM algorithms only). Zero values take
	// the paper defaults.
	WindowSize int
	Overlap    int
	ErrorK     int
	// Improvement toggles for ablation (improved GenASM only).
	DisableSENE, DisableDENT, DisableET bool
	// Affine-gap scoring (KSW2 and SWG only): match bonus, mismatch /
	// gap-open / gap-extend penalties. Zero takes minimap2 defaults
	// (2/4/4/2).
	MatchScore, MismatchPenalty, GapOpen, GapExtend int
	// BandWidth bounds the KSW2 band (0 = minimap2's 500).
	BandWidth int
}

func (c *Config) fillDefaults() {
	if c.Algorithm == "" {
		c.Algorithm = GenASM
	}
	if c.WindowSize == 0 {
		c.WindowSize = 64
	}
	if c.Overlap == 0 && c.WindowSize == 64 {
		c.Overlap = 24
	}
	if c.ErrorK == 0 {
		c.ErrorK = min(12, c.WindowSize)
	}
	if c.MatchScore == 0 {
		c.MatchScore = 2
	}
	if c.MismatchPenalty == 0 {
		c.MismatchPenalty = 4
	}
	if c.GapOpen == 0 {
		c.GapOpen = 4
	}
	if c.GapExtend == 0 {
		c.GapExtend = 2
	}
	if c.BandWidth == 0 {
		c.BandWidth = 500
	}
}

func (c Config) penalties() cigar.AffinePenalties {
	return cigar.AffinePenalties{A: c.MatchScore, B: c.MismatchPenalty, Q: c.GapOpen, E: c.GapExtend}
}

// Result is one alignment.
type Result struct {
	// Distance is the unit-cost edit distance realized by the alignment.
	Distance int
	// Score is the alignment's affine-gap score under the configured
	// penalties (higher is better).
	Score int
	// Cigar is the extended CIGAR string (=, X, I, D operations).
	Cigar string
	// RefConsumed is how many reference bases the alignment covers; the
	// GenASM algorithms treat trailing reference as candidate-region
	// slack, the global aligners always consume everything.
	RefConsumed int
}

// Aligner aligns query sequences against candidate reference regions.
// An Aligner is NOT safe for concurrent use (the GenASM kernels keep
// per-aligner scratch); create one per goroutine, or use AlignBatch.
type Aligner struct {
	cfg  Config
	impl func(q, t []byte) (Result, error)
}

// New builds an Aligner for cfg.
//
// Deprecated: new code should construct an Engine with NewEngine, which
// pools aligners and adds batch, streaming and backend selection on top
// of the same kernels. New remains the single-goroutine building block.
func New(cfg Config) (*Aligner, error) {
	cfg.fillDefaults()
	a := &Aligner{cfg: cfg}
	pen := cfg.penalties()
	switch cfg.Algorithm {
	case GenASM:
		g, err := core.New(core.Config{
			W: cfg.WindowSize, O: cfg.Overlap, InitialK: cfg.ErrorK,
			DisableSENE: cfg.DisableSENE, DisableDENT: cfg.DisableDENT, DisableET: cfg.DisableET,
		})
		if err != nil {
			return nil, err
		}
		a.impl = func(q, t []byte) (Result, error) {
			r, err := g.AlignEncoded(q, t)
			if err != nil {
				return Result{}, err
			}
			return Result{Distance: r.Distance, Score: r.Cigar.AffineScore(pen),
				Cigar: r.Cigar.String(), RefConsumed: r.RefConsumed}, nil
		}
	case GenASMUnimproved:
		if cfg.DisableSENE || cfg.DisableDENT || cfg.DisableET {
			return nil, errors.New("genasm: improvement toggles apply to the improved algorithm only")
		}
		g, err := baseline.New(baseline.Config{W: cfg.WindowSize, O: cfg.Overlap, InitialK: cfg.ErrorK})
		if err != nil {
			return nil, err
		}
		a.impl = func(q, t []byte) (Result, error) {
			r, err := g.AlignEncoded(q, t)
			if err != nil {
				return Result{}, err
			}
			return Result{Distance: r.Distance, Score: r.Cigar.AffineScore(pen),
				Cigar: r.Cigar.String(), RefConsumed: r.RefConsumed}, nil
		}
	case Edlib:
		a.impl = func(q, t []byte) (Result, error) {
			d, cg, err := edlib.AlignEncoded(q, t)
			if err != nil {
				return Result{}, err
			}
			return Result{Distance: d, Score: cg.AffineScore(pen),
				Cigar: cg.String(), RefConsumed: len(t)}, nil
		}
	case KSW2:
		p := ksw2.Params{Penalties: pen, BandWidth: cfg.BandWidth}
		a.impl = func(q, t []byte) (Result, error) {
			sc, cg, err := ksw2.GlobalAlignEncoded(q, t, p)
			if err != nil {
				return Result{}, err
			}
			return Result{Distance: cg.EditCost(), Score: sc,
				Cigar: cg.String(), RefConsumed: len(t)}, nil
		}
	case SWG:
		a.impl = func(q, t []byte) (Result, error) {
			sc, cg := swg.AffineAlign(dna.DecodeSeq(q), dna.DecodeSeq(t), pen)
			return Result{Distance: cg.EditCost(), Score: sc,
				Cigar: cg.String(), RefConsumed: len(t)}, nil
		}
	default:
		return nil, fmt.Errorf("genasm: unknown algorithm %q", cfg.Algorithm)
	}
	return a, nil
}

// Config returns the aligner's (default-filled) configuration.
func (a *Aligner) Config() Config { return a.cfg }

// Align aligns query against the candidate reference region ref. Both are
// raw ASCII sequences; non-ACGT characters never match anything.
func (a *Aligner) Align(query, ref []byte) (Result, error) {
	return a.impl(dna.EncodeSeq(query), dna.EncodeSeq(ref))
}

// Pair is one batch alignment job.
type Pair struct {
	Query, Ref []byte
}

// AlignBatch aligns every pair with `threads` goroutines (0 = GOMAXPROCS).
// Results are index-aligned with pairs.
//
// Deprecated: use NewEngine and Engine.AlignBatch, which add context
// cancellation, aligner pooling and backend selection. This shim
// delegates to a throwaway Engine.
func AlignBatch(cfg Config, pairs []Pair, threads int) ([]Result, error) {
	eng, err := NewEngine(WithConfig(cfg), WithThreads(threads))
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow deprecated pre-Engine shim has no ctx parameter to thread; callers wanting cancellation migrate to Engine.AlignBatch
	return eng.AlignBatch(context.Background(), pairs)
}
