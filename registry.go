package genasm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrQueryTooLong is the sentinel wrapped by every over-length query
// rejection (the WithMaxQueryLen admission guardrail and any backend
// Capabilities.MaxQueryLen limit). Callers match it with errors.Is to
// distinguish an admission failure from an alignment failure — the HTTP
// layer maps it to a 4xx instead of a generic 500.
var ErrQueryTooLong = errors.New("genasm: query too long")

// Capabilities describes a Backend's execution envelope. Admission
// control and batch schedulers size themselves from it instead of
// special-casing backend kinds.
type Capabilities struct {
	// MaxQueryLen is the longest query the backend can align (0 = no
	// structural limit). The Engine enforces the tighter of this and the
	// WithMaxQueryLen guardrail, wrapping rejections in ErrQueryTooLong.
	MaxQueryLen int `json:"max_query_len"`
	// PreferredBatch is the batch size the backend is most efficient at
	// (0 = no preference): the CPU backend amortizes its aligner pool
	// across a few pairs per worker, the GPU backend wants one full wave
	// of resident blocks, a composite backend wants the sum of its
	// children's preferences. The serving scheduler uses it as its
	// default flush threshold.
	PreferredBatch int `json:"preferred_batch"`
	// Parallelism is how many alignments the backend executes
	// concurrently (CPU worker count, GPU resident blocks, the sum over
	// a composite's children). The multi backend shards batches
	// proportionally to its children's Parallelism.
	Parallelism int `json:"parallelism"`
}

// BackendStats is a backend's cumulative operational snapshot, generic
// across kinds (the device-specific Engine.GPUStats is a deprecated shim
// over this).
type BackendStats struct {
	// Name is the backend's resolved name (e.g. "cpu", "multi(cpu,gpu)").
	Name string `json:"name"`
	// Batches counts AlignBatch executions; Pairs counts every pair
	// aligned, including single-pair fast-path calls that bypass batch
	// assembly (so Pairs/Batches stays a batching-efficiency signal,
	// Pairs alone the work done).
	Batches uint64 `json:"batches"`
	Pairs   uint64 `json:"pairs"`
	// Shards counts child dispatches performed by a composite backend
	// (zero for leaf backends).
	Shards uint64 `json:"shards,omitempty"`
	// GPU holds the most recent simulated device launch when the backend
	// is device-backed, nil otherwise.
	GPU *GPUStats `json:"gpu,omitempty"`
	// Children holds per-child snapshots for composite backends.
	Children []BackendStats `json:"children,omitempty"`
}

// findGPU returns the first device-launch stats found in this snapshot
// or its children (depth-first), mirroring the deprecated GPUStats shim.
func (s BackendStats) findGPU() (GPUStats, bool) {
	if s.GPU != nil {
		return *s.GPU, true
	}
	for _, c := range s.Children {
		if st, ok := c.findGPU(); ok {
			return st, true
		}
	}
	return GPUStats{}, false
}

// Backend executes alignment batches for an Engine. Implementations must
// be safe for concurrent use and must produce bit-identical Results for
// the same Config (the paper's CPU/GPU equivalence claim, extended to
// every registered backend).
//
// cfg is the engine's default-filled configuration — the same value the
// backend's Factory received. It travels with every call so composite
// backends can forward it to children and configuration-free backends
// can specialize per batch; leaf backends constructed for one Config may
// ignore it.
type Backend interface {
	AlignBatch(ctx context.Context, cfg Config, pairs []Pair) ([]Result, error)
	Capabilities() Capabilities
	Stats() BackendStats
}

// BackendOptions carries engine-level tuning to every Factory.
type BackendOptions struct {
	// Threads is the engine's worker count: the cpu backend's AlignBatch
	// fan-out, forwarded unchanged to a composite's children. Always
	// >= 1 by the time a factory sees it.
	Threads int
	// GPUBlocksPerSM is the WithGPUBlocksPerSM occupancy target (0 =
	// backend default).
	GPUBlocksPerSM int
}

// Factory builds a Backend instance for an Engine, database/sql-driver
// style. name is the full backend spec the engine was asked for — for a
// parameterized backend like "multi(cpu,gpu)" the registry resolves the
// base name before the parenthesis and hands the factory the whole spec
// (its DSN). cfg is default-filled; factories must validate eagerly so a
// constructed Backend never fails on configuration grounds afterwards.
type Factory func(name string, cfg Config, opts BackendOptions) (Backend, error)

var (
	backendsMu sync.RWMutex
	backends   = make(map[string]Factory)
)

// Register makes a backend factory available to NewEngine under name
// (resolved by WithBackendName and every cmd's -backend flag). It is
// typically called from an init function. Register panics on an empty or
// duplicate name, a name containing "(", or a nil factory — programmer
// errors, as in database/sql.Register.
func Register(name string, factory Factory) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if name == "" {
		panic("genasm: Register backend with empty name")
	}
	if strings.ContainsAny(name, "()") {
		panic(fmt.Sprintf("genasm: Register backend %q: parameterized specs are resolved by base name; register the base name only", name))
	}
	if factory == nil {
		panic(fmt.Sprintf("genasm: Register backend %q with nil factory", name))
	}
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("genasm: Register called twice for backend %q", name))
	}
	backends[name] = factory
}

// Backends returns the sorted names of all registered backends. CLI
// flags and the server's /backends endpoint list it so valid names are
// discoverable instead of hardcoded.
func Backends() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BackendUsage builds a -backend flag help string from the registry, so
// every binary's usage output lists the currently valid names without
// hardcoding them.
func BackendUsage() string {
	return "execution backend: " + strings.Join(Backends(), " | ") +
		" (multi shards across children, e.g. multi(cpu,gpu))"
}

// baseBackendName splits a backend spec into its registry base name:
// "multi(cpu,gpu)" resolves under "multi", a plain name under itself.
func baseBackendName(spec string) string {
	if i := strings.IndexByte(spec, '('); i >= 0 {
		return spec[:i]
	}
	return spec
}

// openBackend resolves spec through the registry and constructs the
// backend. Unknown names list every registered name, so a typo in a
// -backend flag or WithBackendName call is self-diagnosing.
func openBackend(spec string, cfg Config, opts BackendOptions) (Backend, error) {
	backendsMu.RLock()
	factory, ok := backends[baseBackendName(spec)]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("genasm: unknown backend %q (registered: %s)",
			spec, strings.Join(Backends(), ", "))
	}
	return factory(spec, cfg, opts)
}

// leafFactory wraps a parameter-free backend constructor, rejecting
// parameterized specs: "cpu(8)" resolves by base name to the cpu
// factory, and silently dropping the "(8)" would let a typo configure
// nothing while still renaming the engine (fingerprints, metrics).
func leafFactory(name string, build func(cfg Config, opts BackendOptions) (Backend, error)) Factory {
	return func(spec string, cfg Config, opts BackendOptions) (Backend, error) {
		if spec != name {
			return nil, fmt.Errorf("genasm: backend %q takes no parameters (got spec %q)", name, spec)
		}
		return build(cfg, opts)
	}
}

func init() {
	Register("cpu", leafFactory("cpu", func(cfg Config, opts BackendOptions) (Backend, error) {
		return newCPUBackend(cfg, opts.Threads)
	}))
	Register("gpu", leafFactory("gpu", func(cfg Config, opts BackendOptions) (Backend, error) {
		return newGPUBackend(cfg, opts.GPUBlocksPerSM)
	}))
	Register("multi", func(spec string, cfg Config, opts BackendOptions) (Backend, error) {
		return newMultiBackend(spec, cfg, opts)
	})
}
