package genasm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BackendKind enumerates the two built-in leaf backends.
//
// Deprecated: backends are now resolved by registered name (see Register
// and WithBackendName); BackendKind remains only so pre-registry callers
// keep compiling. It cannot name the "multi" composite or any
// third-party backend.
type BackendKind int

const (
	// CPU executes alignments on pooled per-goroutine aligners.
	CPU BackendKind = iota
	// GPU executes alignments on the simulated SIMT device (an NVIDIA
	// A6000 model; see internal/gpu). Functional results are bit-identical
	// to the CPU backend for the same configuration.
	GPU
)

func (k BackendKind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("backend(%d)", int(k))
	}
}

// engineSettings collects everything the functional options configure.
type engineSettings struct {
	cfg         Config
	backendName string
	threads     int
	mapper      *Mapper
	maxQueryLen int
	allCands    bool
	blocksPerSM int
}

// Option configures an Engine; see the With* constructors.
type Option func(*engineSettings)

// WithAlgorithm selects the aligner implementation (default GenASM).
func WithAlgorithm(a Algorithm) Option {
	return func(s *engineSettings) { s.cfg.Algorithm = a }
}

// WithBackendName selects the execution backend by its registered name
// (default "cpu"). Built-ins are "cpu", "gpu" (GenASM algorithms only)
// and the sharding composite "multi" — parameterizable as
// "multi(cpu,gpu)" or any other registered child list. Backends()
// enumerates every valid name; an unknown name fails NewEngine with the
// valid names in the error.
func WithBackendName(name string) Option {
	return func(s *engineSettings) { s.backendName = name }
}

// WithBackend selects the execution backend by enum kind.
//
// Deprecated: use WithBackendName, which can also name registered
// third-party and composite backends. This shim resolves k.String()
// through the same registry.
func WithBackend(k BackendKind) Option {
	return WithBackendName(k.String())
}

// WithWindow sets the GenASM window geometry: window size w, overlap o and
// per-window error budget k (zero values take the paper defaults 64/24/12).
func WithWindow(w, o, k int) Option {
	return func(s *engineSettings) {
		s.cfg.WindowSize, s.cfg.Overlap, s.cfg.ErrorK = w, o, k
	}
}

// WithScoring sets the affine-gap scoring parameters used for Result.Score
// (and by the KSW2/SWG aligners): match bonus, mismatch penalty, gap-open
// and gap-extend penalties. Zero values take the minimap2 defaults 2/4/4/2.
func WithScoring(match, mismatch, gapOpen, gapExtend int) Option {
	return func(s *engineSettings) {
		s.cfg.MatchScore, s.cfg.MismatchPenalty = match, mismatch
		s.cfg.GapOpen, s.cfg.GapExtend = gapOpen, gapExtend
	}
}

// WithBandWidth bounds the KSW2 band (0 = minimap2's 500).
func WithBandWidth(n int) Option {
	return func(s *engineSettings) { s.cfg.BandWidth = n }
}

// WithAblation disables individual GenASM improvements for ablation
// studies (improved GenASM on the CPU backend only).
func WithAblation(disableSENE, disableDENT, disableET bool) Option {
	return func(s *engineSettings) {
		s.cfg.DisableSENE, s.cfg.DisableDENT, s.cfg.DisableET = disableSENE, disableDENT, disableET
	}
}

// WithThreads sets the worker count (default GOMAXPROCS): the CPU
// backend's AlignBatch fan-out, and the MapAlign pipeline's map/align
// worker count on either backend.
func WithThreads(n int) Option {
	return func(s *engineSettings) { s.threads = n }
}

// WithMapper attaches a candidate-location mapper, enabling MapAlign.
func WithMapper(m *Mapper) Option {
	return func(s *engineSettings) { s.mapper = m }
}

// WithAllCandidates makes MapAlign align a read against every candidate
// location (minimap2 -P style) instead of only the best one.
func WithAllCandidates(all bool) Option {
	return func(s *engineSettings) { s.allCands = all }
}

// WithMaxQueryLen rejects queries longer than n bases (0 = unlimited):
// AlignBatch fails the batch, MapAlign surfaces a per-read error. A
// production guardrail against unbounded per-request work.
func WithMaxQueryLen(n int) Option {
	return func(s *engineSettings) { s.maxQueryLen = n }
}

// WithGPUBlocksPerSM sets the GPU backend's target blocks per SM,
// trading occupancy against per-block shared memory (default 8).
func WithGPUBlocksPerSM(n int) Option {
	return func(s *engineSettings) { s.blocksPerSM = n }
}

// WithConfig seeds every aligner parameter from a legacy Config; later
// options still apply on top. A migration bridge for pre-Engine callers.
func WithConfig(cfg Config) Option {
	return func(s *engineSettings) { s.cfg = cfg }
}

// Engine is a concurrency-safe, context-aware alignment service. One
// Engine can serve any number of concurrent AlignBatch / MapAlign /
// Align calls; construction validates the whole configuration eagerly,
// so a non-nil Engine never fails on configuration grounds afterwards.
type Engine struct {
	cfg         Config
	beName      string
	threads     int
	mapper      *Mapper
	maxQueryLen int // effective limit: WithMaxQueryLen tightened by backend capabilities
	allCands    bool
	be          Backend
	caps        Capabilities
}

// NewEngine builds an Engine from functional options. The zero-option
// call yields improved GenASM on the CPU backend with paper parameters.
// The backend name is resolved through the package registry (see
// Register); an unknown name fails with every valid name in the error.
func NewEngine(opts ...Option) (*Engine, error) {
	var s engineSettings
	for _, o := range opts {
		o(&s)
	}
	cfg := s.cfg
	cfg.fillDefaults()
	if s.threads <= 0 {
		s.threads = runtime.GOMAXPROCS(0)
	}
	if s.backendName == "" {
		s.backendName = "cpu"
	}
	be, err := openBackend(s.backendName, cfg, BackendOptions{
		Threads:        s.threads,
		GPUBlocksPerSM: s.blocksPerSM,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		beName:      s.backendName,
		threads:     s.threads,
		mapper:      s.mapper,
		maxQueryLen: s.maxQueryLen,
		allCands:    s.allCands,
		be:          be,
		caps:        be.Capabilities(),
	}
	// The admission guardrail is the tighter of the user's WithMaxQueryLen
	// and the backend's structural limit, so MaxQueryLen is the one number
	// admission layers need.
	if e.caps.MaxQueryLen > 0 && (e.maxQueryLen == 0 || e.caps.MaxQueryLen < e.maxQueryLen) {
		e.maxQueryLen = e.caps.MaxQueryLen
	}
	return e, nil
}

// Config returns the engine's default-filled aligner configuration.
func (e *Engine) Config() Config { return e.cfg }

// BackendName reports the backend spec the engine resolved (e.g. "cpu",
// "multi(cpu,gpu)").
func (e *Engine) BackendName() string { return e.beName }

// Capabilities reports the engine's backend execution envelope. Batch
// schedulers size their flush threshold from PreferredBatch instead of
// special-casing backend kinds.
func (e *Engine) Capabilities() Capabilities { return e.caps }

// Backend reports which built-in backend the engine runs on.
//
// Deprecated: use BackendName; the enum cannot represent composite or
// third-party backends (anything that is not the built-in GPU backend
// reports CPU).
func (e *Engine) Backend() BackendKind {
	if e.beName == "gpu" {
		return GPU
	}
	return CPU
}

// MaxQueryLen reports the engine's effective query-length limit (0 =
// unlimited): the tighter of the WithMaxQueryLen guardrail and the
// backend's Capabilities.MaxQueryLen. Batch admission layers use it to
// reject an over-long query up front rather than let it fail a whole
// all-or-nothing batch.
func (e *Engine) MaxQueryLen() int { return e.maxQueryLen }

// Fingerprint returns a deterministic string identifying every parameter
// that affects this engine's observable behaviour: algorithm, window
// geometry, ablation toggles, scoring, band width, backend, candidate
// policy, and the MaxQueryLen admission guardrail (which decides whether
// a query errors instead of aligning). Two engines with equal
// fingerprints produce bit-identical Results for the same input, so the
// fingerprint is a safe result-cache key component (the serving layer
// relies on this).
func (e *Engine) Fingerprint() string {
	c := e.cfg
	return fmt.Sprintf("algo=%s;w=%d;o=%d;k=%d;abl=%t%t%t;sc=%d/%d/%d/%d;band=%d;be=%s;all=%t;maxq=%d",
		c.Algorithm, c.WindowSize, c.Overlap, c.ErrorK,
		c.DisableSENE, c.DisableDENT, c.DisableET,
		c.MatchScore, c.MismatchPenalty, c.GapOpen, c.GapExtend,
		c.BandWidth, e.beName, e.allCands, e.maxQueryLen)
}

// BackendStats returns the backend's cumulative operational snapshot:
// batches and pairs executed, per-child breakdowns for composite
// backends, and the most recent device launch when one exists.
func (e *Engine) BackendStats() BackendStats { return e.be.Stats() }

// GPUStats returns the simulated-device stats of the most recent launch.
// The second return is false on a backend with no device (or device-backed
// child) and before any launch.
//
// Deprecated: use BackendStats, which is generic across backends; this
// shim returns the first device launch found in that snapshot.
func (e *Engine) GPUStats() (GPUStats, bool) { return e.be.Stats().findGPU() }

func (e *Engine) checkQuery(q []byte) error {
	if e.maxQueryLen > 0 && len(q) > e.maxQueryLen {
		return fmt.Errorf("query length %d exceeds limit %d: %w", len(q), e.maxQueryLen, ErrQueryTooLong)
	}
	return nil
}

// runBatch executes pairs on the backend and enforces the index-aligned
// result contract, so a misbehaving third-party backend fails loudly
// instead of panicking a pipeline worker or truncating silently.
func (e *Engine) runBatch(ctx context.Context, pairs []Pair) ([]Result, error) {
	results, err := e.be.AlignBatch(ctx, e.cfg, pairs)
	if err != nil {
		return nil, err
	}
	if len(results) != len(pairs) {
		return nil, fmt.Errorf("genasm: backend %q returned %d results for %d pairs",
			e.beName, len(results), len(pairs))
	}
	return results, nil
}

// alignOne runs a single pair on the backend, through its fast path when
// it has one.
func (e *Engine) alignOne(ctx context.Context, p Pair) (Result, error) {
	if s, ok := e.be.(singlePairAligner); ok {
		return s.alignOne(ctx, p)
	}
	res, err := e.runBatch(ctx, []Pair{p})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// Align aligns one query against one candidate reference region. Both are
// raw ASCII sequences; non-ACGT characters never match anything.
func (e *Engine) Align(ctx context.Context, query, ref []byte) (Result, error) {
	if err := e.checkQuery(query); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return e.alignOne(ctx, Pair{Query: query, Ref: ref})
}

// AlignBatch aligns every pair and returns index-aligned results. The
// batch is all-or-nothing: the first per-pair failure (or context
// cancellation) fails the whole call. For per-item error semantics use
// MapAlign.
func (e *Engine) AlignBatch(ctx context.Context, pairs []Pair) ([]Result, error) {
	for i := range pairs {
		if err := e.checkQuery(pairs[i].Query); err != nil {
			return nil, fmt.Errorf("pair %d: %w", i, err)
		}
	}
	return e.runBatch(ctx, pairs)
}

// Read is one input to the streaming MapAlign pipeline.
type Read struct {
	Name string
	Seq  []byte
	// Qual holds per-base Phred+33 qualities when the read came from
	// FASTQ; it may be nil (FASTA input) and is carried through the
	// pipeline untouched for output formats that want it (SAM).
	Qual []byte
}

// StreamReads adapts a slice to the channel MapAlign consumes. The
// returned channel is fully buffered and already closed to new sends, so
// abandoning it leaks nothing.
func StreamReads(reads []Read) <-chan Read {
	ch := make(chan Read, len(reads))
	for _, r := range reads {
		ch <- r
	}
	close(ch)
	return ch
}

// MappedAlignment is one emission of the MapAlign pipeline.
type MappedAlignment struct {
	// ReadIndex is the read's position in the input stream; emissions are
	// ordered by ReadIndex, then Rank.
	ReadIndex int
	Read      Read
	// Unmapped is set when the mapper found no candidate location.
	Unmapped bool
	// Candidate and Rank identify the aligned candidate location
	// (Rank 0 = best) when the read mapped.
	Candidate CandidateRegion
	Rank      int
	// Candidates is how many candidate locations the mapper found for
	// this read in total, even when only the best was aligned.
	Candidates int
	// SecondaryScore is the chain score of the read's runner-up candidate
	// location (0 when there was no second candidate). Together with
	// Candidate.Score it lets consumers derive a mapping-quality estimate
	// without re-running the mapper.
	SecondaryScore float64
	// Result is the alignment, valid when Err is nil and Unmapped is
	// false.
	Result Result
	// Err is this item's failure; other reads in the stream are
	// unaffected.
	Err error
}

// MapAlign runs the full map-then-align pipeline as a stream: each read
// is located with the engine's Mapper, its best candidate (or every
// candidate, with WithAllCandidates) is aligned on the engine's backend,
// and results are emitted in input order with per-item errors (an error
// affects all of its read's emissions, never other reads). The returned
// channel is closed when the input is exhausted or ctx is cancelled;
// after a cancellation the consumer should check ctx.Err().
//
// On the GPU backend each read becomes one simulated device launch (its
// candidates batched together); for maximum device throughput collect
// pairs and call AlignBatch instead.
func (e *Engine) MapAlign(ctx context.Context, reads <-chan Read) (<-chan MappedAlignment, error) {
	if e.mapper == nil {
		return nil, errors.New("genasm: MapAlign requires a mapper (use WithMapper)")
	}
	type indexedRead struct {
		idx int
		rd  Read
	}
	type item struct {
		idx  int
		mals []MappedAlignment
	}
	jobs := make(chan indexedRead)
	items := make(chan item, e.threads)
	out := make(chan MappedAlignment, e.threads)

	// Feeder: index the stream.
	go func() {
		defer close(jobs)
		idx := 0
		for {
			select {
			case rd, ok := <-reads:
				if !ok {
					return
				}
				select {
				case jobs <- indexedRead{idx, rd}:
					idx++
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: map and align each read independently.
	var wg sync.WaitGroup
	for t := 0; t < e.threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				mals := e.mapAlignOne(ctx, j.idx, j.rd)
				select {
				case items <- item{j.idx, mals}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(items)
	}()

	// Reorderer: restore input order before emission.
	go func() {
		defer close(out)
		pending := make(map[int][]MappedAlignment)
		next := 0
		for it := range items {
			pending[it.idx] = it.mals
			for {
				mals, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for _, m := range mals {
					select {
					case out <- m:
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out, nil
}

// mapAlignOne processes a single read; failures are confined to the
// returned items. All of the read's candidates go to the backend as one
// batch, so on the GPU a read is one simulated launch, not one per
// candidate.
func (e *Engine) mapAlignOne(ctx context.Context, idx int, rd Read) []MappedAlignment {
	base := MappedAlignment{ReadIndex: idx, Read: rd}
	if err := e.checkQuery(rd.Seq); err != nil {
		base.Err = fmt.Errorf("read %q: %w", rd.Name, err)
		return []MappedAlignment{base}
	}
	cands := e.mapper.Candidates(rd.Seq)
	if len(cands) == 0 {
		base.Unmapped = true
		return []MappedAlignment{base}
	}
	base.Candidates = len(cands)
	if len(cands) > 1 {
		base.SecondaryScore = cands[1].Score
	}
	if !e.allCands {
		cands = cands[:1]
	}
	var rc []byte // lazily computed reverse complement
	pairs := make([]Pair, len(cands))
	out := make([]MappedAlignment, len(cands))
	for i, c := range cands {
		q := rd.Seq
		if c.RevComp {
			if rc == nil {
				rc = ReverseComplement(rd.Seq)
			}
			q = rc
		}
		pairs[i] = Pair{Query: q, Ref: e.mapper.Region(c)}
		out[i] = base
		out[i].Candidate, out[i].Rank = c, i
	}
	var results []Result
	var err error
	if len(pairs) == 1 {
		var r Result
		r, err = e.alignOne(ctx, pairs[0])
		results = []Result{r}
	} else {
		results, err = e.runBatch(ctx, pairs)
	}
	if err != nil {
		err = fmt.Errorf("read %q: %w", rd.Name, err)
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i := range out {
		out[i].Result = results[i]
	}
	return out
}
