package genasm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BackendKind selects where an Engine executes alignments.
type BackendKind int

const (
	// CPU executes alignments on pooled per-goroutine aligners.
	CPU BackendKind = iota
	// GPU executes alignments on the simulated SIMT device (an NVIDIA
	// A6000 model; see internal/gpu). Functional results are bit-identical
	// to the CPU backend for the same configuration.
	GPU
)

func (k BackendKind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("backend(%d)", int(k))
	}
}

// engineSettings collects everything the functional options configure.
type engineSettings struct {
	cfg         Config
	backend     BackendKind
	threads     int
	mapper      *Mapper
	maxQueryLen int
	allCands    bool
	blocksPerSM int
}

// Option configures an Engine; see the With* constructors.
type Option func(*engineSettings)

// WithAlgorithm selects the aligner implementation (default GenASM).
func WithAlgorithm(a Algorithm) Option {
	return func(s *engineSettings) { s.cfg.Algorithm = a }
}

// WithBackend selects the execution backend (default CPU). The GPU backend
// supports the GenASM algorithms only.
func WithBackend(k BackendKind) Option {
	return func(s *engineSettings) { s.backend = k }
}

// WithWindow sets the GenASM window geometry: window size w, overlap o and
// per-window error budget k (zero values take the paper defaults 64/24/12).
func WithWindow(w, o, k int) Option {
	return func(s *engineSettings) {
		s.cfg.WindowSize, s.cfg.Overlap, s.cfg.ErrorK = w, o, k
	}
}

// WithScoring sets the affine-gap scoring parameters used for Result.Score
// (and by the KSW2/SWG aligners): match bonus, mismatch penalty, gap-open
// and gap-extend penalties. Zero values take the minimap2 defaults 2/4/4/2.
func WithScoring(match, mismatch, gapOpen, gapExtend int) Option {
	return func(s *engineSettings) {
		s.cfg.MatchScore, s.cfg.MismatchPenalty = match, mismatch
		s.cfg.GapOpen, s.cfg.GapExtend = gapOpen, gapExtend
	}
}

// WithBandWidth bounds the KSW2 band (0 = minimap2's 500).
func WithBandWidth(n int) Option {
	return func(s *engineSettings) { s.cfg.BandWidth = n }
}

// WithAblation disables individual GenASM improvements for ablation
// studies (improved GenASM on the CPU backend only).
func WithAblation(disableSENE, disableDENT, disableET bool) Option {
	return func(s *engineSettings) {
		s.cfg.DisableSENE, s.cfg.DisableDENT, s.cfg.DisableET = disableSENE, disableDENT, disableET
	}
}

// WithThreads sets the worker count (default GOMAXPROCS): the CPU
// backend's AlignBatch fan-out, and the MapAlign pipeline's map/align
// worker count on either backend.
func WithThreads(n int) Option {
	return func(s *engineSettings) { s.threads = n }
}

// WithMapper attaches a candidate-location mapper, enabling MapAlign.
func WithMapper(m *Mapper) Option {
	return func(s *engineSettings) { s.mapper = m }
}

// WithAllCandidates makes MapAlign align a read against every candidate
// location (minimap2 -P style) instead of only the best one.
func WithAllCandidates(all bool) Option {
	return func(s *engineSettings) { s.allCands = all }
}

// WithMaxQueryLen rejects queries longer than n bases (0 = unlimited):
// AlignBatch fails the batch, MapAlign surfaces a per-read error. A
// production guardrail against unbounded per-request work.
func WithMaxQueryLen(n int) Option {
	return func(s *engineSettings) { s.maxQueryLen = n }
}

// WithGPUBlocksPerSM sets the GPU backend's target blocks per SM,
// trading occupancy against per-block shared memory (default 8).
func WithGPUBlocksPerSM(n int) Option {
	return func(s *engineSettings) { s.blocksPerSM = n }
}

// WithConfig seeds every aligner parameter from a legacy Config; later
// options still apply on top. A migration bridge for pre-Engine callers.
func WithConfig(cfg Config) Option {
	return func(s *engineSettings) { s.cfg = cfg }
}

// Engine is a concurrency-safe, context-aware alignment service. One
// Engine can serve any number of concurrent AlignBatch / MapAlign /
// Align calls; construction validates the whole configuration eagerly,
// so a non-nil Engine never fails on configuration grounds afterwards.
type Engine struct {
	cfg         Config
	kind        BackendKind
	threads     int
	mapper      *Mapper
	maxQueryLen int
	allCands    bool
	be          backend
}

// NewEngine builds an Engine from functional options. The zero-option
// call yields improved GenASM on the CPU backend with paper parameters.
func NewEngine(opts ...Option) (*Engine, error) {
	var s engineSettings
	for _, o := range opts {
		o(&s)
	}
	cfg := s.cfg
	cfg.fillDefaults()
	if s.threads <= 0 {
		s.threads = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:         cfg,
		kind:        s.backend,
		threads:     s.threads,
		mapper:      s.mapper,
		maxQueryLen: s.maxQueryLen,
		allCands:    s.allCands,
	}
	var err error
	switch s.backend {
	case CPU:
		e.be, err = newCPUBackend(cfg, s.threads)
	case GPU:
		e.be, err = newGPUBackend(cfg, s.blocksPerSM)
	default:
		err = fmt.Errorf("genasm: unknown backend %v", s.backend)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the engine's default-filled aligner configuration.
func (e *Engine) Config() Config { return e.cfg }

// Backend reports which backend the engine runs on.
func (e *Engine) Backend() BackendKind { return e.kind }

// MaxQueryLen reports the engine's query-length guardrail (0 = unlimited).
// Batch admission layers use it to reject an over-long query up front
// rather than let it fail a whole all-or-nothing batch.
func (e *Engine) MaxQueryLen() int { return e.maxQueryLen }

// Fingerprint returns a deterministic string identifying every parameter
// that affects this engine's observable behaviour: algorithm, window
// geometry, ablation toggles, scoring, band width, backend, candidate
// policy, and the MaxQueryLen admission guardrail (which decides whether
// a query errors instead of aligning). Two engines with equal
// fingerprints produce bit-identical Results for the same input, so the
// fingerprint is a safe result-cache key component (the serving layer
// relies on this).
func (e *Engine) Fingerprint() string {
	c := e.cfg
	return fmt.Sprintf("algo=%s;w=%d;o=%d;k=%d;abl=%t%t%t;sc=%d/%d/%d/%d;band=%d;be=%s;all=%t;maxq=%d",
		c.Algorithm, c.WindowSize, c.Overlap, c.ErrorK,
		c.DisableSENE, c.DisableDENT, c.DisableET,
		c.MatchScore, c.MismatchPenalty, c.GapOpen, c.GapExtend,
		c.BandWidth, e.kind, e.allCands, e.maxQueryLen)
}

// GPUStats returns the simulated-device stats of the most recent launch.
// The second return is false on the CPU backend or before any launch.
func (e *Engine) GPUStats() (GPUStats, bool) { return e.be.gpuStats() }

func (e *Engine) checkQuery(q []byte) error {
	if e.maxQueryLen > 0 && len(q) > e.maxQueryLen {
		return fmt.Errorf("genasm: query length %d exceeds limit %d", len(q), e.maxQueryLen)
	}
	return nil
}

// Align aligns one query against one candidate reference region. Both are
// raw ASCII sequences; non-ACGT characters never match anything.
func (e *Engine) Align(ctx context.Context, query, ref []byte) (Result, error) {
	if err := e.checkQuery(query); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return e.be.align(ctx, Pair{Query: query, Ref: ref})
}

// AlignBatch aligns every pair and returns index-aligned results. The
// batch is all-or-nothing: the first per-pair failure (or context
// cancellation) fails the whole call. For per-item error semantics use
// MapAlign.
func (e *Engine) AlignBatch(ctx context.Context, pairs []Pair) ([]Result, error) {
	for i := range pairs {
		if err := e.checkQuery(pairs[i].Query); err != nil {
			return nil, fmt.Errorf("pair %d: %w", i, err)
		}
	}
	return e.be.alignBatch(ctx, pairs)
}

// Read is one input to the streaming MapAlign pipeline.
type Read struct {
	Name string
	Seq  []byte
	// Qual holds per-base Phred+33 qualities when the read came from
	// FASTQ; it may be nil (FASTA input) and is carried through the
	// pipeline untouched for output formats that want it (SAM).
	Qual []byte
}

// StreamReads adapts a slice to the channel MapAlign consumes. The
// returned channel is fully buffered and already closed to new sends, so
// abandoning it leaks nothing.
func StreamReads(reads []Read) <-chan Read {
	ch := make(chan Read, len(reads))
	for _, r := range reads {
		ch <- r
	}
	close(ch)
	return ch
}

// MappedAlignment is one emission of the MapAlign pipeline.
type MappedAlignment struct {
	// ReadIndex is the read's position in the input stream; emissions are
	// ordered by ReadIndex, then Rank.
	ReadIndex int
	Read      Read
	// Unmapped is set when the mapper found no candidate location.
	Unmapped bool
	// Candidate and Rank identify the aligned candidate location
	// (Rank 0 = best) when the read mapped.
	Candidate CandidateRegion
	Rank      int
	// Candidates is how many candidate locations the mapper found for
	// this read in total, even when only the best was aligned.
	Candidates int
	// SecondaryScore is the chain score of the read's runner-up candidate
	// location (0 when there was no second candidate). Together with
	// Candidate.Score it lets consumers derive a mapping-quality estimate
	// without re-running the mapper.
	SecondaryScore float64
	// Result is the alignment, valid when Err is nil and Unmapped is
	// false.
	Result Result
	// Err is this item's failure; other reads in the stream are
	// unaffected.
	Err error
}

// MapAlign runs the full map-then-align pipeline as a stream: each read
// is located with the engine's Mapper, its best candidate (or every
// candidate, with WithAllCandidates) is aligned on the engine's backend,
// and results are emitted in input order with per-item errors (an error
// affects all of its read's emissions, never other reads). The returned
// channel is closed when the input is exhausted or ctx is cancelled;
// after a cancellation the consumer should check ctx.Err().
//
// On the GPU backend each read becomes one simulated device launch (its
// candidates batched together); for maximum device throughput collect
// pairs and call AlignBatch instead.
func (e *Engine) MapAlign(ctx context.Context, reads <-chan Read) (<-chan MappedAlignment, error) {
	if e.mapper == nil {
		return nil, errors.New("genasm: MapAlign requires a mapper (use WithMapper)")
	}
	type indexedRead struct {
		idx int
		rd  Read
	}
	type item struct {
		idx  int
		mals []MappedAlignment
	}
	jobs := make(chan indexedRead)
	items := make(chan item, e.threads)
	out := make(chan MappedAlignment, e.threads)

	// Feeder: index the stream.
	go func() {
		defer close(jobs)
		idx := 0
		for {
			select {
			case rd, ok := <-reads:
				if !ok {
					return
				}
				select {
				case jobs <- indexedRead{idx, rd}:
					idx++
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: map and align each read independently.
	var wg sync.WaitGroup
	for t := 0; t < e.threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				mals := e.mapAlignOne(ctx, j.idx, j.rd)
				select {
				case items <- item{j.idx, mals}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(items)
	}()

	// Reorderer: restore input order before emission.
	go func() {
		defer close(out)
		pending := make(map[int][]MappedAlignment)
		next := 0
		for it := range items {
			pending[it.idx] = it.mals
			for {
				mals, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for _, m := range mals {
					select {
					case out <- m:
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out, nil
}

// mapAlignOne processes a single read; failures are confined to the
// returned items. All of the read's candidates go to the backend as one
// batch, so on the GPU a read is one simulated launch, not one per
// candidate.
func (e *Engine) mapAlignOne(ctx context.Context, idx int, rd Read) []MappedAlignment {
	base := MappedAlignment{ReadIndex: idx, Read: rd}
	if err := e.checkQuery(rd.Seq); err != nil {
		base.Err = fmt.Errorf("read %q: %w", rd.Name, err)
		return []MappedAlignment{base}
	}
	cands := e.mapper.Candidates(rd.Seq)
	if len(cands) == 0 {
		base.Unmapped = true
		return []MappedAlignment{base}
	}
	base.Candidates = len(cands)
	if len(cands) > 1 {
		base.SecondaryScore = cands[1].Score
	}
	if !e.allCands {
		cands = cands[:1]
	}
	var rc []byte // lazily computed reverse complement
	pairs := make([]Pair, len(cands))
	out := make([]MappedAlignment, len(cands))
	for i, c := range cands {
		q := rd.Seq
		if c.RevComp {
			if rc == nil {
				rc = ReverseComplement(rd.Seq)
			}
			q = rc
		}
		pairs[i] = Pair{Query: q, Ref: e.mapper.Region(c)}
		out[i] = base
		out[i].Candidate, out[i].Rank = c, i
	}
	var results []Result
	var err error
	if len(pairs) == 1 {
		var r Result
		r, err = e.be.align(ctx, pairs[0])
		results = []Result{r}
	} else {
		results, err = e.be.alignBatch(ctx, pairs)
	}
	if err != nil {
		err = fmt.Errorf("read %q: %w", rd.Name, err)
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i := range out {
		out[i].Result = results[i]
	}
	return out
}
