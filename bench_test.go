// Benchmark harness: one target per table/figure in the paper's evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
// discussion).
//
//	BenchmarkE1MemoryFootprint   paper: 24x smaller DP footprint
//	BenchmarkE2MemoryAccesses    paper: 12x fewer DP accesses
//	BenchmarkE3CPUAligners       paper: improved GenASM 15.2x vs KSW2, 1.7x vs Edlib, 1.9x vs unimproved
//	BenchmarkE4GPU               paper: improved GPU 4.1x vs own CPU, 5.9x vs unimproved GPU
//	BenchmarkA1Ablation          per-improvement contribution
//	BenchmarkA2WindowSweep       window geometry sensitivity
//	BenchmarkA3ShortReads        short-read configuration
//
// Custom metrics (footprint-bits, accesses, gpu-pairs/s, ...) carry the
// paper's non-time numbers; ns/op carries the speed comparisons. Run with:
//
//	go test -bench=. -benchmem
package genasm_test

import (
	"context"
	"encoding/json"
	"flag"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"genasm"
	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/edlib"
	"genasm/internal/eval"
	"genasm/internal/gpu"
	"genasm/internal/gpualign"
	"genasm/internal/ksw2"
	"genasm/internal/loadgen"
	"genasm/internal/stats"
	"genasm/server"
	"genasm/server/jobs"
)

var (
	workloadOnce sync.Once
	benchW       *eval.Workload
)

// benchWorkload builds one shared moderate workload: 1 Mb genome, 40 reads
// of ~5 kb at 10% error (the paper's pipeline, scaled to bench runtime).
func benchWorkload(b testing.TB) *eval.Workload {
	b.Helper()
	workloadOnce.Do(func() {
		w, err := eval.BuildWorkload(eval.WorkloadConfig{
			GenomeLen: 1_000_000, Reads: 40, ReadLen: 5_000, ErrorRate: 0.10, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchW = w
	})
	if benchW == nil {
		b.Fatal("workload failed")
	}
	return benchW
}

func alignAllImproved(b *testing.B, w *eval.Workload, cfg core.Config, c *stats.Counters) {
	a, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a.SetCounters(c)
	for _, p := range w.Pairs {
		if _, err := a.AlignEncoded(p.Query, p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

func alignAllUnimproved(b *testing.B, w *eval.Workload, c *stats.Counters) {
	a, err := baseline.New(baseline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a.SetCounters(c)
	for _, p := range w.Pairs {
		if _, err := a.AlignEncoded(p.Query, p.Ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1MemoryFootprint reports the per-window DP footprint (bits) of
// both GenASM variants and their ratio (paper: 24x).
func BenchmarkE1MemoryFootprint(b *testing.B) {
	w := benchWorkload(b)
	var imp, unimp stats.Counters
	for i := 0; i < b.N; i++ {
		imp.Reset()
		unimp.Reset()
		alignAllImproved(b, w, core.DefaultConfig(), &imp)
		alignAllUnimproved(b, w, &unimp)
	}
	b.ReportMetric(imp.MeanWindowFootprintBits(), "improved-footprint-bits")
	b.ReportMetric(unimp.MeanWindowFootprintBits(), "unimproved-footprint-bits")
	b.ReportMetric(unimp.MeanWindowFootprintBits()/imp.MeanWindowFootprintBits(), "footprint-reduction-x")
}

// BenchmarkE2MemoryAccesses reports DP-table word accesses and their ratio
// (paper: 12x).
func BenchmarkE2MemoryAccesses(b *testing.B) {
	w := benchWorkload(b)
	var imp, unimp stats.Counters
	for i := 0; i < b.N; i++ {
		imp.Reset()
		unimp.Reset()
		alignAllImproved(b, w, core.DefaultConfig(), &imp)
		alignAllUnimproved(b, w, &unimp)
	}
	b.ReportMetric(float64(imp.Accesses()), "improved-accesses")
	b.ReportMetric(float64(unimp.Accesses()), "unimproved-accesses")
	b.ReportMetric(float64(unimp.Accesses())/float64(imp.Accesses()), "access-reduction-x")
}

// benchBackends are the registered backend names the engine benchmarks
// sweep: both leaves plus the sharding composite, all through the public
// registry API.
var benchBackends = []string{"cpu", "gpu", "multi(cpu,gpu)"}

// BenchmarkEngineAlignBatch times the public Engine API on every
// built-in backend over the shared workload — the end-to-end path
// production callers hit (pooled aligners, context checks, encode
// included; for multi, the capability-weighted shard split).
func BenchmarkEngineAlignBatch(b *testing.B) {
	w := benchWorkload(b)
	pairs := w.PublicPairs()
	for _, name := range benchBackends {
		b.Run(name, func(b *testing.B) {
			eng, err := genasm.NewEngine(genasm.WithBackendName(name))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.AlignBatch(context.Background(), pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportPairs(b, w)
			if st := eng.BackendStats(); st.Shards > 0 {
				b.ReportMetric(float64(st.Shards)/float64(st.Batches), "shards/batch")
			}
		})
	}
}

// BenchmarkEngineMapAlign times the full streaming map-align pipeline
// (candidate location + best-candidate alignment, ordered emission).
func BenchmarkEngineMapAlign(b *testing.B) {
	w := benchWorkload(b)
	mapper, err := genasm.NewMapper(dna.DecodeSeq(w.Ref))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := genasm.NewEngine(genasm.WithMapper(mapper))
	if err != nil {
		b.Fatal(err)
	}
	reads := make([]genasm.Read, len(w.Reads))
	for i, r := range w.Reads {
		reads[i] = genasm.Read{Name: r.Name, Seq: r.Seq}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.MapAlign(context.Background(), genasm.StreamReads(reads))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for m := range out {
			if m.Err != nil {
				b.Fatal(m.Err)
			}
			n++
		}
		if n != len(reads) {
			b.Fatalf("emitted %d items for %d reads", n, len(reads))
		}
	}
	b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkE3CPUAligners times every CPU aligner on the shared workload;
// comparing sub-benchmark ns/op reproduces the paper's CPU speedup table.
func BenchmarkE3CPUAligners(b *testing.B) {
	w := benchWorkload(b)
	b.Run("GenASM-improved", func(b *testing.B) {
		a, _ := core.New(core.DefaultConfig())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, err := a.AlignEncoded(p.Query, p.Ref); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
	b.Run("GenASM-unimproved", func(b *testing.B) {
		a, _ := baseline.New(baseline.DefaultConfig())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, err := a.AlignEncoded(p.Query, p.Ref); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
	b.Run("Edlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, _, err := edlib.AlignEncoded(p.Query, p.Ref); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
	b.Run("KSW2", func(b *testing.B) {
		params := ksw2.DefaultParams()
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, _, err := ksw2.GlobalAlignEncoded(p.Query, p.Ref, params); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
}

func reportPairs(b *testing.B, w *eval.Workload) {
	b.ReportMetric(float64(len(w.Pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkE4GPU reports the simulated-device time of both GPU kernels;
// the gpu-seconds metrics reproduce the paper's GPU comparison.
func BenchmarkE4GPU(b *testing.B) {
	w := benchWorkload(b)
	for _, algo := range []gpualign.Algorithm{gpualign.Improved, gpualign.Unimproved} {
		b.Run(algo.String(), func(b *testing.B) {
			var last gpualign.BatchResult
			for i := 0; i < b.N; i++ {
				res, err := gpualign.AlignBatch(w.Pairs, gpualign.DefaultConfig(algo))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Launch.Seconds*1e3, "gpu-ms")
			b.ReportMetric(last.Launch.Throughput(), "gpu-pairs/s")
			b.ReportMetric(float64(last.SpilledBlocks), "spilled-blocks")
		})
	}
}

// BenchmarkA1Ablation times each improvement combination (the paper's
// claim: the improvements are what beat Edlib).
func BenchmarkA1Ablation(b *testing.B) {
	w := benchWorkload(b)
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"SENE+DENT+ET", core.DefaultConfig()},
		{"SENE+DENT", func() core.Config { c := core.DefaultConfig(); c.DisableET = true; return c }()},
		{"SENE+ET", func() core.Config { c := core.DefaultConfig(); c.DisableDENT = true; return c }()},
		{"SENE", func() core.Config {
			c := core.DefaultConfig()
			c.DisableDENT, c.DisableET = true, true
			return c
		}()},
		{"none", func() core.Config {
			c := core.DefaultConfig()
			c.DisableSENE, c.DisableDENT, c.DisableET = true, true, true
			return c
		}()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var ctr stats.Counters
			for i := 0; i < b.N; i++ {
				ctr.Reset()
				alignAllImproved(b, w, tc.cfg, &ctr)
			}
			b.ReportMetric(float64(ctr.PeakFootprintBits), "footprint-bits")
			b.ReportMetric(float64(ctr.Accesses()), "accesses")
		})
	}
}

// BenchmarkA2WindowSweep times the window geometry sweep.
func BenchmarkA2WindowSweep(b *testing.B) {
	w := benchWorkload(b)
	for _, geo := range []struct{ W, O, K int }{
		{32, 12, 8}, {64, 24, 12}, {64, 32, 12}, {128, 48, 20},
	} {
		b.Run(
			"W"+itoa(geo.W)+"-O"+itoa(geo.O),
			func(b *testing.B) {
				cfg := core.Config{W: geo.W, O: geo.O, InitialK: geo.K}
				dist := 0
				for i := 0; i < b.N; i++ {
					a, err := core.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					dist = 0
					for _, p := range w.Pairs {
						r, err := a.AlignEncoded(p.Query, p.Ref)
						if err != nil {
							b.Fatal(err)
						}
						dist += r.Distance
					}
				}
				b.ReportMetric(float64(dist)/float64(w.TotalBases), "distance/base")
			})
	}
}

// BenchmarkA3ShortReads times the aligners on an Illumina-like workload.
func BenchmarkA3ShortReads(b *testing.B) {
	w, err := eval.BuildWorkload(eval.WorkloadConfig{
		GenomeLen: 300_000, Reads: 300, ReadLen: 150, ErrorRate: 0.02,
		Seed: 11, ShortReads: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("GenASM-improved", func(b *testing.B) {
		a, _ := core.New(core.DefaultConfig())
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, err := a.AlignEncoded(p.Query, p.Ref); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
	b.Run("Edlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, _, err := edlib.AlignEncoded(p.Query, p.Ref); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
	b.Run("KSW2", func(b *testing.B) {
		params := ksw2.DefaultParams()
		for i := 0; i < b.N; i++ {
			for _, p := range w.Pairs {
				if _, _, err := ksw2.GlobalAlignEncoded(p.Query, p.Ref, params); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportPairs(b, w)
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkA5Occupancy sweeps the GPU kernel's blocks-per-SM target.
func BenchmarkA5Occupancy(b *testing.B) {
	w := benchWorkload(b)
	for _, blocks := range []int{2, 8, 32} {
		b.Run("blocksPerSM-"+itoa(blocks), func(b *testing.B) {
			cfg := gpualign.DefaultConfig(gpualign.Improved)
			cfg.TargetBlocksPerSM = blocks
			var last gpualign.BatchResult
			for i := 0; i < b.N; i++ {
				res, err := gpualign.AlignBatch(w.Pairs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Launch.Seconds*1e3, "gpu-ms")
			b.ReportMetric(float64(last.SpilledBlocks), "spilled-blocks")
		})
	}
}

// BenchmarkA6Devices runs the improved kernel across the device zoo.
func BenchmarkA6Devices(b *testing.B) {
	w := benchWorkload(b)
	for _, dev := range []gpu.DeviceConfig{gpu.A6000(), gpu.A100(), gpu.LaptopGPU()} {
		b.Run(dev.Name, func(b *testing.B) {
			cfg := gpualign.DefaultConfig(gpualign.Improved)
			cfg.Device = dev
			var last gpualign.BatchResult
			for i := 0; i < b.N; i++ {
				res, err := gpualign.AlignBatch(w.Pairs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Launch.Seconds*1e3, "gpu-ms")
		})
	}
}

// benchSchedulerSubmit drives the serving layer's dynamic batcher with
// single-pair submissions from many goroutines — the serving traffic
// shape — so ns/op is the per-request cost including coalescing.
func benchSchedulerSubmit(b *testing.B, pairs []genasm.Pair) *server.Scheduler {
	eng, err := genasm.NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	s := server.NewScheduler(eng, server.SchedulerConfig{
		MaxBatch: 64, MaxDelay: 2 * time.Millisecond, MaxQueue: 1 << 20,
	}, nil)
	b.Cleanup(s.Close)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := pairs[i%len(pairs)]
			if _, err := s.Submit(context.Background(), []genasm.Pair{p}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	return s
}

// BenchmarkSchedulerCoalesce measures the server's dynamic batcher over
// the shared workload: concurrent single-pair requests coalescing into
// backend batches. pairs/batch shows the achieved coalescing.
func BenchmarkSchedulerCoalesce(b *testing.B) {
	w := benchWorkload(b)
	s := benchSchedulerSubmit(b, w.PublicPairs())
	snap := s.Metrics().Snapshot()
	if mean, ok := snap["batch_size_mean"].(float64); ok {
		b.ReportMetric(mean, "pairs/batch")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "alignments/s")
}

// benchJSONPath enables the machine-readable benchmark mode:
//
//	go test -run TestBenchJSON -benchjson BENCH_7.json .
//
// writes a schema-4 report: ns/op and alignments/sec for every built-in
// backend (cpu, gpu and the multi sharding composite) and the serving
// scheduler; a "kernel" section with per-window kernel benches
// (ns/window, DP words touched), an EngineAlignBatch/cpu GOMAXPROCS
// 1/2/4 scaling curve, and the interleaved single-thread before/after
// record of the PR-10 kernel rewrite; plus a "serving" section from a
// short in-process internal/loadgen run over all five load scenarios —
// so the microbenchmark, kernel and serving-latency trajectories are
// all tracked across PRs.
var benchJSONPath = flag.String("benchjson", "", "write machine-readable benchmark results to this file")

// kernelBenchGeometries mirrors internal/core's kernel bench sweep: the
// single-word fast path, the first multi-word width, and a wide window
// whose banded storage is physically packed.
var kernelBenchGeometries = []struct {
	Name    string
	W, O, K int
}{
	{"dc64-w64", 64, 24, 12},
	{"mw-w128", 128, 48, 12},
	{"mw-packed-w200", 200, 50, 12},
}

type kernelEntry struct {
	Name          string  `json:"name"`
	NsPerWindow   float64 `json:"ns_per_window"`
	WordsPerWin   float64 `json:"words_per_window"`
	RowsSkipPerW  float64 `json:"rows_skipped_per_window"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	NsPerOp       int64   `json:"ns_per_op"`
	WindowsPerRun float64 `json:"windows_per_op"`
}

// kernelBenchPair builds one ~10%-substitution window pair, matching
// internal/core's benchPair.
func kernelBenchPair(m int, seed int64) (p, tx []byte) {
	rng := rand.New(rand.NewSource(seed))
	p = make([]byte, m)
	for i := range p {
		p[i] = byte(rng.Intn(4))
	}
	tx = make([]byte, m)
	copy(tx, p)
	for i := 0; i < m/10; i++ {
		tx[rng.Intn(m)] = byte(rng.Intn(4))
	}
	return p, tx
}

// runKernelBench benchmarks fn (which aligns once per iteration through
// an aligner wired to ctr) and converts the counters to per-window rows.
func runKernelBench(t *testing.T, name string, ctr *stats.Counters, fn func(b *testing.B)) kernelEntry {
	t.Helper()
	ctr.Reset()
	r := testing.Benchmark(fn)
	wins := float64(ctr.Windows)
	if wins == 0 {
		t.Fatalf("kernel bench %s aligned no windows", name)
	}
	return kernelEntry{
		Name:          name,
		NsPerWindow:   r.T.Seconds() * 1e9 / wins,
		WordsPerWin:   float64(ctr.TableWrites+ctr.TableReads) / wins,
		RowsSkipPerW:  float64(ctr.RowsSkipped) / wins,
		AllocsPerOp:   r.AllocsPerOp(),
		NsPerOp:       r.NsPerOp(),
		WindowsPerRun: wins / float64(r.N),
	}
}

// kernelSection measures the kernel-level benches (window + pipeline per
// geometry) and the EngineAlignBatch/cpu GOMAXPROCS scaling curve, and
// embeds the static interleaved single-thread A/B of the PR-10 kernel
// rewrite (measured once on one machine in one session, following the
// observability_ab precedent in BENCH_4.json).
func kernelSection(t *testing.T, pairs []genasm.Pair) map[string]any {
	var window, pipeline []kernelEntry
	for _, g := range kernelBenchGeometries {
		var ctr stats.Counters
		p, tx := kernelBenchPair(g.W, 3)
		a, err := core.New(core.Config{W: g.W, O: g.O, InitialK: g.K})
		if err != nil {
			t.Fatal(err)
		}
		a.SetCounters(&ctr)
		window = append(window, runKernelBench(t, g.Name, &ctr, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.AlignWindow(p, tx); err != nil {
					b.Fatal(err)
				}
			}
		}))

		rng := rand.New(rand.NewSource(9))
		ref := make([]byte, 5500)
		for i := range ref {
			ref[i] = byte(rng.Intn(4))
		}
		read := append([]byte(nil), ref[:5000]...)
		for i := range read {
			if rng.Float64() < 0.10 {
				read[i] = byte(rng.Intn(4))
			}
		}
		pa, err := core.New(core.Config{W: g.W, O: g.O, InitialK: g.K})
		if err != nil {
			t.Fatal(err)
		}
		var pctr stats.Counters
		pa.SetCounters(&pctr)
		pipeline = append(pipeline, runKernelBench(t, g.Name, &pctr, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pa.AlignEncoded(read, ref); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// GOMAXPROCS scaling curve over the end-to-end CPU backend. On a
	// single-core CI runner the curve is flat; on wider machines it shows
	// how far the batch path scales.
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	type curveRow struct {
		GOMAXPROCS       int     `json:"gomaxprocs"`
		NsPerOp          int64   `json:"ns_per_op"`
		AlignmentsPerSec float64 `json:"alignments_per_sec"`
	}
	var curve []curveRow
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		eng, err := genasm.NewEngine(genasm.WithBackendName("cpu"))
		if err != nil {
			t.Fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.AlignBatch(context.Background(), pairs); err != nil {
					b.Fatal(err)
				}
			}
		})
		curve = append(curve, curveRow{
			GOMAXPROCS:       procs,
			NsPerOp:          r.NsPerOp(),
			AlignmentsPerSec: float64(len(pairs)) * float64(r.N) / r.T.Seconds(),
		})
	}
	runtime.GOMAXPROCS(prev)

	return map[string]any{
		"window":           window,
		"pipeline":         pipeline,
		"gomaxprocs_curve": curve,
		"single_thread_ab": map[string]any{
			"method": "interleaved A/B on one machine in one session: pre-change test binary " +
				"(commit 81273c8) vs this tree, alternating rounds of -test.bench " +
				"'EngineAlignBatch/cpu$' -benchtime 5x and 'WindowAlign/improved$' -benchtime 100000x",
			"engine_alignbatch_cpu_ns_per_op": map[string]any{
				"base": []int64{50329546, 51629879, 52973516},
				"new":  []int64{18168133, 20624066, 20863205},
			},
			"window_align_improved_ns_per_op": map[string]any{
				"base": []float64{2425, 2105, 2212},
				"new":  []float64{991.6, 1014, 972.9},
			},
			"window_align_improved_allocs_per_op": map[string]any{"base": 5, "new": 1},
			"conclusion": "stored-row-reuse single-word kernel, fused multi-word kernel with packed " +
				"band storage, run-length traceback and fmt-free CIGAR rendering deliver ~2.6x " +
				"EngineAlignBatch/cpu and ~2.3x per-window throughput at bit-identical outputs " +
				"(parity suite, geometry ablation matrix and differential fuzzing all green)",
		},
	}
}

func TestBenchJSON(t *testing.T) {
	if *benchJSONPath == "" {
		t.Skip("-benchjson not set")
	}
	w := benchWorkload(t)
	pairs := w.PublicPairs()

	type entry struct {
		Name             string  `json:"name"`
		NsPerOp          int64   `json:"ns_per_op"`
		AlignmentsPerSec float64 `json:"alignments_per_sec"`
		AllocsPerOp      int64   `json:"allocs_per_op"`
		BytesPerOp       int64   `json:"bytes_per_op"`
		ShardsPerBatch   float64 `json:"shards_per_batch,omitempty"`
	}
	var entries []entry
	for _, name := range benchBackends {
		eng, err := genasm.NewEngine(genasm.WithBackendName(name))
		if err != nil {
			t.Fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.AlignBatch(context.Background(), pairs); err != nil {
					b.Fatal(err)
				}
			}
		})
		e := entry{
			Name:             "EngineAlignBatch/" + name,
			NsPerOp:          r.NsPerOp(),
			AlignmentsPerSec: float64(len(pairs)) * float64(r.N) / r.T.Seconds(),
			AllocsPerOp:      r.AllocsPerOp(),
			BytesPerOp:       r.AllocedBytesPerOp(),
		}
		if st := eng.BackendStats(); st.Shards > 0 && st.Batches > 0 {
			e.ShardsPerBatch = float64(st.Shards) / float64(st.Batches)
		}
		entries = append(entries, e)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		benchSchedulerSubmit(b, pairs)
	})
	entries = append(entries, entry{
		Name:             "SchedulerCoalesce",
		NsPerOp:          r.NsPerOp(),
		AlignmentsPerSec: float64(r.N) / r.T.Seconds(), // one pair per op
		AllocsPerOp:      r.AllocsPerOp(),
		BytesPerOp:       r.AllocedBytesPerOp(),
	})

	report := map[string]any{
		"schema":     4,
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"workload": map[string]any{
			"genome_len": 1_000_000, "reads": 40, "read_len": 5_000, "error_rate": 0.10,
			"pairs": len(pairs),
		},
		"benchmarks": entries,
		"kernel":     kernelSection(t, pairs),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJSONPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Serving section: boot the full server in-process (jobs lane
	// enabled so the bulk scenario is exercised) and run every load
	// scenario briefly; WriteBench merges the results into the report
	// just written.
	srv, err := server.New(server.Config{Jobs: jobs.Config{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	var results []*loadgen.Result
	for _, scenario := range loadgen.Scenarios() {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  ts.URL,
			Scenario: scenario,
			Seed:     7,
			Warmup:   300 * time.Millisecond,
			Duration: 1200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("serving scenario %s: %v", scenario, err)
		}
		t.Logf("%-9s rps %.1f p50 %.2fms p99 %.2fms req %d err %d 429 %d",
			res.Scenario, res.AchievedRPS, res.P50ms, res.P99ms, res.Requests, res.Errors, res.Status429)
		results = append(results, res)
	}
	if err := loadgen.WriteBench(*benchJSONPath, loadgen.Report{
		Target: "in-process httptest", Seed: 7, Scenarios: results,
	}); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchJSONPath)
}

// BenchmarkWindowAlign is the micro-benchmark of the core contribution:
// one 64-base window alignment at 10% error.
func BenchmarkWindowAlign(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := make([]byte, 64)
	for i := range p {
		p[i] = byte(rng.Intn(4))
	}
	tx := make([]byte, 64)
	copy(tx, p)
	for i := 0; i < 6; i++ { // ~10% substitutions
		tx[rng.Intn(64)] = byte(rng.Intn(4))
	}
	b.Run("improved", func(b *testing.B) {
		a, _ := core.New(core.DefaultConfig())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.AlignWindow(p, tx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unimproved", func(b *testing.B) {
		a, _ := baseline.New(baseline.DefaultConfig())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.AlignWindow(p, tx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
