package gpualign

import (
	"math/rand"
	"testing"

	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

// makePairs builds (read, candidate region) pairs from the simulator
// substrates, in base codes.
func makePairs(t testing.TB, n, readLen int, errRate float64) []Pair {
	t.Helper()
	ref := genome.Generate(genome.DefaultConfig(200000)).Seq
	p := readsim.PacBioCLR()
	p.MeanLength, p.LengthSD = readLen, readLen/8
	p.ErrorRate, p.RevCompFrac = errRate, 0
	reads, err := readsim.Simulate(ref, n, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair, 0, n)
	for _, r := range reads {
		end := r.Pos + r.RefSpan + 64
		if end > len(ref) {
			end = len(ref)
		}
		pairs = append(pairs, Pair{
			Query: dna.EncodeSeq(r.Seq),
			Ref:   dna.EncodeSeq(ref[r.Pos:end]),
		})
	}
	return pairs
}

func TestGPUResultsIdenticalToCPUImproved(t *testing.T) {
	pairs := makePairs(t, 12, 1200, 0.1)
	res, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, err := cpu.AlignEncoded(p.Query, p.Ref)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Results[i]
		if got.Distance != want.Distance || got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("pair %d: GPU %d %q vs CPU %d %q",
				i, got.Distance, got.Cigar, want.Distance, want.Cigar)
		}
	}
}

func TestGPUResultsIdenticalToCPUUnimproved(t *testing.T) {
	pairs := makePairs(t, 8, 800, 0.1)
	res, err := AlignBatch(pairs, DefaultConfig(Unimproved))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := baseline.New(baseline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, err := cpu.AlignEncoded(p.Query, p.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[i].Distance != want.Distance {
			t.Fatalf("pair %d: GPU %d vs CPU %d", i, res.Results[i].Distance, want.Distance)
		}
	}
}

func TestImprovedFitsSharedUnimprovedSpills(t *testing.T) {
	pairs := makePairs(t, 10, 1000, 0.1)
	imp, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	if imp.SpilledBlocks != 0 {
		t.Fatalf("improved kernel spilled %d/%d blocks", imp.SpilledBlocks, len(pairs))
	}
	unimp, err := AlignBatch(pairs, DefaultConfig(Unimproved))
	if err != nil {
		t.Fatal(err)
	}
	if unimp.SharedBlocks != 0 {
		t.Fatalf("unimproved kernel fit %d/%d blocks in shared memory", unimp.SharedBlocks, len(pairs))
	}
}

func TestImprovedFasterThanUnimprovedOnDevice(t *testing.T) {
	pairs := makePairs(t, 24, 2000, 0.1)
	imp, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	unimp, err := AlignBatch(pairs, DefaultConfig(Unimproved))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Launch.Seconds*2 >= unimp.Launch.Seconds {
		t.Fatalf("improved GPU (%.3gs) not >=2x faster than unimproved (%.3gs)",
			imp.Launch.Seconds, unimp.Launch.Seconds)
	}
}

func TestBatchAggregatesCounters(t *testing.T) {
	pairs := makePairs(t, 5, 500, 0.08)
	res, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TableWrites == 0 || res.Counters.Windows == 0 {
		t.Fatalf("counters not aggregated: %+v", res.Counters)
	}
	if res.Counters.PeakFootprintBits == 0 {
		t.Fatal("peak footprint missing")
	}
}

func TestEmptyBatch(t *testing.T) {
	res, err := AlignBatch(nil, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 || res.Launch.Seconds != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestInvalidWindowConfigRejected(t *testing.T) {
	cfg := DefaultConfig(Improved)
	cfg.O = 70 // >= W
	if _, err := AlignBatch(makePairs(t, 1, 300, 0.1), cfg); err == nil {
		t.Fatal("accepted O >= W")
	}
}

func TestDeterministicTiming(t *testing.T) {
	pairs := makePairs(t, 10, 600, 0.1)
	a, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	if a.Launch.MakespanCycles != b.Launch.MakespanCycles {
		t.Fatalf("nondeterministic: %d vs %d cycles",
			a.Launch.MakespanCycles, b.Launch.MakespanCycles)
	}
}

func TestRandomPairsStress(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pairs := make([]Pair, 30)
	for i := range pairs {
		q := make([]byte, 1+rng.Intn(300))
		r := make([]byte, 1+rng.Intn(300))
		for j := range q {
			q[j] = byte(rng.Intn(4))
		}
		for j := range r {
			r[j] = byte(rng.Intn(4))
		}
		pairs[i] = Pair{Query: q, Ref: r}
	}
	res, err := AlignBatch(pairs, DefaultConfig(Improved))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if err := r.Cigar.Check(dna.DecodeSeq(pairs[i].Query),
			dna.DecodeSeq(pairs[i].Ref[:r.RefConsumed])); err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
	}
}
