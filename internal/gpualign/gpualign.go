// Package gpualign runs GenASM alignment kernels on the simulated GPU in
// internal/gpu, reproducing the paper's GPU experiments.
//
// Kernel mapping (as in the paper): one thread block aligns one
// (read, candidate reference) pair; within a block, the window's error
// levels advance in a warp-parallel wavefront; the window's DP working set
// lives in shared memory when it fits the block's allocation. The improved
// algorithm's working set (entry-only, banded, ET-trimmed) fits comfortably;
// the unimproved working set (four edge vectors, all k+1 rows) does not, so
// its DP traffic spills to the L2/DRAM hierarchy — the mechanism behind the
// paper's 5.9x improved-vs-unimproved GPU speedup.
package gpualign

import (
	"fmt"
	"sync"
	"sync/atomic"

	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/gpu"
	"genasm/internal/stats"
)

// Algorithm selects the kernel.
type Algorithm int

const (
	// Improved is GenASM with the paper's three improvements.
	Improved Algorithm = iota
	// Unimproved is MICRO'20 GenASM (edge storage, no ET, no banding).
	Unimproved
)

func (a Algorithm) String() string {
	if a == Unimproved {
		return "genasm-gpu-unimproved"
	}
	return "genasm-gpu-improved"
}

// Config describes a batch launch.
type Config struct {
	Device    gpu.DeviceConfig
	Algorithm Algorithm
	// Window geometry (paper defaults when zero: W=64, O=24, k=12).
	W, O, InitialK int
	// TargetBlocksPerSM sets the per-block shared-memory allocation to
	// SharedMemPerSM/TargetBlocksPerSM (default 8), trading occupancy
	// against capacity exactly like a CUDA launch configuration.
	TargetBlocksPerSM int
	// OpsPerEntry is the modelled warp-instruction cost of one DP entry
	// (default 16: shifts, ANDs, loads, stores, loop overhead).
	OpsPerEntry int
}

// DefaultConfig returns the paper's GPU configuration on the A6000 model.
func DefaultConfig(algo Algorithm) Config {
	return Config{Device: gpu.A6000(), Algorithm: algo, W: 64, O: 24, InitialK: 12,
		TargetBlocksPerSM: 8, OpsPerEntry: 16}
}

func (c *Config) fillDefaults() {
	if c.W == 0 {
		c.W = 64
	}
	if c.O == 0 && c.W == 64 {
		c.O = 24
	}
	if c.InitialK == 0 {
		c.InitialK = 12
	}
	if c.TargetBlocksPerSM <= 0 {
		c.TargetBlocksPerSM = 8
	}
	if c.OpsPerEntry <= 0 {
		c.OpsPerEntry = 16
	}
	if c.Device.SMs == 0 {
		c.Device = gpu.A6000()
	}
}

// Pair is one alignment job (base codes).
type Pair struct {
	Query, Ref []byte
}

// BatchResult is the outcome of a batch launch.
type BatchResult struct {
	// Results holds one alignment per input pair, bit-identical to the
	// corresponding CPU implementation's output.
	Results []core.Result
	// Launch is the simulated-device timing.
	Launch gpu.LaunchStats
	// SharedBlocks counts pairs whose every window's DP working set fit
	// the block's shared-memory allocation; SpilledBlocks counts pairs
	// with at least one window spilled to L2 (residency is per window,
	// since the table is reused window to window).
	SharedBlocks, SpilledBlocks int
	// Counters aggregates DP memory behaviour over the whole batch.
	Counters stats.Counters
}

// pairAligner abstracts the two CPU kernels behind one call.
type pairAligner interface {
	alignEncoded(q, t []byte) (core.Result, error)
	setCounters(c *stats.Counters)
}

type improvedAligner struct{ a *core.Aligner }

func (x improvedAligner) alignEncoded(q, t []byte) (core.Result, error) {
	return x.a.AlignEncoded(q, t)
}
func (x improvedAligner) setCounters(c *stats.Counters) { x.a.SetCounters(c) }

type unimprovedAligner struct{ a *baseline.Aligner }

func (x unimprovedAligner) alignEncoded(q, t []byte) (core.Result, error) {
	return x.a.AlignEncoded(q, t)
}
func (x unimprovedAligner) setCounters(c *stats.Counters) { x.a.SetCounters(c) }

// AlignBatch aligns every pair on the simulated device.
func AlignBatch(pairs []Pair, cfg Config) (BatchResult, error) {
	cfg.fillDefaults()
	dev, err := gpu.NewDevice(cfg.Device)
	if err != nil {
		return BatchResult{}, err
	}
	newAligner := func() (pairAligner, error) {
		switch cfg.Algorithm {
		case Unimproved:
			a, err := baseline.New(baseline.Config{W: cfg.W, O: cfg.O, InitialK: cfg.InitialK})
			if err != nil {
				return nil, err
			}
			return unimprovedAligner{a}, nil
		default:
			a, err := core.New(core.Config{W: cfg.W, O: cfg.O, InitialK: cfg.InitialK})
			if err != nil {
				return nil, err
			}
			return improvedAligner{a}, nil
		}
	}
	if _, err := newAligner(); err != nil { // validate config once, eagerly
		return BatchResult{}, err
	}

	pool := sync.Pool{New: func() any {
		a, err := newAligner()
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return a
	}}

	sharedBudget := cfg.Device.SharedMemPerSM / cfg.TargetBlocksPerSM
	out := BatchResult{Results: make([]core.Result, len(pairs))}
	var sharedBlocks, spilledBlocks atomic.Int64
	var firstErr atomic.Value
	var ctrMu sync.Mutex

	launch, err := dev.Launch(len(pairs), sharedBudget, func(i int) gpu.BlockCost {
		al := pool.Get().(pairAligner)
		defer pool.Put(al)
		var c stats.Counters
		c.TrackWindows = true
		al.setCounters(&c)
		res, err := al.alignEncoded(pairs[i].Query, pairs[i].Ref)
		al.setCounters(nil)
		if err != nil {
			firstErr.CompareAndSwap(nil, error(fmt.Errorf("gpualign: pair %d: %w", i, err)))
			return gpu.BlockCost{}
		}
		out.Results[i] = res

		entries := c.TableWrites
		if cfg.Algorithm == Unimproved {
			entries /= 4
		}
		avgRows := uint64(1)
		if c.Windows > 0 {
			avgRows = (c.RowsComputed + c.Windows - 1) / c.Windows
		}
		lanes := avgRows
		if lanes > uint64(cfg.Device.WarpSize) {
			lanes = uint64(cfg.Device.WarpSize)
		}
		if lanes < 1 {
			lanes = 1
		}
		bc := gpu.BlockCost{
			ALUCycles: entries * uint64(cfg.OpsPerEntry) / lanes,
			DRAMBytes: uint64(len(pairs[i].Query)+len(pairs[i].Ref)) + 32,
		}
		// Classify each window's DP traffic: the table is reused per
		// window, so residency is a per-window property. Word counts for
		// the bandwidth model come from byte traffic (banded entries are
		// packed sub-word stores).
		spilled := false
		for _, ws := range c.WindowStats {
			words := (ws.TrafficBytes + 7) / 8
			if int(ws.FootprintBits/8) <= sharedBudget {
				bc.SharedWords += words
				if int(ws.FootprintBits/8) > bc.SharedMemBytes {
					bc.SharedMemBytes = int(ws.FootprintBits / 8)
				}
			} else {
				bc.L2Words += words
				spilled = true
			}
		}
		if spilled {
			spilledBlocks.Add(1)
		} else {
			sharedBlocks.Add(1)
		}
		ctrMu.Lock()
		out.Counters.Merge(&c)
		ctrMu.Unlock()
		return bc
	})
	if err != nil {
		return BatchResult{}, err
	}
	if e := firstErr.Load(); e != nil {
		return BatchResult{}, e.(error)
	}
	out.Launch = launch
	out.SharedBlocks = int(sharedBlocks.Load())
	out.SpilledBlocks = int(spilledBlocks.Load())
	return out, nil
}
