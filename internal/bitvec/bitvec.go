// Package bitvec provides fixed-width multi-word bitvectors for the
// bit-parallel alignment kernels. GenASM's fast path uses plain uint64
// windows (W <= 64); this package backs the W > 64 extension path, where a
// window's automaton state spans several machine words.
//
// Vectors are little-endian: bit i lives in word i/64 at position i%64.
// All operations treat vectors as exactly Width bits wide; bits above Width
// in the last word are kept zero as an invariant (normalized form), except
// for the 0-active GenASM convention helpers which keep them one. To stay
// allocation-free in kernels, destination receivers are provided explicitly.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// V is a fixed-width bitvector. The zero value is unusable; create vectors
// with New and keep Width consistent across operands.
type V struct {
	Width int
	W     []uint64
}

// Words returns the number of 64-bit words needed for width bits.
func Words(width int) int { return (width + 63) / 64 }

// New returns a zeroed vector of the given width.
func New(width int) V {
	if width <= 0 {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	return V{Width: width, W: make([]uint64, Words(width))}
}

// Clone returns an independent copy of v.
func (v V) Clone() V {
	w := make([]uint64, len(v.W))
	copy(w, v.W)
	return V{Width: v.Width, W: w}
}

// Copy copies src into v (widths must match).
func (v V) Copy(src V) {
	if v.Width != src.Width {
		panic("bitvec: width mismatch")
	}
	copy(v.W, src.W)
}

// mask returns the valid-bit mask for the last word.
func (v V) mask() uint64 {
	r := uint(v.Width % 64)
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// Normalize clears bits above Width in the last word.
func (v V) Normalize() {
	v.W[len(v.W)-1] &= v.mask()
}

// Fill sets every bit in the vector (within Width) when b is true, or clears
// all bits when b is false.
func (v V) Fill(b bool) {
	var x uint64
	if b {
		x = ^uint64(0)
	}
	for i := range v.W {
		v.W[i] = x
	}
	if b {
		v.Normalize()
	}
}

// Bit returns bit i (0 <= i < Width).
func (v V) Bit(i int) uint {
	return uint(v.W[i/64]>>(uint(i)%64)) & 1
}

// SetBit sets bit i to b.
func (v V) SetBit(i int, b uint) {
	w, s := i/64, uint(i)%64
	v.W[w] = (v.W[w] &^ (uint64(1) << s)) | (uint64(b&1) << s)
}

// Shl1 sets v = src << 1 within Width, shifting in carry (0 or 1) at bit 0.
// Bits shifted beyond Width are discarded. v and src may alias.
func (v V) Shl1(src V, carry uint64) {
	if v.Width != src.Width {
		panic("bitvec: width mismatch")
	}
	c := carry & 1
	for i := 0; i < len(src.W); i++ {
		hi := src.W[i] >> 63
		v.W[i] = src.W[i]<<1 | c
		c = hi
	}
	v.Normalize()
}

// And sets v = a & b. Receivers may alias operands.
func (v V) And(a, b V) {
	for i := range v.W {
		v.W[i] = a.W[i] & b.W[i]
	}
}

// And3 sets v = a & b & c.
func (v V) And3(a, b, c V) {
	for i := range v.W {
		v.W[i] = a.W[i] & b.W[i] & c.W[i]
	}
}

// And4 sets v = a & b & c & d.
func (v V) And4(a, b, c, d V) {
	for i := range v.W {
		v.W[i] = a.W[i] & b.W[i] & c.W[i] & d.W[i]
	}
}

// Or sets v = a | b.
func (v V) Or(a, b V) {
	for i := range v.W {
		v.W[i] = a.W[i] | b.W[i]
	}
}

// OrWord ors word w into word index wi.
func (v V) OrWord(wi int, w uint64) {
	v.W[wi] |= w
	v.Normalize()
}

// Equal reports whether v and o have identical width and bits.
func (v V) Equal(o V) bool {
	if v.Width != o.Width {
		return false
	}
	for i := range v.W {
		if v.W[i] != o.W[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits within Width.
func (v V) OnesCount() int {
	n := 0
	last := len(v.W) - 1
	for i, w := range v.W {
		if i == last {
			w &= v.mask()
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the vector MSB-first (bit Width-1 leftmost), matching how
// the GenASM papers draw automaton states.
func (v V) String() string {
	var b strings.Builder
	for i := v.Width - 1; i >= 0; i-- {
		if v.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Slice extracts bits [lo, lo+n) of v into a uint64 (n <= 64). Bits outside
// [0, Width) read as the pad value (0 or 1); the GenASM banded storage uses
// pad=1 so out-of-range automaton states read as inactive.
func (v V) Slice(lo, n int, pad uint) uint64 {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: invalid slice width %d", n))
	}
	var out uint64
	for b := 0; b < n; b++ {
		i := lo + b
		var bit uint
		if i < 0 || i >= v.Width {
			bit = pad & 1
		} else {
			bit = v.Bit(i)
		}
		out |= uint64(bit) << uint(b)
	}
	return out
}
