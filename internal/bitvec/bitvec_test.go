package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := map[int]int{1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for w, want := range cases {
		if got := Words(w); got != want {
			t.Errorf("Words(%d) = %d want %d", w, got, want)
		}
	}
}

func TestBitSetGet(t *testing.T) {
	v := New(130)
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idxs {
		v.SetBit(i, 1)
	}
	for _, i := range idxs {
		if v.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.OnesCount() != len(idxs) {
		t.Errorf("OnesCount = %d want %d", v.OnesCount(), len(idxs))
	}
	v.SetBit(64, 0)
	if v.Bit(64) != 0 {
		t.Error("bit 64 still set")
	}
}

func TestFill(t *testing.T) {
	v := New(100)
	v.Fill(true)
	if v.OnesCount() != 100 {
		t.Fatalf("OnesCount after Fill(true) = %d", v.OnesCount())
	}
	// Invariant: pad bits above width stay zero.
	if v.W[1]>>36 != 0 {
		t.Fatal("pad bits set")
	}
	v.Fill(false)
	if v.OnesCount() != 0 {
		t.Fatal("Fill(false) left bits")
	}
}

// refShl1 is a bit-by-bit model of Shl1.
func refShl1(v V, carry uint64) V {
	out := New(v.Width)
	for i := v.Width - 1; i >= 1; i-- {
		out.SetBit(i, v.Bit(i-1))
	}
	out.SetBit(0, uint(carry&1))
	return out
}

func TestShl1AgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 7, 63, 64, 65, 128, 200} {
		for iter := 0; iter < 50; iter++ {
			v := New(width)
			for i := range v.W {
				v.W[i] = rng.Uint64()
			}
			v.Normalize()
			carry := uint64(rng.Intn(2))
			want := refShl1(v, carry)
			got := New(width)
			got.Shl1(v, carry)
			if !got.Equal(want) {
				t.Fatalf("width %d: Shl1 mismatch\n got %s\nwant %s", width, got, want)
			}
			// Aliased shift must agree too.
			alias := v.Clone()
			alias.Shl1(alias, carry)
			if !alias.Equal(want) {
				t.Fatalf("width %d: aliased Shl1 mismatch", width)
			}
		}
	}
}

func TestBooleanOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	width := 130
	a, b, c, d := New(width), New(width), New(width), New(width)
	for i := range a.W {
		a.W[i], b.W[i], c.W[i], d.W[i] = rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()
	}
	for _, v := range []V{a, b, c, d} {
		v.Normalize()
	}
	out := New(width)
	out.And(a, b)
	for i := 0; i < width; i++ {
		if out.Bit(i) != (a.Bit(i) & b.Bit(i)) {
			t.Fatalf("And bit %d", i)
		}
	}
	out.And3(a, b, c)
	for i := 0; i < width; i++ {
		if out.Bit(i) != (a.Bit(i) & b.Bit(i) & c.Bit(i)) {
			t.Fatalf("And3 bit %d", i)
		}
	}
	out.And4(a, b, c, d)
	for i := 0; i < width; i++ {
		if out.Bit(i) != (a.Bit(i) & b.Bit(i) & c.Bit(i) & d.Bit(i)) {
			t.Fatalf("And4 bit %d", i)
		}
	}
	out.Or(a, b)
	for i := 0; i < width; i++ {
		if out.Bit(i) != (a.Bit(i) | b.Bit(i)) {
			t.Fatalf("Or bit %d", i)
		}
	}
}

func TestSlice(t *testing.T) {
	v := New(70)
	for _, i := range []int{0, 3, 64, 69} {
		v.SetBit(i, 1)
	}
	if got := v.Slice(0, 4, 0); got != 0b1001 {
		t.Fatalf("Slice(0,4) = %b", got)
	}
	if got := v.Slice(62, 5, 0); got != 0b00100 {
		t.Fatalf("Slice(62,5) = %b", got)
	}
	// Out of range reads pad.
	if got := v.Slice(68, 4, 1); got != 0b1110 {
		t.Fatalf("Slice(68,4,pad=1) = %04b", got)
	}
	if got := v.Slice(-2, 3, 1); got != 0b111 { // bits -2,-1 pad=1, bit 0 =1
		t.Fatalf("Slice(-2,3,pad=1) = %03b", got)
	}
}

func TestSliceMatchesSingleWordSemantics(t *testing.T) {
	// For width <= 64, Slice(0, width, pad) must reproduce the word.
	f := func(x uint64) bool {
		v := New(64)
		v.W[0] = x
		return v.Slice(0, 64, 0) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(80)
	a.SetBit(79, 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.SetBit(0, 1)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(81)) {
		t.Fatal("different widths equal")
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestOrWordRespectsWidth(t *testing.T) {
	v := New(66)
	v.OrWord(1, ^uint64(0))
	if v.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d want 2 (width clamp)", v.OnesCount())
	}
}
