// Package eval reproduces the paper's evaluation end to end: it builds the
// workload (synthetic genome -> PBSIM2-like reads -> minimap2-like candidate
// locations with -P semantics) and regenerates every number the paper
// reports as a table (see DESIGN.md's experiment index: E1, E2, E3, E4 and
// the A1-A3 ablations).
package eval

import (
	"fmt"
	"sync"

	"genasm"
	"genasm/internal/dna"
	"genasm/internal/genome"
	"genasm/internal/gpualign"
	"genasm/internal/minimap"
	"genasm/internal/readsim"
)

// WorkloadConfig scales the paper's workload. The paper used 500 reads of
// 10 kb against the human genome, yielding 138,929 candidate pairs via
// minimap2 -P; the defaults here reproduce the same pipeline at a size a
// laptop regenerates in seconds.
type WorkloadConfig struct {
	GenomeLen  int
	Reads      int
	ReadLen    int
	ErrorRate  float64
	Seed       int64
	MaxPairs   int // 0 = unlimited
	ShortReads bool
}

// DefaultWorkload is the scaled paper workload.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{GenomeLen: 2_000_000, Reads: 100, ReadLen: 10_000, ErrorRate: 0.10, Seed: 7}
}

// QuickWorkload is a small workload for tests and benches.
func QuickWorkload() WorkloadConfig {
	return WorkloadConfig{GenomeLen: 300_000, Reads: 30, ReadLen: 2_000, ErrorRate: 0.10, Seed: 7}
}

// Workload is the materialized benchmark input.
type Workload struct {
	Cfg   WorkloadConfig
	Ref   []byte // base codes
	Reads []readsim.Read
	// Pairs are the (read, candidate region) alignment jobs, in base
	// codes and candidate-strand orientation, exactly what the paper
	// feeds to every aligner.
	Pairs []gpualign.Pair
	// TotalBases is the summed query length over all pairs.
	TotalBases int

	pubOnce  sync.Once
	pubPairs []genasm.Pair
}

// PublicPairs returns the workload pairs decoded to raw ASCII for the
// public Engine API, memoized after the first call.
func (w *Workload) PublicPairs() []genasm.Pair {
	w.pubOnce.Do(func() {
		w.pubPairs = make([]genasm.Pair, len(w.Pairs))
		for i, p := range w.Pairs {
			w.pubPairs[i] = genasm.Pair{Query: dna.DecodeSeq(p.Query), Ref: dna.DecodeSeq(p.Ref)}
		}
	})
	return w.pubPairs
}

// BuildWorkload runs the candidate-generation pipeline.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) {
	gcfg := genome.DefaultConfig(cfg.GenomeLen)
	gcfg.Seed = cfg.Seed
	ref := genome.Generate(gcfg)
	refCodes := dna.EncodeSeq(ref.Seq)

	prof := readsim.PacBioCLR()
	prof.MeanLength = cfg.ReadLen
	prof.LengthSD = cfg.ReadLen / 10
	prof.ErrorRate = cfg.ErrorRate
	if cfg.ShortReads {
		prof = readsim.Illumina()
		prof.MeanLength = cfg.ReadLen
		prof.ErrorRate = cfg.ErrorRate
	}
	reads, err := readsim.Simulate(ref.Seq, cfg.Reads, prof, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	ixCfg := minimap.DefaultIndexConfig()
	ix, err := minimap.BuildIndex(refCodes, ixCfg)
	if err != nil {
		return nil, err
	}
	opt := minimap.DefaultChainOpts()
	if cfg.ShortReads {
		opt.MinScore = 20
		opt.MinAnchors = 2
	}

	// Each chain yields one pair: the chained read segment against the
	// chained reference span (plus tail slack). Both ends are k-mer
	// anchored, which is what minimap2 hands its aligner; whole-read
	// alignment against a partial repeat hit would be garbage work no
	// real pipeline performs.
	const tailSlack = 32
	w := &Workload{Cfg: cfg, Ref: refCodes, Reads: reads}
	for _, r := range reads {
		q := dna.EncodeSeq(r.Seq)
		qrc := dna.ReverseComplement(q)
		chains := ix.Chains(q, opt)
		for _, c := range chains {
			query := q
			if c.RevComp {
				query = qrc
			}
			query = query[c.ReadStart:c.ReadEnd]
			end := c.RefEnd + tailSlack
			if end > len(w.Ref) {
				end = len(w.Ref)
			}
			if c.RefStart >= end || len(query) == 0 {
				continue
			}
			w.Pairs = append(w.Pairs, gpualign.Pair{
				Query: query,
				Ref:   w.Ref[c.RefStart:end],
			})
			w.TotalBases += len(query)
			if cfg.MaxPairs > 0 && len(w.Pairs) >= cfg.MaxPairs {
				return w, nil
			}
		}
	}
	if len(w.Pairs) == 0 {
		return nil, fmt.Errorf("eval: workload produced no candidate pairs")
	}
	return w, nil
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, r := range t.Rows {
		out += line(r)
	}
	for _, n := range t.Notes {
		out += "note: " + n + "\n"
	}
	return out
}
