package eval

import (
	"context"
	"strings"
	"testing"
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	cfg := QuickWorkload()
	cfg.MaxPairs = 10
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestA4AccuracyExactNeverWorse(t *testing.T) {
	w := smallWorkload(t)
	tab, err := A4Accuracy(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Exact row must report +0.00% excess.
	if !strings.HasPrefix(tab.Rows[0][2], "+0.00") {
		t.Fatalf("exact excess %q", tab.Rows[0][2])
	}
	// GenASM improved and unimproved must report identical accuracy
	// (same algorithm output).
	if tab.Rows[1][1] != tab.Rows[2][1] {
		t.Fatalf("improved %q != unimproved %q", tab.Rows[1][1], tab.Rows[2][1])
	}
}

func TestA5OccupancySweep(t *testing.T) {
	w := smallWorkload(t)
	tab, err := A5OccupancySweep(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// At 32 blocks/SM the allocation is ~3.1 KiB: typical windows
	// (~1.9 KiB) still fit, but the sweep must show a monotone shrink of
	// the allocation column.
	if tab.Rows[0][1] <= tab.Rows[4][1] && tab.Rows[0][1] != tab.Rows[4][1] {
		t.Fatalf("allocation did not shrink: %v vs %v", tab.Rows[0], tab.Rows[4])
	}
}

func TestA6Devices(t *testing.T) {
	w := smallWorkload(t)
	tab, err := A6Devices(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[3], "x") {
			t.Fatalf("missing speedup in %v", row)
		}
	}
}

func TestSWGReferenceRuns(t *testing.T) {
	w := smallWorkload(t)
	el, err := SWGReference(w)
	if err != nil || el <= 0 {
		t.Fatalf("el=%v err=%v", el, err)
	}
}

func TestA7ThreadScaling(t *testing.T) {
	w := smallWorkload(t)
	tab, err := A7ThreadScaling(context.Background(), w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // 1, 2, 4
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "1.00x" {
		t.Fatalf("baseline scaling %q", tab.Rows[0][3])
	}
}
