package eval

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func quick(t *testing.T) *Workload {
	t.Helper()
	w, err := BuildWorkload(QuickWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorkloadShape(t *testing.T) {
	w := quick(t)
	if len(w.Pairs) < len(w.Reads)/2 {
		t.Fatalf("only %d pairs from %d reads", len(w.Pairs), len(w.Reads))
	}
	for i, p := range w.Pairs {
		if len(p.Query) == 0 || len(p.Ref) == 0 {
			t.Fatalf("pair %d empty", i)
		}
		for _, b := range p.Query {
			if b > 4 {
				t.Fatalf("pair %d query not base codes", i)
			}
		}
	}
	if w.TotalBases == 0 {
		t.Fatal("no bases counted")
	}
}

func TestBuildWorkloadMaxPairs(t *testing.T) {
	cfg := QuickWorkload()
	cfg.MaxPairs = 5
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pairs) != 5 {
		t.Fatalf("pairs %d want 5", len(w.Pairs))
	}
}

func TestE1FootprintShape(t *testing.T) {
	w := quick(t)
	tab, err := E1MemoryFootprint(w)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Format()
	if !strings.Contains(s, "E1") || len(tab.Rows) != 3 {
		t.Fatalf("table %s", s)
	}
	// The reduction row must report a factor well above 1.
	if !strings.Contains(tab.Rows[2][1], "x") {
		t.Fatalf("no ratio: %v", tab.Rows[2])
	}
	ratio := parseRatio(t, tab.Rows[2][1])
	if ratio < 5 {
		t.Fatalf("footprint reduction %.1fx, want >=5x (paper: 24x)", ratio)
	}
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse ratio %q: %v", s, err)
	}
	return v
}

func TestE2AccessesShape(t *testing.T) {
	w := quick(t)
	tab, err := E2MemoryAccesses(w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := parseRatio(t, tab.Rows[2][3])
	if ratio < 3 {
		t.Fatalf("access reduction %.1fx, want >=3x (paper: 12x)", ratio)
	}
}

func TestE3AndE4RunAndOrder(t *testing.T) {
	cfg := QuickWorkload()
	cfg.Reads, cfg.ReadLen, cfg.MaxPairs = 10, 1500, 12
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, times, err := E3CPU(context.Background(), w, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Paper's ordering: improved GenASM beats KSW2 decisively.
	if times["GenASM-improved"] >= times["KSW2"] {
		t.Fatalf("improved (%v) not faster than KSW2 (%v)", times["GenASM-improved"], times["KSW2"])
	}
	g, err := E4GPU(context.Background(), w, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) < 4 {
		t.Fatalf("gpu rows %d", len(g.Rows))
	}
	if !strings.Contains(g.Format(), "shared memory") {
		t.Fatal("missing shared-memory note")
	}
}

func TestA1AblationRuns(t *testing.T) {
	cfg := QuickWorkload()
	cfg.MaxPairs = 8
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := A1Ablation(context.Background(), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows %d want 5", len(tab.Rows))
	}
}

func TestA2SweepRuns(t *testing.T) {
	cfg := QuickWorkload()
	cfg.MaxPairs = 6
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := A2WindowSweep(context.Background(), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tab.Format()
	for _, want := range []string{"== T: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format %q missing %q", s, want)
		}
	}
}

func TestE5BackendRuns(t *testing.T) {
	cfg := QuickWorkload()
	w, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := E5Backend(context.Background(), w, "multi(cpu,gpu)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "cpu" || tab.Rows[1][0] != "multi(cpu,gpu)" {
		t.Fatalf("rows %v", tab.Rows)
	}
	found := false
	for _, n := range tab.Notes {
		found = found || strings.Contains(n, "shards")
	}
	if !found {
		t.Fatalf("composite run produced no shard note: %v", tab.Notes)
	}
	if _, err := E5Backend(context.Background(), w, "tpu", 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
