package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"genasm"
	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/ksw2"
	"genasm/internal/stats"
	"genasm/internal/swg"
)

// The timed experiments (E3, E4, A1, A2, A7) run through the public
// genasm.Engine — the same code path production callers use — so the
// tables measure the shipped API, not a private harness. The memory
// instrumentation experiments (E1, E2, counter columns of A1) stay on the
// internal counter hooks, which the public API deliberately does not
// expose.

// runCounters aligns every pair with the given aligner constructor and
// aggregates memory counters.
func runCounters(w *Workload, mk func() (counterAligner, error)) (stats.Counters, error) {
	var agg stats.Counters
	a, err := mk()
	if err != nil {
		return agg, err
	}
	var c stats.Counters
	a.setCounters(&c)
	for _, p := range w.Pairs {
		if _, err := a.alignEncoded(p.Query, p.Ref); err != nil {
			return agg, err
		}
	}
	agg = c
	return agg, nil
}

type counterAligner interface {
	alignEncoded(q, t []byte) (core.Result, error)
	setCounters(c *stats.Counters)
}

type improvedCA struct{ a *core.Aligner }

func (x improvedCA) alignEncoded(q, t []byte) (core.Result, error) { return x.a.AlignEncoded(q, t) }
func (x improvedCA) setCounters(c *stats.Counters)                 { x.a.SetCounters(c) }

type unimprovedCA struct{ a *baseline.Aligner }

func (x unimprovedCA) alignEncoded(q, t []byte) (core.Result, error) { return x.a.AlignEncoded(q, t) }
func (x unimprovedCA) setCounters(c *stats.Counters)                 { x.a.SetCounters(c) }

func newImproved(cfg core.Config) func() (counterAligner, error) {
	return func() (counterAligner, error) {
		a, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return improvedCA{a}, nil
	}
}

func newUnimproved() func() (counterAligner, error) {
	return func() (counterAligner, error) {
		a, err := baseline.New(baseline.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return unimprovedCA{a}, nil
	}
}

// E1MemoryFootprint reproduces the paper's "24x smaller memory footprint":
// the peak per-window DP working set of improved vs unimproved GenASM.
func E1MemoryFootprint(w *Workload) (*Table, error) {
	imp, err := runCounters(w, newImproved(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	unimp, err := runCounters(w, newUnimproved())
	if err != nil {
		return nil, err
	}
	ratio := unimp.MeanWindowFootprintBits() / imp.MeanWindowFootprintBits()
	peakRatio := float64(unimp.PeakFootprintBits) / float64(imp.PeakFootprintBits)
	return &Table{
		ID:     "E1",
		Title:  "DP-table memory footprint per window (paper: 24x reduction)",
		Header: []string{"algorithm", "mean footprint (bits)", "peak footprint (bits)"},
		Rows: [][]string{
			{"GenASM (unimproved)", fmt.Sprintf("%.0f", unimp.MeanWindowFootprintBits()), fmt.Sprint(unimp.PeakFootprintBits)},
			{"GenASM (improved)", fmt.Sprintf("%.0f", imp.MeanWindowFootprintBits()), fmt.Sprint(imp.PeakFootprintBits)},
			{"reduction", fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.1fx", peakRatio)},
		},
		Notes: []string{
			"mean is the typical per-window working set (what a GPU block provisions); peaks are inflated by rare error-budget-doubling retries on false candidate locations",
			"paper reports 24x with its window parameters; the realized factor depends on k and the per-window distance d*",
		},
	}, nil
}

// E2MemoryAccesses reproduces the paper's "12x fewer memory accesses":
// word-granular DP-table reads+writes during DC and traceback.
func E2MemoryAccesses(w *Workload) (*Table, error) {
	imp, err := runCounters(w, newImproved(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	unimp, err := runCounters(w, newUnimproved())
	if err != nil {
		return nil, err
	}
	ratio := float64(unimp.Accesses()) / float64(imp.Accesses())
	byteRatio := float64(unimp.TrafficBytes()) / float64(imp.TrafficBytes())
	rowsSkipped := float64(imp.RowsSkipped) / float64(imp.RowsComputed+imp.RowsSkipped)
	return &Table{
		ID:     "E2",
		Title:  "DP-table memory accesses (paper: 12x reduction)",
		Header: []string{"algorithm", "writes", "reads", "total", "traffic (bytes)"},
		Rows: [][]string{
			{"GenASM (unimproved)", fmt.Sprint(unimp.TableWrites), fmt.Sprint(unimp.TableReads), fmt.Sprint(unimp.Accesses()), fmt.Sprint(unimp.TrafficBytes())},
			{"GenASM (improved)", fmt.Sprint(imp.TableWrites), fmt.Sprint(imp.TableReads), fmt.Sprint(imp.Accesses()), fmt.Sprint(imp.TrafficBytes())},
			{"reduction", "", "", fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.1fx", byteRatio)},
		},
		Notes: []string{
			fmt.Sprintf("early termination skipped %.0f%% of error-level rows", 100*rowsSkipped),
			"the paper counts memory traffic; banded improved entries are packed sub-word stores, so the byte ratio is the comparable number",
		},
	}, nil
}

// cpuAligner is one named competitor in E3.
type cpuAligner struct {
	Name      string
	Algorithm genasm.Algorithm
	// ScoreOnly marks the SWG reference, which is timed score-only (its
	// full-matrix traceback would not fit memory at 10 kb reads).
	ScoreOnly bool
}

// CPUAligners returns the paper's CPU competitor set. SWG is included as
// the quadratic-DP reference the introduction motivates against.
func CPUAligners(includeSWG bool) []cpuAligner {
	out := []cpuAligner{
		{Name: "GenASM-improved", Algorithm: genasm.GenASM},
		{Name: "GenASM-unimproved", Algorithm: genasm.GenASMUnimproved},
		{Name: "Edlib", Algorithm: genasm.Edlib},
		{Name: "KSW2", Algorithm: genasm.KSW2},
	}
	if includeSWG {
		out = append(out, cpuAligner{Name: "SWG (full DP, score only)", Algorithm: genasm.SWG, ScoreOnly: true})
	}
	return out
}

// timeEngine measures wall time aligning all pairs through an Engine
// built from opts with `threads` workers.
func timeEngine(ctx context.Context, w *Workload, threads int, opts ...genasm.Option) (time.Duration, []genasm.Result, error) {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	eng, err := genasm.NewEngine(append(opts, genasm.WithThreads(threads))...)
	if err != nil {
		return 0, nil, err
	}
	pairs := w.PublicPairs()
	start := time.Now()
	res, err := eng.AlignBatch(ctx, pairs)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), res, nil
}

// timeSWGScoreOnly times the quadratic reference, score only, threaded
// like the Engine's CPU backend.
func timeSWGScoreOnly(ctx context.Context, w *Workload, threads int) (time.Duration, error) {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	pairs := w.PublicPairs()
	pen := ksw2.DefaultParams().Penalties
	jobs := make(chan int, len(pairs))
	for i := range pairs {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				swg.AffineScore(pairs[i].Query, pairs[i].Ref, pen)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// timeAligner measures wall time aligning all pairs with one competitor.
func timeAligner(ctx context.Context, w *Workload, a cpuAligner, threads int) (time.Duration, error) {
	if a.ScoreOnly {
		return timeSWGScoreOnly(ctx, w, threads)
	}
	el, _, err := timeEngine(ctx, w, threads, genasm.WithAlgorithm(a.Algorithm))
	return el, err
}

// E3CPU reproduces the paper's CPU comparison: improved GenASM vs KSW2
// (paper 15.2x), Edlib (1.7x) and unimproved GenASM (1.9x).
func E3CPU(ctx context.Context, w *Workload, threads int, includeSWG bool) (*Table, map[string]time.Duration, error) {
	times := map[string]time.Duration{}
	tab := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("CPU alignment time, %d pairs / %d query bases (paper speedups vs improved: KSW2 15.2x, Edlib 1.7x, unimproved 1.9x)", len(w.Pairs), w.TotalBases),
		Header: []string{"aligner", "time", "pairs/s", "speedup of improved"},
	}
	for _, a := range CPUAligners(includeSWG) {
		el, err := timeAligner(ctx, w, a, threads)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		times[a.Name] = el
	}
	ref := times["GenASM-improved"]
	for _, a := range CPUAligners(includeSWG) {
		el := times[a.Name]
		tab.Rows = append(tab.Rows, []string{
			a.Name,
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/el.Seconds()),
			fmt.Sprintf("%.1fx", el.Seconds()/ref.Seconds()),
		})
	}
	return tab, times, nil
}

// E4GPU reproduces the paper's GPU comparison on the simulated A6000:
// improved-GPU vs improved-CPU (paper 4.1x), vs unimproved-GPU (5.9x), and
// vs the CPU baselines (KSW2 62x, Edlib 7.2x).
func E4GPU(ctx context.Context, w *Workload, cpuTimes map[string]time.Duration) (*Table, error) {
	launch := func(algo genasm.Algorithm) (genasm.GPUStats, error) {
		eng, err := genasm.NewEngine(genasm.WithBackendName("gpu"), genasm.WithAlgorithm(algo))
		if err != nil {
			return genasm.GPUStats{}, err
		}
		if _, err := eng.AlignBatch(ctx, w.PublicPairs()); err != nil {
			return genasm.GPUStats{}, err
		}
		st := eng.BackendStats()
		if st.GPU == nil {
			return genasm.GPUStats{}, fmt.Errorf("gpu backend reported no launch stats")
		}
		return *st.GPU, nil
	}
	imp, err := launch(genasm.GenASM)
	if err != nil {
		return nil, err
	}
	unimp, err := launch(genasm.GenASMUnimproved)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "E4",
		Title:  "GPU (simulated A6000) vs CPU (paper: 4.1x vs own CPU, 5.9x vs unimproved GPU, 62x vs KSW2, 7.2x vs Edlib)",
		Header: []string{"configuration", "time", "pairs/s", "speedup of improved GPU"},
	}
	gi := imp.Seconds
	row := func(name string, sec float64) {
		tab.Rows = append(tab.Rows, []string{
			name,
			(time.Duration(sec * float64(time.Second))).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/sec),
			fmt.Sprintf("%.1fx", sec/gi),
		})
	}
	row("GenASM-improved GPU", gi)
	row("GenASM-unimproved GPU", unimp.Seconds)
	for _, name := range []string{"GenASM-improved", "GenASM-unimproved", "Edlib", "KSW2"} {
		if el, ok := cpuTimes[name]; ok {
			row(name+" CPU", el.Seconds())
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("improved kernel: %d/%d blocks in shared memory; unimproved: %d/%d spilled to L2",
			imp.SharedBlocks, len(w.Pairs), unimp.SpilledBlocks, len(w.Pairs)),
		"GPU times come from the cycle-accurate-ish cost model in internal/gpu; CPU times are measured wall clock (scalar Go), so cross-domain ratios are larger than the paper's SIMD-C vs CUDA ratios",
	)
	return tab, nil
}

// E5Backend times Engine.AlignBatch through the public backend registry
// on the selected backend name against the cpu baseline: the end-to-end
// host cost of the shipped API on any registered backend, including the
// "multi" sharding composite (whose per-child pair split the notes
// report). Host wall clock, so the gpu rows measure the simulator's
// execution cost — the modelled device seconds live in E4.
func E5Backend(ctx context.Context, w *Workload, name string, threads int) (*Table, error) {
	names := []string{"cpu"}
	if name != "cpu" {
		names = append(names, name)
	}
	tab := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Engine backend registry: AlignBatch host throughput, %d pairs", len(w.Pairs)),
		Header: []string{"backend", "time", "pairs/s", "speedup vs cpu"},
	}
	var cpuSec float64
	for _, be := range names {
		eng, err := genasm.NewEngine(genasm.WithBackendName(be), genasm.WithThreads(threads))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := eng.AlignBatch(ctx, w.PublicPairs()); err != nil {
			return nil, fmt.Errorf("%s: %w", be, err)
		}
		el := time.Since(start)
		if be == "cpu" {
			cpuSec = el.Seconds()
		}
		tab.Rows = append(tab.Rows, []string{
			be,
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/el.Seconds()),
			fmt.Sprintf("%.1fx", cpuSec/el.Seconds()),
		})
		if st := eng.BackendStats(); len(st.Children) > 0 {
			split := ""
			for i, c := range st.Children {
				if i > 0 {
					split += ", "
				}
				split += fmt.Sprintf("%s=%d", c.Name, c.Pairs)
			}
			tab.Notes = append(tab.Notes,
				fmt.Sprintf("%s split the batch over %d shards: %s", be, st.Shards, split))
		}
	}
	return tab, nil
}

// A1Ablation toggles each improvement separately (the paper's claim that
// the improvements are what make GenASM outrun Edlib).
func A1Ablation(ctx context.Context, w *Workload, threads int) (*Table, error) {
	cfgs := []struct {
		name           string
		sene, dent, et bool // disables
	}{
		{"all improvements (SENE+DENT+ET)", false, false, false},
		{"SENE+DENT (no ET)", false, false, true},
		{"SENE+ET (no DENT)", false, true, false},
		{"SENE only", false, true, true},
		{"none (edge storage, no ET)", true, true, true},
	}
	tab := &Table{
		ID:     "A1",
		Title:  "Ablation: contribution of each improvement",
		Header: []string{"configuration", "time", "peak footprint (bits)", "accesses"},
	}
	for _, c := range cfgs {
		el, _, err := timeEngine(ctx, w, threads, genasm.WithAblation(c.sene, c.dent, c.et))
		if err != nil {
			return nil, err
		}
		coreCfg := core.DefaultConfig()
		coreCfg.DisableSENE, coreCfg.DisableDENT, coreCfg.DisableET = c.sene, c.dent, c.et
		ctr, err := runCounters(w, newImproved(coreCfg))
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			c.name, el.Round(time.Millisecond).String(),
			fmt.Sprint(ctr.PeakFootprintBits), fmt.Sprint(ctr.Accesses()),
		})
	}
	return tab, nil
}

// A2WindowSweep measures sensitivity to window size and overlap.
func A2WindowSweep(ctx context.Context, w *Workload, threads int) (*Table, error) {
	tab := &Table{
		ID:     "A2",
		Title:  "Window geometry sweep (accuracy vs speed)",
		Header: []string{"W", "O", "k", "time", "mean distance/base"},
	}
	for _, geo := range []struct{ W, O, K int }{
		{32, 12, 8}, {64, 24, 12}, {64, 32, 12}, {128, 48, 20},
	} {
		el, res, err := timeEngine(ctx, w, threads, genasm.WithWindow(geo.W, geo.O, geo.K))
		if err != nil {
			return nil, err
		}
		var total int64
		for _, r := range res {
			total += int64(r.Distance)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(geo.W), fmt.Sprint(geo.O), fmt.Sprint(geo.K),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", float64(total)/float64(w.TotalBases)),
		})
	}
	tab.Notes = append(tab.Notes,
		"larger overlap lowers the committed distance (closer to optimal) at higher cost; W=64/O=24 is the paper's setting")
	return tab, nil
}

// A3ShortReads reruns the CPU comparison on an Illumina-like workload
// (the paper claims both short and long reads are supported).
func A3ShortReads(ctx context.Context, threads int) (*Table, error) {
	cfg := WorkloadConfig{GenomeLen: 500_000, Reads: 400, ReadLen: 150,
		ErrorRate: 0.02, Seed: 11, ShortReads: true}
	w, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	tab, _, err := E3CPU(ctx, w, threads, false)
	if err != nil {
		return nil, err
	}
	tab.ID = "A3"
	tab.Title = "Short reads (150 bp, 2% error): " + tab.Title
	return tab, nil
}
