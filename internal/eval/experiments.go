package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/edlib"
	"genasm/internal/gpualign"
	"genasm/internal/ksw2"
	"genasm/internal/stats"
	"genasm/internal/swg"
)

// runCounters aligns every pair with the given aligner constructor and
// aggregates memory counters.
func runCounters(w *Workload, mk func() (counterAligner, error)) (stats.Counters, error) {
	var agg stats.Counters
	a, err := mk()
	if err != nil {
		return agg, err
	}
	var c stats.Counters
	a.setCounters(&c)
	for _, p := range w.Pairs {
		if _, err := a.alignEncoded(p.Query, p.Ref); err != nil {
			return agg, err
		}
	}
	agg = c
	return agg, nil
}

type counterAligner interface {
	alignEncoded(q, t []byte) (core.Result, error)
	setCounters(c *stats.Counters)
}

type improvedCA struct{ a *core.Aligner }

func (x improvedCA) alignEncoded(q, t []byte) (core.Result, error) { return x.a.AlignEncoded(q, t) }
func (x improvedCA) setCounters(c *stats.Counters)                 { x.a.SetCounters(c) }

type unimprovedCA struct{ a *baseline.Aligner }

func (x unimprovedCA) alignEncoded(q, t []byte) (core.Result, error) { return x.a.AlignEncoded(q, t) }
func (x unimprovedCA) setCounters(c *stats.Counters)                 { x.a.SetCounters(c) }

func newImproved(cfg core.Config) func() (counterAligner, error) {
	return func() (counterAligner, error) {
		a, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return improvedCA{a}, nil
	}
}

func newUnimproved() func() (counterAligner, error) {
	return func() (counterAligner, error) {
		a, err := baseline.New(baseline.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return unimprovedCA{a}, nil
	}
}

// E1MemoryFootprint reproduces the paper's "24x smaller memory footprint":
// the peak per-window DP working set of improved vs unimproved GenASM.
func E1MemoryFootprint(w *Workload) (*Table, error) {
	imp, err := runCounters(w, newImproved(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	unimp, err := runCounters(w, newUnimproved())
	if err != nil {
		return nil, err
	}
	ratio := unimp.MeanWindowFootprintBits() / imp.MeanWindowFootprintBits()
	peakRatio := float64(unimp.PeakFootprintBits) / float64(imp.PeakFootprintBits)
	return &Table{
		ID:     "E1",
		Title:  "DP-table memory footprint per window (paper: 24x reduction)",
		Header: []string{"algorithm", "mean footprint (bits)", "peak footprint (bits)"},
		Rows: [][]string{
			{"GenASM (unimproved)", fmt.Sprintf("%.0f", unimp.MeanWindowFootprintBits()), fmt.Sprint(unimp.PeakFootprintBits)},
			{"GenASM (improved)", fmt.Sprintf("%.0f", imp.MeanWindowFootprintBits()), fmt.Sprint(imp.PeakFootprintBits)},
			{"reduction", fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.1fx", peakRatio)},
		},
		Notes: []string{
			"mean is the typical per-window working set (what a GPU block provisions); peaks are inflated by rare error-budget-doubling retries on false candidate locations",
			"paper reports 24x with its window parameters; the realized factor depends on k and the per-window distance d*",
		},
	}, nil
}

// E2MemoryAccesses reproduces the paper's "12x fewer memory accesses":
// word-granular DP-table reads+writes during DC and traceback.
func E2MemoryAccesses(w *Workload) (*Table, error) {
	imp, err := runCounters(w, newImproved(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	unimp, err := runCounters(w, newUnimproved())
	if err != nil {
		return nil, err
	}
	ratio := float64(unimp.Accesses()) / float64(imp.Accesses())
	byteRatio := float64(unimp.TrafficBytes()) / float64(imp.TrafficBytes())
	rowsSkipped := float64(imp.RowsSkipped) / float64(imp.RowsComputed+imp.RowsSkipped)
	return &Table{
		ID:     "E2",
		Title:  "DP-table memory accesses (paper: 12x reduction)",
		Header: []string{"algorithm", "writes", "reads", "total", "traffic (bytes)"},
		Rows: [][]string{
			{"GenASM (unimproved)", fmt.Sprint(unimp.TableWrites), fmt.Sprint(unimp.TableReads), fmt.Sprint(unimp.Accesses()), fmt.Sprint(unimp.TrafficBytes())},
			{"GenASM (improved)", fmt.Sprint(imp.TableWrites), fmt.Sprint(imp.TableReads), fmt.Sprint(imp.Accesses()), fmt.Sprint(imp.TrafficBytes())},
			{"reduction", "", "", fmt.Sprintf("%.1fx", ratio), fmt.Sprintf("%.1fx", byteRatio)},
		},
		Notes: []string{
			fmt.Sprintf("early termination skipped %.0f%% of error-level rows", 100*rowsSkipped),
			"the paper counts memory traffic; banded improved entries are packed sub-word stores, so the byte ratio is the comparable number",
		},
	}, nil
}

// cpuAligner is one named competitor in E3.
type cpuAligner struct {
	Name string
	// New returns a per-goroutine alignment function.
	New func() (func(q, t []byte) error, error)
}

// CPUAligners returns the paper's CPU competitor set. SWG is included as
// the quadratic-DP reference the introduction motivates against (score
// only; its full-matrix traceback would not fit memory at 10 kb).
func CPUAligners(includeSWG bool) []cpuAligner {
	out := []cpuAligner{
		{
			Name: "GenASM-improved",
			New: func() (func(q, t []byte) error, error) {
				a, err := core.New(core.DefaultConfig())
				if err != nil {
					return nil, err
				}
				return func(q, t []byte) error { _, err := a.AlignEncoded(q, t); return err }, nil
			},
		},
		{
			Name: "GenASM-unimproved",
			New: func() (func(q, t []byte) error, error) {
				a, err := baseline.New(baseline.DefaultConfig())
				if err != nil {
					return nil, err
				}
				return func(q, t []byte) error { _, err := a.AlignEncoded(q, t); return err }, nil
			},
		},
		{
			Name: "Edlib",
			New: func() (func(q, t []byte) error, error) {
				return func(q, t []byte) error { _, _, err := edlib.AlignEncoded(q, t); return err }, nil
			},
		},
		{
			Name: "KSW2",
			New: func() (func(q, t []byte) error, error) {
				p := ksw2.DefaultParams()
				return func(q, t []byte) error { _, _, err := ksw2.GlobalAlignEncoded(q, t, p); return err }, nil
			},
		},
	}
	if includeSWG {
		out = append(out, cpuAligner{
			Name: "SWG (full DP, score only)",
			New: func() (func(q, t []byte) error, error) {
				return func(q, t []byte) error {
					swg.AffineScore(decode(q), decode(t), ksw2.DefaultParams().Penalties)
					return nil
				}, nil
			},
		})
	}
	return out
}

func decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	const alpha = "ACGTN"
	for i, c := range codes {
		out[i] = alpha[c]
	}
	return out
}

// timeAligner measures wall time aligning all pairs with `threads`
// goroutines.
func timeAligner(w *Workload, a cpuAligner, threads int) (time.Duration, error) {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	jobs := make(chan int, len(w.Pairs))
	for i := range w.Pairs {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	errs := make([]error, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			fn, err := a.New()
			if err != nil {
				errs[t] = err
				return
			}
			for i := range jobs {
				if err := fn(w.Pairs[i].Query, w.Pairs[i].Ref); err != nil {
					errs[t] = err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return el, nil
}

// E3CPU reproduces the paper's CPU comparison: improved GenASM vs KSW2
// (paper 15.2x), Edlib (1.7x) and unimproved GenASM (1.9x).
func E3CPU(w *Workload, threads int, includeSWG bool) (*Table, map[string]time.Duration, error) {
	times := map[string]time.Duration{}
	tab := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("CPU alignment time, %d pairs / %d query bases (paper speedups vs improved: KSW2 15.2x, Edlib 1.7x, unimproved 1.9x)", len(w.Pairs), w.TotalBases),
		Header: []string{"aligner", "time", "pairs/s", "speedup of improved"},
	}
	for _, a := range CPUAligners(includeSWG) {
		el, err := timeAligner(w, a, threads)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		times[a.Name] = el
	}
	ref := times["GenASM-improved"]
	for _, a := range CPUAligners(includeSWG) {
		el := times[a.Name]
		tab.Rows = append(tab.Rows, []string{
			a.Name,
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/el.Seconds()),
			fmt.Sprintf("%.1fx", el.Seconds()/ref.Seconds()),
		})
	}
	return tab, times, nil
}

// E4GPU reproduces the paper's GPU comparison on the simulated A6000:
// improved-GPU vs improved-CPU (paper 4.1x), vs unimproved-GPU (5.9x), and
// vs the CPU baselines (KSW2 62x, Edlib 7.2x).
func E4GPU(w *Workload, cpuTimes map[string]time.Duration) (*Table, error) {
	imp, err := gpualign.AlignBatch(w.Pairs, gpualign.DefaultConfig(gpualign.Improved))
	if err != nil {
		return nil, err
	}
	unimp, err := gpualign.AlignBatch(w.Pairs, gpualign.DefaultConfig(gpualign.Unimproved))
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "E4",
		Title:  "GPU (simulated A6000) vs CPU (paper: 4.1x vs own CPU, 5.9x vs unimproved GPU, 62x vs KSW2, 7.2x vs Edlib)",
		Header: []string{"configuration", "time", "pairs/s", "speedup of improved GPU"},
	}
	gi := imp.Launch.Seconds
	row := func(name string, sec float64) {
		tab.Rows = append(tab.Rows, []string{
			name,
			(time.Duration(sec * float64(time.Second))).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/sec),
			fmt.Sprintf("%.1fx", sec/gi),
		})
	}
	row("GenASM-improved GPU", gi)
	row("GenASM-unimproved GPU", unimp.Launch.Seconds)
	for _, name := range []string{"GenASM-improved", "GenASM-unimproved", "Edlib", "KSW2"} {
		if el, ok := cpuTimes[name]; ok {
			row(name+" CPU", el.Seconds())
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("improved kernel: %d/%d blocks in shared memory; unimproved: %d/%d spilled to L2",
			imp.SharedBlocks, len(w.Pairs), unimp.SpilledBlocks, len(w.Pairs)),
		"GPU times come from the cycle-accurate-ish cost model in internal/gpu; CPU times are measured wall clock (scalar Go), so cross-domain ratios are larger than the paper's SIMD-C vs CUDA ratios",
	)
	return tab, nil
}

// A1Ablation toggles each improvement separately (the paper's claim that
// the improvements are what make GenASM outrun Edlib).
func A1Ablation(w *Workload, threads int) (*Table, error) {
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"all improvements (SENE+DENT+ET)", core.DefaultConfig()},
		{"SENE+DENT (no ET)", func() core.Config { c := core.DefaultConfig(); c.DisableET = true; return c }()},
		{"SENE+ET (no DENT)", func() core.Config { c := core.DefaultConfig(); c.DisableDENT = true; return c }()},
		{"SENE only", func() core.Config {
			c := core.DefaultConfig()
			c.DisableDENT, c.DisableET = true, true
			return c
		}()},
		{"none (edge storage, no ET)", func() core.Config {
			c := core.DefaultConfig()
			c.DisableSENE, c.DisableDENT, c.DisableET = true, true, true
			return c
		}()},
	}
	tab := &Table{
		ID:     "A1",
		Title:  "Ablation: contribution of each improvement",
		Header: []string{"configuration", "time", "peak footprint (bits)", "accesses"},
	}
	for _, c := range cfgs {
		cfg := c.cfg
		al := cpuAligner{Name: c.name, New: func() (func(q, t []byte) error, error) {
			a, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return func(q, t []byte) error { _, err := a.AlignEncoded(q, t); return err }, nil
		}}
		el, err := timeAligner(w, al, threads)
		if err != nil {
			return nil, err
		}
		ctr, err := runCounters(w, newImproved(cfg))
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			c.name, el.Round(time.Millisecond).String(),
			fmt.Sprint(ctr.PeakFootprintBits), fmt.Sprint(ctr.Accesses()),
		})
	}
	return tab, nil
}

// A2WindowSweep measures sensitivity to window size and overlap.
func A2WindowSweep(w *Workload, threads int) (*Table, error) {
	tab := &Table{
		ID:     "A2",
		Title:  "Window geometry sweep (accuracy vs speed)",
		Header: []string{"W", "O", "k", "time", "mean distance/base"},
	}
	for _, geo := range []struct{ W, O, K int }{
		{32, 12, 8}, {64, 24, 12}, {64, 32, 12}, {128, 48, 20},
	} {
		cfg := core.Config{W: geo.W, O: geo.O, InitialK: geo.K}
		var total int64
		var mu sync.Mutex
		al := cpuAligner{New: func() (func(q, t []byte) error, error) {
			a, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return func(q, t []byte) error {
				r, err := a.AlignEncoded(q, t)
				if err == nil {
					mu.Lock()
					total += int64(r.Distance)
					mu.Unlock()
				}
				return err
			}, nil
		}}
		el, err := timeAligner(w, al, threads)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(geo.W), fmt.Sprint(geo.O), fmt.Sprint(geo.K),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", float64(total)/float64(w.TotalBases)),
		})
	}
	tab.Notes = append(tab.Notes,
		"larger overlap lowers the committed distance (closer to optimal) at higher cost; W=64/O=24 is the paper's setting")
	return tab, nil
}

// A3ShortReads reruns the CPU comparison on an Illumina-like workload
// (the paper claims both short and long reads are supported).
func A3ShortReads(threads int) (*Table, error) {
	cfg := WorkloadConfig{GenomeLen: 500_000, Reads: 400, ReadLen: 150,
		ErrorRate: 0.02, Seed: 11, ShortReads: true}
	w, err := BuildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	tab, _, err := E3CPU(w, threads, false)
	if err != nil {
		return nil, err
	}
	tab.ID = "A3"
	tab.Title = "Short reads (150 bp, 2% error): " + tab.Title
	return tab, nil
}
