package eval

import (
	"context"
	"fmt"
	"time"

	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/edlib"
	"genasm/internal/gpu"
	"genasm/internal/gpualign"
	"genasm/internal/ksw2"
	"genasm/internal/swg"
)

// Extension experiments beyond the paper's reported numbers: accuracy
// against ground truth (A4), GPU occupancy sensitivity (A5), and device
// portability (A6). These probe the design choices DESIGN.md calls out.

// A4Accuracy compares each aligner's realized alignment cost against the
// exact edit distance (Edlib's answer on the GenASM-consumed span), so the
// windowing heuristic's accuracy loss is quantified.
func A4Accuracy(w *Workload) (*Table, error) {
	imp, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	unimp, err := baseline.New(baseline.DefaultConfig())
	if err != nil {
		return nil, err
	}
	kp := ksw2.DefaultParams()

	var impDist, unimpDist, edlibDist, ksw2Dist, exact int64
	suboptPairs := 0
	for _, p := range w.Pairs {
		ri, err := imp.AlignEncoded(p.Query, p.Ref)
		if err != nil {
			return nil, err
		}
		ru, err := unimp.AlignEncoded(p.Query, p.Ref)
		if err != nil {
			return nil, err
		}
		// Exact distance over the same span GenASM chose to consume,
		// so the numbers are directly comparable.
		span := p.Ref[:ri.RefConsumed]
		ed := edlib.DistanceEncoded(p.Query, span)
		_, kcg, err := ksw2.GlobalAlignEncoded(p.Query, span, kp)
		if err != nil {
			return nil, err
		}
		impDist += int64(ri.Distance)
		unimpDist += int64(ru.Distance)
		edlibDist += int64(ed)
		ksw2Dist += int64(kcg.EditCost())
		exact += int64(ed)
		if ri.Distance > ed {
			suboptPairs++
		}
	}
	perBase := func(d int64) string {
		return fmt.Sprintf("%.5f", float64(d)/float64(w.TotalBases))
	}
	excess := func(d int64) string {
		if exact == 0 {
			return "n/a"
		}
		return fmt.Sprintf("+%.2f%%", 100*float64(d-exact)/float64(exact))
	}
	return &Table{
		ID:     "A4",
		Title:  "Alignment accuracy vs exact edit distance (same consumed span)",
		Header: []string{"aligner", "distance/base", "excess over exact"},
		Rows: [][]string{
			{"exact (Edlib)", perBase(edlibDist), excess(edlibDist)},
			{"GenASM improved (windowed)", perBase(impDist), excess(impDist)},
			{"GenASM unimproved (windowed)", perBase(unimpDist), excess(unimpDist)},
			{"KSW2 (affine-optimal path)", perBase(ksw2Dist), excess(ksw2Dist)},
		},
		Notes: []string{
			fmt.Sprintf("windowing chose a suboptimal alignment on %d/%d pairs", suboptPairs, len(w.Pairs)),
			"KSW2 optimizes affine score, so its unit-cost edit count may exceed the unit-cost optimum",
		},
	}, nil
}

// A5OccupancySweep varies the per-block shared-memory allocation
// (occupancy) of the improved GPU kernel: too few blocks per SM starves
// parallelism, too many shrinks the allocation until windows spill.
func A5OccupancySweep(w *Workload) (*Table, error) {
	tab := &Table{
		ID:     "A5",
		Title:  "GPU occupancy sweep (improved kernel, A6000 model)",
		Header: []string{"blocks/SM target", "shared/block (KiB)", "time", "spilled blocks"},
	}
	for _, blocks := range []int{2, 4, 8, 16, 32} {
		cfg := gpualign.DefaultConfig(gpualign.Improved)
		cfg.TargetBlocksPerSM = blocks
		res, err := gpualign.AlignBatch(w.Pairs, cfg)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(blocks),
			fmt.Sprintf("%.1f", float64(cfg.Device.SharedMemPerSM/blocks)/1024),
			(time.Duration(res.Launch.Seconds * float64(time.Second))).Round(time.Microsecond).String(),
			fmt.Sprint(res.SpilledBlocks),
		})
	}
	return tab, nil
}

// A6Devices runs both kernels across the modelled device zoo.
func A6Devices(w *Workload) (*Table, error) {
	tab := &Table{
		ID:     "A6",
		Title:  "Device portability (simulated)",
		Header: []string{"device", "improved", "unimproved", "improvement speedup"},
	}
	for _, dev := range []gpu.DeviceConfig{gpu.A6000(), gpu.A100(), gpu.LaptopGPU()} {
		impCfg := gpualign.DefaultConfig(gpualign.Improved)
		impCfg.Device = dev
		imp, err := gpualign.AlignBatch(w.Pairs, impCfg)
		if err != nil {
			return nil, err
		}
		unimpCfg := gpualign.DefaultConfig(gpualign.Unimproved)
		unimpCfg.Device = dev
		unimp, err := gpualign.AlignBatch(w.Pairs, unimpCfg)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			dev.Name,
			(time.Duration(imp.Launch.Seconds * float64(time.Second))).Round(time.Microsecond).String(),
			(time.Duration(unimp.Launch.Seconds * float64(time.Second))).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", unimp.Launch.Seconds/imp.Launch.Seconds),
		})
	}
	tab.Notes = append(tab.Notes,
		"the improvement factor grows as memory bandwidth shrinks (laptop) because the unimproved kernel is bandwidth-bound")
	return tab, nil
}

// SWGReference exposes the quadratic DP as a sanity row for small
// workloads (used by tests; E3 includes it behind a flag).
func SWGReference(w *Workload) (time.Duration, error) {
	start := time.Now()
	for _, p := range w.Pairs {
		swg.AffineScore(dna.DecodeSeq(p.Query), dna.DecodeSeq(p.Ref), ksw2.DefaultParams().Penalties)
	}
	return time.Since(start), nil
}

// A7ThreadScaling measures the improved CPU aligner's multithreaded
// scaling (the paper ran its CPU comparison with 48 threads; this shows
// how throughput scales with the thread count on the host).
func A7ThreadScaling(ctx context.Context, w *Workload, maxThreads int) (*Table, error) {
	tab := &Table{
		ID:     "A7",
		Title:  "CPU thread scaling, improved GenASM",
		Header: []string{"threads", "time", "pairs/s", "scaling"},
	}
	aligner := CPUAligners(false)[0] // GenASM-improved
	var base time.Duration
	for threads := 1; threads <= maxThreads; threads *= 2 {
		el, err := timeAligner(ctx, w, aligner, threads)
		if err != nil {
			return nil, err
		}
		if threads == 1 {
			base = el
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(threads),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(len(w.Pairs))/el.Seconds()),
			fmt.Sprintf("%.2fx", base.Seconds()/el.Seconds()),
		})
	}
	return tab, nil
}
