package ksw2

import (
	"math/rand"
	"testing"

	"genasm/internal/cigar"
	"genasm/internal/swg"
)

func randSeq(rng *rand.Rand, n int) []byte {
	alpha := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(4)]
	}
	return s
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	alpha := []byte("ACGT")
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, alpha[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, alpha[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}

func unbanded() Params {
	return Params{Penalties: cigar.DefaultAffine, BandWidth: 0}
}

func TestUnbandedMatchesGotohGoldStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 150; iter++ {
		q := randSeq(rng, 1+rng.Intn(80))
		var r []byte
		if iter%3 == 0 {
			r = randSeq(rng, 1+rng.Intn(80))
		} else {
			r = mutate(rng, q, 0.25)
			if len(r) == 0 {
				r = []byte("A")
			}
		}
		score, cg, err := GlobalAlign(q, r, unbanded())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, _ := swg.AffineAlign(q, r, cigar.DefaultAffine)
		if score != want {
			t.Fatalf("iter %d: score %d want %d", iter, score, want)
		}
		if err := cg.Check(q, r); err != nil {
			t.Fatalf("iter %d: cigar: %v", iter, err)
		}
		if got := cg.AffineScore(cigar.DefaultAffine); got != score {
			t.Fatalf("iter %d: cigar scores %d, DP %d", iter, got, score)
		}
	}
}

func TestBandedEqualsUnbandedWhenWideEnough(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		q := randSeq(rng, 200)
		r := mutate(rng, q, 0.10)
		full, _, err := GlobalAlign(q, r, unbanded())
		if err != nil {
			t.Fatal(err)
		}
		banded, cg, err := GlobalAlign(q, r, Params{Penalties: cigar.DefaultAffine, BandWidth: 100})
		if err != nil {
			t.Fatal(err)
		}
		if banded != full {
			t.Fatalf("iter %d: banded %d != full %d", iter, banded, full)
		}
		if err := cg.Check(q, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNarrowBandNeverOverestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		q := randSeq(rng, 150)
		r := mutate(rng, q, 0.3)
		full, _ := swg.AffineAlign(q, r, cigar.DefaultAffine)
		banded, cg, err := GlobalAlign(q, r, Params{Penalties: cigar.DefaultAffine, BandWidth: 5})
		if err != nil {
			t.Fatal(err)
		}
		if banded > full {
			t.Fatalf("iter %d: banded score %d above optimum %d", iter, banded, full)
		}
		// Whatever path the band admits must still be a real alignment.
		if err := cg.Check(q, r); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if cg.AffineScore(cigar.DefaultAffine) != banded {
			t.Fatalf("iter %d: cigar/score mismatch", iter)
		}
	}
}

func TestGlobalScoreAgreesWithAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 60; iter++ {
		q := randSeq(rng, 1+rng.Intn(120))
		r := mutate(rng, q, 0.2)
		if len(r) == 0 {
			r = []byte("C")
		}
		p := DefaultParams()
		s1, err := GlobalScore(q, r, p)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := GlobalAlign(q, r, p)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Fatalf("iter %d: score-only %d != align %d", iter, s1, s2)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	p := unbanded()
	score, cg, err := GlobalAlign(nil, []byte("ACGT"), p)
	if err != nil || score != -(4+4*2) || cg.String() != "4D" {
		t.Fatalf("%d %s %v", score, cg, err)
	}
	score, cg, err = GlobalAlign([]byte("AC"), nil, p)
	if err != nil || score != -(4+2*2) || cg.String() != "2I" {
		t.Fatalf("%d %s %v", score, cg, err)
	}
	score, cg, err = GlobalAlign(nil, nil, p)
	if err != nil || score != 0 || cg != nil {
		t.Fatalf("%d %v %v", score, cg, err)
	}
}

func TestRejectsNonPositiveExtension(t *testing.T) {
	p := Params{Penalties: cigar.AffinePenalties{A: 1, B: 1, Q: 1, E: 0}}
	if _, _, err := GlobalAlign([]byte("A"), []byte("A"), p); err == nil {
		t.Fatal("accepted E=0")
	}
}

func TestUnequalLengthsWidenBandAutomatically(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := randSeq(rng, 50)
	r := append(append([]byte{}, q...), randSeq(rng, 200)...)
	// Band of 1 must still reach the global corner.
	score, cg, err := GlobalAlign(q, r, Params{Penalties: cigar.DefaultAffine, BandWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Check(q, r); err != nil {
		t.Fatal(err)
	}
	if cg.AffineScore(cigar.DefaultAffine) != score {
		t.Fatal("cigar/score mismatch")
	}
}

func TestNMismatches(t *testing.T) {
	score, cg, err := GlobalAlign([]byte("ANA"), []byte("ANA"), unbanded())
	if err != nil {
		t.Fatal(err)
	}
	want := 2*2 - 4 // two matches, one N-vs-N mismatch
	if score != want {
		t.Fatalf("score %d want %d (%s)", score, want, cg)
	}
}

func TestLongReadBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randSeq(rng, 3000)
	r := mutate(rng, q, 0.10)
	score, cg, err := GlobalAlign(q, r, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Check(q, r); err != nil {
		t.Fatal(err)
	}
	if cg.AffineScore(cigar.DefaultAffine) != score {
		t.Fatal("cigar/score mismatch")
	}
	if score <= 0 {
		t.Fatalf("score %d for 10%% error read should be positive", score)
	}
}

func BenchmarkGlobalAlign3kbBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	q := randSeq(rng, 3000)
	r := mutate(rng, q, 0.1)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GlobalAlign(q, r, p); err != nil {
			b.Fatal(err)
		}
	}
}
