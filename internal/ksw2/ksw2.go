// Package ksw2 reproduces minimap2's KSW2 global aligner (Suzuki & Kasahara,
// BMC Bioinformatics 2018; Li, Bioinformatics 2018): banded global alignment
// with affine gap penalties. The original exploits SIMD difference
// recurrences; this scalar Go port keeps the same DP, banding and traceback
// structure (per-cell packed direction flags, run-following gap traceback).
//
// It is the paper's "KSW2" CPU baseline: exact affine-gap alignment whose
// cost grows with query*band, which is why GenASM-style bit-parallel
// aligners outrun it on long reads.
package ksw2

import (
	"errors"
	"fmt"

	"genasm/internal/cigar"
	"genasm/internal/dna"
)

// Params configures the aligner.
type Params struct {
	// Penalties is the affine scoring scheme (match bonus A, mismatch
	// penalty B, gap open Q, gap extend E; a gap of length l costs
	// Q + l*E).
	Penalties cigar.AffinePenalties
	// BandWidth is the half-width of the diagonal band. Non-positive
	// means unbanded (exact). The band is widened automatically to at
	// least the query/reference length difference so the global corner
	// stays reachable.
	BandWidth int
}

// DefaultParams mirrors minimap2's map-pb defaults with a 500-cell band.
func DefaultParams() Params {
	return Params{Penalties: cigar.DefaultAffine, BandWidth: 500}
}

const negInf = int32(-1 << 29)

// traceback direction flags, one byte per in-band cell.
const (
	dirMask  = 0x03 // source of H: 0 diag, 1 from E (left/ref gap), 2 from F (up/query gap)
	fromDiag = 0x00
	fromE    = 0x01
	fromF    = 0x02
	eExtend  = 0x08 // E chose extension over open
	fExtend  = 0x10 // F chose extension over open
)

// GlobalScore computes the banded global affine score without traceback
// storage (two-row DP).
func GlobalScore(query, ref []byte, p Params) (int, error) {
	sc, _, err := align(dna.EncodeSeq(query), dna.EncodeSeq(ref), p, false)
	return sc, err
}

// GlobalAlign computes the banded global affine alignment.
func GlobalAlign(query, ref []byte, p Params) (int, cigar.Cigar, error) {
	return align(dna.EncodeSeq(query), dna.EncodeSeq(ref), p, true)
}

// GlobalAlignEncoded is GlobalAlign on pre-encoded base codes.
func GlobalAlignEncoded(query, ref []byte, p Params) (int, cigar.Cigar, error) {
	return align(query, ref, p, true)
}

// GlobalScoreEncoded is GlobalScore on pre-encoded base codes.
func GlobalScoreEncoded(query, ref []byte, p Params) (int, error) {
	sc, _, err := align(query, ref, p, false)
	return sc, err
}

func align(q, t []byte, p Params, wantCigar bool) (int, cigar.Cigar, error) {
	m, n := len(q), len(t)
	pen := p.Penalties
	if pen.E <= 0 {
		return 0, nil, errors.New("ksw2: gap extension must be positive")
	}
	switch {
	case m == 0 && n == 0:
		return 0, nil, nil
	case m == 0:
		return -(pen.Q + n*pen.E), cigar.Cigar{{Kind: cigar.Del, Len: n}}, nil
	case n == 0:
		return -(pen.Q + m*pen.E), cigar.Cigar{{Kind: cigar.Ins, Len: m}}, nil
	}
	w := p.BandWidth
	if w <= 0 || w > m+n {
		w = m + n // effectively unbanded
	}
	if d := abs(m - n); w < d+1 {
		w = d + 1
	}
	bw := 2*w + 1 // cells stored per row

	// H[j+1]/F[j+1] hold row i-1's values for column j while row i is
	// being computed; index 0 is the virtual column -1.
	H := make([]int32, n+2)
	F := make([]int32, n+2)
	gap := func(l int) int32 { return int32(-(pen.Q + l*pen.E)) }
	openExt := int32(pen.Q + pen.E)
	ext := int32(pen.E)

	var dir []byte
	if wantCigar {
		dir = make([]byte, m*bw)
	}

	// Row -1 boundary: H(-1, j) = gap(j+1) within the band, -inf outside.
	H[0] = 0
	for j := 0; j < n; j++ {
		if j+1 > w {
			H[j+1] = negInf
		} else {
			H[j+1] = gap(j + 1)
		}
		F[j+1] = negInf
	}
	H[n+1] = negInf
	F[0], F[n+1] = negInf, negInf

	for i := 0; i < m; i++ {
		jLo := i - w
		if jLo < 0 {
			jLo = 0
		}
		jHi := i + w
		if jHi > n-1 {
			jHi = n - 1
		}
		diag := H[jLo]  // H(i-1, jLo-1): leftmost cell of the previous band
		hLeft := negInf // H(i, jLo-1)
		eRun := negInf  // E(i, jLo-1)
		if jLo == 0 {
			hLeft = gap(i + 1)
		}
		for j := jLo; j <= jHi; j++ {
			var flags byte
			// E: gap consuming reference (horizontal run).
			e := eRun - ext
			if open := hLeft - openExt; e >= open {
				flags |= eExtend
			} else {
				e = open
			}
			// F: gap consuming query (vertical run).
			f := F[j+1] - ext
			if open := H[j+1] - openExt; f >= open {
				flags |= fExtend
			} else {
				f = open
			}
			s := int32(pen.A)
			if q[i] != t[j] || q[i] == dna.N {
				s = int32(-pen.B)
			}
			h := diag + s
			if e > h {
				h = e
				flags |= fromE
			}
			if f > h {
				h = f
				flags = (flags &^ dirMask) | fromF
			}
			if h < negInf {
				h = negInf
			}
			diag = H[j+1]
			H[j+1] = h
			F[j+1] = f
			eRun = e
			hLeft = h
			if wantCigar {
				dir[i*bw+(j-jLo)] = flags
			}
		}
		// The next row reads one column beyond this band's right edge as
		// its "above" cell; that cell is outside this row's band.
		if jHi+2 <= n+1 {
			H[jHi+2] = negInf
			F[jHi+2] = negInf
		}
		// Advance the virtual column -1 boundary to row i.
		if jLo == 0 {
			H[0] = gap(i + 1)
		} else {
			H[0] = negInf
		}
	}
	score := int(H[n])
	if !wantCigar {
		return score, nil, nil
	}

	// Traceback: follow the packed direction flags; inside gap runs the
	// extension bits decide when the run opened.
	var rev cigar.Cigar
	i, j := m-1, n-1
	state := byte(fromDiag)
	flagsAt := func(i, j int) (byte, error) {
		jLo := i - w
		if jLo < 0 {
			jLo = 0
		}
		off := j - jLo
		if off < 0 || off >= bw || j > i+w {
			return 0, fmt.Errorf("ksw2: traceback left the band at i=%d j=%d", i, j)
		}
		return dir[i*bw+off], nil
	}
	for i >= 0 && j >= 0 {
		fl, err := flagsAt(i, j)
		if err != nil {
			return 0, nil, err
		}
		switch state {
		case fromDiag:
			switch fl & dirMask {
			case fromE:
				state = fromE
			case fromF:
				state = fromF
			default:
				kind := cigar.Match
				if q[i] != t[j] || q[i] == dna.N {
					kind = cigar.Mismatch
				}
				rev = rev.Append(kind, 1)
				i, j = i-1, j-1
			}
		case fromE: // gap consuming ref
			rev = rev.Append(cigar.Del, 1)
			if fl&eExtend == 0 {
				state = fromDiag
			}
			j--
		case fromF: // gap consuming query
			rev = rev.Append(cigar.Ins, 1)
			if fl&fExtend == 0 {
				state = fromDiag
			}
			i--
		}
	}
	if j >= 0 {
		rev = rev.Append(cigar.Del, j+1)
	}
	if i >= 0 {
		rev = rev.Append(cigar.Ins, i+1)
	}
	return score, rev.Reverse(), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
