package lint

import (
	"go/ast"
	"go/types"
)

// LockSafe returns the locksafe analyzer. Two rules:
//
//  1. No by-value copies of a struct that contains a sync.Mutex or
//     sync.RWMutex (directly, embedded, or in an array field): value
//     receivers and parameters, plain-variable assignments, range
//     variables, and call arguments are checked. A copied lock guards
//     nothing.
//  2. No channel send while a mutex is held: a send can block
//     indefinitely, turning a critical section into a deadlock. The
//     check is a per-function linear scan (branches analyzed
//     independently), so it is an approximation — suppress with
//     //lint:allow locksafe <reason> where a send under lock is provably
//     non-blocking (e.g. a buffered single-owner channel).
func LockSafe() *Analyzer {
	return &Analyzer{
		Name: "locksafe",
		Doc:  "flags by-value lock copies and channel sends under a held mutex",
		Run: func(pass *Pass) {
			ls := &lockSafeWalker{pass: pass, seen: make(map[types.Type]bool)}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					ls.checkSignature(fd)
					if fd.Body != nil {
						ls.checkCopies(fd.Body)
						ls.scanHeld(fd.Body.List, map[string]bool{})
					}
				}
			}
		},
	}
}

type lockSafeWalker struct {
	pass *Pass
	seen map[types.Type]bool
}

// containsLock reports whether a value of type t embeds a sync lock.
func (w *lockSafeWalker) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if w.seen[t] {
		return false // cycle (or cached negative mid-recursion)
	}
	w.seen[t] = true
	defer delete(w.seen, t)

	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once" || obj.Name() == "Cond" || obj.Name() == "Pool") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if w.containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return w.containsLock(u.Elem())
	}
	return false
}

// checkSignature flags by-value receivers and parameters of
// lock-containing struct types.
func (w *lockSafeWalker) checkSignature(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := w.pass.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if w.containsLock(tv.Type) {
				w.pass.Reportf(field.Pos(), "%s passes %s by value, copying its lock; use a pointer", kind, tv.Type)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

// checkCopies flags statements that copy a lock-containing value out of
// an existing variable: assignments, range clauses, and call arguments.
// Composite literals and calls on the RHS are fresh values, not copies.
func (w *lockSafeWalker) checkCopies(body *ast.BlockStmt) {
	info := w.pass.Pkg.Info
	readsExisting := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "_"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !readsExisting(rhs) {
					continue
				}
				// `_ = x` materializes no copy.
				if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
					continue
				}
				t := info.TypeOf(rhs)
				if t != nil && w.containsLock(t) {
					w.pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a lock; use a pointer", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil && !isBlank(n.Value) {
				t := info.TypeOf(n.Value)
				if t != nil && w.containsLock(t) {
					w.pass.Reportf(n.Value.Pos(), "range value copies %s, which contains a lock; range over indices or pointers", t)
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range n.Args {
				if !readsExisting(arg) {
					continue
				}
				t := info.TypeOf(arg)
				if t != nil && w.containsLock(t) {
					w.pass.Reportf(arg.Pos(), "call passes %s by value, copying its lock; pass a pointer", t)
				}
			}
		}
		return true
	})
}

// lockMethod classifies a call as Lock/RLock (+1), Unlock/RUnlock (-1)
// on a sync.Mutex/RWMutex, returning the receiver expression text.
func (w *lockSafeWalker) lockMethod(call *ast.CallExpr) (recv string, delta int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", 0
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).TryLock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).TryLock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).TryRLock":
		return types.ExprString(sel.X), +1
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return types.ExprString(sel.X), -1
	}
	return "", 0
}

// scanHeld walks a statement list tracking which mutexes are held, and
// flags channel sends while any lock is live. Nested blocks inherit a
// copy of the state; a deferred Unlock does not release for the purpose
// of this scan (the send still happens inside the critical section).
func (w *lockSafeWalker) scanHeld(stmts []ast.Stmt, held map[string]bool) {
	anyHeld := func() string {
		for k := range held {
			return k
		}
		return ""
	}
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	reportSends := func(n ast.Node) {
		if len(held) == 0 || n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate execution context
			case *ast.SendStmt:
				w.pass.Reportf(m.Arrow, "channel send while holding %s; a blocked receiver deadlocks the critical section", anyHeld())
			}
			return true
		})
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, delta := w.lockMethod(call); recv != "" {
					if delta > 0 {
						held[recv] = true
					} else {
						delete(held, recv)
					}
					continue
				}
			}
			reportSends(s)
		case *ast.SendStmt:
			if lk := anyHeld(); lk != "" {
				w.pass.Reportf(s.Arrow, "channel send while holding %s; a blocked receiver deadlocks the critical section", lk)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function: do not clear, and do not scan the deferred call.
		case *ast.BlockStmt:
			w.scanHeld(s.List, copyHeld())
		case *ast.IfStmt:
			reportSends(s.Init)
			reportSends(s.Cond)
			w.scanHeld(s.Body.List, copyHeld())
			if s.Else != nil {
				w.scanHeld([]ast.Stmt{s.Else}, copyHeld())
			}
		case *ast.ForStmt:
			w.scanHeld(s.Body.List, copyHeld())
		case *ast.RangeStmt:
			w.scanHeld(s.Body.List, copyHeld())
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch s := s.(type) {
			case *ast.SwitchStmt:
				body = s.Body
			case *ast.TypeSwitchStmt:
				body = s.Body
			case *ast.SelectStmt:
				body = s.Body
			}
			for _, cs := range body.List {
				switch cs := cs.(type) {
				case *ast.CaseClause:
					w.scanHeld(cs.Body, copyHeld())
				case *ast.CommClause:
					if len(held) > 0 {
						if send, ok := cs.Comm.(*ast.SendStmt); ok {
							w.pass.Reportf(send.Arrow, "channel send while holding %s; a blocked receiver deadlocks the critical section", anyHeld())
						}
					}
					w.scanHeld(cs.Body, copyHeld())
				}
			}
		default:
			reportSends(s)
		}
	}
}
