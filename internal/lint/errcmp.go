package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrCmp returns the errcmp analyzer. Two rules:
//
//  1. Sentinel errors are matched with errors.Is, never == or != — a
//     wrapped sentinel (fmt.Errorf("...: %w", ErrX)) fails identity
//     comparison silently. Flagged: ==/!= (and switch cases) where one
//     side is a package-level error variable; err == nil stays legal.
//  2. fmt.Errorf that formats an error argument must wrap it with %w,
//     not stringify it with %v/%s, so the cause stays matchable.
func ErrCmp() *Analyzer {
	return &Analyzer{
		Name: "errcmp",
		Doc:  "enforces errors.Is over sentinel ==/!= and %w over %v in fmt.Errorf",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.BinaryExpr:
						checkErrCompare(pass, n)
					case *ast.SwitchStmt:
						checkErrSwitch(pass, n)
					case *ast.CallExpr:
						checkErrorfWrap(pass, n)
					}
					return true
				})
			}
		},
	}
}

// checkErrCompare flags x == y / x != y where either side is a sentinel
// error value.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		if name := sentinelError(pass, pair[0]); name != "" && isErrorType(pass, pair[1]) {
			verb := "errors.Is(err, " + name + ")"
			if be.Op == token.NEQ {
				verb = "!" + verb
			}
			pass.Reportf(be.Pos(), "sentinel error compared with %s; use %s so wrapped errors match", be.Op, verb)
			return
		}
	}
}

// checkErrSwitch flags `switch err { case ErrX: }` over an error tag.
func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := sentinelError(pass, e); name != "" {
				pass.Reportf(e.Pos(), "switch on error compares sentinel %s by identity; use switch { case errors.Is(err, %s): }", name, name)
			}
		}
	}
}

// sentinelError returns the display name of e when it denotes a
// package-level variable of type error (the sentinel pattern), else "".
func sentinelError(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: declared directly in the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorInterface(v.Type()) {
		return ""
	}
	if v.Pkg().Path() == pass.Pkg.ImportPath {
		return v.Name()
	}
	return v.Pkg().Name() + "." + v.Name()
}

// isErrorType reports whether e's static type is error (the interface).
func isErrorType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isErrorInterface(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorInterface reports whether t implements the error interface.
func isErrorInterface(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// with a stringifying verb instead of %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs := formatVerbs(format)
	for i, v := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if v == 'w' {
			continue
		}
		at := pass.Pkg.Info.Types[call.Args[argIdx]].Type
		if at == nil || !isErrorInterface(at) {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(), "fmt.Errorf formats an error with %%%c; use %%w so the cause stays matchable with errors.Is", v)
	}
}

// formatVerbs returns the verb letter for each argument a Printf-style
// format string consumes, in order. A '*' width/precision consumes an
// argument of its own and is recorded as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' ||
				(c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // %% literal
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
