// Package hotalloc is the golden fixture for the hotalloc analyzer.
// Each `// want` comment pins one expected diagnostic on its line.
package hotalloc

import "fmt"

func loops(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		buf := make([]byte, 8) // want `make inside loop`
		out = append(out, i)   // want `append inside loop`
		s := string(buf[:2])   // want `\[\]byte->string conversion inside loop`
		b := []byte(s)         // want `string->\[\]byte conversion inside loop`
		fmt.Println(i)         // want `boxed into interface parameter inside loop`
		f := func() { _ = b }  // want `closure allocated inside loop`
		f()
	}
	return out
}

func rangeLoop(src []byte) int {
	n := 0
	for _, b := range src {
		p := new(int) // want `new inside loop`
		*p = int(b)
		n += *p
	}
	return n
}

// coldPaths: return and panic run at most once per call, so their
// allocations are not steady-state and must not be flagged.
func coldPaths(n int) ([]byte, error) {
	for i := 0; i < n; i++ {
		if i < -1 {
			return nil, fmt.Errorf("bad index %d", i)
		}
		if i > n {
			panic(fmt.Sprintf("impossible index %d", i))
		}
	}
	return make([]byte, n), nil
}

// hoisted allocations outside loops are fine.
func hoisted(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	return buf
}

// pointerArgs: passing a pointer through an interface does not box.
func pointerArgs(ps []*int) {
	for _, p := range ps {
		sink(p)
	}
}

func sink(v any) { _ = v }

func suppressedGrowth(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		//lint:allow hotalloc amortized growth into a caller-owned buffer, measured zero in steady state
		out = append(out, i)
	}
	return out
}
