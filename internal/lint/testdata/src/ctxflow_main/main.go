// Package main is the ctxflow counter-fixture: binaries own their root
// context, so context.Background() is legal here and nothing is flagged.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	_ = context.TODO()
}
