// Package locksafe is the golden fixture for the locksafe analyzer.
package locksafe

import "sync"

// Guarded contains a lock, so values of it must never be copied.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper embeds a lock-containing struct: still no copies.
type Wrapper struct {
	g Guarded
}

func byValueParam(g Guarded) int { // want `parameter passes .* by value`
	return g.n
}

func (g Guarded) valueReceiver() int { // want `receiver passes .* by value`
	return g.n
}

func assignCopy(g *Guarded) {
	cp := *g // want `assignment copies`
	_ = cp
}

func wrapperCopy(w *Wrapper) {
	cp := *w // want `assignment copies`
	_ = cp
}

func rangeCopy(gs []Guarded) int {
	n := 0
	for _, g := range gs { // want `range value copies`
		n += g.n
	}
	return n
}

func callCopy(g *Guarded) int {
	return byValueParam(*g) // want `call passes .* by value`
}

// Pointers are always fine.
func pointerParam(g *Guarded) int { return g.n }

func pointerRange(gs []*Guarded) int {
	n := 0
	for _, g := range gs {
		n += g.n
	}
	return n
}

// Q guards a channel with a mutex: sends while holding it can deadlock.
type Q struct {
	mu sync.Mutex
	ch chan int
}

func (q *Q) sendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want `channel send while holding q.mu`
	q.mu.Unlock()
}

func (q *Q) sendUnderDeferredUnlock(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while holding q.mu`
}

func (q *Q) sendAfterUnlock(v int) {
	q.mu.Lock()
	q.ch = make(chan int, 1)
	q.mu.Unlock()
	q.ch <- v // no finding: lock released first
}

func (q *Q) sendInSelect(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v: // want `channel send while holding q.mu`
	default:
	}
}

func (q *Q) allowedSend(v int) {
	q.mu.Lock()
	//lint:allow locksafe buffered single-owner channel, send can never block
	q.ch <- v
	q.mu.Unlock()
}
