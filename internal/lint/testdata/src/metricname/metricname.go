// Package metricname is the golden fixture for the metricname analyzer.
package metricname

import "genasm/internal/obs"

func register(r *obs.Registry) {
	// Well-formed names: nothing flagged.
	r.Counter("genasm_requests_total", "requests")
	r.CounterFunc("genasm_cache_hits_total", "hits", func() float64 { return 0 })
	r.Gauge("genasm_queue_depth", "depth")
	r.GaugeFunc("genasm_uptime_seconds", "uptime", func() float64 { return 0 })
	r.Histogram("genasm_e2e_latency_seconds", "latency", []float64{1})

	// Counters must end in _total.
	r.Counter("genasm_requests", "requests")                          // want `metricname: .*counter "genasm_requests" must end in _total`
	r.CounterFunc("genasm_hits", "hits", func() float64 { return 0 }) // want `metricname: .*counter "genasm_hits" must end in _total`

	// Non-counters must not claim the _total suffix.
	r.Gauge("genasm_depth_total", "depth")                            // want `metricname: .*gauge "genasm_depth_total" must not end in _total`
	r.GaugeFunc("genasm_up_total", "up", func() float64 { return 0 }) // want `metricname: .*gauge "genasm_up_total" must not end in _total`
	r.Histogram("genasm_lat_total", "latency", []float64{1})          // want `metricname: .*histogram "genasm_lat_total" must not end in _total`

	// snake_case violations.
	r.Gauge("genasmQueueDepth", "depth")            // want `metricname: .*not snake_case`
	r.Counter("genasm__requests_total", "requests") // want `metricname: .*not snake_case`
	r.Gauge("_genasm_depth", "depth")               // want `metricname: .*not snake_case`
	r.Counter("genasm-requests_total", "requests")  // want `metricname: .*not snake_case`

	// A constant expression is still checked; a computed name is not
	// (the registry validates it at runtime).
	const prefix = "genasm_"
	r.Gauge(prefix+"depth_total", "depth") // want `metricname: .*must not end in _total`
	r.Gauge(dynamicName(), "depth")

	// A reasoned suppression silences the finding.
	//lint:allow metricname fixture exercising the directive path
	r.Counter("genasm_suppressed", "suppressed")
}

func dynamicName() string { return "genasm_dynamic_total" }

// notTheRegistry has methods with registrar names but a different
// receiver type: never flagged.
type notTheRegistry struct{}

func (notTheRegistry) Counter(name, help string) {}

func decoy(n notTheRegistry) {
	n.Counter("not a metric at all", "help")
}
