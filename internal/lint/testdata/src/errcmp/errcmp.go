// Package errcmp is the golden fixture for the errcmp analyzer.
package errcmp

import (
	"errors"
	"fmt"
	"io"
)

var ErrLocal = errors.New("errcmp: local sentinel")

func compare(err error) bool {
	if err == io.EOF { // want `sentinel error compared with ==`
		return true
	}
	if err != ErrLocal { // want `sentinel error compared with !=`
		return false
	}
	return err == nil // nil comparison stays legal
}

func reversed(err error) bool {
	return io.EOF == err // want `sentinel error compared with ==`
}

func switches(err error) int {
	switch err {
	case io.EOF: // want `switch on error compares sentinel io.EOF by identity`
		return 1
	case nil:
		return 0
	}
	return 2
}

func properly(err error) bool {
	return errors.Is(err, io.EOF) // no finding
}

func wrap(err error) error {
	return fmt.Errorf("loading index: %v", err) // want `use %w`
}

func wrapString(err error) error {
	return fmt.Errorf("loading %s: %s", "name", err) // want `use %w`
}

func wrapOK(name string, err error) error {
	return fmt.Errorf("loading %s: %w", name, err) // no finding: %w wraps
}

func starWidth(err error) error {
	return fmt.Errorf("pad %*d: %w", 4, 7, err) // no finding: * consumes an arg
}

func allowedCompare(err error) bool {
	//lint:allow errcmp identity check against an unwrapped sentinel is the documented contract here
	return err == io.EOF
}
