// Package directives is the fixture for //lint:allow hygiene: a
// suppression must carry a reason and name a real analyzer, or it is
// itself a finding and suppresses nothing. Expectations are asserted
// programmatically in TestDirectiveHygiene (the hygiene findings land
// on the directive lines, where a want comment cannot sit).
package directives

import "context"

func missingReason() {
	//lint:allow ctxflow
	_ = context.Background()
}

func unknownAnalyzer() {
	//lint:allow ctxfloww typo in the analyzer name
	_ = context.Background()
}

func wellFormed() {
	//lint:allow ctxflow fixture proves a reasoned directive suppresses
	_ = context.Background()
}
