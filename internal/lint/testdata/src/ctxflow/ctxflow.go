// Package ctxflow is the golden fixture for the ctxflow analyzer.
package ctxflow

import "context"

func mint() {
	ctx := context.Background() // want `context.Background\(\) in library code`
	_ = ctx
	_ = context.TODO() // want `context.TODO\(\) in library code`
}

// holder already has a ctx: minting a root context severs the chain and
// gets the sharper threading diagnostic.
func holder(ctx context.Context) error {
	return work(context.Background()) // want `thread the function's "ctx" parameter`
}

func work(ctx context.Context) error { return ctx.Err() }

// threaded passes its ctx along: no finding.
func threaded(ctx context.Context) error {
	return work(ctx)
}

// derived contexts are fine too.
func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub)
}

func allowed() {
	//lint:allow ctxflow detached lifetime is owned by the manager, cancellation flows through Close
	_ = context.Background()
}
