// Package httpclient is the golden fixture for the httpclient analyzer.
package httpclient

import (
	"context"
	"net/http"
	"time"
)

func bareClient() *http.Client {
	return &http.Client{} // want `http.Client without an explicit Timeout`
}

func transportOnly() *http.Client {
	return &http.Client{ // want `http.Client without an explicit Timeout`
		Transport: http.DefaultTransport,
	}
}

func boundedClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second} // no finding: Timeout set
}

func zeroButStated() *http.Client {
	// Explicitly stating Timeout: 0 is a visible decision, not an
	// accident; the analyzer only demands the key be present.
	return &http.Client{Timeout: 0} // no finding
}

func suppressedStreaming() *http.Client {
	//lint:allow httpclient streamed responses have no bounded duration; the transport caps connect and header latency
	return &http.Client{Transport: http.DefaultTransport}
}

func defaultClientHelpers() {
	http.Get("http://example.test/")                       // want `http.Get uses http.DefaultClient`
	http.Head("http://example.test/")                      // want `http.Head uses http.DefaultClient`
	http.Post("http://example.test/", "text/plain", nil)   // want `http.Post uses http.DefaultClient`
	http.PostForm("http://example.test/", nil)             // want `http.PostForm uses http.DefaultClient`
	http.NewRequest(http.MethodGet, "http://e.test/", nil) // want `http.NewRequest detaches the request from the caller's context`
}

func contextualRequest(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://e.test/", nil) // no finding
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
