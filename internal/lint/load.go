package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit an Analyzer
// inspects. Files holds only non-test files — test files are exempt
// from every genasm invariant, so they are never parsed.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads and type-checks the packages of one module without any
// dependency beyond the standard library. Module-internal imports are
// resolved by directory layout under the module root; standard-library
// imports are type-checked from $GOROOT/src via go/importer's source
// mode. Loaded packages are memoized, so a Loader is cheap to reuse
// across LoadAll/Load/LoadDir calls (it is not safe for concurrent use).
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer, resolving module-internal paths
// from the module tree and everything else from the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// Load loads the module-internal package with the given import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	return l.LoadDir(l.dirFor(importPath), importPath)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. dir need not live inside the module tree (the golden
// fixtures under testdata/ load this way).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadAll loads every package under the module root (skipping testdata,
// vendor and hidden directories), sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadTree(l.ModuleRoot)
}

// LoadTree loads every package under dir, which must be inside the
// module tree.
func (l *Loader) LoadTree(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goFiles lists the non-test .go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
