package lint

import (
	"go/ast"
	"go/types"
)

// HTTPClient returns the httpclient analyzer. Library code (any
// non-main package) must not build HTTP clients that can hang forever
// or detach from the caller's cancellation chain — the exact failure
// mode the distributed serving tier (remote backend, routing front)
// turns from a stuck goroutine into a stuck cluster:
//
//   - an http.Client composite literal must set Timeout explicitly
//     (a zero Timeout client waits on a dead peer indefinitely; clients
//     that stream unbounded responses suppress with a reason and bound
//     the transport instead),
//   - the package-level helpers http.Get/Head/Post/PostForm are
//     forbidden: they ride http.DefaultClient (no timeout) and take no
//     context,
//   - http.NewRequest is forbidden in favor of
//     http.NewRequestWithContext, so every outbound request can be
//     cancelled by its caller.
func HTTPClient() *Analyzer {
	return &Analyzer{
		Name: "httpclient",
		Doc:  "forbids unbounded or context-free HTTP clients in library code",
		Run: func(pass *Pass) {
			if pass.Pkg.Types.Name() == "main" {
				return // binaries own their process lifetime
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CompositeLit:
						checkClientLit(pass, n)
					case *ast.CallExpr:
						checkHTTPCall(pass, n)
					}
					return true
				})
			}
		},
	}
}

// checkClientLit flags http.Client{...} literals without an explicit
// Timeout key.
func checkClientLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok || !isHTTPClientType(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
			return
		}
	}
	pass.Reportf(lit.Pos(), "http.Client without an explicit Timeout can hang forever on a dead peer; set Timeout (or bound the Transport and suppress with a reason)")
}

// checkHTTPCall flags the context-free net/http package helpers.
func checkHTTPCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	switch fn.FullName() {
	case "net/http.Get", "net/http.Head", "net/http.Post", "net/http.PostForm":
		pass.Reportf(call.Pos(), "http.%s uses http.DefaultClient (no timeout) and takes no context; build the request with http.NewRequestWithContext and a client with a Timeout", fn.Name())
	case "net/http.NewRequest":
		pass.Reportf(call.Pos(), "http.NewRequest detaches the request from the caller's context; use http.NewRequestWithContext")
	}
}

// isHTTPClientType reports whether t is net/http.Client.
func isHTTPClientType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
