package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow returns the ctxflow analyzer. Library code (any non-main
// package; test files are never loaded) must not mint its own root
// context: context.Background() and context.TODO() sever the caller's
// cancellation and deadline chain, which is exactly what the engine's
// ctx-aware AlignBatch/MapAlign contract exists to preserve. A call
// site inside a function that already holds a context.Context parameter
// gets the sharper "thread it" diagnostic, enforcing that a held ctx
// flows to callees that accept one.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "forbids context.Background()/TODO() in library code",
		Run: func(pass *Pass) {
			if pass.Pkg.Types.Name() == "main" {
				return // binaries own their root context
			}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					ctxParam := ctxParamName(pass, fd)
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						name := rootCtxCall(pass, call)
						if name == "" {
							return true
						}
						if ctxParam != "" {
							pass.Reportf(call.Pos(), "context.%s() severs the caller's context; thread the function's %q parameter instead", name, ctxParam)
						} else {
							pass.Reportf(call.Pos(), "context.%s() in library code; accept a context.Context from the caller", name)
						}
						return true
					})
				}
			}
		},
	}
}

// rootCtxCall reports whether call is context.Background() or
// context.TODO(), returning the function name or "".
func rootCtxCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	switch fn.FullName() {
	case "context.Background":
		return "Background"
	case "context.TODO":
		return "TODO"
	}
	return ""
}

// ctxParamName returns the name of fd's first context.Context parameter,
// or "" if it has none (blank parameters do not count).
func ctxParamName(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
