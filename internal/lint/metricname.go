package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"genasm/internal/obs"
)

// metricRegistrars maps the obs.Registry registration methods to the
// metric kind they create. Only names passed as compile-time string
// constants are checked — a computed name is validated at runtime by the
// registry itself (which panics on violation).
var metricRegistrars = map[string]obs.Kind{
	"Counter":     obs.KindCounter,
	"CounterFunc": obs.KindCounter,
	"Gauge":       obs.KindGauge,
	"GaugeFunc":   obs.KindGauge,
	"Histogram":   obs.KindHistogram,
}

// MetricName returns the metricname analyzer: every metric name
// registered through genasm/internal/obs must satisfy the exposition
// naming rules (obs.CheckMetricName) — snake_case, counters end in
// _total, non-counters must not. The registry enforces the same rules
// with a runtime panic; this analyzer moves the failure to lint time,
// before a bad name ever reaches a running server.
func MetricName() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc:  "enforces snake_case and the _total counter convention on obs metric names",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if ok {
						checkMetricRegistration(pass, call)
					}
					return true
				})
			}
		},
	}
}

// checkMetricRegistration flags registry.Counter("bad name", ...) and
// friends when the constant name violates the naming rules.
func checkMetricRegistration(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	kind, ok := metricRegistrars[fn.Name()]
	if !ok || !strings.Contains(fn.FullName(), "genasm/internal/obs.Registry).") {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	if err := obs.CheckMetricName(name, kind); err != nil {
		pass.Reportf(call.Args[0].Pos(), "%v", err)
	}
}
