// Package lint is genasm's project-specific static-analysis framework:
// a small, stdlib-only analyzer harness (go/parser + go/ast + go/types,
// stdlib type information via the source importer) plus the six
// analyzers that machine-check the invariants this repository's
// correctness and performance work depends on:
//
//   - hotalloc: no hidden allocation inside loops of the designated
//     hot-path packages (the bit-parallel alignment kernels).
//   - ctxflow:  library code never mints context.Background()/TODO();
//     a function that holds a ctx threads it to callees.
//   - errcmp:   sentinel errors are matched with errors.Is, and
//     fmt.Errorf wraps causes with %w.
//   - locksafe: no by-value copies of lock-containing structs, and no
//     channel sends while a sync.Mutex/RWMutex is held.
//   - metricname: metric names registered through internal/obs follow
//     the exposition conventions (snake_case, counters end in _total).
//   - httpclient: library code builds bounded, context-aware HTTP
//     clients — no zero-Timeout http.Client, no http.Get/DefaultClient
//     helpers, no http.NewRequest without a context.
//
// Findings carry file:line positions. A finding that is intentional is
// suppressed in place with a written justification:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. A directive
// without a reason, or naming an unknown analyzer, is itself a finding,
// so suppressions cannot rot silently. The cmd/genasm-lint driver runs
// every analyzer over every package in the module and exits non-zero on
// any unsuppressed finding; see docs/LINTING.md for the policy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg    *Package
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: "", // filled by Run
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllowDirective is the in-source suppression syntax:
//
//	//lint:allow <analyzer> <reason>
//
// It silences findings of the named analyzer on its own line and on the
// line directly below (so it can sit above the flagged statement).
const AllowDirective = "//lint:allow"

var directiveRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)(?:\s+(\S.*))?$`)

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// collectDirectives extracts every //lint:allow directive from a file.
// Malformed directives (no reason) and, when known is non-nil,
// directives naming an unknown analyzer are reported as findings of the
// pseudo-analyzer "lint" via report.
func collectDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				report(Diagnostic{Pos: pos, Analyzer: "lint",
					Message: "malformed " + AllowDirective + " directive: want \"//lint:allow <analyzer> <reason>\""})
				continue
			}
			name, reason := m[1], strings.TrimSpace(m[2])
			if reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "lint",
					Message: fmt.Sprintf("%s %s: a suppression must state a reason", AllowDirective, name)})
				continue
			}
			if known != nil && !known[name] {
				report(Diagnostic{Pos: pos, Analyzer: "lint",
					Message: fmt.Sprintf("%s names unknown analyzer %q", AllowDirective, name)})
				continue
			}
			ds = append(ds, directive{pos: pos, analyzer: name, reason: reason})
		}
	}
	return ds
}

// suppressed reports whether d is covered by a directive: same file,
// matching analyzer, on d's line or the line directly above it.
func suppressed(d Diagnostic, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package and returns the
// unsuppressed findings, sorted by position. Directive hygiene findings
// (malformed or unknown-analyzer //lint:allow comments) are included.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			name := a.Name
			pass := &Pass{Pkg: pkg, report: func(d Diagnostic) {
				d.Analyzer = name
				raw = append(raw, d)
			}}
			a.Run(pass)
		}
		var dirs []directive
		for _, f := range pkg.Files {
			dirs = append(dirs, collectDirectives(pkg.Fset, f, known, func(d Diagnostic) {
				out = append(out, d)
			})...)
		}
		for _, d := range raw {
			if !suppressed(d, dirs) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// HotPathPackages is the designated allocation-free zone: the
// bit-parallel kernel packages whose inner loops are the paper's
// contribution. hotalloc runs only here (ROADMAP item 1 pins the
// steady-state allocation behaviour of these packages).
var HotPathPackages = []string{
	"genasm/internal/core",
	"genasm/internal/bitvec",
	"genasm/internal/dna",
}

// Default returns the standard genasm analyzer suite, with hotalloc
// scoped to hotPkgs (nil means HotPathPackages).
func Default(hotPkgs []string) []*Analyzer {
	if hotPkgs == nil {
		hotPkgs = HotPathPackages
	}
	return []*Analyzer{
		HotAlloc(hotPkgs),
		CtxFlow(),
		ErrCmp(),
		LockSafe(),
		MetricName(),
		HTTPClient(),
	}
}
