package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc returns the hotalloc analyzer scoped to the given package
// import paths. Inside any loop of a hot package it flags the
// allocation shapes that silently break the kernels' steady-state
// alloc-freedom:
//
//   - make / new
//   - append (growth may reallocate the backing array)
//   - string <-> []byte conversions (always copy)
//   - interface boxing: a non-pointer concrete value converted to an
//     interface type, including variadic ...any arguments
//   - func literals (closure allocation per iteration)
//
// Code that can run at most once per call — arguments of return
// statements and of panic — is cold by construction and exempt, so
// error-path fmt.Errorf calls inside kernels do not need suppressions.
// Allocation hidden behind a function call in another package is out of
// scope; the AllocsPerRun regression tests in internal/core cover that
// residual.
func HotAlloc(hotPkgs []string) *Analyzer {
	hot := make(map[string]bool, len(hotPkgs))
	for _, p := range hotPkgs {
		hot[p] = true
	}
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocations inside loops of hot-path packages",
		Run: func(pass *Pass) {
			if !hot[pass.Pkg.ImportPath] {
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					ha := &hotAllocWalker{pass: pass}
					ha.stmt(fd.Body, false)
				}
			}
		},
	}
}

type hotAllocWalker struct {
	pass *Pass
}

// stmt walks one statement with the given in-loop state.
func (w *hotAllocWalker) stmt(s ast.Stmt, inLoop bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st, inLoop)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Cond, true) // evaluated every iteration
		w.stmt(s.Post, true)
		w.stmt(s.Body, true)
	case *ast.RangeStmt:
		w.expr(s.X, inLoop) // evaluated once
		w.stmt(s.Body, true)
	case *ast.IfStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Cond, inLoop)
		w.stmt(s.Body, inLoop)
		w.stmt(s.Else, inLoop)
	case *ast.SwitchStmt:
		w.stmt(s.Init, inLoop)
		w.expr(s.Tag, inLoop)
		w.stmt(s.Body, inLoop)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, inLoop)
		w.stmt(s.Assign, inLoop)
		w.stmt(s.Body, inLoop)
	case *ast.SelectStmt:
		w.stmt(s.Body, inLoop)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, inLoop)
		}
		for _, st := range s.Body {
			w.stmt(st, inLoop)
		}
	case *ast.CommClause:
		w.stmt(s.Comm, inLoop)
		for _, st := range s.Body {
			w.stmt(st, inLoop)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, inLoop)
	case *ast.ReturnStmt:
		// Cold: a return runs at most once per function call, so its
		// expressions cannot be a per-iteration allocation.
	case *ast.ExprStmt:
		w.expr(s.X, inLoop)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, inLoop)
		}
		for _, e := range s.Lhs {
			w.expr(e, inLoop)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, inLoop)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, inLoop)
		w.expr(s.Value, inLoop)
	case *ast.IncDecStmt:
		w.expr(s.X, inLoop)
	case *ast.GoStmt:
		w.expr(s.Call, inLoop)
	case *ast.DeferStmt:
		// A defer in a loop pushes one record per iteration; the
		// closure argument check below reports the FuncLit if any.
		w.expr(s.Call, inLoop)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, inLoop)
				return false
			}
			return true
		})
	}
}

// expr walks one expression with the given in-loop state.
func (w *hotAllocWalker) expr(e ast.Expr, inLoop bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, inLoop)
	case *ast.FuncLit:
		if inLoop {
			w.pass.Reportf(e.Pos(), "closure allocated inside loop")
		}
		// The literal's body runs in its own execution context.
		w.stmt(e.Body, false)
	case *ast.BinaryExpr:
		w.expr(e.X, inLoop)
		w.expr(e.Y, inLoop)
	case *ast.UnaryExpr:
		w.expr(e.X, inLoop)
	case *ast.ParenExpr:
		w.expr(e.X, inLoop)
	case *ast.StarExpr:
		w.expr(e.X, inLoop)
	case *ast.SelectorExpr:
		w.expr(e.X, inLoop)
	case *ast.IndexExpr:
		w.expr(e.X, inLoop)
		w.expr(e.Index, inLoop)
	case *ast.IndexListExpr:
		w.expr(e.X, inLoop)
		for _, i := range e.Indices {
			w.expr(i, inLoop)
		}
	case *ast.SliceExpr:
		w.expr(e.X, inLoop)
		w.expr(e.Low, inLoop)
		w.expr(e.High, inLoop)
		w.expr(e.Max, inLoop)
	case *ast.TypeAssertExpr:
		w.expr(e.X, inLoop)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, inLoop)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, inLoop)
		w.expr(e.Value, inLoop)
	}
}

// call checks one call expression, then walks its children.
func (w *hotAllocWalker) call(call *ast.CallExpr, inLoop bool) {
	info := w.pass.Pkg.Info
	defer func() {
		// Fun is walked for nested calls like f(x)(y); args below.
		w.expr(call.Fun, inLoop)
	}()

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// Cold path: a panic terminates the call; its argument
				// (typically fmt.Sprintf) is not a steady-state alloc.
				return
			case "make":
				if inLoop {
					w.pass.Reportf(call.Pos(), "make inside loop allocates every iteration; hoist or reuse scratch")
				}
			case "new":
				if inLoop {
					w.pass.Reportf(call.Pos(), "new inside loop allocates every iteration; hoist or reuse scratch")
				}
			case "append":
				if inLoop {
					w.pass.Reportf(call.Pos(), "append inside loop may grow and reallocate; presize the buffer or reuse scratch")
				}
			}
			for _, a := range call.Args {
				w.expr(a, inLoop)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if inLoop {
			to := tv.Type
			from := info.Types[call.Args[0]].Type
			switch {
			case isString(to) && isByteSlice(from):
				w.pass.Reportf(call.Pos(), "[]byte->string conversion inside loop copies; keep the byte slice")
			case isByteSlice(to) && isString(from):
				w.pass.Reportf(call.Pos(), "string->[]byte conversion inside loop copies; keep the byte slice")
			case types.IsInterface(to) && from != nil && !types.IsInterface(from) && !isPointerLike(from):
				w.pass.Reportf(call.Pos(), "conversion to interface inside loop boxes the value (allocates)")
			}
		}
		w.expr(call.Args[0], inLoop)
		return
	}

	// Ordinary call: check interface boxing at the call boundary.
	if inLoop {
		if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok {
			w.checkBoxing(call, sig)
		}
	}
	for _, a := range call.Args {
		w.expr(a, inLoop)
	}
}

// checkBoxing reports arguments whose concrete non-pointer value is
// passed where the callee takes an interface (fmt-style ...any is the
// classic hot-loop offender: every argument is boxed).
func (w *hotAllocWalker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	info := w.pass.Pkg.Info
	params := sig.Params()
	if params.Len() == 0 || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			return
		}
		at := info.Types[arg].Type
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) || isPointerLike(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.pass.Reportf(arg.Pos(), "argument boxed into interface parameter inside loop (allocates)")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isPointerLike reports types whose interface representation does not
// allocate a separate box (the data word holds the pointer itself).
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
