package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"genasm/internal/lint"
)

// wantRe matches a `// want `regex“ expectation comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// loadFixture loads testdata/src/<name> as a standalone package.
func loadFixture(t *testing.T, loader *lint.Loader, name string) *lint.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loader, err := lint.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// checkGolden runs analyzers over the fixture package and verifies the
// diagnostics against the fixture's `// want` comments: every finding
// must be expected on its line, and every expectation must be matched.
func checkGolden(t *testing.T, pkg *lint.Package, analyzers []*lint.Analyzer) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	key := func(file string, line int) string {
		return fmt.Sprintf("%s:%d", filepath.Base(file), line)
	}
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					k := key(fileName, pkg.Fset.Position(c.Pos()).Line)
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	diags := lint.Run([]*lint.Package{pkg}, analyzers)
	for _, d := range diags {
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[key(d.Pos.Filename, d.Pos.Line)] {
			if w.re.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q was not reported", k, w.re)
			}
		}
	}
}

func TestHotAllocGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "hotalloc")
	checkGolden(t, pkg, []*lint.Analyzer{lint.HotAlloc([]string{"hotalloc"})})
}

// TestHotAllocScope: a package outside the hot list produces nothing,
// no matter how allocation-happy its loops are.
func TestHotAllocScope(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "hotalloc")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.HotAlloc([]string{"genasm/internal/core"})})
	if len(diags) != 0 {
		t.Fatalf("hotalloc ran outside its designated packages: %v", diags)
	}
}

func TestCtxFlowGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "ctxflow")
	checkGolden(t, pkg, []*lint.Analyzer{lint.CtxFlow()})
}

// TestCtxFlowMainExempt: package main owns its root context.
func TestCtxFlowMainExempt(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "ctxflow_main")
	if diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.CtxFlow()}); len(diags) != 0 {
		t.Fatalf("ctxflow flagged package main: %v", diags)
	}
}

func TestErrCmpGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "errcmp")
	checkGolden(t, pkg, []*lint.Analyzer{lint.ErrCmp()})
}

func TestLockSafeGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "locksafe")
	checkGolden(t, pkg, []*lint.Analyzer{lint.LockSafe()})
}

func TestMetricNameGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "metricname")
	checkGolden(t, pkg, []*lint.Analyzer{lint.MetricName()})
}

func TestHTTPClientGolden(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "httpclient")
	checkGolden(t, pkg, []*lint.Analyzer{lint.HTTPClient()})
}

// TestDirectiveHygiene: a suppression without a reason, or naming an
// unknown analyzer, is itself a finding and suppresses nothing — so
// directives cannot rot. Only the well-formed reasoned directive in the
// fixture silences its finding.
func TestDirectiveHygiene(t *testing.T) {
	loader := newLoader(t)
	pkg := loadFixture(t, loader, "directives")
	diags := lint.Run([]*lint.Package{pkg}, lint.Default(nil))

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wants := []string{
		"lint: .*must state a reason",
		"lint: .*unknown analyzer \"ctxfloww\"",
		"ctxflow: context.Background",
		"ctxflow: context.Background",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wants), strings.Join(got, "\n"))
	}
	for _, w := range wants {
		re := regexp.MustCompile(w)
		found := false
		for _, g := range got {
			if re.MatchString(g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding matched %q in:\n%s", w, strings.Join(got, "\n"))
		}
	}
	for _, d := range diags {
		if pos := d.Pos; pos.Line >= 21 { // wellFormed starts after line 21
			t.Errorf("reasoned directive failed to suppress: %s", d)
		}
	}
}

// TestRepoClean is the acceptance gate in test form: the full analyzer
// suite over the whole module must report nothing — every pre-existing
// finding is fixed or carries a reasoned //lint:allow.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module (and the stdlib closure) from source")
	}
	loader := newLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadAll found only %d packages; module walk is broken", len(pkgs))
	}
	var b strings.Builder
	diags := lint.Run(pkgs, lint.Default(nil))
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if len(diags) > 0 {
		t.Errorf("repository has %d unsuppressed findings:\n%s", len(diags), b.String())
	}
}

// TestLoaderSkipsTestFiles: _test.go files are exempt from every
// invariant, so the loader must never parse them.
func TestLoaderSkipsTestFiles(t *testing.T) {
	loader := newLoader(t)
	pkg, err := loader.Load("genasm/internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("loader returned no files for internal/lint")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader parsed test file %s", name)
		}
	}
}
