// Package remotebk implements the "remote" execution backend: a
// genasm.Backend that executes AlignBatch on another genasm-serve node
// over the server's public HTTP API (AlignBatch → POST /align,
// Capabilities ← GET /backends). It registers itself in the backend
// registry under the parameterized spec
//
//	remote(host:port)          // http:// is assumed
//	remote(http://host:port)   // explicit scheme also accepted
//
// so an engine — and therefore a whole serving node — can be pointed at
// other nodes with nothing but a backend name:
//
//	genasm-serve -backend 'multi(cpu,remote(10.0.0.2:8080))'
//
// The multi composite shards batches across children by capability
// weight and attributes failures per shard, so remote children get
// capacity-proportional work and isolated blame for free.
//
// Semantics:
//
//   - Transport failures (connection refused, reset, timeout) are
//     retried with jittered exponential backoff up to a small bounded
//     attempt budget, then wrapped in ErrUnreachable. A response is
//     never retried: the server answered, and replaying a batch that
//     may have partially executed is the remote-caller's decision, not
//     the transport's.
//   - Non-2xx responses map to typed errors: the remote node's
//     over-length-query 400 wraps genasm.ErrQueryTooLong (so the local
//     HTTP layer still answers 4xx, not 500), everything else wraps a
//     *StatusError carrying the upstream code and message.
//   - The trace ID carried by ctx is forwarded as X-Request-Id, so one
//     user request stitches into a single cross-node trace.
//   - Capabilities are fetched from GET /backends and cached with a
//     short TTL; while the remote node is unreachable the last known
//     (or a conservative default) envelope is served, so constructing
//     multi(cpu,remote(a)) never fails just because a is down.
package remotebk

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genasm"
	"genasm/internal/obs"
	"genasm/server"
)

func init() {
	genasm.Register("remote", func(spec string, cfg genasm.Config, opts genasm.BackendOptions) (genasm.Backend, error) {
		return New(spec)
	})
}

// ErrUnreachable is the sentinel wrapped by every transport-level
// failure that survives the retry budget: the remote node never
// answered. multi's per-shard error attribution surfaces it with the
// failing child's spec attached; errors.Is(err, ErrUnreachable) is the
// programmatic check.
var ErrUnreachable = errors.New("remotebk: remote node unreachable")

// StatusError is a non-2xx HTTP answer from the remote node — the
// server executed (or rejected) the request and said why. It is never
// retried here.
type StatusError struct {
	// Code is the upstream HTTP status.
	Code int
	// Message is the upstream error body (the server's {"error": ...}).
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("remotebk: remote node answered %d: %s", e.Code, e.Message)
}

// Tuning defaults. Tests shorten them through the fields on Backend.
const (
	defaultCapTTL      = 5 * time.Second
	defaultAttempts    = 3
	defaultBackoff     = 25 * time.Millisecond
	defaultHTTPTimeout = 60 * time.Second
)

// defaultCapabilities is the envelope served while the remote node has
// never been reachable: no structural query limit (the remote node
// enforces its own and answers 400), a modest batch appetite, weight 1
// in a multi composite.
var defaultCapabilities = genasm.Capabilities{PreferredBatch: 64, Parallelism: 1}

// Backend is the remote execution backend. Construct with New (or via
// the registry spec "remote(host:port)"); safe for concurrent use.
type Backend struct {
	spec string // full registry spec, e.g. "remote(10.0.0.2:8080)"
	base string // normalized base URL, e.g. "http://10.0.0.2:8080"

	// Client performs every HTTP call. Replaceable before first use
	// (tests inject short timeouts); defaults to a dedicated client
	// with defaultHTTPTimeout.
	Client *http.Client
	// Attempts is the AlignBatch transport budget: total tries, not
	// retries (default 3).
	Attempts int
	// Backoff is the base delay before the second attempt; it doubles
	// per attempt with ±50% jitter (default 25ms).
	Backoff time.Duration
	// CapTTL is how long a fetched Capabilities envelope is served
	// before re-asking the remote node (default 5s). Fetch failures are
	// also cached for one TTL so a dead node is not hammered.
	CapTTL time.Duration

	batches atomic.Uint64
	pairs   atomic.Uint64
	errs    atomic.Uint64

	capMu   sync.Mutex
	caps    genasm.Capabilities
	capsOK  bool // caps came from the remote node at least once
	capsAt  time.Time
	capsErr string // last fetch failure, surfaced in Stats
}

// New builds a remote backend from its registry spec. Validation is
// eager and purely configurational (the address must parse); the first
// network contact happens lazily, so a constructed Backend — and a
// multi(...) composite containing it — exists even while the remote
// node is down.
func New(spec string) (*Backend, error) {
	addr, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &Backend{
		spec:     spec,
		base:     addr,
		Client:   &http.Client{Timeout: defaultHTTPTimeout},
		Attempts: defaultAttempts,
		Backoff:  defaultBackoff,
		CapTTL:   defaultCapTTL,
	}, nil
}

// parseSpec extracts and normalizes the address of a "remote(addr)"
// spec into a base URL.
func parseSpec(spec string) (string, error) {
	if !strings.HasPrefix(spec, "remote(") || !strings.HasSuffix(spec, ")") {
		return "", fmt.Errorf("remotebk: backend spec %q: want remote(host:port)", spec)
	}
	addr := strings.TrimSpace(spec[len("remote(") : len(spec)-1])
	if addr == "" {
		return "", fmt.Errorf("remotebk: backend spec %q names no address", spec)
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("remotebk: backend spec %q: %w", spec, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("remotebk: backend spec %q: unsupported scheme %q", spec, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("remotebk: backend spec %q names no host", spec)
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}

// AlignBatch forwards the batch as one POST /align to the remote node
// and reconstructs index-aligned genasm.Results from the JSON reply.
func (b *Backend) AlignBatch(ctx context.Context, cfg genasm.Config, pairs []genasm.Pair) ([]genasm.Result, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	req := server.AlignRequest{Pairs: make([]server.AlignPair, len(pairs))}
	for i, p := range pairs {
		req.Pairs[i] = server.AlignPair{Query: string(p.Query), Ref: string(p.Ref)}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("remotebk: encoding batch: %w", err)
	}
	sp := obs.StartSpan(ctx, "remote",
		obs.String("upstream", b.base), obs.Int("pairs", len(pairs)))
	defer sp.End()

	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			if err := b.sleepBackoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		results, retryable, err := b.post(ctx, body, len(pairs))
		if err == nil {
			b.batches.Add(1)
			b.pairs.Add(uint64(len(pairs)))
			return results, nil
		}
		b.errs.Add(1)
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %w", ErrUnreachable, b.base, b.Attempts, lastErr)
}

// post performs one POST /align attempt. retryable is true only for
// transport-level failures — once the server has answered, the attempt
// is final.
func (b *Backend) post(ctx context.Context, body []byte, n int) (results []genasm.Result, retryable bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/align", bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("remotebk: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	obs.SetRequestID(ctx, hreq.Header)
	resp, err := b.Client.Do(hreq)
	if err != nil {
		return nil, true, fmt.Errorf("remotebk: POST %s/align: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, statusError(resp)
	}
	var rep server.AlignResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, false, fmt.Errorf("remotebk: decoding %s/align response: %w", b.base, err)
	}
	if len(rep.Results) != n {
		return nil, false, fmt.Errorf("remotebk: %s answered %d results for %d pairs", b.base, len(rep.Results), n)
	}
	results = make([]genasm.Result, n)
	for i, r := range rep.Results {
		results[i] = genasm.Result{
			Distance: r.Distance, Score: r.Score,
			Cigar: r.Cigar, RefConsumed: r.RefConsumed,
		}
	}
	return results, false, nil
}

// statusError turns a non-200 response into its typed error: the remote
// node's over-length-query rejection re-wraps the genasm.ErrQueryTooLong
// sentinel (so a local HTTP layer still answers 4xx), everything else
// becomes a *StatusError.
func statusError(resp *http.Response) error {
	msg := readErrorBody(resp.Body)
	if resp.StatusCode == http.StatusBadRequest &&
		(strings.Contains(msg, "query too long") || strings.Contains(msg, "exceeds limit")) {
		return fmt.Errorf("%w (remote %s)", genasm.ErrQueryTooLong, msg)
	}
	return &StatusError{Code: resp.StatusCode, Message: msg}
}

// readErrorBody extracts the server's {"error": ...} message (bounded;
// raw text fallback for non-JSON bodies).
func readErrorBody(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// sleepBackoff waits the jittered exponential delay before attempt
// (1-based beyond the first), honoring ctx cancellation.
func (b *Backend) sleepBackoff(ctx context.Context, attempt int) error {
	d := b.Backoff << (attempt - 1)
	// ±50% jitter decorrelates retry storms across concurrent shards.
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Capabilities reports the remote node's execution envelope, fetched
// from GET /backends and cached for CapTTL. While the node has never
// answered, a conservative default (weight 1, no structural query
// limit) is served so composite construction and scheduling proceed.
func (b *Backend) Capabilities() genasm.Capabilities {
	b.capMu.Lock()
	defer b.capMu.Unlock()
	if !b.capsAt.IsZero() && time.Since(b.capsAt) < b.CapTTL {
		return b.currentCapsLocked()
	}
	b.capsAt = time.Now() // stamp first: failures are cached for one TTL too
	caps, err := b.fetchCapabilities()
	if err != nil {
		b.capsErr = err.Error()
		return b.currentCapsLocked()
	}
	b.caps, b.capsOK, b.capsErr = caps, true, ""
	return b.caps
}

func (b *Backend) currentCapsLocked() genasm.Capabilities {
	if b.capsOK {
		return b.caps
	}
	return defaultCapabilities
}

// fetchCapabilities asks GET /backends for the remote engine's active
// envelope. The Backend interface carries no context here, so the probe
// runs under its own short deadline.
func (b *Backend) fetchCapabilities() (genasm.Capabilities, error) {
	//lint:allow ctxflow Capabilities() has no ctx parameter in the Backend interface; the probe bounds itself with its own timeout
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/backends", nil)
	if err != nil {
		return genasm.Capabilities{}, err
	}
	resp, err := b.Client.Do(req)
	if err != nil {
		return genasm.Capabilities{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return genasm.Capabilities{}, fmt.Errorf("GET /backends: status %d", resp.StatusCode)
	}
	var rep struct {
		Active struct {
			Capabilities genasm.Capabilities `json:"capabilities"`
		} `json:"active"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return genasm.Capabilities{}, err
	}
	return rep.Active.Capabilities, nil
}

// Stats reports the local accounting of calls forwarded to the remote
// node. Name carries the full spec so multi's per-child breakdown and
// /backends attribute work to the right address.
func (b *Backend) Stats() genasm.BackendStats {
	return genasm.BackendStats{
		Name:    b.spec,
		Batches: b.batches.Load(),
		Pairs:   b.pairs.Load(),
	}
}

// Errors reports how many AlignBatch attempts failed (transport and
// HTTP failures; retried attempts count individually).
func (b *Backend) Errors() uint64 { return b.errs.Load() }

// BaseURL returns the normalized base URL the backend talks to.
func (b *Backend) BaseURL() string { return b.base }
