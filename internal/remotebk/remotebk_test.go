package remotebk

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"genasm"
	"genasm/server"
)

// startNode boots a real single-node genasm-serve over httptest.
func startNode(t *testing.T, opts ...genasm.Option) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{EngineOptions: opts, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func testPairs(n, qlen int) []genasm.Pair {
	rng := rand.New(rand.NewPCG(11, 13))
	bases := []byte("ACGT")
	pairs := make([]genasm.Pair, n)
	for i := range pairs {
		q := make([]byte, qlen)
		for j := range q {
			q[j] = bases[rng.IntN(4)]
		}
		ref := append([]byte(nil), q...)
		ref[rng.IntN(qlen)] = bases[rng.IntN(4)] // ~1 mismatch
		pairs[i] = genasm.Pair{Query: q, Ref: append(ref, 'A', 'C')}
	}
	return pairs
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec, base string
		wantErr    bool
	}{
		{spec: "remote(10.0.0.2:8080)", base: "http://10.0.0.2:8080"},
		{spec: "remote(http://a:1)", base: "http://a:1"},
		{spec: "remote(https://a:1/)", base: "https://a:1"},
		{spec: "remote()", wantErr: true},
		{spec: "remote", wantErr: true},
		{spec: "remote(ftp://a:1)", wantErr: true},
		{spec: "cpu", wantErr: true},
	}
	for _, c := range cases {
		base, err := parseSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseSpec(%q) = %q, want error", c.spec, base)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSpec(%q): %v", c.spec, err)
		} else if base != c.base {
			t.Errorf("parseSpec(%q) = %q, want %q", c.spec, base, c.base)
		}
	}
}

// TestAlignBatchParity: a batch executed through the remote backend is
// result-identical to the same batch on a local cpu engine.
func TestAlignBatchParity(t *testing.T) {
	node, ts := startNode(t)
	pairs := testPairs(32, 24)
	want, err := node.Engine().AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}

	bk, err := New("remote(" + strings.TrimPrefix(ts.URL, "http://") + ")")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bk.AlignBatch(context.Background(), genasm.Config{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Distance != want[i].Distance || got[i].Score != want[i].Score ||
			got[i].Cigar != want[i].Cigar || got[i].RefConsumed != want[i].RefConsumed {
			t.Fatalf("result %d diverged: remote %+v, local %+v", i, got[i], want[i])
		}
	}
	st := bk.Stats()
	if st.Batches != 1 || st.Pairs != uint64(len(pairs)) {
		t.Fatalf("stats = %+v, want 1 batch / %d pairs", st, len(pairs))
	}
	if !strings.HasPrefix(st.Name, "remote(") {
		t.Fatalf("stats name %q does not carry the spec", st.Name)
	}
}

// TestEngineIntegration: the registry resolves remote(...) specs, both
// standalone and as a multi child, with results identical to cpu.
func TestEngineIntegration(t *testing.T) {
	_, ts := startNode(t)
	addr := strings.TrimPrefix(ts.URL, "http://")
	pairs := testPairs(16, 20)

	cpu, err := genasm.NewEngine(genasm.WithBackendName("cpu"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpu.AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{
		fmt.Sprintf("remote(%s)", addr),
		fmt.Sprintf("multi(cpu,remote(%s))", addr),
	} {
		eng, err := genasm.NewEngine(genasm.WithBackendName(name))
		if err != nil {
			t.Fatalf("NewEngine(%s): %v", name, err)
		}
		got, err := eng.AlignBatch(context.Background(), pairs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d diverged: %+v vs %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestRetryOnTransportError: connection-level failures are retried; a
// node that recovers within the attempt budget serves the batch.
func TestRetryOnTransportError(t *testing.T) {
	node, nodeTS := startNode(t)
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// Kill the TCP connection before answering: a transport
			// error, not an HTTP response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("httptest recorder cannot hijack")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close()
			return
		}
		node.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()
	_ = nodeTS

	bk, err := New("remote(" + flaky.URL + ")")
	if err != nil {
		t.Fatal(err)
	}
	bk.Backoff = time.Millisecond
	got, err := bk.AlignBatch(context.Background(), genasm.Config{}, testPairs(4, 12))
	if err != nil {
		t.Fatalf("expected the third attempt to succeed: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

// TestNoRetryOnHTTPResponse: once the server answered, the attempt is
// final — an HTTP error is typed, attributed, and never replayed.
func TestNoRetryOnHTTPResponse(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"backend exploded"}`))
	}))
	defer ts.Close()

	bk, err := New("remote(" + ts.URL + ")")
	if err != nil {
		t.Fatal(err)
	}
	bk.Backoff = time.Millisecond
	_, err = bk.AlignBatch(context.Background(), genasm.Config{}, testPairs(2, 12))
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StatusError", err)
	}
	if se.Code != http.StatusInternalServerError || se.Message != "backend exploded" {
		t.Fatalf("StatusError = %+v", se)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1 (responses are never retried)", n)
	}
}

// TestQueryTooLongMapping: the remote node's over-length 400 surfaces
// locally as the genasm.ErrQueryTooLong sentinel, end to end against a
// real node.
func TestQueryTooLongMapping(t *testing.T) {
	_, ts := startNode(t, genasm.WithMaxQueryLen(8))
	bk, err := New("remote(" + ts.URL + ")")
	if err != nil {
		t.Fatal(err)
	}
	long := genasm.Pair{Query: []byte("ACGTACGTACGTACGT"), Ref: []byte("ACGTACGTACGTACGTAC")}
	_, err = bk.AlignBatch(context.Background(), genasm.Config{}, []genasm.Pair{long})
	if !errors.Is(err, genasm.ErrQueryTooLong) {
		t.Fatalf("error %v does not wrap genasm.ErrQueryTooLong", err)
	}
}

// TestUnreachable: a dead address exhausts the attempt budget and wraps
// ErrUnreachable; through multi(...) the failure carries per-shard
// attribution naming the remote child.
func TestUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close() // nothing listens here anymore

	bk, err := New("remote(" + addr + ")")
	if err != nil {
		t.Fatal(err)
	}
	bk.Attempts, bk.Backoff = 2, time.Millisecond
	_, err = bk.AlignBatch(context.Background(), genasm.Config{}, testPairs(2, 12))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("error %v does not wrap ErrUnreachable", err)
	}

	eng, err := genasm.NewEngine(genasm.WithBackendName(fmt.Sprintf("multi(cpu,remote(%s))", addr)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AlignBatch(context.Background(), testPairs(8, 12))
	var se *genasm.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("multi error %v is not a *ShardError", err)
	}
	if !strings.HasPrefix(se.Backend, "remote(") {
		t.Fatalf("shard failure attributed to %q, want the remote child", se.Backend)
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("shard error %v does not wrap ErrUnreachable", err)
	}
}

// TestCapabilitiesTTL: the envelope is fetched once per TTL, refetched
// after expiry, and degrades to the conservative default while the node
// has never answered.
func TestCapabilitiesTTL(t *testing.T) {
	var fetches atomic.Int32
	node, _ := startNode(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/backends" {
			fetches.Add(1)
		}
		node.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	bk, err := New("remote(" + ts.URL + ")")
	if err != nil {
		t.Fatal(err)
	}
	want := node.Engine().Capabilities()
	if got := bk.Capabilities(); got != want {
		t.Fatalf("capabilities = %+v, want the node's %+v", got, want)
	}
	if got := bk.Capabilities(); got != want {
		t.Fatalf("cached capabilities = %+v, want %+v", got, want)
	}
	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d fetches within TTL, want 1", n)
	}
	bk.CapTTL = 0 // every call expires the cache
	bk.Capabilities()
	if n := fetches.Load(); n != 2 {
		t.Fatalf("%d fetches after expiry, want 2", n)
	}

	// A backend that has never reached its node serves the default.
	deadBk, err := New("remote(127.0.0.1:1)")
	if err != nil {
		t.Fatal(err)
	}
	deadBk.Client = &http.Client{Timeout: 200 * time.Millisecond}
	if got := deadBk.Capabilities(); got != defaultCapabilities {
		t.Fatalf("unreachable-node capabilities = %+v, want default %+v", got, defaultCapabilities)
	}
}
