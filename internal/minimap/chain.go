package minimap

import (
	"math"
	"sort"

	"genasm/internal/dna"
)

// Chain is one co-linear group of seed hits: a candidate mapping location.
type Chain struct {
	Score float64
	// Read/Ref spans covered by the chained anchors (k-mer end included).
	ReadStart, ReadEnd int
	RefStart, RefEnd   int
	// RevComp reports that the read maps to the reverse strand; read
	// coordinates are then in the reverse-complemented read.
	RevComp bool
	Anchors int
}

// ChainOpts controls chaining, mirroring minimap2's knobs.
type ChainOpts struct {
	// MaxGap is the largest gap (read or reference) bridged inside one
	// chain.
	MaxGap int
	// MaxLookback bounds the chaining DP's predecessor scan.
	MaxLookback int
	// MinScore discards weak chains.
	MinScore float64
	// MinAnchors discards chains with fewer seed hits.
	MinAnchors int
	// All reports every chain (minimap2 -P), not just the primary.
	All bool
}

// DefaultChainOpts mirrors minimap2 map-pb with -P.
func DefaultChainOpts() ChainOpts {
	return ChainOpts{MaxGap: 5000, MaxLookback: 64, MinScore: 40, MinAnchors: 3, All: true}
}

// chainStrand runs the minimap2 chaining DP over one strand's anchors.
func chainStrand(a []anchor, k int, opt ChainOpts, rev bool) []Chain {
	n := len(a)
	if n == 0 {
		return nil
	}
	score := make([]float64, n)
	prev := make([]int32, n)
	for i := 0; i < n; i++ {
		score[i] = float64(k)
		prev[i] = -1
		lo := i - opt.MaxLookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			dt := int(a[i].tpos - a[j].tpos)
			dr := int(a[i].rpos - a[j].rpos)
			if dr <= 0 || dt <= 0 {
				continue
			}
			if dt > opt.MaxGap || dr > opt.MaxGap {
				continue
			}
			dd := dt - dr
			if dd < 0 {
				dd = -dd
			}
			gain := float64(min(dr, dt, k)) - gapCost(dd, k)
			if s := score[j] + gain; s > score[i] {
				score[i] = s
				prev[i] = int32(j)
			}
		}
	}
	// Extract chains best-first; each anchor belongs to one chain.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return score[order[x]] > score[order[y]] })
	used := make([]bool, n)
	var chains []Chain
	for _, end := range order {
		if used[end] || score[end] < opt.MinScore {
			continue
		}
		cnt := 0
		i := end
		last := end
		for i >= 0 && !used[i] {
			used[i] = true
			cnt++
			last = i
			i = int(prev[i])
		}
		if cnt < opt.MinAnchors {
			continue
		}
		chains = append(chains, Chain{
			Score:     score[end],
			ReadStart: int(a[last].rpos),
			ReadEnd:   int(a[end].rpos) + k,
			RefStart:  int(a[last].tpos),
			RefEnd:    int(a[end].tpos) + k,
			RevComp:   rev,
			Anchors:   cnt,
		})
		if !opt.All {
			break
		}
	}
	return chains
}

// gapCost is minimap2's concave chaining gap penalty.
func gapCost(dd, k int) float64 {
	if dd == 0 {
		return 0
	}
	return 0.01*float64(k)*float64(dd) + 0.5*math.Log2(float64(dd)+1)
}

// Chains seeds and chains a read (base codes) against the index, returning
// all chains on both strands, best first.
func (ix *Index) Chains(read []byte, opt ChainOpts) []Chain {
	fwd, rev := ix.anchors(read)
	chains := chainStrand(fwd, ix.K, opt, false)
	chains = append(chains, chainStrand(rev, ix.K, opt, true)...)
	sort.Slice(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	return chains
}

// Candidate is a reference region a read should be aligned against.
type Candidate struct {
	RefStart, RefEnd int
	RevComp          bool
	Score            float64
}

// Locate converts chains into alignment candidate regions: the region
// start is anchored exactly by the chain's first anchor (the k-mer match
// pins the read's start on the reference to within indel drift), and the
// region is extended so the whole read fits plus a trailing flank. The
// head is NOT flanked: GenASM-style aligners treat the region start as the
// alignment start and only the tail as free slack.
func (ix *Index) Locate(read []byte, opt ChainOpts, flank int) []Candidate {
	chains := ix.Chains(read, opt)
	out := make([]Candidate, 0, len(chains))
	for _, c := range chains {
		start := c.RefStart - c.ReadStart
		if start < 0 {
			start = 0
		}
		end := c.RefEnd + (len(read) - c.ReadEnd) + flank
		if end > ix.RefLen {
			end = ix.RefLen
		}
		if end <= start {
			continue
		}
		out = append(out, Candidate{RefStart: start, RefEnd: end, RevComp: c.RevComp, Score: c.Score})
	}
	return out
}

// LocateRaw is Locate on a raw ASCII read.
func (ix *Index) LocateRaw(read []byte, opt ChainOpts, flank int) []Candidate {
	return ix.Locate(dna.EncodeSeq(read), opt, flank)
}
