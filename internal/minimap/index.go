package minimap

import (
	"fmt"
	"sort"

	"genasm/internal/dna"
)

// Index is a minimizer hash table over one reference sequence.
type Index struct {
	K, W   int
	RefLen int
	// table maps a canonical minimizer hash to its reference
	// occurrences, packed as pos<<1 | strand.
	table map[uint64][]uint32
	// maxOcc drops hyper-repetitive seeds (like minimap2's -f filter).
	maxOcc int
}

// IndexConfig controls index construction.
type IndexConfig struct {
	K, W int
	// MaxOccurrences drops minimizers that occur more often than this in
	// the reference (0 means 64), taming repeat-driven seed explosions.
	MaxOccurrences int
}

// DefaultIndexConfig matches minimap2's map-pb preset (k=19, w=10 — here
// k=15 to stay informative on small synthetic genomes).
func DefaultIndexConfig() IndexConfig { return IndexConfig{K: 15, W: 10, MaxOccurrences: 64} }

// BuildIndex indexes a reference (base codes).
func BuildIndex(ref []byte, cfg IndexConfig) (*Index, error) {
	if cfg.K < 1 || cfg.K > 28 || cfg.W < 1 {
		return nil, fmt.Errorf("minimap: invalid k=%d w=%d", cfg.K, cfg.W)
	}
	if cfg.MaxOccurrences <= 0 {
		cfg.MaxOccurrences = 64
	}
	ix := &Index{K: cfg.K, W: cfg.W, RefLen: len(ref),
		table: make(map[uint64][]uint32), maxOcc: cfg.MaxOccurrences}
	for _, m := range Minimizers(ref, cfg.K, cfg.W) {
		v := uint32(m.Pos) << 1
		if m.Rev {
			v |= 1
		}
		ix.table[m.Hash] = append(ix.table[m.Hash], v)
	}
	for h, occ := range ix.table {
		if len(occ) > ix.maxOcc {
			delete(ix.table, h)
		}
	}
	return ix, nil
}

// BuildIndexRaw indexes a raw ASCII reference.
func BuildIndexRaw(ref []byte, cfg IndexConfig) (*Index, error) {
	return BuildIndex(dna.EncodeSeq(ref), cfg)
}

// Seeds returns the number of distinct indexed minimizers.
func (ix *Index) Seeds() int { return len(ix.table) }

// anchor is one seed hit: read position rpos matches reference position
// tpos. For reverse-strand hits, rpos is in the coordinates of the
// reverse-complemented read so chains stay co-linear.
type anchor struct {
	tpos, rpos int32
}

// anchors collects seed hits per relative strand.
func (ix *Index) anchors(read []byte) (fwd, rev []anchor) {
	readLen := int32(len(read))
	for _, m := range Minimizers(read, ix.K, ix.W) {
		occ, ok := ix.table[m.Hash]
		if !ok {
			continue
		}
		for _, v := range occ {
			tpos := int32(v >> 1)
			tRev := v&1 == 1
			if m.Rev == tRev {
				fwd = append(fwd, anchor{tpos: tpos, rpos: m.Pos})
			} else {
				rev = append(rev, anchor{tpos: tpos, rpos: readLen - (m.Pos + int32(ix.K))})
			}
		}
	}
	sortAnchors(fwd)
	sortAnchors(rev)
	return fwd, rev
}

func sortAnchors(a []anchor) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].tpos != a[j].tpos {
			return a[i].tpos < a[j].tpos
		}
		return a[i].rpos < a[j].rpos
	})
}
