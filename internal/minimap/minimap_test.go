package minimap

import (
	"math"
	"testing"

	"genasm/internal/dna"
	"genasm/internal/genome"
	"genasm/internal/readsim"
)

func codes(n int, seed int64) []byte {
	cfg := genome.DefaultConfig(n)
	cfg.Seed = seed
	return dna.EncodeSeq(genome.Generate(cfg).Seq)
}

func TestMinimizersWindowGuarantee(t *testing.T) {
	k, w := 7, 5
	seq := codes(2000, 1)
	ms := Minimizers(seq, k, w)
	if len(ms) == 0 {
		t.Fatal("no minimizers")
	}
	// Positions strictly increasing.
	for i := 1; i < len(ms); i++ {
		if ms[i].Pos <= ms[i-1].Pos {
			t.Fatalf("positions not increasing at %d", i)
		}
	}
	// Every window of w consecutive k-mers has a selected k-mer.
	sel := map[int32]bool{}
	for _, m := range ms {
		sel[m.Pos] = true
	}
	nk := len(seq) - k + 1
	for start := 0; start+w <= nk; start++ {
		ok := false
		for p := start; p < start+w; p++ {
			if sel[int32(p)] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("window starting at k-mer %d has no minimizer", start)
		}
	}
}

func TestMinimizerDensity(t *testing.T) {
	k, w := 15, 10
	seq := codes(200000, 2)
	ms := Minimizers(seq, k, w)
	density := float64(len(ms)) / float64(len(seq))
	want := 2.0 / float64(w+1)
	if math.Abs(density-want) > 0.03 {
		t.Fatalf("density %f want ~%f", density, want)
	}
}

func TestMinimizersCanonicalUnderRevComp(t *testing.T) {
	k, w := 11, 8
	seq := codes(5000, 3)
	rc := dna.ReverseComplement(seq)
	fwd := map[uint64]int{}
	for _, m := range Minimizers(seq, k, w) {
		fwd[m.Hash]++
	}
	rev := map[uint64]int{}
	for _, m := range Minimizers(rc, k, w) {
		rev[m.Hash]++
	}
	// Same sequence content, opposite strand: the canonical hash sets
	// must be (near-)identical. Window placement at the two ends can
	// differ, so allow a tiny discrepancy.
	missing := 0
	for h := range fwd {
		if _, ok := rev[h]; !ok {
			missing++
		}
	}
	if missing > len(fwd)/100 {
		t.Fatalf("%d/%d forward minimizer hashes missing from revcomp", missing, len(fwd))
	}
}

func TestMinimizersSkipN(t *testing.T) {
	raw := []byte("ACGTACGTNNACGTACGTACA")
	ms := MinimizersRaw(raw, 5, 3)
	for _, m := range ms {
		for _, b := range raw[m.Pos : m.Pos+5] {
			if b == 'N' {
				t.Fatalf("minimizer at %d spans N", m.Pos)
			}
		}
	}
}

func TestMinimizersEdgeCases(t *testing.T) {
	if ms := Minimizers(nil, 15, 10); ms != nil {
		t.Fatal("nil seq")
	}
	if ms := Minimizers(codes(10, 4), 15, 10); ms != nil {
		t.Fatal("seq shorter than k")
	}
	// Shorter than w k-mers still yields one minimizer.
	if ms := Minimizers(codes(18, 5), 15, 10); len(ms) != 1 {
		t.Fatalf("short seq minimizers = %d want 1", len(ms))
	}
}

func TestIndexOccurrenceFilter(t *testing.T) {
	// A pure tandem repeat makes every minimizer hyper-frequent; the
	// occurrence filter must drop them.
	unit := codes(20, 6)
	var seq []byte
	for i := 0; i < 400; i++ {
		seq = append(seq, unit...)
	}
	ix, err := BuildIndex(seq, IndexConfig{K: 11, W: 5, MaxOccurrences: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Seeds() != 0 {
		t.Fatalf("%d seeds survived on a pure tandem repeat", ix.Seeds())
	}
}

func TestBuildIndexRejectsBadConfig(t *testing.T) {
	if _, err := BuildIndex(codes(100, 7), IndexConfig{K: 0, W: 5}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := BuildIndex(codes(100, 7), IndexConfig{K: 40, W: 5}); err == nil {
		t.Fatal("accepted k=40")
	}
}

func TestLocateRecoversTrueOrigin(t *testing.T) {
	ref := genome.Generate(genome.DefaultConfig(300000)).Seq
	refCodes := dna.EncodeSeq(ref)
	ix, err := BuildIndex(refCodes, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := readsim.PacBioCLR()
	p.MeanLength, p.LengthSD = 3000, 500
	reads, err := readsim.Simulate(ref, 60, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultChainOpts()
	found := 0
	for _, r := range reads {
		cands := ix.Locate(dna.EncodeSeq(r.Seq), opt, 100)
		for _, c := range cands {
			overlapsOrigin := c.RefStart <= r.Pos+r.RefSpan && c.RefEnd >= r.Pos
			if overlapsOrigin && c.RevComp == r.RevComp {
				found++
				break
			}
		}
	}
	if found < 57 { // 95% recall
		t.Fatalf("recovered origin for only %d/60 reads", found)
	}
}

func TestLocateRepeatGenomeYieldsMultipleCandidates(t *testing.T) {
	cfg := genome.Config{Length: 200000, RepeatFraction: 0.6, RepeatUnit: 4000,
		RepeatDivergence: 0.01, Seed: 9}
	ref := genome.Generate(cfg).Seq
	ix, err := BuildIndexRaw(ref, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := readsim.PacBioCLR()
	p.MeanLength, p.LengthSD, p.RevCompFrac = 2000, 0, 0
	reads, err := readsim.Simulate(ref, 40, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, r := range reads {
		if len(ix.LocateRaw(r.Seq, DefaultChainOpts(), 100)) > 1 {
			multi++
		}
	}
	// -P semantics: a repeat-rich genome must produce secondary chains
	// for a healthy share of reads.
	if multi < 5 {
		t.Fatalf("only %d/40 reads had multiple candidates on a 60%% repeat genome", multi)
	}
}

func TestChainsColinearAndOrdered(t *testing.T) {
	refCodes := codes(100000, 11)
	ix, err := BuildIndex(refCodes, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	read := refCodes[5000:8000]
	chains := ix.Chains(read, DefaultChainOpts())
	if len(chains) == 0 {
		t.Fatal("no chains for an exact substring read")
	}
	best := chains[0]
	if best.RevComp {
		t.Fatal("exact forward substring chained to reverse strand")
	}
	if best.RefStart < 4900 || best.RefEnd > 8100 {
		t.Fatalf("best chain [%d,%d) far from true origin [5000,8000)", best.RefStart, best.RefEnd)
	}
	for i := 1; i < len(chains); i++ {
		if chains[i].Score > chains[i-1].Score {
			t.Fatal("chains not sorted by score")
		}
	}
	if best.ReadEnd <= best.ReadStart || best.RefEnd <= best.RefStart {
		t.Fatal("degenerate chain span")
	}
}

func TestLocateRevCompRead(t *testing.T) {
	refCodes := codes(100000, 12)
	ix, err := BuildIndex(refCodes, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	read := dna.ReverseComplement(refCodes[40000:43000])
	cands := ix.Locate(read, DefaultChainOpts(), 50)
	if len(cands) == 0 {
		t.Fatal("no candidates for revcomp read")
	}
	c := cands[0]
	if !c.RevComp {
		t.Fatal("revcomp read located on forward strand")
	}
	if c.RefStart > 40000 || c.RefEnd < 43000 {
		t.Fatalf("candidate [%d,%d) does not cover origin [40000,43000)", c.RefStart, c.RefEnd)
	}
}
