// Package minimap reproduces the candidate-generation half of minimap2
// (Li, Bioinformatics 2018): minimizer seeding, a reference index, and
// chaining of seed hits into candidate mapping locations. The paper obtains
// its (read, reference) alignment pairs from minimap2 run with -P, which
// reports *all* chains rather than only the primary one; Locate mirrors
// that behaviour.
package minimap

import (
	"genasm/internal/dna"
)

// Minimizer is one selected (w,k)-minimizer.
type Minimizer struct {
	// Hash is the canonical (strand-independent) k-mer hash.
	Hash uint64
	// Pos is the 0-based start of the k-mer in the sequence.
	Pos int32
	// Rev reports whether the canonical orientation is the reverse
	// complement of the forward k-mer.
	Rev bool
}

// hash64 is minimap2's invertible integer hash (a Murmur3-style finalizer);
// it decorrelates lexicographic k-mer order from selection order.
func hash64(key, mask uint64) uint64 {
	key = (^key + (key << 21)) & mask
	key = key ^ key>>24
	key = (key + (key << 3) + (key << 8)) & mask
	key = key ^ key>>14
	key = (key + (key << 2) + (key << 4)) & mask
	key = key ^ key>>28
	key = (key + (key << 31)) & mask
	return key
}

// invalidHash marks strand-ambiguous k-mers, which are never selected.
const invalidHash = ^uint64(0)

type kmerCand struct {
	hash uint64
	pos  int32
	rev  bool
}

// Minimizers extracts the (w,k)-minimizers of seq (base codes). K-mers
// containing N are skipped; k-mers equal to their own reverse complement
// are skipped (strand-ambiguous), both as in minimap2. Every window of w
// consecutive valid k-mers contributes at least one minimizer.
func Minimizers(seq []byte, k, w int) []Minimizer {
	if k < 1 || k > 28 || w < 1 || len(seq) < k {
		return nil
	}
	mask := uint64(1)<<(2*uint(k)) - 1
	shift := 2 * uint(k-1)
	var fwd, rev uint64
	valid := 0

	cands := make([]kmerCand, 0, len(seq))
	for i := 0; i < len(seq); i++ {
		b := seq[i]
		if b >= 4 {
			valid = 0
			fwd, rev = 0, 0
			continue
		}
		fwd = (fwd<<2 | uint64(b)) & mask
		rev = rev>>2 | uint64(3-b)<<shift
		valid++
		if valid < k {
			continue
		}
		pos := int32(i - k + 1)
		if fwd == rev {
			cands = append(cands, kmerCand{hash: invalidHash, pos: pos})
			continue
		}
		h, r := fwd, false
		if rev < fwd {
			h, r = rev, true
		}
		cands = append(cands, kmerCand{hash: hash64(h, mask), pos: pos, rev: r})
	}

	// Slide a window of w consecutive valid k-mers with a monotonic deque.
	var out []Minimizer
	deque := make([]kmerCand, 0, w+1)
	lastEmitted := int32(-1)
	for i, c := range cands {
		for len(deque) > 0 && deque[len(deque)-1].hash >= c.hash {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, c)
		lo := i - w + 1
		if lo < 0 {
			lo = 0
		}
		for deque[0].pos < cands[lo].pos {
			deque = deque[1:]
		}
		if i >= w-1 {
			m := deque[0]
			if m.hash != invalidHash && m.pos != lastEmitted {
				lastEmitted = m.pos
				out = append(out, Minimizer{Hash: m.hash, Pos: m.pos, Rev: m.rev})
			}
		}
	}
	// Sequences with fewer than w valid k-mers still seed with their
	// single window minimum.
	if len(out) == 0 && len(deque) > 0 && deque[0].hash != invalidHash {
		m := deque[0]
		out = append(out, Minimizer{Hash: m.hash, Pos: m.pos, Rev: m.rev})
	}
	return out
}

// MinimizersRaw is Minimizers on a raw ASCII sequence.
func MinimizersRaw(seq []byte, k, w int) []Minimizer {
	return Minimizers(dna.EncodeSeq(seq), k, w)
}
