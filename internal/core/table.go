package core

import "genasm/internal/stats"

// table is the stored DP working set of one window: everything the traceback
// is allowed to read, laid out as flat little-endian uint64 rows shared by
// the single-word (m <= 64) and multi-word (m > 64) kernels. Depending on
// the configuration a row stores per text position i in 1..n either the
// entry bitvector R[d][i] (SENE), a packed (2k+3)-bit diagonal band of it
// (SENE+DENT), or the four edge bitvectors match/substitution/deletion/
// insertion (neither; the unimproved layout).
//
// Layouts by mode, all within rows[d] (stride words per entry):
//
//	entries, unpacked:  stride = wpe        full R[d][i] words
//	entries, packed:    stride = bandWords  bits [bandLo(i), bandLo(i)+bandB)
//	edges:              stride = 4*wpe      M, S, D, I, wpe words each
//
// The single-word path always stores its one full automaton word (packing a
// sub-word band would not shrink a uint64 slot); DENT there is enforced at
// read time — out-of-band queries answer "inactive" — and in the footprint
// accounting, which charges only the band bits, as a packed hardware
// implementation would allocate. The multi-word path packs for real: when
// the band needs fewer words than the full state, only the band words are
// extracted and stored, cutting the stored working set ~wpe/bandWords x.
type table struct {
	m, n, k int
	entries bool // SENE: entry storage vs edge storage
	banded  bool // DENT: reads outside the (2k+3)-bit diagonal band answer inactive
	packed  bool // banded storage physically holds band words (bandWords < wpe)
	bandB   int  // band width in bits when banded
	wpe     int  // words per full automaton state: bitvec.Words(m), 1 for m <= 64
	stride  int  // stored words per entry (entries mode) or 4*wpe (edge mode)
	// storeBytes is the size of one stored entry as packed in memory:
	// banded entries round the band up to whole bytes, full entries are
	// wpe 64-bit words.
	storeBytes uint64
	rows       [][]uint64
}

// bandLo returns the lowest pattern bit index readable for text position i:
// the traceback diagonal at i minus the band's half width.
func (t *table) bandLo(i int) int { return (t.m - 1 - t.n + i) - (t.k + 1) }

// entryBit returns bit j of R[d][i], reading stored state. Queries outside
// the automaton (j < 0 fresh start, j >= m, i == 0 initial state, or outside
// the stored band) are answered from the closed-form padding rules.
func (t *table) entryBit(d, i, j int, c *stats.Counters) uint64 {
	switch {
	case j < 0:
		return 0 // fresh start: the empty pattern prefix is always active
	case j >= t.m:
		return 1
	case i == 0:
		if j < d {
			return 0 // j+1 deletions
		}
		return 1
	}
	c.AddRead(1, t.storeBytes)
	if t.banded {
		b := j - t.bandLo(i)
		if b < 0 || b >= t.bandB {
			return 1 // outside the traceback-reachable band
		}
		if t.packed {
			return t.rows[d][(i-1)*t.stride+b>>6] >> (uint(b) & 63) & 1
		}
	}
	return t.rows[d][(i-1)*t.stride+j>>6] >> (uint(j) & 63) & 1
}

// edge indices within an edge-mode entry.
const (
	edgeM = 0
	edgeS = 1
	edgeD = 2
	edgeI = 3
)

// edgeBit returns bit j of the stored edge vector (edge-mode tables only).
func (t *table) edgeBit(e, d, i, j int, c *stats.Counters) uint64 {
	c.AddRead(1, 8)
	return t.rows[d][(4*(i-1)+e)*t.wpe+j>>6] >> (uint(j) & 63) & 1
}

// extract64 returns the 64 bits [lo, lo+64) of the m-bit automaton state
// words (little-endian, normalized: bits at and above m are zero in the
// last word). Bit positions outside [0, m) read as 1, the GenASM "inactive"
// padding, so band words sliced past either end of the pattern behave like
// closed-form automaton state.
func extract64(words []uint64, lo, m int) uint64 {
	wlo := lo >> 6 // floor division, also for negative lo
	sh := uint(lo - wlo*64)
	out := extractWord(words, wlo, m) >> sh
	if sh > 0 {
		out |= extractWord(words, wlo+1, m) << (64 - sh)
	}
	return out
}

// extractWord returns word wi of the m-bit state with out-of-range and
// above-m bits reading as 1.
func extractWord(words []uint64, wi, m int) uint64 {
	if wi < 0 || wi >= len(words) {
		return ^uint64(0)
	}
	w := words[wi]
	if hi := m - 64*wi; hi < 64 {
		w |= ^uint64(0) << uint(hi)
	}
	return w
}

// tableScratch owns the reusable stored-table buffers of one windowAligner,
// shared by both word paths (a W > 64 pipeline still runs its final short
// window through the single-word kernel). Not safe for concurrent use.
type tableScratch struct {
	tbl    table
	rows   [][]uint64
	back   [][]uint64  // backing rows, grown on demand
	rowBuf [2][]uint64 // edge-mode working rows (single-word path)
}

// row hands out working row `which` with capacity for n words (edge mode
// keeps full automaton rows outside the stored table).
func (s *tableScratch) row(which, n int) []uint64 {
	if cap(s.rowBuf[which]) < n {
		s.rowBuf[which] = make([]uint64, n)
	}
	return s.rowBuf[which][:n]
}

// tableRow hands out the reusable backing slice for table row d, words
// uint64s wide. Every element is overwritten by the caller's text loop, so
// stale words from the previous window are never read.
func (s *tableScratch) tableRow(d, words int) []uint64 {
	for len(s.back) <= d {
		//lint:allow hotalloc one-time scratch growth per new error depth, amortized to zero across windows
		s.back = append(s.back, nil)
	}
	if cap(s.back[d]) < words {
		s.back[d] = make([]uint64, words)
	}
	return s.back[d][:words]
}
