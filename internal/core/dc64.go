package core

import (
	"fmt"

	"genasm/internal/cigar"
	"genasm/internal/dna"
	"genasm/internal/stats"
)

// masks64 holds the Bitap pattern-match bitmasks of one (reversed) pattern
// window for the single-word fast path (m <= 64). Bits are 0-active: bit j
// of pm[c] is 0 iff the reversed pattern has base code c at position j. Bits
// at and above m are 1 so they always read as inactive.
type masks64 struct {
	pm   [dna.Alphabet]uint64
	m    int
	high uint64 // 1s at bit positions >= m
}

func buildMasks64(pRev []byte) masks64 {
	m := len(pRev)
	var mk masks64
	mk.m = m
	if m < 64 {
		mk.high = ^uint64(0) << uint(m)
	}
	for c := 0; c < dna.Alphabet; c++ {
		mk.pm[c] = ^uint64(0)
	}
	for j, pc := range pRev {
		if pc != dna.N {
			mk.pm[pc] &^= uint64(1) << uint(j)
		}
	}
	return mk
}

// initRow returns the automaton state before any text character at error
// level d: bit j is active (0) iff the pattern prefix of length j+1 can be
// produced by j+1 <= d deletions.
func (mk *masks64) initRow(d int) uint64 {
	var r uint64
	if d >= 64 {
		r = 0
	} else {
		r = ^uint64(0) << uint(d)
	}
	return r | mk.high
}

// table64 is the stored DP working set of one window: everything the
// traceback is allowed to read. Depending on the configuration it stores
// per (error level d, text position i in 1..n) either the single entry
// bitvector R[d][i] (SENE), a banded slice of it (SENE+DENT), or the four
// edge bitvectors match/substitution/deletion/insertion (neither; the
// unimproved layout).
type table64 struct {
	m, n, k int
	entries bool // SENE: entry storage (1 word) vs edge storage (4 words)
	banded  bool // DENT: entries hold a (2k+3)-bit diagonal band
	bandB   int  // band width in bits when banded
	// storeBytes is the size of one stored entry as packed in memory:
	// banded entries round the band up to whole bytes, full entries are
	// one 64-bit word.
	storeBytes uint64
	rows       [][]uint64
}

// bandLo returns the lowest pattern bit index stored for text position i:
// the traceback diagonal at i minus the band's half width.
func (t *table64) bandLo(i int) int {
	return (t.m - 1 - t.n + i) - (t.k + 1)
}

// bandExtract packs bits [lo, lo+64) of the full automaton word r into a
// stored band word. Bit positions outside [0, m) read as 1 (inactive).
func bandExtract(r uint64, lo, m int) uint64 {
	var w uint64
	switch {
	case lo >= 64:
		w = ^uint64(0)
	case lo >= 0:
		w = r >> uint(lo)
		if lo > 0 {
			w |= ^uint64(0) << uint(64-lo)
		}
	case lo <= -64:
		w = ^uint64(0)
	default: // -64 < lo < 0
		sh := uint(-lo)
		w = r<<sh | (uint64(1)<<sh - 1)
	}
	if bs := m - lo; bs < 64 {
		if bs < 0 {
			bs = 0
		}
		w |= ^uint64(0) << uint(bs)
	}
	return w
}

// entryBit returns bit j of R[d][i], reading stored state. Queries outside
// the automaton (j < 0 fresh start, j >= m, i == 0 initial state, or outside
// the stored band) are answered from the closed-form padding rules.
func (t *table64) entryBit(d, i, j int, c *stats.Counters) uint64 {
	switch {
	case j < 0:
		return 0 // fresh start: the empty pattern prefix is always active
	case j >= t.m:
		return 1
	case i == 0:
		if j < d {
			return 0 // j+1 deletions
		}
		return 1
	}
	c.AddRead(1, t.storeBytes)
	w := t.rows[d][i-1]
	if t.banded {
		b := j - t.bandLo(i)
		if b < 0 || b >= t.bandB {
			return 1 // outside the traceback-reachable band
		}
		return (w >> uint(b)) & 1
	}
	return (w >> uint(j)) & 1
}

// edge indices within an edge-mode entry.
const (
	edgeM = 0
	edgeS = 1
	edgeD = 2
	edgeI = 3
)

// edgeBit returns bit j of the stored edge vector (edge-mode tables only).
func (t *table64) edgeBit(e, d, i, j int, c *stats.Counters) uint64 {
	c.AddRead(1, 8)
	return (t.rows[d][4*(i-1)+e] >> uint(j)) & 1
}

// dc64 runs the improved GenASM distance calculation for one window:
// reversed pattern masks mk against reversed text tRev (base codes), with
// error budget k. It returns the stored table and the window distance d*,
// or ok=false if the distance exceeds k.
//
// The loop is row-major over error levels so that early termination can
// skip every row above the first solved one. rowPrev/rowCur hold the full
// automaton words of rows d-1 and d (the kernel working registers); the
// stored table receives only what the configuration allows the traceback
// to read.
func dc64(mk *masks64, tRev []byte, k int, cfg Config, scratch *scratch64, c *stats.Counters) (*table64, int, bool) {
	m, n := mk.m, len(tRev)
	t := &table64{
		m: m, n: n, k: k,
		entries: !cfg.DisableSENE,
		banded:  !cfg.DisableDENT && 2*k+3 <= 64,
		rows:    scratch.rows[:0],
	}
	t.storeBytes = 8
	entryBits := uint64(64)
	if t.banded {
		t.bandB = 2*k + 3
		entryBits = uint64(t.bandB)
		t.storeBytes = uint64(t.bandB+7) / 8
	}

	rowPrev := scratch.row(0, n+1)
	rowCur := scratch.row(1, n+1)

	solved := -1
	for d := 0; d <= k; d++ {
		prev := mk.initRow(d)
		rowCur[0] = prev
		var drow []uint64
		if t.entries {
			drow = scratch.tableRow(d, n)
		} else {
			drow = scratch.tableRow(d, 4*n)
		}
		for i := 1; i <= n; i++ {
			pmt := mk.pm[tRev[i-1]]
			M := prev<<1 | pmt
			var cur uint64
			if d == 0 {
				cur = M | mk.high
				if t.entries {
					if t.banded {
						drow[i-1] = bandExtract(cur, t.bandLo(i), m)
					} else {
						drow[i-1] = cur
					}
					c.AddWrite(1, t.storeBytes)
					c.AddFootprint(entryBits)
				} else {
					e := drow[4*(i-1):]
					e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, ^uint64(0), ^uint64(0), ^uint64(0)
					c.AddWrite(4, 8)
					c.AddFootprint(4 * 64)
				}
			} else {
				up1 := rowPrev[i-1] // R[d-1][i-1]
				S := up1 << 1
				D := rowPrev[i] << 1
				I := up1
				cur = (M & S & D & I) | mk.high
				if t.entries {
					if t.banded {
						drow[i-1] = bandExtract(cur, t.bandLo(i), m)
					} else {
						drow[i-1] = cur
					}
					c.AddWrite(1, t.storeBytes)
					c.AddFootprint(entryBits)
				} else {
					e := drow[4*(i-1):]
					e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, S, D, I
					c.AddWrite(4, 8)
					c.AddFootprint(4 * 64)
				}
			}
			rowCur[i] = cur
			prev = cur
		}
		//lint:allow hotalloc appends into the scratch-backed rows slice; amortized to zero across windows
		t.rows = append(t.rows, drow)
		if solved < 0 && rowCur[n]>>uint(m-1)&1 == 0 {
			solved = d
			if !cfg.DisableET {
				c.AddRows(uint64(d+1), uint64(k-d))
				scratch.rows = t.rows
				return t, d, true
			}
		}
		rowPrev, rowCur = rowCur, rowPrev
	}
	scratch.rows = t.rows
	c.AddRows(uint64(len(t.rows)), 0)
	if solved >= 0 {
		return t, solved, true
	}
	return t, 0, false
}

// traceback64 walks the stored table from the solved state (text fully
// processed, whole pattern matched, error level d*) back to the start of
// the pattern, emitting alignment operations. Because both window strings
// are reversed, the operations come out in forward order of the original
// window. It returns the alignment and the number of text characters the
// pattern consumed.
//
// Edge priority is match, substitution, deletion (pattern-only: a query
// insertion in CIGAR terms), insertion (text-only: a query deletion). Every
// implementation in this repository uses the same order, so ablated and
// unimproved configurations produce byte-identical alignments.
func traceback64(t *table64, mk *masks64, tRev []byte, dStar int, c *stats.Counters) (cigar.Cigar, int, error) {
	var cg cigar.Cigar
	i, j, d := t.n, t.m-1, dStar
	for j >= 0 {
		if t.entries {
			if i >= 1 && mk.pm[tRev[i-1]]>>uint(j)&1 == 0 && t.entryBit(d, i-1, j-1, c) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 && t.entryBit(d-1, i-1, j-1, c) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if t.entryBit(d-1, i, j-1, c) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if i >= 1 && t.entryBit(d-1, i-1, j, c) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			}
		} else {
			if i >= 1 && t.edgeBit(edgeM, d, i, j, c) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 {
					if t.edgeBit(edgeS, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Mismatch, 1)
						i, j, d = i-1, j-1, d-1
						continue
					}
					if t.edgeBit(edgeD, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Ins, 1)
						j, d = j-1, d-1
						continue
					}
					if t.edgeBit(edgeI, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Del, 1)
						i, d = i-1, d-1
						continue
					}
				} else if j < d { // initial column: deletions only
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
			}
		}
		return nil, 0, fmt.Errorf("core: traceback stuck at i=%d j=%d d=%d (table %dx%d k=%d)", i, j, d, t.n, t.m, t.k)
	}
	return cg, t.n - i, nil
}

// scratch64 owns the reusable buffers of one Aligner so window alignment is
// allocation-free in the steady state. Not safe for concurrent use.
type scratch64 struct {
	rowBuf [2][]uint64
	rows   [][]uint64
	table  [][]uint64 // backing rows, grown on demand
}

func (s *scratch64) row(which, n int) []uint64 {
	if cap(s.rowBuf[which]) < n {
		s.rowBuf[which] = make([]uint64, n)
	}
	return s.rowBuf[which][:n]
}

func (s *scratch64) tableRow(d, n int) []uint64 {
	for len(s.table) <= d {
		//lint:allow hotalloc one-time scratch growth per new error depth, amortized to zero across windows
		s.table = append(s.table, nil)
	}
	if cap(s.table[d]) < n {
		s.table[d] = make([]uint64, n)
	}
	return s.table[d][:n]
}
