package core

import (
	"fmt"

	"genasm/internal/cigar"
	"genasm/internal/dna"
	"genasm/internal/stats"
)

// masks64 holds the Bitap pattern-match bitmasks of one (reversed) pattern
// window for the single-word fast path (m <= 64). Bits are 0-active: bit j
// of pm[c] is 0 iff the reversed pattern has base code c at position j. Bits
// at and above m are 1 so they always read as inactive.
type masks64 struct {
	pm   [dna.Alphabet]uint64
	m    int
	high uint64 // 1s at bit positions >= m
}

func buildMasks64(pRev []byte) masks64 {
	m := len(pRev)
	var mk masks64
	mk.m = m
	if m < 64 {
		mk.high = ^uint64(0) << uint(m)
	}
	for c := 0; c < dna.Alphabet; c++ {
		mk.pm[c] = ^uint64(0)
	}
	for j, pc := range pRev {
		if pc != dna.N {
			mk.pm[pc] &^= uint64(1) << uint(j)
		}
	}
	return mk
}

// initRow returns the automaton state before any text character at error
// level d: bit j is active (0) iff the pattern prefix of length j+1 can be
// produced by j+1 <= d deletions.
func (mk *masks64) initRow(d int) uint64 {
	var r uint64
	if d >= 64 {
		r = 0
	} else {
		r = ^uint64(0) << uint(d)
	}
	return r | mk.high
}

// dc64 runs the improved GenASM distance calculation for one window:
// reversed pattern masks mk against reversed text tRev (base codes), with
// error budget k. It returns the stored table and the window distance d*,
// or ok=false if the distance exceeds k.
//
// The loop is row-major over error levels so that early termination can
// skip every row above the first solved one. In entry mode (SENE) the
// stored rows double as the kernel's working state: row d's recurrence
// reads R[d-1][i-1] and R[d-1][i] straight from the stored row d-1, so
// each text position costs exactly one load and one store of DP state.
// Edge mode keeps separate working rows, since its stored vectors are the
// four edges rather than the ANDed entries.
func dc64(mk *masks64, tRev []byte, k int, cfg Config, scratch *tableScratch, c *stats.Counters) (*table, int, bool) {
	m, n := mk.m, len(tRev)
	t := &scratch.tbl
	*t = table{
		m: m, n: n, k: k,
		entries: !cfg.DisableSENE,
		banded:  !cfg.DisableDENT && 2*k+3 <= 64,
		wpe:     1,
		stride:  1,
		rows:    scratch.rows[:0],
	}
	t.storeBytes = 8
	entryBits := uint64(64)
	if t.banded {
		t.bandB = 2*k + 3
		entryBits = uint64(t.bandB)
		t.storeBytes = uint64(t.bandB+7) / 8
	}
	if !t.entries {
		t.stride = 4
	}

	high := mk.high
	var rowPrev, rowCur []uint64
	if !t.entries {
		rowPrev = scratch.row(0, n+1)
		rowCur = scratch.row(1, n+1)
	}
	solved := -1
	for d := 0; d <= k; d++ {
		drow := scratch.tableRow(d, t.stride*n)
		var last uint64
		if t.entries {
			prev := mk.initRow(d)
			if d == 0 {
				for i := 0; i < n; i++ {
					cur := prev<<1 | mk.pm[tRev[i]] | high
					drow[i] = cur
					prev = cur
				}
			} else {
				prevRow := t.rows[d-1]
				up := mk.initRow(d - 1) // R[d-1][i-1], starts at the init state
				for i := 0; i < n; i++ {
					ur := prevRow[i] // R[d-1][i]
					cur := (prev<<1|mk.pm[tRev[i]])&(up<<1)&(ur<<1)&up | high
					drow[i] = cur
					prev = cur
					up = ur
				}
			}
			last = prev
			c.AddWrite(uint64(n), t.storeBytes)
			c.AddFootprint(uint64(n) * entryBits)
		} else {
			prev := mk.initRow(d)
			rowCur[0] = prev
			for i := 1; i <= n; i++ {
				M := prev<<1 | mk.pm[tRev[i-1]]
				var cur uint64
				e := drow[4*(i-1):]
				if d == 0 {
					cur = M | high
					e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, ^uint64(0), ^uint64(0), ^uint64(0)
				} else {
					up1 := rowPrev[i-1] // R[d-1][i-1]
					S := up1 << 1
					D := rowPrev[i] << 1
					I := up1
					cur = M&S&D&I | high
					e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, S, D, I
				}
				rowCur[i] = cur
				prev = cur
			}
			last = prev
			c.AddWrite(uint64(4*n), 8)
			c.AddFootprint(uint64(4*n) * 64)
			rowPrev, rowCur = rowCur, rowPrev
		}
		//lint:allow hotalloc appends into the scratch-backed rows slice; amortized to zero across windows
		t.rows = append(t.rows, drow)
		if solved < 0 && last>>uint(m-1)&1 == 0 {
			solved = d
			if !cfg.DisableET {
				c.AddRows(uint64(d+1), uint64(k-d))
				scratch.rows = t.rows
				return t, d, true
			}
		}
	}
	scratch.rows = t.rows
	c.AddRows(uint64(len(t.rows)), 0)
	if solved >= 0 {
		return t, solved, true
	}
	return t, 0, false
}

// traceback64 walks the stored table from the solved state (text fully
// processed, whole pattern matched, error level d*) back to the start of
// the pattern, emitting alignment operations. Because both window strings
// are reversed, the operations come out in forward order of the original
// window. It returns the alignment and the number of text characters the
// pattern consumed.
//
// Edge priority is match, substitution, deletion (pattern-only: a query
// insertion in CIGAR terms), insertion (text-only: a query deletion). Every
// implementation in this repository uses the same order, so ablated and
// unimproved configurations produce byte-identical alignments. Match runs
// are followed to their end before emitting, so the common case (long
// stretches of agreement between pattern and text) costs one run-length
// append instead of one per base.
func traceback64(t *table, mk *masks64, tRev []byte, dStar int, c *stats.Counters) (cigar.Cigar, int, error) {
	cg := make(cigar.Cigar, 0, 2*dStar+2) // <= 2*d*+1 runs: each edit breaks at most one match run
	i, j, d := t.n, t.m-1, dStar
	for j >= 0 {
		if t.entries {
			if i >= 1 && mk.pm[tRev[i-1]]>>uint(j)&1 == 0 && t.entryBit(d, i-1, j-1, c) == 0 {
				run := 1
				i, j = i-1, j-1
				for i >= 1 && j >= 0 && mk.pm[tRev[i-1]]>>uint(j)&1 == 0 && t.entryBit(d, i-1, j-1, c) == 0 {
					run++
					i, j = i-1, j-1
				}
				cg = cg.Append(cigar.Match, run)
				continue
			}
			if d >= 1 {
				if i >= 1 && t.entryBit(d-1, i-1, j-1, c) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if t.entryBit(d-1, i, j-1, c) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if i >= 1 && t.entryBit(d-1, i-1, j, c) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			}
		} else {
			if i >= 1 && t.edgeBit(edgeM, d, i, j, c) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 {
					if t.edgeBit(edgeS, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Mismatch, 1)
						i, j, d = i-1, j-1, d-1
						continue
					}
					if t.edgeBit(edgeD, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Ins, 1)
						j, d = j-1, d-1
						continue
					}
					if t.edgeBit(edgeI, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Del, 1)
						i, d = i-1, d-1
						continue
					}
				} else if j < d { // initial column: deletions only
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
			}
		}
		return nil, 0, fmt.Errorf("core: traceback stuck at i=%d j=%d d=%d (table %dx%d k=%d)", i, j, d, t.n, t.m, t.k)
	}
	return cg, t.n - i, nil
}
