package core

import (
	"fmt"

	"genasm/internal/bitvec"
	"genasm/internal/cigar"
	"genasm/internal/dna"
)

// Multi-word window path: the same improved GenASM algorithm for windows
// wider than one machine word (64 < W). The automaton rows become
// bitvec.V values; the structure of the distance calculation, early
// termination and traceback is identical to the single-word fast path in
// dc64.go.
//
// DENT note: the stored entries remain whole vectors at the Go level (the
// language has no sub-word addressing worth modelling here), but banded
// reads are enforced — out-of-band bits answer "inactive" — and the
// footprint accounting charges only the band bits, which is what a packed
// implementation (or the GPU kernels in internal/gpualign) would allocate.

type masksMW struct {
	pm [dna.Alphabet]bitvec.V
	m  int
}

// ensureV makes *v a width-m vector, reusing its backing words whenever
// their capacity suffices (the final partial window of every alignment
// has a smaller m, so an equality check alone would rebuild all scratch
// twice per Align call). The resized vector's bits are unspecified;
// every caller fully overwrites it (Fill/Copy/Shl1/And4) before reading.
func ensureV(v *bitvec.V, m int) {
	words := bitvec.Words(m)
	if v.Width == m && len(v.W) == words {
		return
	}
	if cap(v.W) >= words {
		v.Width = m
		v.W = v.W[:words]
		return
	}
	*v = bitvec.New(m)
}

// buildInto (re)builds the pattern masks for pRev in place.
func (mk *masksMW) buildInto(pRev []byte) {
	m := len(pRev)
	mk.m = m
	for c := 0; c < dna.Alphabet; c++ {
		ensureV(&mk.pm[c], m)
		mk.pm[c].Fill(true)
	}
	for j, pc := range pRev {
		if pc != dna.N {
			mk.pm[pc].SetBit(j, 0)
		}
	}
}

// initRowInto writes the error-level-d initial automaton state into v
// (v must already have width mk.m).
func (mk *masksMW) initRowInto(v bitvec.V, d int) {
	v.Fill(true)
	for j := 0; j < d && j < mk.m; j++ {
		v.SetBit(j, 0)
	}
}

type tableMW struct {
	m, n, k    int
	entries    bool
	banded     bool
	bandB      int
	storeBytes uint64
	rows       [][]bitvec.V
}

func (t *tableMW) bandLo(i int) int { return (t.m - 1 - t.n + i) - (t.k + 1) }

func (t *tableMW) entryBit(d, i, j int, w *windowAligner) uint {
	switch {
	case j < 0:
		return 0
	case j >= t.m:
		return 1
	case i == 0:
		if j < d {
			return 0
		}
		return 1
	}
	w.counters.AddRead(1, t.storeBytes)
	if t.banded {
		b := j - t.bandLo(i)
		if b < 0 || b >= t.bandB {
			return 1
		}
	}
	return t.rows[d][i-1].Bit(j)
}

func (t *tableMW) edgeBit(e, d, i, j int, w *windowAligner) uint {
	w.counters.AddRead(1, 8)
	return t.rows[d][4*(i-1)+e].Bit(j)
}

// mwScratch holds the per-aligner temporaries of the multi-word path.
type mwScratch struct {
	rowPrev, rowCur []bitvec.V
	tM, tS, tD, tI  bitvec.V
	mk              masksMW      // pattern masks, rebuilt in place per window
	rows            [][]bitvec.V // stored table rows, reused across windows
	table           [][]bitvec.V // backing rows, grown on demand
}

func (s *mwScratch) prepare(m, n int) {
	need := n + 1
	if cap(s.rowPrev) < need {
		grown := make([]bitvec.V, need)
		copy(grown, s.rowPrev)
		s.rowPrev = grown
		grown = make([]bitvec.V, need)
		copy(grown, s.rowCur)
		s.rowCur = grown
	} else {
		s.rowPrev = s.rowPrev[:need]
		s.rowCur = s.rowCur[:need]
	}
	for i := 0; i < need; i++ {
		ensureV(&s.rowPrev[i], m)
		ensureV(&s.rowCur[i], m)
	}
	ensureV(&s.tM, m)
	ensureV(&s.tS, m)
	ensureV(&s.tD, m)
	ensureV(&s.tI, m)
}

// tableRow hands out the reusable backing slice for table row d (the
// multi-word twin of scratch64.tableRow). Every element is overwritten
// by the caller's text loop, so stale vectors from the previous window
// are never read.
func (s *mwScratch) tableRow(d, n int) []bitvec.V {
	for len(s.table) <= d {
		//lint:allow hotalloc one-time scratch growth per new error depth, amortized to zero across windows
		s.table = append(s.table, nil)
	}
	if cap(s.table[d]) < n {
		s.table[d] = make([]bitvec.V, n)
	}
	return s.table[d][:n]
}

// alignWindowMW aligns the reversed window buffers of w at error budget k.
func (w *windowAligner) alignWindowMW(k int) (int, cigar.Cigar, int, bool, error) {
	mk := &w.mw.mk
	mk.buildInto(w.pRevBuf)
	m, n := mk.m, len(w.tRevBuf)
	cfg := w.cfg
	t := &tableMW{
		m: m, n: n, k: k,
		entries: !cfg.DisableSENE,
		banded:  !cfg.DisableDENT,
		rows:    w.mw.rows[:0],
	}
	entryBits := uint64(m)
	wordsPerEntry := uint64(bitvec.Words(m))
	t.storeBytes = 8 * wordsPerEntry
	if t.banded {
		t.bandB = 2*k + 3
		entryBits = uint64(t.bandB)
		t.storeBytes = uint64(t.bandB+7) / 8
	}

	w.mw.prepare(m, n)
	rowPrev, rowCur := w.mw.rowPrev, w.mw.rowCur

	solved := -1
	for d := 0; d <= k; d++ {
		mk.initRowInto(rowCur[0], d)
		var drow []bitvec.V
		if t.entries {
			drow = w.mw.tableRow(d, n)
		} else {
			drow = w.mw.tableRow(d, 4*n)
		}
		for i := 1; i <= n; i++ {
			pmt := mk.pm[w.tRevBuf[i-1]]
			w.mw.tM.Shl1(rowCur[i-1], 0)
			w.mw.tM.Or(w.mw.tM, pmt)
			if d == 0 {
				rowCur[i].Copy(w.mw.tM)
			} else {
				w.mw.tS.Shl1(rowPrev[i-1], 0)
				w.mw.tD.Shl1(rowPrev[i], 0)
				w.mw.tI.Copy(rowPrev[i-1])
				rowCur[i].And4(w.mw.tM, w.mw.tS, w.mw.tD, w.mw.tI)
			}
			if t.entries {
				ensureV(&drow[i-1], m)
				drow[i-1].Copy(rowCur[i])
				if t.banded {
					w.counters.AddWrite(1, t.storeBytes)
				} else {
					w.counters.AddWrite(wordsPerEntry, 8)
				}
				w.counters.AddFootprint(entryBits)
			} else {
				e := drow[4*(i-1):]
				ensureV(&e[edgeM], m)
				e[edgeM].Copy(w.mw.tM)
				for _, idx := range [3]int{edgeS, edgeD, edgeI} {
					ensureV(&e[idx], m)
				}
				if d == 0 {
					e[edgeS].Fill(true)
					e[edgeD].Fill(true)
					e[edgeI].Fill(true)
				} else {
					e[edgeS].Copy(w.mw.tS)
					e[edgeD].Copy(w.mw.tD)
					e[edgeI].Copy(w.mw.tI)
				}
				w.counters.AddWrite(4*wordsPerEntry, 8)
				w.counters.AddFootprint(4 * uint64(m))
			}
		}
		//lint:allow hotalloc appends into the scratch-backed rows slice; amortized to zero across windows
		t.rows = append(t.rows, drow)
		if solved < 0 && rowCur[n].Bit(m-1) == 0 {
			solved = d
			if !cfg.DisableET {
				w.counters.AddRows(uint64(d+1), uint64(k-d))
				w.mw.rows = t.rows
				cg, used, err := w.tracebackMW(t, mk, d)
				return d, cg, used, true, err
			}
		}
		rowPrev, rowCur = rowCur, rowPrev
	}
	w.mw.rows = t.rows
	w.counters.AddRows(uint64(len(t.rows)), 0)
	if solved < 0 {
		return 0, nil, 0, false, nil
	}
	cg, used, err := w.tracebackMW(t, mk, solved)
	return solved, cg, used, true, err
}

func (w *windowAligner) tracebackMW(t *tableMW, mk *masksMW, dStar int) (cigar.Cigar, int, error) {
	var cg cigar.Cigar
	i, j, d := t.n, t.m-1, dStar
	for j >= 0 {
		if t.entries {
			if i >= 1 && mk.pm[w.tRevBuf[i-1]].Bit(j) == 0 && t.entryBit(d, i-1, j-1, w) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 && t.entryBit(d-1, i-1, j-1, w) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if t.entryBit(d-1, i, j-1, w) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if i >= 1 && t.entryBit(d-1, i-1, j, w) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			}
		} else {
			if i >= 1 && t.edgeBit(edgeM, d, i, j, w) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 {
					if t.edgeBit(edgeS, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Mismatch, 1)
						i, j, d = i-1, j-1, d-1
						continue
					}
					if t.edgeBit(edgeD, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Ins, 1)
						j, d = j-1, d-1
						continue
					}
					if t.edgeBit(edgeI, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Del, 1)
						i, d = i-1, d-1
						continue
					}
				} else if j < d {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
			}
		}
		return nil, 0, fmt.Errorf("core: multiword traceback stuck at i=%d j=%d d=%d", i, j, d)
	}
	return cg, t.n - i, nil
}
