package core

import (
	"fmt"

	"genasm/internal/bitvec"
	"genasm/internal/cigar"
	"genasm/internal/dna"
)

// Multi-word window path: the same improved GenASM algorithm for windows
// wider than one machine word (64 < W). The automaton rows span
// bitvec.Words(m) uint64s; the structure of the distance calculation, early
// termination and traceback is identical to the single-word fast path in
// dc64.go, and both paths share the flat stored-table layout in table.go.
//
// DENT here is real at the storage level: when the (2k+3)-bit diagonal band
// needs fewer words than the full automaton state, only the band words are
// extracted (extract64) and stored per entry, so the stored working set
// shrinks from wpe = Words(m) words per entry to ceil((2k+3)/64) — one word
// for every default-band configuration. The traceback indexes into the band
// through table.entryBit's packed path.

type masksMW struct {
	pm [dna.Alphabet]bitvec.V
	m  int
}

// ensureV makes *v a width-m vector, reusing its backing words whenever
// their capacity suffices (the final partial window of every alignment
// has a smaller m, so an equality check alone would rebuild all scratch
// twice per Align call). The resized vector's bits are unspecified;
// every caller fully overwrites it before reading.
func ensureV(v *bitvec.V, m int) {
	words := bitvec.Words(m)
	if v.Width == m && len(v.W) == words {
		return
	}
	if cap(v.W) >= words {
		v.Width = m
		v.W = v.W[:words]
		return
	}
	*v = bitvec.New(m)
}

// buildInto (re)builds the pattern masks for pRev in place.
func (mk *masksMW) buildInto(pRev []byte) {
	m := len(pRev)
	mk.m = m
	for c := 0; c < dna.Alphabet; c++ {
		ensureV(&mk.pm[c], m)
		mk.pm[c].Fill(true)
	}
	for j, pc := range pRev {
		if pc != dna.N {
			mk.pm[pc].SetBit(j, 0)
		}
	}
}

// initRowInto writes the error-level-d initial automaton state into v
// (v must already have width mk.m).
func (mk *masksMW) initRowInto(v bitvec.V, d int) {
	v.Fill(true)
	for j := 0; j < d && j < mk.m; j++ {
		v.SetBit(j, 0)
	}
}

// mwScratch holds the per-aligner working state of the multi-word path:
// the full automaton rows the recurrence runs on (the stored table holds
// only what the traceback may read, which in banded mode is narrower than
// the recurrence needs) and the edge-mode temporaries.
type mwScratch struct {
	rowPrev, rowCur []bitvec.V
	tM, tS, tD, tI  bitvec.V
	mk              masksMW // pattern masks, rebuilt in place per window
}

func (s *mwScratch) prepare(m, n int) {
	need := n + 1
	if cap(s.rowPrev) < need {
		grown := make([]bitvec.V, need)
		copy(grown, s.rowPrev)
		s.rowPrev = grown
		grown = make([]bitvec.V, need)
		copy(grown, s.rowCur)
		s.rowCur = grown
	} else {
		s.rowPrev = s.rowPrev[:need]
		s.rowCur = s.rowCur[:need]
	}
	for i := 0; i < need; i++ {
		ensureV(&s.rowPrev[i], m)
		ensureV(&s.rowCur[i], m)
	}
	ensureV(&s.tM, m)
	ensureV(&s.tS, m)
	ensureV(&s.tD, m)
	ensureV(&s.tI, m)
}

// alignWindowMW aligns the reversed window buffers of w at error budget k.
// The masks in w.mw.mk must already be built for the current pattern.
func (w *windowAligner) alignWindowMW(k int) (int, cigar.Cigar, int, bool, error) {
	mk := &w.mw.mk
	m, n := mk.m, len(w.tRevBuf)
	cfg := w.cfg
	wpe := bitvec.Words(m)
	t := &w.ts.tbl
	*t = table{
		m: m, n: n, k: k,
		entries: !cfg.DisableSENE,
		banded:  !cfg.DisableDENT,
		wpe:     wpe,
		rows:    w.ts.rows[:0],
	}
	entryBits := uint64(m)
	t.stride = wpe
	t.storeBytes = 8 * uint64(wpe)
	if t.banded {
		t.bandB = 2*k + 3
		entryBits = uint64(t.bandB)
		t.storeBytes = uint64(t.bandB+7) / 8
		if bw := (t.bandB + 63) / 64; bw < wpe {
			t.packed = true
			t.stride = bw
		}
	}
	if !t.entries {
		t.stride = 4 * wpe
	}

	w.mw.prepare(m, n)
	rowPrev, rowCur := w.mw.rowPrev, w.mw.rowCur

	solved := -1
	for d := 0; d <= k; d++ {
		mk.initRowInto(rowCur[0], d)
		drow := w.ts.tableRow(d, t.stride*n)
		if t.entries {
			// Fused kernel: one pass over the words per text position
			// computes M & S & D & I with the shift carries propagated
			// in registers, instead of four temporary-vector passes.
			for i := 1; i <= n; i++ {
				pmw := mk.pm[w.tRevBuf[i-1]].W
				prevW := rowCur[i-1].W
				curW := rowCur[i].W
				if d == 0 {
					var cp uint64
					for wi := range curW {
						pw := prevW[wi]
						curW[wi] = (pw<<1 | cp) | pmw[wi]
						cp = pw >> 63
					}
				} else {
					upW := rowPrev[i-1].W
					urW := rowPrev[i].W
					var cp, cu, cr uint64
					for wi := range curW {
						pw, uw, rw := prevW[wi], upW[wi], urW[wi]
						curW[wi] = ((pw<<1 | cp) | pmw[wi]) & (uw<<1 | cu) & (rw<<1 | cr) & uw
						cp, cu, cr = pw>>63, uw>>63, rw>>63
					}
				}
				rowCur[i].Normalize()
				dst := drow[(i-1)*t.stride : i*t.stride]
				if t.packed {
					lo := t.bandLo(i)
					for b := range dst {
						dst[b] = extract64(curW, lo+64*b, m)
					}
				} else {
					copy(dst, curW)
				}
			}
			if t.banded {
				w.counters.AddWrite(uint64(n), t.storeBytes)
			} else {
				w.counters.AddWrite(uint64(n*wpe), 8)
			}
			w.counters.AddFootprint(uint64(n) * entryBits)
		} else {
			for i := 1; i <= n; i++ {
				pmt := mk.pm[w.tRevBuf[i-1]]
				w.mw.tM.Shl1(rowCur[i-1], 0)
				w.mw.tM.Or(w.mw.tM, pmt)
				if d == 0 {
					rowCur[i].Copy(w.mw.tM)
				} else {
					w.mw.tS.Shl1(rowPrev[i-1], 0)
					w.mw.tD.Shl1(rowPrev[i], 0)
					w.mw.tI.Copy(rowPrev[i-1])
					rowCur[i].And4(w.mw.tM, w.mw.tS, w.mw.tD, w.mw.tI)
				}
				e := drow[4*(i-1)*wpe : (4*(i-1)+4)*wpe]
				copy(e[edgeM*wpe:(edgeM+1)*wpe], w.mw.tM.W)
				if d == 0 {
					for x := wpe; x < 4*wpe; x++ {
						e[x] = ^uint64(0)
					}
				} else {
					copy(e[edgeS*wpe:(edgeS+1)*wpe], w.mw.tS.W)
					copy(e[edgeD*wpe:(edgeD+1)*wpe], w.mw.tD.W)
					copy(e[edgeI*wpe:(edgeI+1)*wpe], w.mw.tI.W)
				}
			}
			w.counters.AddWrite(uint64(4*n*wpe), 8)
			w.counters.AddFootprint(uint64(n) * 4 * uint64(m))
		}
		//lint:allow hotalloc appends into the scratch-backed rows slice; amortized to zero across windows
		t.rows = append(t.rows, drow)
		if solved < 0 && rowCur[n].Bit(m-1) == 0 {
			solved = d
			if !cfg.DisableET {
				w.counters.AddRows(uint64(d+1), uint64(k-d))
				w.ts.rows = t.rows
				cg, used, err := w.tracebackMW(t, mk, d)
				return d, cg, used, true, err
			}
		}
		rowPrev, rowCur = rowCur, rowPrev
	}
	w.ts.rows = t.rows
	w.counters.AddRows(uint64(len(t.rows)), 0)
	if solved < 0 {
		return 0, nil, 0, false, nil
	}
	cg, used, err := w.tracebackMW(t, mk, solved)
	return solved, cg, used, true, err
}

func (w *windowAligner) tracebackMW(t *table, mk *masksMW, dStar int) (cigar.Cigar, int, error) {
	cg := make(cigar.Cigar, 0, 2*dStar+2)
	i, j, d := t.n, t.m-1, dStar
	c := w.counters
	for j >= 0 {
		if t.entries {
			if i >= 1 && mk.pm[w.tRevBuf[i-1]].Bit(j) == 0 && t.entryBit(d, i-1, j-1, c) == 0 {
				run := 1
				i, j = i-1, j-1
				for i >= 1 && j >= 0 && mk.pm[w.tRevBuf[i-1]].Bit(j) == 0 && t.entryBit(d, i-1, j-1, c) == 0 {
					run++
					i, j = i-1, j-1
				}
				cg = cg.Append(cigar.Match, run)
				continue
			}
			if d >= 1 {
				if i >= 1 && t.entryBit(d-1, i-1, j-1, c) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if t.entryBit(d-1, i, j-1, c) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if i >= 1 && t.entryBit(d-1, i-1, j, c) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			}
		} else {
			if i >= 1 && t.edgeBit(edgeM, d, i, j, c) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 {
					if t.edgeBit(edgeS, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Mismatch, 1)
						i, j, d = i-1, j-1, d-1
						continue
					}
					if t.edgeBit(edgeD, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Ins, 1)
						j, d = j-1, d-1
						continue
					}
					if t.edgeBit(edgeI, d, i, j, c) == 0 {
						cg = cg.Append(cigar.Del, 1)
						i, d = i-1, d-1
						continue
					}
				} else if j < d {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
			}
		}
		return nil, 0, fmt.Errorf("core: multiword traceback stuck at i=%d j=%d d=%d", i, j, d)
	}
	return cg, t.n - i, nil
}
