package core

import (
	"fmt"

	"genasm/internal/bitvec"
	"genasm/internal/cigar"
	"genasm/internal/dna"
)

// Multi-word window path: the same improved GenASM algorithm for windows
// wider than one machine word (64 < W). The automaton rows become
// bitvec.V values; the structure of the distance calculation, early
// termination and traceback is identical to the single-word fast path in
// dc64.go.
//
// DENT note: the stored entries remain whole vectors at the Go level (the
// language has no sub-word addressing worth modelling here), but banded
// reads are enforced — out-of-band bits answer "inactive" — and the
// footprint accounting charges only the band bits, which is what a packed
// implementation (or the GPU kernels in internal/gpualign) would allocate.

type masksMW struct {
	pm [dna.Alphabet]bitvec.V
	m  int
}

func buildMasksMW(pRev []byte) masksMW {
	m := len(pRev)
	var mk masksMW
	mk.m = m
	for c := 0; c < dna.Alphabet; c++ {
		mk.pm[c] = bitvec.New(m)
		mk.pm[c].Fill(true)
	}
	for j, pc := range pRev {
		if pc != dna.N {
			mk.pm[pc].SetBit(j, 0)
		}
	}
	return mk
}

func (mk *masksMW) initRow(d int) bitvec.V {
	v := bitvec.New(mk.m)
	v.Fill(true)
	for j := 0; j < d && j < mk.m; j++ {
		v.SetBit(j, 0)
	}
	return v
}

type tableMW struct {
	m, n, k    int
	entries    bool
	banded     bool
	bandB      int
	storeBytes uint64
	rows       [][]bitvec.V
}

func (t *tableMW) bandLo(i int) int { return (t.m - 1 - t.n + i) - (t.k + 1) }

func (t *tableMW) entryBit(d, i, j int, w *windowAligner) uint {
	switch {
	case j < 0:
		return 0
	case j >= t.m:
		return 1
	case i == 0:
		if j < d {
			return 0
		}
		return 1
	}
	w.counters.AddRead(1, t.storeBytes)
	if t.banded {
		b := j - t.bandLo(i)
		if b < 0 || b >= t.bandB {
			return 1
		}
	}
	return t.rows[d][i-1].Bit(j)
}

func (t *tableMW) edgeBit(e, d, i, j int, w *windowAligner) uint {
	w.counters.AddRead(1, 8)
	return t.rows[d][4*(i-1)+e].Bit(j)
}

// mwScratch holds the per-aligner temporaries of the multi-word path.
type mwScratch struct {
	rowPrev, rowCur []bitvec.V
	tM, tS, tD, tI  bitvec.V
}

func (s *mwScratch) prepare(m, n int) {
	need := n + 1
	if len(s.rowPrev) < need || (len(s.rowPrev) > 0 && s.rowPrev[0].Width != m) {
		s.rowPrev = make([]bitvec.V, need)
		s.rowCur = make([]bitvec.V, need)
		for i := 0; i < need; i++ {
			s.rowPrev[i] = bitvec.New(m)
			s.rowCur[i] = bitvec.New(m)
		}
		s.tM = bitvec.New(m)
		s.tS = bitvec.New(m)
		s.tD = bitvec.New(m)
		s.tI = bitvec.New(m)
	}
}

// alignWindowMW aligns the reversed window buffers of w at error budget k.
func (w *windowAligner) alignWindowMW(k int) (int, cigar.Cigar, int, bool, error) {
	mk := buildMasksMW(w.pRevBuf)
	m, n := mk.m, len(w.tRevBuf)
	cfg := w.cfg
	t := &tableMW{
		m: m, n: n, k: k,
		entries: !cfg.DisableSENE,
		banded:  !cfg.DisableDENT,
	}
	entryBits := uint64(m)
	wordsPerEntry := uint64(bitvec.Words(m))
	t.storeBytes = 8 * wordsPerEntry
	if t.banded {
		t.bandB = 2*k + 3
		entryBits = uint64(t.bandB)
		t.storeBytes = uint64(t.bandB+7) / 8
	}

	w.mw.prepare(m, n)
	rowPrev, rowCur := w.mw.rowPrev, w.mw.rowCur

	solved := -1
	for d := 0; d <= k; d++ {
		rowCur[0].Copy(mk.initRow(d))
		var drow []bitvec.V
		if t.entries {
			drow = make([]bitvec.V, n)
		} else {
			drow = make([]bitvec.V, 4*n)
		}
		for i := 1; i <= n; i++ {
			pmt := mk.pm[w.tRevBuf[i-1]]
			w.mw.tM.Shl1(rowCur[i-1], 0)
			w.mw.tM.Or(w.mw.tM, pmt)
			if d == 0 {
				rowCur[i].Copy(w.mw.tM)
			} else {
				w.mw.tS.Shl1(rowPrev[i-1], 0)
				w.mw.tD.Shl1(rowPrev[i], 0)
				w.mw.tI.Copy(rowPrev[i-1])
				rowCur[i].And4(w.mw.tM, w.mw.tS, w.mw.tD, w.mw.tI)
			}
			if t.entries {
				drow[i-1] = rowCur[i].Clone()
				if t.banded {
					w.counters.AddWrite(1, t.storeBytes)
				} else {
					w.counters.AddWrite(wordsPerEntry, 8)
				}
				w.counters.AddFootprint(entryBits)
			} else {
				e := drow[4*(i-1):]
				e[edgeM] = w.mw.tM.Clone()
				if d == 0 {
					ones := bitvec.New(m)
					ones.Fill(true)
					e[edgeS], e[edgeD], e[edgeI] = ones, ones.Clone(), ones.Clone()
				} else {
					e[edgeS] = w.mw.tS.Clone()
					e[edgeD] = w.mw.tD.Clone()
					e[edgeI] = w.mw.tI.Clone()
				}
				w.counters.AddWrite(4*wordsPerEntry, 8)
				w.counters.AddFootprint(4 * uint64(m))
			}
		}
		t.rows = append(t.rows, drow)
		if solved < 0 && rowCur[n].Bit(m-1) == 0 {
			solved = d
			if !cfg.DisableET {
				w.counters.AddRows(uint64(d+1), uint64(k-d))
				cg, used, err := w.tracebackMW(t, &mk, d)
				return d, cg, used, true, err
			}
		}
		rowPrev, rowCur = rowCur, rowPrev
	}
	w.counters.AddRows(uint64(len(t.rows)), 0)
	if solved < 0 {
		return 0, nil, 0, false, nil
	}
	cg, used, err := w.tracebackMW(t, &mk, solved)
	return solved, cg, used, true, err
}

func (w *windowAligner) tracebackMW(t *tableMW, mk *masksMW, dStar int) (cigar.Cigar, int, error) {
	var cg cigar.Cigar
	i, j, d := t.n, t.m-1, dStar
	for j >= 0 {
		if t.entries {
			if i >= 1 && mk.pm[w.tRevBuf[i-1]].Bit(j) == 0 && t.entryBit(d, i-1, j-1, w) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 && t.entryBit(d-1, i-1, j-1, w) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if t.entryBit(d-1, i, j-1, w) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if i >= 1 && t.entryBit(d-1, i-1, j, w) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			}
		} else {
			if i >= 1 && t.edgeBit(edgeM, d, i, j, w) == 0 {
				cg = cg.Append(cigar.Match, 1)
				i, j = i-1, j-1
				continue
			}
			if d >= 1 {
				if i >= 1 {
					if t.edgeBit(edgeS, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Mismatch, 1)
						i, j, d = i-1, j-1, d-1
						continue
					}
					if t.edgeBit(edgeD, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Ins, 1)
						j, d = j-1, d-1
						continue
					}
					if t.edgeBit(edgeI, d, i, j, w) == 0 {
						cg = cg.Append(cigar.Del, 1)
						i, d = i-1, d-1
						continue
					}
				} else if j < d {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
			}
		}
		return nil, 0, fmt.Errorf("core: multiword traceback stuck at i=%d j=%d d=%d", i, j, d)
	}
	return cg, t.n - i, nil
}
