package core

import (
	"math/rand"
	"testing"
)

// Steady-state allocation regression tests. The kernels keep all DP
// state in per-aligner scratch (scratch64, mwScratch), so after warm-up
// an alignment should allocate only the result cigar — never automaton
// rows, masks, or table entries. These tests pin measured upper bounds;
// a regression here means a scratch-reuse path was broken (for example
// an ensureV call replaced by a fresh bitvec.New, or table rows no
// longer recycled across windows).
//
// The bounds are upper limits with ~50% headroom over measured values
// on go1.24/amd64, not exact pins, so they tolerate minor toolchain
// variation without going stale.

// allocPair builds a (read, reference) pair of length n with the given
// substitution rate.
func allocPair(n int, rate float64, seed int64) (p, t []byte) {
	rng := rand.New(rand.NewSource(seed))
	ref := make([]byte, n)
	for i := range ref {
		ref[i] = byte(rng.Intn(4))
	}
	read := append([]byte(nil), ref...)
	for i := range read {
		if rng.Float64() < rate {
			read[i] = byte(rng.Intn(4))
		}
	}
	return read, ref
}

// measureAllocs warms the aligner's scratch, then reports the average
// allocations of fn across runs.
func measureAllocs(t *testing.T, warm, fn func()) float64 {
	t.Helper()
	for i := 0; i < 3; i++ {
		warm()
	}
	return testing.AllocsPerRun(20, fn)
}

// TestWindowKernelAllocs pins the single-window kernel paths: the fast
// 64-bit path (dc64.go) and the multi-word path (multiword.go). The
// only steady-state allocations are the traceback's result cigar.
func TestWindowKernelAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		w, o, k int
		max     float64
	}{
		// Measured 1.0: the preallocated result cigar. The banded stored
		// table, masks and working rows all live in tableScratch/mwScratch.
		{"dc64", 64, 24, 12, 2},
		// Measured 1.0: same — the fused kernel and packed band extraction
		// reuse the shared tableScratch across windows.
		{"multiword", 128, 48, 12, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, txt := allocPair(tc.w, 0.02, 7)
			a, err := New(Config{W: tc.w, O: tc.o, InitialK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, err := a.AlignWindow(p, txt); err != nil {
					t.Fatal(err)
				}
			}
			if got := measureAllocs(t, run, run); got > tc.max {
				t.Errorf("window kernel %s: %.1f allocs/op, want <= %.0f (scratch reuse regressed)", tc.name, got, tc.max)
			}
		})
	}
}

// TestMultiwordDENTWordsStored asserts that banded multi-word storage is
// physically packed: when the (2k+3)-bit band fits in fewer words than the
// full automaton state, the stored table's stride is the band's word count,
// not Words(m). This is the storage half of DENT for m > 64 — without it
// the multi-word path would only band the reads, not the working set.
func TestMultiwordDENTWordsStored(t *testing.T) {
	for _, tc := range []struct {
		name       string
		w, k       int
		wantStride int
		wantPacked bool
	}{
		// bandB = 2*12+3 = 27 bits -> 1 band word vs wpe = 4.
		{"w200-k12-packed", 200, 12, 1, true},
		// bandB = 2*40+3 = 83 bits -> 2 band words vs wpe = 4.
		{"w200-k40-two-words", 200, 40, 2, true},
		// bandB = 2*30+3 = 63 bits -> 1 band word vs wpe = 2.
		{"w65-k30-packed", 65, 30, 1, true},
		// bandB = 131 bits -> 3 band words == wpe: nothing to pack.
		{"w192-k64-full", 192, 64, 3, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, txt := allocPair(tc.w, 0.02, 11)
			a, err := New(Config{W: tc.w, O: tc.w / 4, InitialK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.AlignWindow(p, txt); err != nil {
				t.Fatal(err)
			}
			tbl := &a.wa.ts.tbl
			if !tbl.banded {
				t.Fatal("banding off for a DENT-enabled config")
			}
			if tbl.packed != tc.wantPacked || tbl.stride != tc.wantStride {
				t.Errorf("packed=%v stride=%d, want packed=%v stride=%d (wpe=%d bandB=%d)",
					tbl.packed, tbl.stride, tc.wantPacked, tc.wantStride, tbl.wpe, tbl.bandB)
			}
			if tc.wantPacked && tbl.stride >= tbl.wpe {
				t.Errorf("packed table does not shrink storage: stride %d >= wpe %d", tbl.stride, tbl.wpe)
			}
		})
	}
}

// TestPipelineAllocs pins the full windowed pipeline (AlignWindowed over
// a 1 kb read). Per-window cigar commits (Append/Slice/Concat) dominate;
// the kernels themselves contribute almost nothing.
func TestPipelineAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		w, o, k int
		max     float64
	}{
		// Measured 89.0 across ~25 windows (was 159 before the table moved
		// into tableScratch and the tracebacks preallocated their cigars).
		{"dc64", 64, 24, 12, 140},
		// Measured 54.0 across ~12 windows (was 1091 before mwScratch
		// capacity reuse tolerated the final partial window's smaller m).
		{"multiword", 128, 48, 12, 90},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, txt := allocPair(1000, 0.02, 42)
			a, err := New(Config{W: tc.w, O: tc.o, InitialK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, err := a.AlignEncoded(p, txt); err != nil {
					t.Fatal(err)
				}
			}
			if got := measureAllocs(t, run, run); got > tc.max {
				t.Errorf("pipeline %s: %.1f allocs/op, want <= %.0f (scratch reuse regressed)", tc.name, got, tc.max)
			}
		})
	}
}
