package core

import (
	"math/rand"
	"testing"
)

// Steady-state allocation regression tests. The kernels keep all DP
// state in per-aligner scratch (scratch64, mwScratch), so after warm-up
// an alignment should allocate only the result cigar — never automaton
// rows, masks, or table entries. These tests pin measured upper bounds;
// a regression here means a scratch-reuse path was broken (for example
// an ensureV call replaced by a fresh bitvec.New, or table rows no
// longer recycled across windows).
//
// The bounds are upper limits with ~50% headroom over measured values
// on go1.24/amd64, not exact pins, so they tolerate minor toolchain
// variation without going stale.

// allocPair builds a (read, reference) pair of length n with the given
// substitution rate.
func allocPair(n int, rate float64, seed int64) (p, t []byte) {
	rng := rand.New(rand.NewSource(seed))
	ref := make([]byte, n)
	for i := range ref {
		ref[i] = byte(rng.Intn(4))
	}
	read := append([]byte(nil), ref...)
	for i := range read {
		if rng.Float64() < rate {
			read[i] = byte(rng.Intn(4))
		}
	}
	return read, ref
}

// measureAllocs warms the aligner's scratch, then reports the average
// allocations of fn across runs.
func measureAllocs(t *testing.T, warm, fn func()) float64 {
	t.Helper()
	for i := 0; i < 3; i++ {
		warm()
	}
	return testing.AllocsPerRun(20, fn)
}

// TestWindowKernelAllocs pins the single-window kernel paths: the fast
// 64-bit path (dc64.go) and the multi-word path (multiword.go). The
// only steady-state allocations are the traceback's result cigar.
func TestWindowKernelAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		w, o, k int
		max     float64
	}{
		// Measured 2.0: cigar run-length growth during traceback.
		{"dc64", 64, 24, 12, 4},
		// Measured 4.0: cigar growth; all bitvec state comes from mwScratch.
		{"multiword", 128, 48, 12, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, txt := allocPair(tc.w, 0.02, 7)
			a, err := New(Config{W: tc.w, O: tc.o, InitialK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, err := a.AlignWindow(p, txt); err != nil {
					t.Fatal(err)
				}
			}
			if got := measureAllocs(t, run, run); got > tc.max {
				t.Errorf("window kernel %s: %.1f allocs/op, want <= %.0f (scratch reuse regressed)", tc.name, got, tc.max)
			}
		})
	}
}

// TestPipelineAllocs pins the full windowed pipeline (AlignWindowed over
// a 1 kb read). Per-window cigar commits (Append/Slice/Concat) dominate;
// the kernels themselves contribute almost nothing.
func TestPipelineAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		w, o, k int
		max     float64
	}{
		// Measured 159.0 across ~25 windows.
		{"dc64", 64, 24, 12, 240},
		// Measured 89.0 across ~12 windows (was 1091 before mwScratch
		// capacity reuse tolerated the final partial window's smaller m).
		{"multiword", 128, 48, 12, 140},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, txt := allocPair(1000, 0.02, 42)
			a, err := New(Config{W: tc.w, O: tc.o, InitialK: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, err := a.AlignEncoded(p, txt); err != nil {
					t.Fatal(err)
				}
			}
			if got := measureAllocs(t, run, run); got > tc.max {
				t.Errorf("pipeline %s: %.1f allocs/op, want <= %.0f (scratch reuse regressed)", tc.name, got, tc.max)
			}
		})
	}
}
