package core

import (
	"math/rand"
	"testing"

	"genasm/internal/dna"
	"genasm/internal/stats"
	"genasm/internal/swg"
)

func randCodes(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// mutateCodes applies ~rate errors per base (1/3 sub, 1/3 del, 1/3 ins).
func mutateCodes(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, byte(rng.Intn(4)))
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, byte(rng.Intn(4)))
		default:
			out = append(out, b)
		}
	}
	return out
}

func mustAligner(t *testing.T, cfg Config) *Aligner {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func decode(codes []byte) []byte { return dna.DecodeSeq(codes) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{W: 0, O: 0, InitialK: 1},
		{W: 64, O: 64, InitialK: 1},
		{W: 64, O: -1, InitialK: 1},
		{W: 64, O: 24, InitialK: 0},
		{W: 64, O: 24, InitialK: 65},
		{W: 64, O: 24, InitialK: 12, DisableSENE: true}, // DENT without SENE
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d unexpectedly valid: %+v", i, cfg)
		}
	}
}

func TestWindowExactSingleWord(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mustAligner(t, DefaultConfig())
	for iter := 0; iter < 400; iter++ {
		m := 1 + rng.Intn(64)
		n := rng.Intn(81)
		p := randCodes(rng, m)
		var tx []byte
		if iter%2 == 0 {
			tx = randCodes(rng, n)
		} else {
			tx = mutateCodes(rng, p, 0.2)
			if len(tx) > 80 {
				tx = tx[:80]
			}
		}
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		wantD, _, _ := swg.PrefixAlign(decode(p), decode(tx))
		if wr.Distance != wantD {
			t.Fatalf("iter %d (m=%d n=%d): distance %d want %d", iter, m, len(tx), wr.Distance, wantD)
		}
		if err := wr.Cigar.Check(decode(p), decode(tx[:wr.TextUsed])); err != nil {
			t.Fatalf("iter %d: cigar: %v", iter, err)
		}
		if wr.Cigar.EditCost() != wr.Distance {
			t.Fatalf("iter %d: cost %d != distance %d", iter, wr.Cigar.EditCost(), wr.Distance)
		}
		if wr.Cigar.RefLen() != wr.TextUsed {
			t.Fatalf("iter %d: reflen %d != used %d", iter, wr.Cigar.RefLen(), wr.TextUsed)
		}
	}
}

func TestWindowEmptyPattern(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	wr, err := a.AlignWindow(nil, randCodes(rand.New(rand.NewSource(2)), 10))
	if err != nil || wr.Distance != 0 || len(wr.Cigar) != 0 || wr.TextUsed != 0 {
		t.Fatalf("empty pattern: %+v err=%v", wr, err)
	}
}

func TestWindowEmptyText(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	p := randCodes(rand.New(rand.NewSource(3)), 20)
	wr, err := a.AlignWindow(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Distance != 20 || wr.TextUsed != 0 {
		t.Fatalf("empty text: %+v", wr)
	}
	if wr.Cigar.String() != "20I" {
		t.Fatalf("cigar %s", wr.Cigar)
	}
}

func TestWindowRetryDoubling(t *testing.T) {
	// Pattern totally dissimilar from text forces the error budget past
	// InitialK; doubling must still find the exact distance.
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig()
	cfg.InitialK = 1
	a := mustAligner(t, cfg)
	for iter := 0; iter < 60; iter++ {
		p := randCodes(rng, 1+rng.Intn(64))
		tx := randCodes(rng, rng.Intn(70))
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		wantD, _, _ := swg.PrefixAlign(decode(p), decode(tx))
		if wr.Distance != wantD {
			t.Fatalf("iter %d: distance %d want %d", iter, wr.Distance, wantD)
		}
	}
}

// ablations enumerates every valid improvement combination.
func ablations(base Config) []Config {
	var out []Config
	for _, et := range []bool{false, true} {
		for _, mode := range []struct{ sene, dent bool }{
			{false, false}, {true, false}, {true, true},
		} {
			c := base
			c.DisableET = et
			c.DisableSENE = !mode.sene
			c.DisableDENT = !mode.dent
			out = append(out, c)
		}
	}
	return out
}

func TestAblationsProduceIdenticalOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := DefaultConfig()
	cfgs := ablations(base)
	aligners := make([]*Aligner, len(cfgs))
	for i, c := range cfgs {
		aligners[i] = mustAligner(t, c)
	}
	for iter := 0; iter < 150; iter++ {
		m := 1 + rng.Intn(64)
		p := randCodes(rng, m)
		tx := mutateCodes(rng, p, 0.25)
		if len(tx) > 80 {
			tx = tx[:80]
		}
		ref, err := aligners[0].AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(aligners); i++ {
			got, err := aligners[i].AlignWindow(p, tx)
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfgs[i], err)
			}
			if got.Distance != ref.Distance || got.TextUsed != ref.TextUsed ||
				got.Cigar.String() != ref.Cigar.String() {
				t.Fatalf("iter %d: cfg %+v diverges: %d/%d %q/%q",
					iter, cfgs[i], got.Distance, ref.Distance, got.Cigar, ref.Cigar)
			}
		}
	}
}

func TestMultiwordWindowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Config{W: 128, O: 32, InitialK: 16}
	a := mustAligner(t, cfg)
	for iter := 0; iter < 60; iter++ {
		m := 65 + rng.Intn(100)
		p := randCodes(rng, m)
		tx := mutateCodes(rng, p, 0.15)
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		wantD, _, _ := swg.PrefixAlign(decode(p), decode(tx))
		if wr.Distance != wantD {
			t.Fatalf("iter %d (m=%d): distance %d want %d", iter, m, wr.Distance, wantD)
		}
		if err := wr.Cigar.Check(decode(p), decode(tx[:wr.TextUsed])); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestMultiwordAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := Config{W: 100, O: 30, InitialK: 10}
	cfgs := ablations(base)
	for iter := 0; iter < 40; iter++ {
		p := randCodes(rng, 65+rng.Intn(60))
		tx := mutateCodes(rng, p, 0.2)
		var refD int
		var refCg string
		for i, c := range cfgs {
			a := mustAligner(t, c)
			got, err := a.AlignWindow(p, tx)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				refD, refCg = got.Distance, got.Cigar.String()
				continue
			}
			if got.Distance != refD || got.Cigar.String() != refCg {
				t.Fatalf("iter %d cfg %+v diverges", iter, c)
			}
		}
	}
}

// TestAblationMatrixAcrossGeometries runs every valid SENE/DENT/ET combo
// over window geometries that exercise both kernels and every storage
// layout: the single-word boundary (W=64), the first multi-word width
// (W=65), packed one-word and two-word bands (W=200 at k=12 and k=40),
// a band that exactly fills the single word (k=30), and a budget past
// the single-word band limit (k=31, banding auto-off). Every mode pair
// must agree on distance, consumed text and the byte-identical CIGAR,
// and the reference output must match the quadratic gold standard.
func TestAblationMatrixAcrossGeometries(t *testing.T) {
	geoms := []struct {
		name    string
		w, o, k int
	}{
		{"w64-boundary", 64, 24, 12},
		{"w64-band-full-word", 64, 24, 30},  // bandB = 63 <= 64: banded
		{"w64-band-over-limit", 64, 24, 31}, // bandB = 65 > 64: banding off
		{"w65-first-multiword", 65, 24, 12},
		{"w200-packed-one-word", 200, 50, 12}, // band fits 1 of 4 words
		{"w200-two-band-words", 200, 50, 40},  // band needs 2 of 4 words
	}
	for _, g := range geoms {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + g.w + g.k)))
			cfgs := ablations(Config{W: g.w, O: g.o, InitialK: g.k})
			aligners := make([]*Aligner, len(cfgs))
			for i, c := range cfgs {
				aligners[i] = mustAligner(t, c)
			}
			for iter := 0; iter < 30; iter++ {
				m := 1 + rng.Intn(g.w)
				if iter%3 == 0 {
					m = g.w // always include the full-width case
				}
				p := randCodes(rng, m)
				tx := mutateCodes(rng, p, 0.2)
				if len(tx) > g.w+g.w/4 {
					tx = tx[:g.w+g.w/4]
				}
				ref, err := aligners[0].AlignWindow(p, tx)
				if err != nil {
					t.Fatal(err)
				}
				if wantD, _, _ := swg.PrefixAlign(decode(p), decode(tx)); ref.Distance != wantD {
					t.Fatalf("iter %d: distance %d, gold standard %d", iter, ref.Distance, wantD)
				}
				if ref.Cigar.EditCost() != ref.Distance {
					t.Fatalf("iter %d: cigar cost %d != distance %d", iter, ref.Cigar.EditCost(), ref.Distance)
				}
				if err := ref.Cigar.Check(decode(p), decode(tx[:ref.TextUsed])); err != nil {
					t.Fatalf("iter %d: invalid cigar: %v", iter, err)
				}
				for i := 1; i < len(aligners); i++ {
					got, err := aligners[i].AlignWindow(p, tx)
					if err != nil {
						t.Fatalf("cfg %+v: %v", cfgs[i], err)
					}
					if got.Distance != ref.Distance || got.TextUsed != ref.TextUsed ||
						got.Cigar.String() != ref.Cigar.String() {
						t.Fatalf("iter %d: cfg %+v diverges from %+v: %d/%d %q/%q",
							iter, cfgs[i], cfgs[0], got.Distance, ref.Distance, got.Cigar, ref.Cigar)
					}
				}
			}
		})
	}
}

func TestPipelinePerfectRead(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := mustAligner(t, DefaultConfig())
	ref := randCodes(rng, 2000)
	read := ref[100:1100]
	res, err := a.AlignEncoded(read, ref[100:])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Fatalf("distance %d want 0", res.Distance)
	}
	if res.RefConsumed != len(read) {
		t.Fatalf("consumed %d want %d", res.RefConsumed, len(read))
	}
	if err := res.Cigar.Check(decode(read), decode(ref[100:100+res.RefConsumed])); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineNoisyReadsValidAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := mustAligner(t, DefaultConfig())
	for iter := 0; iter < 20; iter++ {
		refLen := 800 + rng.Intn(400)
		origin := randCodes(rng, refLen)
		read := mutateCodes(rng, origin, 0.10)
		// Candidate region: origin plus slack, as minimap would give.
		region := append(append([]byte{}, origin...), randCodes(rng, 100)...)
		res, err := a.AlignEncoded(read, region)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Cigar.Check(decode(read), decode(region[:res.RefConsumed])); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if res.Cigar.EditCost() != res.Distance {
			t.Fatalf("iter %d: cost mismatch", iter)
		}
		opt, _, _ := swg.PrefixAlign(decode(read), decode(region))
		if res.Distance < opt {
			t.Fatalf("iter %d: windowed distance %d below optimum %d", iter, res.Distance, opt)
		}
		// The windowing heuristic should stay close to optimal at 10%
		// error with the paper's W/O.
		if res.Distance > opt+opt/4+8 {
			t.Fatalf("iter %d: windowed distance %d far above optimum %d", iter, res.Distance, opt)
		}
	}
}

func TestPipelineWindowGeometryErrors(t *testing.T) {
	if _, err := AlignWindowed(nil, nil, 0, 0, nil); err == nil {
		t.Error("accepted W=0")
	}
	if _, err := AlignWindowed(nil, nil, 10, 10, nil); err == nil {
		t.Error("accepted O=W")
	}
}

func TestCountersImprovedVsUnimproved(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randCodes(rng, 64)
	tx := mutateCodes(rng, p, 0.1)
	if len(tx) > 70 {
		tx = tx[:70]
	}

	run := func(cfg Config) *stats.Counters {
		a := mustAligner(t, cfg)
		var c stats.Counters
		a.SetCounters(&c)
		if _, err := a.AlignWindow(p, tx); err != nil {
			t.Fatal(err)
		}
		return &c
	}

	improved := run(DefaultConfig())
	unimp := run(Config{W: 64, O: 24, InitialK: 12,
		DisableSENE: true, DisableDENT: true, DisableET: true})

	if improved.PeakFootprintBits >= unimp.PeakFootprintBits {
		t.Fatalf("improved footprint %d !< unimproved %d",
			improved.PeakFootprintBits, unimp.PeakFootprintBits)
	}
	if improved.Accesses() >= unimp.Accesses() {
		t.Fatalf("improved accesses %d !< unimproved %d",
			improved.Accesses(), unimp.Accesses())
	}
	if improved.RowsSkipped == 0 {
		t.Fatal("ET skipped no rows on a low-error window")
	}
	if unimp.RowsSkipped != 0 {
		t.Fatal("unimproved config skipped rows")
	}
}

func TestExtract64(t *testing.T) {
	// Construct a multi-word state with known active (0) bits and check
	// band slicing against a bit-by-bit model, across word boundaries and
	// past both ends of the pattern.
	m := 150
	set := map[int]bool{0: true, 5: true, 63: true, 64: true, 100: true, 127: true, 128: true, 149: true}
	words := make([]uint64, (m+63)/64)
	for j := 0; j < m; j++ {
		if !set[j] {
			words[j/64] |= 1 << uint(j%64)
		}
	}
	for _, lo := range []int{-200, -70, -10, -1, 0, 3, 30, 60, 63, 64, 65, 100, 126, 127, 128, 148, 149, 150, 200} {
		w := extract64(words, lo, m)
		for b := 0; b < 64; b++ {
			j := lo + b
			want := uint64(1)
			if j >= 0 && j < m && set[j] {
				want = 0
			}
			if got := w >> uint(b) & 1; got != want {
				t.Fatalf("lo=%d bit %d (j=%d): got %d want %d", lo, b, j, got, want)
			}
		}
	}
}

func TestAlignRawBytes(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	res, err := a.Align([]byte("ACGTACGTACGT"), []byte("ACGTACGTACGTTTT"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 || res.RefConsumed != 12 {
		t.Fatalf("%+v", res)
	}
}

func TestAlignHandlesNBases(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	// N never matches, even against N, so each N costs one edit.
	res, err := a.Align([]byte("ACGNNACGT"), []byte("ACGNNACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 2 {
		t.Fatalf("distance %d want 2", res.Distance)
	}
}
