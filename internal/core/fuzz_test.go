package core_test

// Differential fuzzing of the window kernel. Every input is aligned by all
// six valid SENE/DENT/ET ablations of internal/core, by the independent
// unimproved implementation in internal/baseline (single-word widths), and
// checked against the quadratic gold standard in internal/swg. Any distance
// mismatch, CIGAR divergence between modes, or CIGAR that does not replay
// to the claimed distance fails the target.
//
// This lives in an external test package because internal/baseline imports
// internal/core (for core.WindowResult), so an in-package fuzz test would
// create an import cycle.

import (
	"testing"

	"genasm/internal/baseline"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/swg"
)

// fuzzAblations mirrors the in-package ablations helper: the six valid
// SENE/DENT/ET combinations (DENT requires SENE).
func fuzzAblations(base core.Config) []core.Config {
	var out []core.Config
	for _, et := range []bool{false, true} {
		for _, mode := range []struct{ sene, dent bool }{
			{false, false}, {true, false}, {true, true},
		} {
			c := base
			c.DisableET = et
			c.DisableSENE = !mode.sene
			c.DisableDENT = !mode.dent
			out = append(out, c)
		}
	}
	return out
}

func clampFuzzCodes(raw []byte, maxLen int) []byte {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % 4
	}
	return out
}

func FuzzWindowAlign(f *testing.F) {
	// Seeds cover: exact match, substitutions, indels, the W=64 boundary,
	// multi-word widths, a band-limit budget, and degenerate texts.
	f.Add([]byte("\x00\x01\x02\x03"), []byte("\x00\x01\x02\x03"), uint8(12), uint8(16))
	f.Add([]byte("\x00\x01\x02\x03"), []byte("\x00\x03\x02\x03"), uint8(4), uint8(16))
	f.Add([]byte("\x00\x01\x01\x02\x03"), []byte("\x00\x01\x02\x03"), uint8(2), uint8(8))
	f.Add(make([]byte, 64), make([]byte, 80), uint8(12), uint8(64))
	f.Add(make([]byte, 65), make([]byte, 70), uint8(12), uint8(65))
	f.Add(make([]byte, 100), make([]byte, 120), uint8(40), uint8(200))
	f.Add([]byte("\x01\x01\x01"), []byte{}, uint8(3), uint8(4))
	f.Add([]byte("\x02"), []byte("\x03\x03\x03\x03"), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, pRaw, tRaw []byte, kRaw, wRaw uint8) {
		w := 1 + int(wRaw)%200 // window width 1..200: both kernels
		k := 1 + int(kRaw)%w   // budget 1..w: banded, band-limit and unbanded
		p := clampFuzzCodes(pRaw, w)
		tx := clampFuzzCodes(tRaw, w+w/4+8)
		if len(p) == 0 {
			return
		}
		wantD, _, _ := swg.PrefixAlign(dna.DecodeSeq(p), dna.DecodeSeq(tx))

		var refCg string
		var refUsed int
		cfgs := fuzzAblations(core.Config{W: w, O: 0, InitialK: k})
		for i, cfg := range cfgs {
			a, err := core.New(cfg)
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
			wr, err := a.AlignWindow(p, tx)
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
			if wr.Distance != wantD {
				t.Fatalf("cfg %+v: distance %d, gold standard %d (m=%d n=%d)",
					cfg, wr.Distance, wantD, len(p), len(tx))
			}
			if got := wr.Cigar.EditCost(); got != wr.Distance {
				t.Fatalf("cfg %+v: cigar cost %d != distance %d", cfg, got, wr.Distance)
			}
			if err := wr.Cigar.Check(dna.DecodeSeq(p), dna.DecodeSeq(tx[:wr.TextUsed])); err != nil {
				t.Fatalf("cfg %+v: cigar does not replay: %v", cfg, err)
			}
			if i == 0 {
				refCg, refUsed = wr.Cigar.String(), wr.TextUsed
			} else if wr.Cigar.String() != refCg || wr.TextUsed != refUsed {
				t.Fatalf("cfg %+v diverges from %+v: %q/%q used %d/%d",
					cfg, cfgs[0], wr.Cigar, refCg, wr.TextUsed, refUsed)
			}
		}

		// The unimproved MICRO 2020 formulation is single-word only.
		if w <= 64 {
			ba, err := baseline.New(baseline.Config{W: w, O: 0, InitialK: k})
			if err != nil {
				t.Fatalf("baseline config: %v", err)
			}
			bw, err := ba.AlignWindow(p, tx)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if bw.Distance != wantD {
				t.Fatalf("baseline distance %d, gold standard %d", bw.Distance, wantD)
			}
			if bw.Cigar.String() != refCg || bw.TextUsed != refUsed {
				t.Fatalf("baseline diverges from improved: %q/%q used %d/%d",
					bw.Cigar, refCg, bw.TextUsed, refUsed)
			}
		}
	})
}
