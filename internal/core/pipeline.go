package core

import (
	"errors"

	"genasm/internal/cigar"
	"genasm/internal/dna"
	"genasm/internal/stats"
)

// Result is a full query-vs-candidate alignment.
type Result struct {
	// Distance is the total edit cost of the committed alignment.
	Distance int
	// Cigar is the alignment of the whole query against the consumed
	// reference prefix.
	Cigar cigar.Cigar
	// RefConsumed is the number of reference characters aligned; the
	// remaining reference tail is candidate-region slack.
	RefConsumed int
}

// WindowFunc aligns one pattern window against one text window (both as
// base codes, forward orientation). Implementations: the improved aligner
// in this package and the unimproved one in internal/baseline, so both
// share the exact same windowing pipeline.
type WindowFunc func(p, t []byte) (WindowResult, error)

// lastWindowSlack is the extra reference given to the final window beyond
// the remaining pattern length, so trailing deletions can be absorbed.
const lastWindowSlack = 48

// AlignWindowed runs the GenASM long-read windowing pipeline: windows of W
// pattern bases are aligned left to right, each committing only its first
// W-O bases (the overlap region is re-aligned by the next window, which
// absorbs indel drift at window borders). query and ref are base codes.
func AlignWindowed(query, ref []byte, w, o int, align WindowFunc) (Result, error) {
	if w < 1 || o < 0 || o >= w {
		return Result{}, errors.New("core: invalid window geometry")
	}
	var (
		full cigar.Cigar
		dist int
		qi   int
		ti   int
	)
	for {
		rem := len(query) - qi
		if rem == 0 {
			break
		}
		if rem <= w {
			// Final window: commit everything.
			tEnd := min(len(ref), ti+rem+lastWindowSlack)
			wr, err := align(query[qi:], ref[ti:tEnd])
			if err != nil {
				return Result{}, err
			}
			full = full.Concat(wr.Cigar)
			dist += wr.Distance
			ti += wr.TextUsed
			break
		}
		tEnd := min(len(ref), ti+w)
		wr, err := align(query[qi:qi+w], ref[ti:tEnd])
		if err != nil {
			return Result{}, err
		}
		committed, refUsed, err := wr.Cigar.Slice(w - o)
		if err != nil {
			return Result{}, err
		}
		full = full.Concat(committed)
		dist += committed.EditCost()
		qi += w - o
		ti += refUsed
	}
	return Result{Distance: dist, Cigar: full, RefConsumed: ti}, nil
}

// Aligner is the improved GenASM aligner. It is cheap to create and holds
// reusable scratch buffers, so it is NOT safe for concurrent use: create
// one Aligner per goroutine.
type Aligner struct {
	cfg Config
	wa  windowAligner
}

// New returns an Aligner for cfg.
func New(cfg Config) (*Aligner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Aligner{cfg: cfg}
	a.wa.cfg = cfg
	return a, nil
}

// Config returns the aligner's configuration.
func (a *Aligner) Config() Config { return a.cfg }

// SetCounters attaches memory-behaviour instrumentation; pass nil to
// disable (the default).
func (a *Aligner) SetCounters(c *stats.Counters) { a.wa.counters = c }

// Align aligns query against the candidate reference region ref (both raw
// ASCII base sequences) and returns the committed alignment.
func (a *Aligner) Align(query, ref []byte) (Result, error) {
	return a.AlignEncoded(dna.EncodeSeq(query), dna.EncodeSeq(ref))
}

// AlignEncoded is Align for pre-encoded base codes, avoiding the per-call
// encoding cost in batch pipelines.
func (a *Aligner) AlignEncoded(query, ref []byte) (Result, error) {
	return AlignWindowed(query, ref, a.cfg.W, a.cfg.O, a.wa.alignWindow)
}

// AlignWindow exposes single-window alignment (base codes, forward
// orientation); used by tests, the GPU kernels and the ablation benches.
func (a *Aligner) AlignWindow(p, t []byte) (WindowResult, error) {
	return a.wa.alignWindow(p, t)
}
