// Package core implements the paper's primary contribution: the improved
// GenASM approximate-string-matching aligner.
//
// GenASM (Senol Cali et al., MICRO 2020) aligns a pattern window against a
// text window with a Bitap-style automaton: R[d] is an m-bit vector whose
// bit j is 0 (active) iff the pattern prefix P[0..j] matches some text
// substring ending at the current text position with at most d edits.
// Traceback over the stored per-position automaton states recovers the
// alignment. Long reads are aligned by sliding overlapping windows.
//
// This package adds the paper's three improvements, each independently
// toggleable for ablation studies:
//
//   - SENE ("store entries, not edges"): only the ANDed entry bitvector
//     R[d][i] is stored; the traceback recomputes the four edge vectors
//     (match/substitution/deletion/insertion) from neighbouring entries.
//     4x fewer words stored per DP entry.
//   - DENT ("discard entries not used by traceback"): only a (2k+3)-bit
//     diagonal band of each entry can ever be visited by a traceback, so
//     only that band is kept.
//   - ET ("early termination"): the distance loop is row-major over error
//     levels; the first row whose final automaton state is active is the
//     window distance, and all higher rows are skipped.
package core

import "fmt"

// Config controls the improved GenASM aligner.
type Config struct {
	// W is the pattern window size in bases (1..64 for the fast path;
	// larger windows use the multi-word path).
	W int
	// O is the window overlap in bases (0 <= O < W). Each window commits
	// only its first W-O pattern bases, as in GenASM.
	O int
	// InitialK is the per-window error budget. When a window's edit
	// distance exceeds the current budget, the budget is doubled (up to
	// the window length, where a solution always exists) and the window
	// is recomputed, as in Edlib's band doubling.
	InitialK int
	// The three improvements. DisableX names keep the zero value the
	// paper's full configuration.
	DisableSENE bool
	DisableDENT bool
	DisableET   bool
}

// DefaultConfig returns the paper's configuration: W=64, O=24, all three
// improvements on. InitialK=12 covers ~10% error windows without retries
// while keeping the stored band narrow.
func DefaultConfig() Config {
	return Config{W: 64, O: 24, InitialK: 12}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.W < 1 {
		return fmt.Errorf("core: window size %d < 1", c.W)
	}
	if c.O < 0 || c.O >= c.W {
		return fmt.Errorf("core: overlap %d outside [0,%d)", c.O, c.W)
	}
	if c.InitialK < 1 || c.InitialK > c.W {
		return fmt.Errorf("core: initial error budget %d outside [1,%d]", c.InitialK, c.W)
	}
	if c.DisableSENE && !c.DisableDENT {
		return fmt.Errorf("core: DENT banded storage requires SENE entry storage")
	}
	return nil
}
