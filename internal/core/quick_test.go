package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genasm/internal/swg"
)

// Property-based tests (testing/quick) over the core invariants.

// TestQuickWindowDistanceMatchesGoldStandard: for arbitrary byte-derived
// windows, the improved GenASM window distance equals the quadratic DP's
// prefix-alignment distance.
func TestQuickWindowDistanceMatchesGoldStandard(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	f := func(pRaw, tRaw []byte) bool {
		p := clampCodes(pRaw, 64)
		tx := clampCodes(tRaw, 80)
		if len(p) == 0 {
			return true
		}
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			return false
		}
		want, _, _ := swg.PrefixAlign(decode(p), decode(tx))
		return wr.Distance == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTracebackCostEqualsDistance: the emitted alignment's cost is
// always exactly the reported distance, and the CIGAR is well-formed.
func TestQuickTracebackCostEqualsDistance(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	f := func(pRaw, tRaw []byte) bool {
		p := clampCodes(pRaw, 64)
		tx := clampCodes(tRaw, 80)
		if len(p) == 0 {
			return true
		}
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			return false
		}
		if wr.Cigar.EditCost() != wr.Distance {
			return false
		}
		return wr.Cigar.Check(decode(p), decode(tx[:wr.TextUsed])) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtract64Model: extract64 agrees with a bit-by-bit model for
// arbitrary multi-word states, offsets and pattern lengths.
func TestQuickExtract64Model(t *testing.T) {
	f := func(r0, r1, r2 uint64, loRaw int16, mRaw uint8) bool {
		m := 1 + int(mRaw)%192
		lo := int(loRaw) % 256
		words := make([]uint64, (m+63)/64)
		for wi, r := range []uint64{r0, r1, r2} {
			if wi < len(words) {
				words[wi] = r
			}
		}
		if rem := uint(m % 64); rem != 0 {
			words[len(words)-1] &= (uint64(1) << rem) - 1 // normalized form
		}
		w := extract64(words, lo, m)
		for b := 0; b < 64; b++ {
			j := lo + b
			want := uint64(1)
			if j >= 0 && j < m {
				want = words[j/64] >> uint(j%64) & 1
			}
			if w>>uint(b)&1 != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPipelineCigarAlwaysValid: the full windowed pipeline emits a
// valid alignment whose cost equals the committed distance, for arbitrary
// query/ref pairs (including degenerate ones).
func TestQuickPipelineCigarAlwaysValid(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	f := func(qRaw, rRaw []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := clampCodes(qRaw, 300)
		r := clampCodes(rRaw, 300)
		if rng.Intn(2) == 0 && len(q) > 0 {
			// Half the time, make ref a mutated copy so realistic
			// inputs are covered too.
			r = mutateCodes(rng, q, 0.15)
		}
		res, err := a.AlignEncoded(q, r)
		if err != nil {
			return false
		}
		if res.Cigar.EditCost() != res.Distance {
			return false
		}
		return res.Cigar.Check(decode(q), decode(r[:res.RefConsumed])) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistanceSymmetryBound: GenASM window distance is bounded below
// by the length difference when the text is shorter, and above by the
// pattern length.
func TestQuickDistanceBounds(t *testing.T) {
	a := mustAligner(t, DefaultConfig())
	f := func(pRaw, tRaw []byte) bool {
		p := clampCodes(pRaw, 64)
		tx := clampCodes(tRaw, 80)
		if len(p) == 0 {
			return true
		}
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			return false
		}
		if wr.Distance > len(p) {
			return false // can never cost more than deleting the pattern
		}
		if len(tx) < len(p) && wr.Distance < len(p)-len(tx) {
			return false
		}
		return wr.TextUsed <= len(tx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// clampCodes maps arbitrary bytes into base codes (0..3) and bounds the
// length, so quick's generators explore the real input space.
func clampCodes(raw []byte, maxLen int) []byte {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % 4
	}
	return out
}
