package core

import (
	"fmt"

	"genasm/internal/cigar"
	"genasm/internal/stats"
)

// WindowResult is the outcome of aligning one pattern window against one
// text window.
type WindowResult struct {
	// Distance is the minimal edit distance of the whole pattern window
	// against any prefix of the text window.
	Distance int
	// Cigar is an optimal alignment realizing Distance, in forward
	// window coordinates.
	Cigar cigar.Cigar
	// TextUsed is the number of text characters the alignment consumed
	// (the length of the aligned text prefix).
	TextUsed int
}

// windowAligner aligns single windows with retry-on-budget-exceeded. It owns
// reusable scratch — the stored-table buffers in ts are shared by the
// single-word and multi-word kernels — and is not safe for concurrent use.
type windowAligner struct {
	cfg      Config
	ts       tableScratch
	mw       mwScratch
	pRevBuf  []byte
	tRevBuf  []byte
	counters *stats.Counters
}

// alignWindow aligns pattern p (base codes, forward orientation) against
// text t (base codes, forward) under the window semantics above. Both
// strings are reversed internally, following GenASM, so the traceback emits
// operations in forward order and the free text slack lands at the tail.
func (w *windowAligner) alignWindow(p, t []byte) (WindowResult, error) {
	m, n := len(p), len(t)
	if m == 0 {
		return WindowResult{}, nil
	}
	w.pRevBuf = reverseInto(w.pRevBuf[:0], p)
	w.tRevBuf = reverseInto(w.tRevBuf[:0], t)

	// The pattern masks depend only on the window, not the error budget,
	// so they are built once and survive budget-doubling retries.
	single := m <= 64
	var mk64 masks64
	if single {
		mk64 = buildMasks64(w.pRevBuf)
	} else {
		w.mw.mk.buildInto(w.pRevBuf)
	}

	k := w.cfg.InitialK
	if k > m {
		k = m
	}
	for {
		var (
			d    int
			cg   cigar.Cigar
			used int
			ok   bool
			err  error
		)
		if single {
			var tbl *table
			tbl, d, ok = dc64(&mk64, w.tRevBuf, k, w.cfg, &w.ts, w.counters)
			if ok {
				cg, used, err = traceback64(tbl, &mk64, w.tRevBuf, d, w.counters)
			}
		} else {
			d, cg, used, ok, err = w.alignWindowMW(k)
		}
		w.counters.EndWindow()
		if err != nil {
			return WindowResult{}, err
		}
		if ok {
			if got := cg.EditCost(); got != d {
				return WindowResult{}, fmt.Errorf("core: traceback cost %d != distance %d", got, d)
			}
			return WindowResult{Distance: d, Cigar: cg, TextUsed: used}, nil
		}
		if k >= m {
			// Unreachable: at k = m the all-deletion solution always
			// exists (every bit of R[m] starts active).
			return WindowResult{}, fmt.Errorf("core: window unsolved at k=m=%d (n=%d)", m, n)
		}
		k *= 2
		if k > m {
			k = m
		}
	}
}

// reverseInto fills dst with src reversed, reusing dst's backing array
// when its capacity suffices, so the steady state is allocation-free.
func reverseInto(dst, src []byte) []byte {
	if cap(dst) < len(src) {
		dst = make([]byte, len(src))
	}
	dst = dst[:len(src)]
	for i, b := range src {
		dst[len(src)-1-i] = b
	}
	return dst
}
