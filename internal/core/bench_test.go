package core

// Kernel-level benchmark harness, below the Engine and pipeline layers.
// These benches time exactly what the paper's E3 speed claims are about —
// the window distance calculation plus traceback — and report the custom
// metrics the kernel work is judged by:
//
//	ns/window       wall-clock per window alignment
//	words/window    DP-table words touched (stores during DC + loads
//	                during traceback), from stats.Counters
//	B/op, allocs/op steady-state allocation behaviour
//
// Run with:
//
//	go test -bench 'BenchmarkWindowKernel|BenchmarkPipelineKernel' ./internal/core
//
// The root-level TestBenchJSON harness replays these under GOMAXPROCS
// 1/2/4 and records the results as the schema-4 "kernel" section.

import (
	"math/rand"
	"testing"

	"genasm/internal/stats"
)

// benchPair builds one (pattern, text) window pair of width m with ~10%
// substitutions, deterministic per seed.
func benchPair(m int, seed int64) (p, tx []byte) {
	rng := rand.New(rand.NewSource(seed))
	p = make([]byte, m)
	for i := range p {
		p[i] = byte(rng.Intn(4))
	}
	tx = make([]byte, m)
	copy(tx, p)
	for i := 0; i < m/10; i++ {
		tx[rng.Intn(m)] = byte(rng.Intn(4))
	}
	return p, tx
}

// kernelGeometries are the window shapes the kernel benches sweep: the
// single-word fast path, the first multi-word width, and a wide window
// where banded storage is physically packed (1 band word vs 4 state words).
var kernelGeometries = []struct {
	Name    string
	W, O, K int
}{
	{"dc64-w64", 64, 24, 12},
	{"mw-w128", 128, 48, 12},
	{"mw-packed-w200", 200, 50, 12},
}

// BenchmarkWindowKernel times one window alignment (distance + traceback)
// per geometry and reports DP words touched per window.
func BenchmarkWindowKernel(b *testing.B) {
	for _, g := range kernelGeometries {
		b.Run(g.Name, func(b *testing.B) {
			p, tx := benchPair(g.W, 3)
			a, err := New(Config{W: g.W, O: g.O, InitialK: g.K})
			if err != nil {
				b.Fatal(err)
			}
			var ctr stats.Counters
			a.SetCounters(&ctr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AlignWindow(p, tx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportKernelMetrics(b, &ctr)
		})
	}
}

// BenchmarkPipelineKernel times the windowed pipeline (AlignEncoded) over
// a 5 kb read at 10% error, normalized per window so the numbers are
// comparable with BenchmarkWindowKernel.
func BenchmarkPipelineKernel(b *testing.B) {
	for _, g := range kernelGeometries {
		b.Run(g.Name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			ref := make([]byte, 5500)
			for i := range ref {
				ref[i] = byte(rng.Intn(4))
			}
			read := append([]byte(nil), ref[:5000]...)
			for i := range read {
				if rng.Float64() < 0.10 {
					read[i] = byte(rng.Intn(4))
				}
			}
			a, err := New(Config{W: g.W, O: g.O, InitialK: g.K})
			if err != nil {
				b.Fatal(err)
			}
			var ctr stats.Counters
			a.SetCounters(&ctr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AlignEncoded(read, ref); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportKernelMetrics(b, &ctr)
		})
	}
}

// reportKernelMetrics converts the accumulated counters into per-window
// benchmark metrics. ns/window divides wall time by windows aligned, so
// pipeline runs (many windows per op) and window runs (one) agree.
func reportKernelMetrics(b *testing.B, ctr *stats.Counters) {
	if ctr.Windows == 0 {
		return
	}
	wins := float64(ctr.Windows)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/wins, "ns/window")
	b.ReportMetric(float64(ctr.TableWrites+ctr.TableReads)/wins, "words/window")
	b.ReportMetric(float64(ctr.RowsSkipped)/wins, "rows-skipped/window")
}
