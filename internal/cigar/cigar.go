// Package cigar represents genomic sequence alignments as CIGAR strings:
// run-length-encoded sequences of edit operations. All aligners in this
// repository (GenASM, Edlib, KSW2, SWG) emit cigar.Cigar values, which makes
// their outputs directly comparable in tests and benchmarks.
package cigar

import (
	"errors"
	"fmt"
	"strconv"
)

// OpKind is a single alignment operation kind.
type OpKind byte

const (
	// Match consumes one query and one reference character that are equal
	// ('=' in extended CIGAR notation).
	Match OpKind = '='
	// Mismatch consumes one query and one reference character that
	// differ ('X').
	Mismatch OpKind = 'X'
	// Ins consumes one query character only ('I'): an insertion into the
	// reference / extra query character.
	Ins OpKind = 'I'
	// Del consumes one reference character only ('D'): a deletion from
	// the query.
	Del OpKind = 'D'
)

// Valid reports whether k is one of the four supported operation kinds.
func (k OpKind) Valid() bool {
	switch k {
	case Match, Mismatch, Ins, Del:
		return true
	}
	return false
}

// Op is one run-length encoded operation.
type Op struct {
	Kind OpKind
	Len  int
}

// Cigar is a run-length encoded alignment.
type Cigar []Op

// Append adds n operations of kind k, merging with the trailing run when the
// kinds are equal. Appending zero or negative lengths is a no-op.
func (c Cigar) Append(k OpKind, n int) Cigar {
	if n <= 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Kind == k {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, Op{Kind: k, Len: n})
}

// Concat appends all operations of other to c, merging at the junction.
func (c Cigar) Concat(other Cigar) Cigar {
	for _, op := range other {
		c = c.Append(op.Kind, op.Len)
	}
	return c
}

// String renders the standard CIGAR notation, e.g. "10=1X3I7=".
func (c Cigar) String() string {
	buf := make([]byte, 0, 8*len(c))
	for _, op := range c {
		buf = strconv.AppendInt(buf, int64(op.Len), 10)
		buf = append(buf, byte(op.Kind))
	}
	return string(buf)
}

// Parse parses the notation produced by String. It accepts only the four
// extended operation kinds used in this repository.
func Parse(s string) (Cigar, error) {
	var c Cigar
	n := 0
	seenDigit := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			seenDigit = true
			continue
		}
		k := OpKind(ch)
		if !k.Valid() {
			return nil, fmt.Errorf("cigar: invalid op %q at offset %d", ch, i)
		}
		if !seenDigit || n == 0 {
			return nil, fmt.Errorf("cigar: missing or zero length before op %q at offset %d", ch, i)
		}
		c = c.Append(k, n)
		n, seenDigit = 0, false
	}
	if seenDigit {
		return nil, errors.New("cigar: trailing digits without op")
	}
	return c, nil
}

// QueryLen returns the number of query characters consumed.
func (c Cigar) QueryLen() int {
	n := 0
	for _, op := range c {
		switch op.Kind {
		case Match, Mismatch, Ins:
			n += op.Len
		}
	}
	return n
}

// RefLen returns the number of reference characters consumed.
func (c Cigar) RefLen() int {
	n := 0
	for _, op := range c {
		switch op.Kind {
		case Match, Mismatch, Del:
			n += op.Len
		}
	}
	return n
}

// EditCost returns the unit-cost (Levenshtein) cost of the alignment:
// mismatches, insertions and deletions cost 1, matches cost 0.
func (c Cigar) EditCost() int {
	n := 0
	for _, op := range c {
		if op.Kind != Match {
			n += op.Len
		}
	}
	return n
}

// AffinePenalties is a minimap2-style affine gap scoring scheme: matches
// score +A, mismatches -B, a gap of length L scores -(Q + L*E).
type AffinePenalties struct {
	A, B, Q, E int
}

// DefaultAffine matches minimap2's map-pb defaults (a=2 b=4 q=4 e=2).
var DefaultAffine = AffinePenalties{A: 2, B: 4, Q: 4, E: 2}

// AffineScore returns the alignment score of c under p (higher is better).
func (c Cigar) AffineScore(p AffinePenalties) int {
	s := 0
	for _, op := range c {
		switch op.Kind {
		case Match:
			s += p.A * op.Len
		case Mismatch:
			s -= p.B * op.Len
		case Ins, Del:
			s -= p.Q + p.E*op.Len
		}
	}
	return s
}

// Validate checks that c is well formed and consumes exactly qlen query and
// rlen reference characters. Runs must be positive and adjacent runs must
// have distinct kinds (canonical form).
func (c Cigar) Validate(qlen, rlen int) error {
	for i, op := range c {
		if !op.Kind.Valid() {
			return fmt.Errorf("cigar: op %d has invalid kind %q", i, op.Kind)
		}
		if op.Len <= 0 {
			return fmt.Errorf("cigar: op %d has non-positive length %d", i, op.Len)
		}
		if i > 0 && c[i-1].Kind == op.Kind {
			return fmt.Errorf("cigar: ops %d and %d are adjacent runs of %q", i-1, i, op.Kind)
		}
	}
	if q := c.QueryLen(); q != qlen {
		return fmt.Errorf("cigar: consumes %d query chars, want %d", q, qlen)
	}
	if r := c.RefLen(); r != rlen {
		return fmt.Errorf("cigar: consumes %d reference chars, want %d", r, rlen)
	}
	return nil
}

// Check verifies that c is a correct alignment of query against ref:
// Validate plus per-character agreement of Match/Mismatch runs.
func (c Cigar) Check(query, ref []byte) error {
	if err := c.Validate(len(query), len(ref)); err != nil {
		return err
	}
	qi, ri := 0, 0
	for i, op := range c {
		switch op.Kind {
		case Match:
			for j := 0; j < op.Len; j++ {
				if query[qi+j] != ref[ri+j] {
					return fmt.Errorf("cigar: op %d claims match at q=%d r=%d but %q != %q",
						i, qi+j, ri+j, query[qi+j], ref[ri+j])
				}
			}
			qi, ri = qi+op.Len, ri+op.Len
		case Mismatch:
			for j := 0; j < op.Len; j++ {
				if query[qi+j] == ref[ri+j] {
					return fmt.Errorf("cigar: op %d claims mismatch at q=%d r=%d but both are %q",
						i, qi+j, ri+j, query[qi+j])
				}
			}
			qi, ri = qi+op.Len, ri+op.Len
		case Ins:
			qi += op.Len
		case Del:
			ri += op.Len
		}
	}
	return nil
}

// Reverse returns the alignment read back-to-front (ops and runs reversed).
// Reversing twice yields the original canonical form.
func (c Cigar) Reverse() Cigar {
	out := make(Cigar, 0, len(c))
	for i := len(c) - 1; i >= 0; i-- {
		out = out.Append(c[i].Kind, c[i].Len)
	}
	return out
}

// Slice returns the prefix of the alignment that consumes exactly q query
// characters, plus the number of reference characters that prefix consumes.
// It reports an error if c consumes fewer than q query characters.
func (c Cigar) Slice(q int) (Cigar, int, error) {
	var out Cigar
	ref := 0
	for _, op := range c {
		if q == 0 {
			break
		}
		switch op.Kind {
		case Match, Mismatch:
			n := min(q, op.Len)
			out = out.Append(op.Kind, n)
			q -= n
			ref += n
		case Ins:
			n := min(q, op.Len)
			out = out.Append(Ins, n)
			q -= n
		case Del:
			out = out.Append(Del, op.Len)
			ref += op.Len
		}
	}
	if q > 0 {
		return nil, 0, fmt.Errorf("cigar: alignment consumes %d fewer query chars than requested", q)
	}
	return out, ref, nil
}

// FromPair builds the canonical CIGAR of a gapless end-to-end comparison of
// equal-length sequences (used by tests and the quickstart example).
func FromPair(query, ref []byte) (Cigar, error) {
	if len(query) != len(ref) {
		return nil, errors.New("cigar: FromPair requires equal lengths")
	}
	var c Cigar
	for i := range query {
		if query[i] == ref[i] {
			c = c.Append(Match, 1)
		} else {
			c = c.Append(Mismatch, 1)
		}
	}
	return c, nil
}
