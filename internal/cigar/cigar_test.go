package cigar

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendMergesRuns(t *testing.T) {
	var c Cigar
	c = c.Append(Match, 3)
	c = c.Append(Match, 2)
	c = c.Append(Ins, 1)
	c = c.Append(Ins, 0) // no-op
	c = c.Append(Del, 4)
	want := Cigar{{Match, 5}, {Ins, 1}, {Del, 4}}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	c := Cigar{{Match, 10}, {Mismatch, 1}, {Ins, 3}, {Match, 7}, {Del, 2}}
	s := c.String()
	if s != "10=1X3I7=2D" {
		t.Fatalf("String() = %q", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("round trip %v != %v", back, c)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"3=2", "=", "0=", "3Q", "12", "3=0X", "-1="} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestLengthsAndCost(t *testing.T) {
	c := Cigar{{Match, 4}, {Mismatch, 2}, {Ins, 3}, {Del, 5}}
	if got := c.QueryLen(); got != 9 {
		t.Errorf("QueryLen = %d want 9", got)
	}
	if got := c.RefLen(); got != 11 {
		t.Errorf("RefLen = %d want 11", got)
	}
	if got := c.EditCost(); got != 10 {
		t.Errorf("EditCost = %d want 10", got)
	}
}

func TestAffineScore(t *testing.T) {
	p := DefaultAffine // a=2 b=4 q=4 e=2
	c := Cigar{{Match, 10}, {Mismatch, 1}, {Ins, 3}, {Del, 1}}
	// 10*2 - 4 - (4+3*2) - (4+1*2) = 20-4-10-6 = 0
	if got := c.AffineScore(p); got != 0 {
		t.Errorf("AffineScore = %d want 0", got)
	}
}

func TestValidate(t *testing.T) {
	c := Cigar{{Match, 3}, {Ins, 1}, {Match, 2}}
	if err := c.Validate(6, 5); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := c.Validate(5, 5); err == nil {
		t.Error("Validate accepted wrong query length")
	}
	if err := (Cigar{{Match, 2}, {Match, 1}}).Validate(3, 3); err == nil {
		t.Error("Validate accepted adjacent equal runs")
	}
	if err := (Cigar{{Match, 0}}).Validate(0, 0); err == nil {
		t.Error("Validate accepted zero-length run")
	}
	if err := (Cigar{{OpKind('M'), 1}}).Validate(1, 1); err == nil {
		t.Error("Validate accepted unknown op kind")
	}
}

func TestCheck(t *testing.T) {
	q := []byte("ACGTA")
	r := []byte("ACCTA")
	ok := Cigar{{Match, 2}, {Mismatch, 1}, {Match, 2}}
	if err := ok.Check(q, r); err != nil {
		t.Errorf("Check: %v", err)
	}
	bad := Cigar{{Match, 5}}
	if err := bad.Check(q, r); err == nil {
		t.Error("Check accepted false match run")
	}
	bad2 := Cigar{{Mismatch, 2}, {Mismatch, 1}, {Match, 2}}
	if err := bad2.Check(q, r); err == nil {
		t.Error("Check accepted false mismatch run / non-canonical runs")
	}
}

func TestReverse(t *testing.T) {
	c := Cigar{{Match, 3}, {Ins, 1}, {Del, 2}}
	want := Cigar{{Del, 2}, {Ins, 1}, {Match, 3}}
	if got := c.Reverse(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Reverse = %v want %v", got, want)
	}
}

func TestSlice(t *testing.T) {
	c := Cigar{{Match, 3}, {Del, 2}, {Ins, 2}, {Match, 1}}
	pre, ref, err := c.Slice(4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 matches (3 ref) + 2 dels (2 ref) + 1 of 2 ins.
	want := Cigar{{Match, 3}, {Del, 2}, {Ins, 1}}
	if !reflect.DeepEqual(pre, want) || ref != 5 {
		t.Fatalf("Slice = %v, ref=%d; want %v, 5", pre, ref, want)
	}
	if _, _, err := c.Slice(10); err == nil {
		t.Error("Slice accepted over-long prefix")
	}
}

func TestSliceZero(t *testing.T) {
	c := Cigar{{Match, 3}}
	pre, ref, err := c.Slice(0)
	if err != nil || len(pre) != 0 || ref != 0 {
		t.Fatalf("Slice(0) = %v,%d,%v", pre, ref, err)
	}
}

func TestFromPair(t *testing.T) {
	c, err := FromPair([]byte("ACGT"), []byte("AGGT"))
	if err != nil {
		t.Fatal(err)
	}
	want := Cigar{{Match, 1}, {Mismatch, 1}, {Match, 2}}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("FromPair = %v want %v", c, want)
	}
	if _, err := FromPair([]byte("A"), []byte("AB")); err == nil {
		t.Error("FromPair accepted unequal lengths")
	}
}

// randomCigar builds a random canonical cigar and matching sequences.
func randomCigar(rng *rand.Rand) (Cigar, []byte, []byte) {
	alpha := []byte("ACGT")
	var c Cigar
	var q, r []byte
	n := 1 + rng.Intn(20)
	for i := 0; i < n; i++ {
		k := []OpKind{Match, Mismatch, Ins, Del}[rng.Intn(4)]
		l := 1 + rng.Intn(5)
		c = c.Append(k, l)
		for j := 0; j < l; j++ {
			switch k {
			case Match:
				b := alpha[rng.Intn(4)]
				q = append(q, b)
				r = append(r, b)
			case Mismatch:
				b := alpha[rng.Intn(4)]
				q = append(q, b)
				r = append(r, alpha[(int(b-'A')+1+rng.Intn(3))%4]) // index trick below
			case Ins:
				q = append(q, alpha[rng.Intn(4)])
			case Del:
				r = append(r, alpha[rng.Intn(4)])
			}
		}
	}
	// Fix mismatch runs: regenerate reference chars until they differ.
	qi, ri := 0, 0
	for _, op := range c {
		switch op.Kind {
		case Match:
			for j := 0; j < op.Len; j++ {
				r[ri+j] = q[qi+j]
			}
			qi, ri = qi+op.Len, ri+op.Len
		case Mismatch:
			for j := 0; j < op.Len; j++ {
				for r[ri+j] == q[qi+j] {
					r[ri+j] = alpha[rng.Intn(4)]
				}
			}
			qi, ri = qi+op.Len, ri+op.Len
		case Ins:
			qi += op.Len
		case Del:
			ri += op.Len
		}
	}
	return c, q, r
}

func TestPropertyRandomCigarCheckAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c, q, r := randomCigar(rng)
		if err := c.Check(q, r); err != nil {
			t.Fatalf("iter %d: Check failed: %v (%s)", i, err, c)
		}
		back, err := Parse(c.String())
		if err != nil || !reflect.DeepEqual(back, c) {
			t.Fatalf("iter %d: round trip failed: %v", i, err)
		}
		rev2 := c.Reverse().Reverse()
		if !reflect.DeepEqual(rev2, c) {
			t.Fatalf("iter %d: double reverse changed cigar", i)
		}
	}
}

func TestQuickSliceConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, cut uint8) bool {
		_ = seed
		c, q, _ := randomCigar(rng)
		k := int(cut) % (len(q) + 1)
		pre, refN, err := c.Slice(k)
		if err != nil {
			return false
		}
		return pre.QueryLen() == k && pre.RefLen() == refN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := Cigar{{Match, 3}, {Ins, 1}}
	b := Cigar{{Ins, 2}, {Match, 1}}
	got := a.Concat(b)
	want := Cigar{{Match, 3}, {Ins, 3}, {Match, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Concat = %v want %v", got, want)
	}
}
