package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now(), time.Millisecond)
	sp := tr.Start("y")
	sp.End()
	tr.Absorb(NewTrace("other", ""))
	if d := tr.Finish(); d != 0 {
		t.Fatalf("nil trace Finish = %v, want 0", d)
	}
	if v := tr.View(); len(v.Spans) != 0 {
		t.Fatalf("nil trace View has spans: %+v", v)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	if sp := StartSpan(context.Background(), "z"); sp != nil {
		sp.End() // must not panic either way
		t.Fatalf("StartSpan on traceless ctx = %v, want nil", sp)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("req", "abc123")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	sp := StartSpan(ctx, "stage", String("k", "v"), Int("n", 7))
	time.Sleep(time.Millisecond)
	sp.End()
	v := tr.View()
	if v.ID != "abc123" || v.Name != "req" {
		t.Fatalf("view identity = %q/%q", v.ID, v.Name)
	}
	if len(v.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(v.Spans))
	}
	s := v.Spans[0]
	if s.Name != "stage" || s.DurationMS <= 0 {
		t.Fatalf("span = %+v", s)
	}
	if s.Attrs["k"] != "v" || s.Attrs["n"] != "7" {
		t.Fatalf("attrs = %v", s.Attrs)
	}
}

func TestNewIDShape(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 {
		t.Fatalf("NewID length = %d, want 16", len(a))
	}
	if a == b {
		t.Fatalf("two NewID calls collided: %s", a)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("big", "")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		tr.Record("s", time.Now(), time.Microsecond)
	}
	v := tr.View()
	if len(v.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(v.Spans), maxSpansPerTrace)
	}
	if v.SpansDropped != 50 {
		t.Fatalf("dropped = %d, want 50", v.SpansDropped)
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace("conc", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tr.Record("span", time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.View().Spans); got != 160 {
		t.Fatalf("spans = %d, want 160", got)
	}
}

func TestTraceAbsorb(t *testing.T) {
	batch := NewTrace("batch", "")
	batch.Record("backend_exec", time.Now(), 3*time.Millisecond, String("backend", "cpu"))
	batch.Record("shard", time.Now(), time.Millisecond)
	req := NewTrace("request", "")
	req.Record("queue_wait", time.Now(), time.Millisecond)
	req.Absorb(batch)
	v := req.View()
	if len(v.Spans) != 3 {
		t.Fatalf("spans after Absorb = %d, want 3", len(v.Spans))
	}
	names := map[string]bool{}
	for _, s := range v.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue_wait", "backend_exec", "shard"} {
		if !names[want] {
			t.Fatalf("missing span %q after Absorb: %v", want, names)
		}
	}
}

func TestFinishFirstCallWins(t *testing.T) {
	tr := NewTrace("f", "")
	d1 := tr.Finish()
	time.Sleep(2 * time.Millisecond)
	d2 := tr.Finish()
	if d1 != d2 {
		t.Fatalf("second Finish changed duration: %v then %v", d1, d2)
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(4)
	for i := 0; i < 10; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i), "")
		tr.Finish()
		l.Add(tr)
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	views := l.Snapshot(0)
	if len(views) != 4 {
		t.Fatalf("retained = %d, want 4", len(views))
	}
	// Newest first: t9, t8, t7, t6.
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if views[i].Name != want {
			t.Fatalf("views[%d] = %q, want %q", i, views[i].Name, want)
		}
	}
	if got := len(l.Snapshot(2)); got != 2 {
		t.Fatalf("Snapshot(2) = %d entries", got)
	}
}

func TestTraceLogNilAndConcurrent(t *testing.T) {
	var nilLog *TraceLog
	nilLog.Add(NewTrace("x", ""))
	if nilLog.Total() != 0 || nilLog.Snapshot(5) != nil {
		t.Fatal("nil TraceLog must no-op")
	}
	l := NewTraceLog(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Add(NewTrace("c", ""))
				l.Snapshot(3)
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 200 {
		t.Fatalf("Total = %d, want 200", got)
	}
}
