package obs

import (
	"bytes"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry(String("backend", "cpu"))
	c := r.Counter("genasm_requests_total", "Total HTTP requests.")
	c.Add(12)
	g := r.Gauge("genasm_queue_depth", "Pairs waiting in the scheduler queue.")
	g.Store(3)
	h := r.Histogram("genasm_e2e_latency_seconds", "End-to-end request latency.", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if errs := CheckExposition(buf.Bytes()); len(errs) > 0 {
		t.Fatalf("CheckExposition rejects our own output:\n%v\npayload:\n%s", errs, out)
	}
	for _, want := range []string{
		"# TYPE genasm_requests_total counter",
		"# HELP genasm_requests_total Total HTTP requests.",
		`genasm_requests_total{backend="cpu"} 12`,
		"# TYPE genasm_queue_depth gauge",
		`genasm_queue_depth{backend="cpu"} 3`,
		"# TYPE genasm_e2e_latency_seconds histogram",
		`genasm_e2e_latency_seconds_bucket{backend="cpu",le="0.001"} 1`,
		`genasm_e2e_latency_seconds_bucket{backend="cpu",le="+Inf"} 5`,
		`genasm_e2e_latency_seconds_count{backend="cpu"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; full output:\n%s", want, out)
		}
	}
	// Families must be sorted by name for scrape-stable output.
	iH := strings.Index(out, "genasm_e2e_latency_seconds")
	iQ := strings.Index(out, "genasm_queue_depth")
	iR := strings.Index(out, "genasm_requests_total")
	if !(iH < iQ && iQ < iR) {
		t.Errorf("families not sorted: hist@%d queue@%d reqs@%d", iH, iQ, iR)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry(String("path", `C:\refs`), String("note", "line1\nline2\"q\""))
	r.Gauge("g", "help with \\ backslash\nand newline").Store(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP g help with \\ backslash\nand newline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `path="C:\\refs"`) {
		t.Errorf("label backslash not escaped:\n%s", out)
	}
	if !strings.Contains(out, `note="line1\nline2\"q\""`) {
		t.Errorf("label newline/quote not escaped:\n%s", out)
	}
	if errs := CheckExposition(buf.Bytes()); len(errs) > 0 {
		t.Fatalf("escaped output rejected: %v\n%s", errs, out)
	}
}

func TestCheckExpositionViolations(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantSub string
	}{
		{
			"untyped sample",
			"orphan 1\n",
			"no preceding # TYPE",
		},
		{
			"counter without _total",
			"# TYPE requests counter\nrequests 1\n",
			"does not end in _total",
		},
		{
			"gauge with _total",
			"# TYPE depth_total gauge\ndepth_total 1\n",
			"must not end in _total",
		},
		{
			"histogram missing +Inf",
			"# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_sum 3\nlat_count 2\n",
			`no le="+Inf"`,
		},
		{
			"histogram non-cumulative",
			"# TYPE lat histogram\nlat_bucket{le=\"1\"} 5\nlat_bucket{le=\"2\"} 3\nlat_bucket{le=\"+Inf\"} 5\nlat_sum 3\nlat_count 5\n",
			"not cumulative",
		},
		{
			"histogram bounds not increasing",
			"# TYPE lat histogram\nlat_bucket{le=\"2\"} 1\nlat_bucket{le=\"1\"} 2\nlat_bucket{le=\"+Inf\"} 2\nlat_sum 3\nlat_count 2\n",
			"not increasing",
		},
		{
			"count mismatch",
			"# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_bucket{le=\"+Inf\"} 4\nlat_sum 3\nlat_count 9\n",
			"_count 9",
		},
		{
			"malformed sample",
			"# TYPE g gauge\ng{oops 1\n",
			"malformed sample",
		},
		{
			"malformed comment",
			"# COMMENTARY nope\n",
			"malformed comment",
		},
		{
			"duplicate TYPE",
			"# TYPE g gauge\ng 1\n# TYPE g gauge\n",
			"duplicate # TYPE",
		},
		{
			"HELP after TYPE",
			"# TYPE g gauge\n# HELP g late help\ng 1\n",
			"HELP must precede TYPE",
		},
		{
			"declared but empty",
			"# TYPE g gauge\n",
			"no samples",
		},
		{
			"help without type",
			"# HELP g some help\n",
			"no # TYPE",
		},
		{
			"bad value",
			"# TYPE g gauge\ng notanumber\n",
			"unparseable value",
		},
	}
	for _, c := range cases {
		errs := CheckExposition([]byte(c.payload))
		if len(errs) == 0 {
			t.Errorf("%s: accepted, want violation containing %q", c.name, c.wantSub)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.wantSub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: errors %v lack substring %q", c.name, errs, c.wantSub)
		}
	}
}

func TestCheckExpositionAcceptsValid(t *testing.T) {
	payload := strings.Join([]string{
		"# HELP reqs_total Requests served.",
		"# TYPE reqs_total counter",
		`reqs_total{backend="cpu"} 42`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 2.5",
		"lat_seconds_count 4",
		"# TYPE depth gauge",
		"depth -3",
		"",
	}, "\n")
	if errs := CheckExposition([]byte(payload)); len(errs) > 0 {
		t.Fatalf("valid payload rejected: %v", errs)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		0.0005: "0.0005",
		2.5:    "2.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("json log = %q", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %q", out)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	NopLogger().Info("goes nowhere")
}

func TestBuildInfoVersion(t *testing.T) {
	if v := (BuildInfo{}).Version(); v != "unknown" {
		t.Fatalf("empty Version = %q", v)
	}
	if v := (BuildInfo{GoVersion: "go1.22"}).Version(); v != "devel (go1.22)" {
		t.Fatalf("go-only Version = %q", v)
	}
	b := BuildInfo{Revision: "abcdef0123456789", Modified: true}
	if v := b.Version(); v != "abcdef012345-dirty" {
		t.Fatalf("vcs Version = %q", v)
	}
	// ReadBuildInfo must not panic in a test binary.
	_ = ReadBuildInfo()
}
