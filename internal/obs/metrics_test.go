package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Add(3)
	c.Add(2)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := r.Gauge("depth", "queue depth")
	g.Add(4)
	g.Add(-1)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
	g.Store(42)
	if g.Load() != 42 {
		t.Fatalf("gauge after Store = %d, want 42", g.Load())
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 105 {
		t.Fatalf("sum = %g, want 105", got)
	}
	if got := h.Mean(); got != 26.25 {
		t.Fatalf("mean = %g", got)
	}
	cum := h.Cumulative()
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.Inf(1)},
		{math.NaN()},
	} {
		if _, err := newHistogram(bounds); err == nil {
			t.Fatalf("bounds %v accepted, want error", bounds)
		}
	}
}

// TestQuantileNoFloorBias pins the satellite fix: the retired
// sliding-window estimator indexed sorted samples with int(p*(n-1)),
// which floors — for 200 samples 1..200 it reported p99 as sample 197
// instead of ~198. The histogram quantile interpolates within the
// bucket, so on a uniform distribution over integer-bounded buckets the
// estimate lands within one bucket width of the exact value, on the
// correct side.
func TestQuantileNoFloorBias(t *testing.T) {
	bounds := make([]float64, 200)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h, err := newHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	// 200 samples: 1, 2, ..., 200 (one per bucket).
	for i := 1; i <= 200; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		p    float64
		want float64 // exact value of the p-quantile for this distribution
	}{
		{0.50, 100},
		{0.90, 180},
		{0.99, 198},
		{1.00, 200},
	}
	for _, c := range cases {
		got := h.Quantile(c.p)
		if math.Abs(got-c.want) > 1.0 {
			t.Errorf("Quantile(%g) = %g, want %g +/- 1", c.p, got, c.want)
		}
		// The old estimator's floor bias showed as p99 = 197 exactly; the
		// interpolated estimate must not fall below want-1.
		if got < c.want-1 {
			t.Errorf("Quantile(%g) = %g under-reports (floor bias regression)", c.p, got)
		}
	}
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	h, err := newHistogram([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	// 10 observations, all in the (10, 20] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	// p50 rank = 5 of 10 in a bucket spanning 10..20 → 15.
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("Quantile(0.5) = %g, want 15", got)
	}
	// p100 → upper bound of the occupied bucket.
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) = %g, want 20", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	h, err := newHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(50) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to 2", got)
	}
	h2, _ := newHistogram([]float64{1, 2})
	h2.Observe(0.5)
	if got := h2.Quantile(-1); got > 1 {
		t.Fatalf("clamped p<0 quantile = %g", got)
	}
	if got := h2.Quantile(2); got > 1 {
		t.Fatalf("clamped p>1 quantile = %g", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := newHistogram(DefaultLatencyBuckets)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g%4) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	cum := h.Cumulative()
	if cum[len(cum)-1] != 8000 {
		t.Fatalf("+Inf cumulative = %d, want 8000", cum[len(cum)-1])
	}
	wantSum := float64(2000*0 + 2000*0.001 + 2000*0.002 + 2000*0.003)
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestCheckMetricName(t *testing.T) {
	good := []struct {
		name string
		kind Kind
	}{
		{"genasm_requests_total", KindCounter},
		{"queue_depth", KindGauge},
		{"genasm_e2e_latency_seconds", KindHistogram},
		{"a", KindGauge},
	}
	for _, c := range good {
		if err := CheckMetricName(c.name, c.kind); err != nil {
			t.Errorf("CheckMetricName(%q, %v) = %v, want nil", c.name, c.kind, err)
		}
	}
	bad := []struct {
		name string
		kind Kind
	}{
		{"Requests_total", KindCounter},  // capital
		{"requests", KindCounter},        // counter without _total
		{"queue_depth_total", KindGauge}, // gauge claiming _total
		{"lat_seconds_total", KindHistogram},
		{"_leading", KindGauge},
		{"trailing_", KindGauge},
		{"double__under", KindGauge},
		{"has-dash_total", KindCounter},
		{"", KindGauge},
		{"9starts_with_digit", KindGauge},
	}
	for _, c := range bad {
		if err := CheckMetricName(c.name, c.kind); err == nil {
			t.Errorf("CheckMetricName(%q, %v) accepted, want error", c.name, c.kind)
		}
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "first")
	mustPanic("duplicate", func() { r.Counter("dup_total", "again") })
	mustPanic("bad name", func() { r.Gauge("Bad-Name", "x") })
	mustPanic("counter no _total", func() { r.Counter("requests", "x") })
	mustPanic("bad bounds", func() { r.Histogram("h_seconds", "x", []float64{2, 1}) })
}

func TestRegistryFuncMetrics(t *testing.T) {
	r := NewRegistry(String("backend", "cpu"))
	n := 0.0
	r.CounterFunc("scrapes_total", "computed", func() float64 { n += 2; return n })
	r.GaugeFunc("live", "computed gauge", func() float64 { return 7 })
	metrics, labels := r.snapshot()
	if len(labels) != 1 || labels[0].Key != "backend" || labels[0].Value != "cpu" {
		t.Fatalf("labels = %v", labels)
	}
	byName := map[string]*metric{}
	for _, m := range metrics {
		byName[m.name] = m
	}
	if got := byName["scrapes_total"].value(); got != 2 {
		t.Fatalf("CounterFunc value = %g", got)
	}
	if got := byName["live"].value(); got != 7 {
		t.Fatalf("GaugeFunc value = %g", got)
	}
}
