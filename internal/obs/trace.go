package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued Attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued Attr.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Span is one recorded stage of a trace: a name, when it started, how
// long it took, and optional attributes. Spans are value records — they
// are appended to a Trace once, fully formed, via Trace.Record or
// ActiveSpan.End.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// maxSpansPerTrace bounds one trace's span list so a genome-sized bulk
// job (thousands of scheduler submissions) cannot grow its trace without
// limit. Overflow is counted, not silently discarded.
const maxSpansPerTrace = 256

// Trace is one request's (or job's, or batch's) recording: an ID, a
// name, a start time, and the spans recorded while it was live. All
// methods are safe for concurrent use and nil-safe — calling Record,
// Start or Finish on a nil *Trace is a no-op, so instrumentation points
// never need to check whether tracing is attached.
type Trace struct {
	ID    string
	Name  string
	Begin time.Time

	mu      sync.Mutex
	end     time.Time
	spans   []Span
	dropped int
}

// NewTrace starts a trace now. An empty id generates a fresh random
// request ID (16 hex characters).
func NewTrace(name, id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, Name: name, Begin: time.Now()}
}

// NewID returns a random 16-hex-character request/trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to a timestamp: uniqueness suffers, tracing still works.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// ctxKey is the context key type for trace propagation.
type ctxKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil trace
// is fully usable (every method no-ops), so callers never branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Record appends a completed span. Past maxSpansPerTrace the span is
// counted as dropped instead of appended.
func (t *Trace) Record(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d, Attrs: attrs})
	}
	t.mu.Unlock()
}

// ActiveSpan is an in-progress span: End records it on its trace. The
// zero/nil ActiveSpan (from a nil trace) no-ops.
type ActiveSpan struct {
	t     *Trace
	name  string
	start time.Time
	attrs []Attr
}

// Start begins a span on t; call End on the result to record it.
func (t *Trace) Start(name string, attrs ...Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: time.Now(), attrs: attrs}
}

// StartSpan begins a span on the trace carried by ctx (no-op span when
// ctx carries none).
func StartSpan(ctx context.Context, name string, attrs ...Attr) *ActiveSpan {
	return FromContext(ctx).Start(name, attrs...)
}

// End records the span with its duration so far.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.Record(s.name, s.start, time.Since(s.start), s.attrs...)
}

// Finish stamps the trace's end time (first call wins) and returns its
// total duration.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	d := t.end.Sub(t.Begin)
	t.mu.Unlock()
	return d
}

// Absorb copies every span of o into t (bounded by t's span cap). The
// scheduler uses it to splice a shared batch trace — backend execution,
// per-child shard spans — into each co-batched request's own trace.
func (t *Trace) Absorb(o *Trace) {
	if t == nil || o == nil {
		return
	}
	o.mu.Lock()
	spans := make([]Span, len(o.spans))
	copy(spans, o.spans)
	dropped := o.dropped
	o.mu.Unlock()
	t.mu.Lock()
	for _, sp := range spans {
		if len(t.spans) >= maxSpansPerTrace {
			t.dropped++
			continue
		}
		t.spans = append(t.spans, sp)
	}
	t.dropped += dropped
	t.mu.Unlock()
}

// TraceView is a finished trace rendered for serialization (the
// GET /debug/traces wire shape). Span offsets and durations are
// milliseconds relative to the trace start.
type TraceView struct {
	ID           string     `json:"id"`
	Name         string     `json:"name"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Spans        []SpanView `json:"spans"`
	SpansDropped int        `json:"spans_dropped,omitempty"`
}

// SpanView is one span of a TraceView.
type SpanView struct {
	Name       string            `json:"name"`
	OffsetMS   float64           `json:"offset_ms"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// View renders the trace. A live trace (no Finish yet) reports its
// duration so far.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	v := TraceView{
		ID:           t.ID,
		Name:         t.Name,
		Start:        t.Begin,
		DurationMS:   durMS(end.Sub(t.Begin)),
		Spans:        make([]SpanView, len(t.spans)),
		SpansDropped: t.dropped,
	}
	for i, sp := range t.spans {
		sv := SpanView{
			Name:       sp.Name,
			OffsetMS:   durMS(sp.Start.Sub(t.Begin)),
			DurationMS: durMS(sp.Duration),
		}
		if len(sp.Attrs) > 0 {
			sv.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sv.Attrs[a.Key] = a.Value
			}
		}
		v.Spans[i] = sv
	}
	return v
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TraceLog is a bounded ring buffer of finished traces, newest
// overwriting oldest. Safe for concurrent use.
type TraceLog struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total int64
}

// NewTraceLog returns a ring holding up to capacity traces (minimum 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]*Trace, capacity)}
}

// Add appends a trace, evicting the oldest when full.
func (l *TraceLog) Add(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = t
	l.next = (l.next + 1) % len(l.buf)
	l.total++
	l.mu.Unlock()
}

// Total reports how many traces have ever been added.
func (l *TraceLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot renders up to limit of the most recent traces, newest first
// (limit <= 0 means all retained).
func (l *TraceLog) Snapshot(limit int) []TraceView {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	traces := make([]*Trace, 0, len(l.buf))
	for i := 1; i <= len(l.buf); i++ {
		// Walk backwards from the most recently written slot.
		t := l.buf[(l.next-i+len(l.buf))%len(l.buf)]
		if t == nil {
			break
		}
		traces = append(traces, t)
	}
	l.mu.Unlock()
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	out := make([]TraceView, len(traces))
	for i, t := range traces {
		out[i] = t.View()
	}
	return out
}
