// Package obs is genasm's stdlib-only observability layer: the tracing,
// metrics, exposition and logging substrate every serving-layer
// measurement flows through.
//
// Four pieces:
//
//   - Tracing (trace.go): a context-propagated Trace carrying a request
//     ID and a bounded list of recorded Spans (name, start, duration,
//     attrs). Recording is nil-safe — code instruments unconditionally
//     and pays one pointer check when no trace is attached — and
//     concurrent: shard fan-outs record into one trace from many
//     goroutines. A TraceLog ring buffer keeps the most recent finished
//     traces for GET /debug/traces.
//
//   - Metrics (metrics.go): a Registry of named Counters, Gauges and
//     fixed-bucket cumulative Histograms. Histograms are mergeable and
//     scrape-stable (unlike a sliding-window percentile estimator:
//     cumulative bucket counts only ever grow, and two scrapes can be
//     subtracted), and Quantile estimates percentiles by linear
//     interpolation inside the target bucket, so no truncating index
//     math biases the estimate. Metric names are validated at
//     registration (snake_case, counters end in _total) — the same
//     contract the metricname lint analyzer enforces statically.
//
//   - Prometheus exposition (prom.go): WritePrometheus renders the
//     registry in the text exposition format (# HELP/# TYPE, cumulative
//     _bucket series ending in le="+Inf", _sum/_count), and
//     CheckExposition is a strict parser of that format used by tests
//     and CI smoke checks to fail on violations.
//
//   - Logging (log.go): log/slog construction helpers (text or JSON
//     handler at a named level) and the build information surfaced in
//     startup logs and /healthz.
//
// The package has no dependencies outside the standard library and no
// knowledge of HTTP routes or the alignment engine; the server package
// owns which stages get spans and which counters exist.
package obs
