package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format, version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format: a # HELP and # TYPE line per family, then the
// samples, with the registry's const labels on every series. Histograms
// emit cumulative le-bucketed _bucket series ending in le="+Inf", plus
// _sum and _count. Families are sorted by name so consecutive scrapes
// diff cleanly.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	metrics, labels := r.snapshot()
	for _, m := range metrics {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case KindHistogram:
			writeHistogram(bw, m, labels)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, renderLabels(labels), formatValue(m.value()))
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, m *metric, labels []Attr) {
	cum := m.hist.Cumulative()
	bounds := m.hist.bounds
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, renderLabels(labels, String("le", formatValue(b))), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.name, renderLabels(labels, String("le", "+Inf")), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, renderLabels(labels), formatValue(m.hist.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, renderLabels(labels), cum[len(cum)-1])
}

// renderLabels renders {k="v",...} (empty string for no labels).
func renderLabels(constLabels []Attr, extra ...Attr) string {
	all := make([]Attr, 0, len(constLabels)+len(extra))
	all = append(all, constLabels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(a.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- strict exposition-format checker ----

// sampleRe matches one sample line: name, optional {labels}, value.
// Label values are double-quoted with \\, \" and \n escapes.
var (
	sampleNameRe = `[a-zA-Z_:][a-zA-Z0-9_:]*`
	labelRe      = `[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"`
	sampleRe     = regexp.MustCompile(`^(` + sampleNameRe + `)(\{` + labelRe + `(?:,` + labelRe + `)*\})? (\S+)( [0-9]+)?$`)
	helpRe       = regexp.MustCompile(`^# HELP (` + sampleNameRe + `) (.*)$`)
	typeRe       = regexp.MustCompile(`^# TYPE (` + sampleNameRe + `) (counter|gauge|histogram|summary|untyped)$`)
	leRe         = regexp.MustCompile(`le="((?:[^"\\]|\\.)*)"`)
)

// CheckExposition strictly validates a Prometheus text-exposition
// payload against both the format and the genasm metric conventions:
//
//   - every line is a well-formed comment, sample, or blank;
//   - every sample belongs to a family declared by a preceding # TYPE
//     (histogram samples only as _bucket/_sum/_count);
//   - every family has exactly one # TYPE and at most one # HELP, the
//     HELP preceding the TYPE;
//   - counter family names end in _total, gauge/histogram names do not;
//   - histogram buckets are le-labeled, non-decreasing in both bound
//     and count (cumulative), end in an le="+Inf" bucket whose count
//     equals _count, and appear before their _sum/_count;
//   - sample values parse as floats (or +Inf/-Inf/NaN).
//
// It returns every violation found, or nil for a clean payload. Tests
// and the CI smoke step fail on any returned error.
func CheckExposition(data []byte) []error {
	var errs []error
	report := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type family struct {
		kind     string
		helpSeen bool
		samples  int
		// histogram bookkeeping
		buckets  []float64
		counts   []uint64
		infCount uint64
		sawInf   bool
		sawSum   bool
		countVal uint64
		sawCount bool
	}
	families := make(map[string]*family)
	var declared []string // TYPE declaration order

	// familyOf strips a histogram series suffix to its family name, if
	// that family is a declared histogram.
	familyOf := func(name string) (string, string) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if f, ok := families[base]; ok && f.kind == "histogram" {
					return base, suffix
				}
			}
		}
		return name, ""
	}

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := helpRe.FindStringSubmatch(line); m != nil {
				name := m[1]
				if f, ok := families[name]; ok {
					if f.helpSeen {
						report(ln, "duplicate # HELP for %s", name)
					}
					report(ln, "# HELP %s after its # TYPE (HELP must precede TYPE)", name)
					f.helpSeen = true
					continue
				}
				f := &family{helpSeen: true}
				families[name] = f
				continue
			}
			if m := typeRe.FindStringSubmatch(line); m != nil {
				name, kind := m[1], m[2]
				f, ok := families[name]
				if !ok {
					f = &family{}
					families[name] = f
				}
				if f.kind != "" {
					report(ln, "duplicate # TYPE for %s", name)
					continue
				}
				f.kind = kind
				declared = append(declared, name)
				if kind == "counter" && !strings.HasSuffix(name, "_total") {
					report(ln, "counter %s does not end in _total", name)
				}
				if kind != "counter" && strings.HasSuffix(name, "_total") {
					report(ln, "%s %s must not end in _total", kind, name)
				}
				continue
			}
			report(ln, "malformed comment line %q (want # HELP or # TYPE)", line)
			continue
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			report(ln, "malformed sample line %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			report(ln, "sample %s has unparseable value %q", name, valStr)
			continue
		}
		base, suffix := familyOf(name)
		f, ok := families[base]
		if !ok || f.kind == "" {
			report(ln, "sample %s has no preceding # TYPE", name)
			continue
		}
		f.samples++
		if f.kind != "histogram" {
			continue
		}
		switch suffix {
		case "_bucket":
			lm := leRe.FindStringSubmatch(labels)
			if lm == nil {
				report(ln, "histogram bucket %s lacks an le label", name)
				continue
			}
			if f.sawSum || f.sawCount {
				report(ln, "histogram %s bucket after _sum/_count", base)
			}
			cnt := uint64(val)
			if lm[1] == "+Inf" {
				if f.sawInf {
					report(ln, "histogram %s has more than one le=\"+Inf\" bucket", base)
				}
				f.sawInf, f.infCount = true, cnt
				if n := len(f.counts); n > 0 && cnt < f.counts[n-1] {
					report(ln, "histogram %s +Inf bucket count %d below previous bucket %d (not cumulative)", base, cnt, f.counts[n-1])
				}
				continue
			}
			bound, err := strconv.ParseFloat(lm[1], 64)
			if err != nil {
				report(ln, "histogram %s bucket has unparseable le=%q", base, lm[1])
				continue
			}
			if f.sawInf {
				report(ln, "histogram %s has a finite bucket after le=\"+Inf\"", base)
			}
			if n := len(f.buckets); n > 0 {
				if bound <= f.buckets[n-1] {
					report(ln, "histogram %s bucket bounds not increasing (%g after %g)", base, bound, f.buckets[n-1])
				}
				if cnt < f.counts[n-1] {
					report(ln, "histogram %s bucket counts not cumulative (%d after %d)", base, cnt, f.counts[n-1])
				}
			}
			f.buckets = append(f.buckets, bound)
			f.counts = append(f.counts, cnt)
		case "_sum":
			f.sawSum = true
		case "_count":
			f.sawCount, f.countVal = true, uint64(val)
		default:
			report(ln, "histogram %s has a bare sample %s (want _bucket/_sum/_count)", base, name)
		}
	}

	for _, name := range declared {
		f := families[name]
		if f.samples == 0 {
			errs = append(errs, fmt.Errorf("family %s declared by # TYPE but has no samples", name))
		}
		if f.kind != "histogram" {
			continue
		}
		if !f.sawInf {
			errs = append(errs, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name))
		}
		if !f.sawSum {
			errs = append(errs, fmt.Errorf("histogram %s has no _sum sample", name))
		}
		if !f.sawCount {
			errs = append(errs, fmt.Errorf("histogram %s has no _count sample", name))
		} else if f.sawInf && f.countVal != f.infCount {
			errs = append(errs, fmt.Errorf("histogram %s _count %d != le=\"+Inf\" bucket %d", name, f.countVal, f.infCount))
		}
	}
	for name, f := range families {
		if f.kind == "" {
			errs = append(errs, fmt.Errorf("family %s has # HELP but no # TYPE", name))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}
