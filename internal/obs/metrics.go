package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// usable; registered counters come from Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Negative deltas are a programming error
// but are not checked on the hot path.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Store sets the gauge.
func (g *Gauge) Store(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram: observations land in
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. Unlike a sliding-window sample, bucket counts
// only ever grow — two scrapes subtract cleanly, and histograms from
// many processes merge by bucket-wise addition. All methods are safe for
// concurrent use; Observe is wait-free (two atomic adds).
type Histogram struct {
	bounds []float64       // strictly increasing finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits CAS-accumulated
	count  atomic.Uint64
}

// newHistogram validates bounds (strictly increasing, finite, non-empty).
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("obs: histogram bound %d is not finite", i)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d", i)
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative bucket counts: out[i] counts
// observations <= bounds[i], and the final entry (the +Inf bucket)
// equals Count(). Counts are loaded bucket by bucket, so a snapshot
// taken under concurrent Observes is approximate but always
// non-decreasing across buckets.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the p-quantile (0 <= p <= 1) by locating the
// target rank in the cumulative buckets and interpolating linearly
// inside the bucket — the whole bucket's width is credited
// proportionally, so there is no truncating index math to bias the
// estimate downward (the defect the old sliding-window estimator had:
// int(p*(n-1)) floors, systematically under-reporting upper quantiles).
// Values in the +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	cum := h.Cumulative()
	n := cum[len(cum)-1]
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: the best available answer is the largest
			// finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		var prev uint64
		if i > 0 {
			lower = h.bounds[i-1]
			prev = cum[i-1]
		}
		upper := h.bounds[i]
		inBucket := float64(c - prev)
		if inBucket <= 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(prev))/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// DefaultLatencyBuckets are the second-denominated bounds the serving
// layer uses for its stage latency histograms: half a millisecond up to
// ten seconds, roughly geometric.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Kind classifies a registered metric for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// value returns the metric's current scalar (counter/gauge only).
func (m *metric) value() float64 {
	switch {
	case m.fn != nil:
		return m.fn()
	case m.counter != nil:
		return float64(m.counter.Load())
	case m.gauge != nil:
		return float64(m.gauge.Load())
	}
	return 0
}

// nameRe is the registrable metric name shape: snake_case, starting
// with a letter. (Prometheus also allows capitals and colons; genasm
// deliberately does not — one convention, machine-checked.)
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// CheckMetricName validates name for a metric of the given kind against
// the genasm naming convention: snake_case ASCII, counters end in
// _total, non-counters must not claim the _total suffix. The metricname
// lint analyzer applies the same rules statically at registration call
// sites; this function is the runtime backstop.
func CheckMetricName(name string, kind Kind) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("obs: metric name %q is not snake_case ([a-z0-9_], starting with a letter, no leading/trailing/double underscore)", name)
	}
	hasTotal := strings.HasSuffix(name, "_total")
	if kind == KindCounter && !hasTotal {
		return fmt.Errorf("obs: counter %q must end in _total", name)
	}
	if kind != KindCounter && hasTotal {
		return fmt.Errorf("obs: %s %q must not end in _total (reserved for counters)", kind, name)
	}
	return nil
}

// Registry holds named metrics and renders them for exposition. Const
// labels (e.g. backend="cpu") are applied to every metric. Registration
// happens at construction time and panics on an invalid or duplicate
// name — like a nil-map write, it is a programming error no caller can
// meaningfully handle.
type Registry struct {
	mu     sync.Mutex
	labels []Attr // const label set, rendered on every series
	byName map[string]*metric
}

// NewRegistry returns a registry whose every metric carries the given
// const labels (may be nil).
func NewRegistry(constLabels ...Attr) *Registry {
	return &Registry{labels: constLabels, byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	if err := CheckMetricName(m.name, m.kind); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.byName[m.name] = m
}

// Counter registers and returns a counter. The name must be snake_case
// and end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is computed at scrape
// time (for counters owned by another subsystem, e.g. backend stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, fn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, fn: fn})
}

// Histogram registers and returns a fixed-bucket cumulative histogram
// with the given finite upper bounds (strictly increasing; +Inf is
// implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err)
	}
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// snapshot returns the registered metrics sorted by name (scrape-stable
// output order) plus the const label set.
func (r *Registry) snapshot() ([]*metric, []Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, r.labels
}
