package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. Format is "text" or
// "json"; level is "debug", "info", "warn" or "error". Unknown values
// are an error so a typo'd flag fails startup instead of silently
// logging at the wrong level.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// nopHandler discards every record. (slog.DiscardHandler exists only
// from Go 1.24; CI builds with 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests, benchmarks) that did not configure logging.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// BuildInfo is the binary's identity as reported by the Go toolchain,
// surfaced in /healthz, startup logs and trace dumps.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"build_time,omitempty"`
	Modified  bool   `json:"dirty,omitempty"`
}

// ReadBuildInfo extracts version metadata from the running binary. The
// VCS fields are empty when the binary was built outside a checkout
// (e.g. go test binaries).
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.Time = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// Version renders the build info as a single human-readable token for
// log lines: the short revision (with -dirty when modified), or the Go
// version when no VCS stamp is present.
func (b BuildInfo) Version() string {
	if b.Revision == "" {
		if b.GoVersion != "" {
			return "devel (" + b.GoVersion + ")"
		}
		return "unknown"
	}
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "-dirty"
	}
	return rev
}
