package obs

import (
	"context"
	"net/http"
)

// RequestIDHeader is the HTTP header that carries a request's trace ID
// between nodes. The server honors it inbound and echoes it on every
// response; the remote backend and the routing front stamp it onto
// outbound hops, so one user-visible request appears under a single ID
// in every node's /debug/traces ring and request log.
const RequestIDHeader = "X-Request-Id"

// SetRequestID stamps h with the trace ID carried by ctx, so an
// outbound HTTP hop (a remote-backend call, a front-tier forward) joins
// the originating request's trace on the receiving node. No-op when ctx
// carries no trace.
func SetRequestID(ctx context.Context, h http.Header) {
	if t := FromContext(ctx); t != nil {
		h.Set(RequestIDHeader, t.ID)
	}
}
