// Package stats provides lightweight instrumentation counters used to
// account for the memory behaviour of the alignment kernels.
//
// The paper's first two results (24x smaller memory footprint, 12x fewer
// memory accesses) are statements about the dynamic-programming working set,
// not about wall-clock time, so the kernels in internal/core and
// internal/baseline optionally report every DP-table read/write and the peak
// footprint through a Counters value. Counting is optional: kernels accept a
// nil *Counters and skip all accounting, so the hot paths stay branch-cheap.
package stats

import "fmt"

// Counters accumulates memory-behaviour statistics for one or more window
// alignments. The zero value is ready to use. Counters is not safe for
// concurrent use; give each goroutine its own value and Merge afterwards.
type Counters struct {
	// TableWrites is the number of word-sized stores into the stored DP
	// table (the traceback working set) during distance calculation.
	TableWrites uint64
	// TableReads is the number of word-sized loads from the stored DP
	// table during traceback.
	TableReads uint64
	// WriteBytes/ReadBytes are the same accesses in bytes: banded
	// entries store as packed 32-bit words, full entries as 64-bit
	// words, edge-mode entries as four 64-bit words.
	WriteBytes uint64
	ReadBytes  uint64
	// FootprintBits is the total number of DP-table bits stored for the
	// current window. Peak footprint across windows is tracked separately.
	FootprintBits uint64
	// PeakFootprintBits is the maximum per-window footprint observed.
	PeakFootprintBits uint64
	// TotalFootprintBits sums the per-window footprints; divided by
	// Windows it gives the typical working-set size per window.
	TotalFootprintBits uint64
	// Windows is the number of window alignments accounted.
	Windows uint64
	// RowsComputed and RowsSkipped count DC rows (error levels) computed
	// vs skipped by early termination.
	RowsComputed uint64
	RowsSkipped  uint64
	// TrackWindows, when set before aligning, records one WindowStat per
	// window (used by the GPU model to classify each window's DP traffic
	// as shared-memory-resident or spilled).
	TrackWindows bool
	WindowStats  []WindowStat

	winStartWrites uint64
	winStartReads  uint64
	winStartBytes  uint64
}

// WindowStat is the memory behaviour of a single window alignment.
type WindowStat struct {
	FootprintBits uint64
	Accesses      uint64
	TrafficBytes  uint64
}

// AddWrite records n DP-table stores of size bytes each.
func (c *Counters) AddWrite(n, bytes uint64) {
	if c != nil {
		c.TableWrites += n
		c.WriteBytes += n * bytes
	}
}

// AddRead records n DP-table loads of size bytes each.
func (c *Counters) AddRead(n, bytes uint64) {
	if c != nil {
		c.TableReads += n
		c.ReadBytes += n * bytes
	}
}

// AddFootprint records n bits of DP-table storage for the current window.
func (c *Counters) AddFootprint(n uint64) {
	if c != nil {
		c.FootprintBits += n
	}
}

// EndWindow finalizes the footprint accounting for one window: the current
// window footprint is folded into the peak and reset. With TrackWindows
// set, the window's footprint and access count are also recorded.
func (c *Counters) EndWindow() {
	if c == nil {
		return
	}
	c.Windows++
	if c.TrackWindows {
		c.WindowStats = append(c.WindowStats, WindowStat{
			FootprintBits: c.FootprintBits,
			Accesses:      (c.TableWrites - c.winStartWrites) + (c.TableReads - c.winStartReads),
			TrafficBytes:  c.TrafficBytes() - c.winStartBytes,
		})
		c.winStartWrites = c.TableWrites
		c.winStartReads = c.TableReads
		c.winStartBytes = c.TrafficBytes()
	}
	if c.FootprintBits > c.PeakFootprintBits {
		c.PeakFootprintBits = c.FootprintBits
	}
	c.TotalFootprintBits += c.FootprintBits
	c.FootprintBits = 0
}

// MeanWindowFootprintBits returns the average per-window DP footprint.
func (c *Counters) MeanWindowFootprintBits() float64 {
	if c == nil || c.Windows == 0 {
		return 0
	}
	return float64(c.TotalFootprintBits) / float64(c.Windows)
}

// AddRows records DC row accounting: computed rows and ET-skipped rows.
func (c *Counters) AddRows(computed, skipped uint64) {
	if c != nil {
		c.RowsComputed += computed
		c.RowsSkipped += skipped
	}
}

// Accesses returns the total number of DP-table word accesses (reads+writes).
func (c *Counters) Accesses() uint64 {
	if c == nil {
		return 0
	}
	return c.TableReads + c.TableWrites
}

// TrafficBytes returns the total DP-table traffic in bytes.
func (c *Counters) TrafficBytes() uint64 {
	if c == nil {
		return 0
	}
	return c.ReadBytes + c.WriteBytes
}

// Merge folds other into c. Peak footprints take the maximum; everything
// else is summed.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	c.TableWrites += other.TableWrites
	c.TableReads += other.TableReads
	c.Windows += other.Windows
	c.RowsComputed += other.RowsComputed
	c.RowsSkipped += other.RowsSkipped
	c.TotalFootprintBits += other.TotalFootprintBits
	c.WriteBytes += other.WriteBytes
	c.ReadBytes += other.ReadBytes
	if other.PeakFootprintBits > c.PeakFootprintBits {
		c.PeakFootprintBits = other.PeakFootprintBits
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c != nil {
		*c = Counters{}
	}
}

// String returns a compact human-readable summary.
func (c *Counters) String() string {
	if c == nil {
		return "stats: disabled"
	}
	return fmt.Sprintf("windows=%d writes=%d reads=%d peakFootprint=%dbits rows=%d/%d skipped",
		c.Windows, c.TableWrites, c.TableReads, c.PeakFootprintBits, c.RowsComputed, c.RowsComputed+c.RowsSkipped)
}
