package stats

import (
	"strings"
	"testing"
)

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddWrite(1, 8)
	c.AddRead(1, 8)
	c.AddFootprint(1)
	c.AddRows(1, 1)
	c.EndWindow()
	c.Merge(&Counters{TableWrites: 5})
	c.Reset()
	if c.Accesses() != 0 {
		t.Fatal("nil counters should report zero accesses")
	}
	if got := c.String(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil String = %q", got)
	}
}

func TestFootprintPeak(t *testing.T) {
	var c Counters
	c.AddFootprint(100)
	c.EndWindow()
	c.AddFootprint(40)
	c.AddFootprint(20)
	c.EndWindow()
	if c.PeakFootprintBits != 100 {
		t.Fatalf("peak = %d want 100", c.PeakFootprintBits)
	}
	if c.Windows != 2 {
		t.Fatalf("windows = %d want 2", c.Windows)
	}
	if c.FootprintBits != 0 {
		t.Fatal("footprint not reset after EndWindow")
	}
}

func TestMergeAndAccesses(t *testing.T) {
	a := Counters{TableWrites: 3, TableReads: 2, PeakFootprintBits: 10, Windows: 1, RowsComputed: 4, RowsSkipped: 1}
	b := Counters{TableWrites: 1, TableReads: 7, PeakFootprintBits: 20, Windows: 2}
	a.Merge(&b)
	if a.TableWrites != 4 || a.TableReads != 9 || a.Windows != 3 {
		t.Fatalf("merge sums wrong: %+v", a)
	}
	if a.PeakFootprintBits != 20 {
		t.Fatalf("merge peak = %d want 20", a.PeakFootprintBits)
	}
	if a.Accesses() != 13 {
		t.Fatalf("accesses = %d want 13", a.Accesses())
	}
}

func TestReset(t *testing.T) {
	c := Counters{TableWrites: 1, TrackWindows: true}
	c.AddFootprint(3)
	c.EndWindow()
	c.Reset()
	if c.TableWrites != 0 || c.Windows != 0 || c.TrackWindows || c.WindowStats != nil {
		t.Fatalf("reset incomplete: %+v", c)
	}
}

func TestTrackWindows(t *testing.T) {
	var c Counters
	c.TrackWindows = true
	c.AddWrite(10, 4)
	c.AddFootprint(100)
	c.EndWindow()
	c.AddWrite(5, 4)
	c.AddRead(2, 4)
	c.AddFootprint(40)
	c.EndWindow()
	if len(c.WindowStats) != 2 {
		t.Fatalf("window stats %d want 2", len(c.WindowStats))
	}
	if c.WindowStats[0] != (WindowStat{FootprintBits: 100, Accesses: 10, TrafficBytes: 40}) {
		t.Fatalf("first window %+v", c.WindowStats[0])
	}
	if c.WindowStats[1] != (WindowStat{FootprintBits: 40, Accesses: 7, TrafficBytes: 28}) {
		t.Fatalf("second window %+v", c.WindowStats[1])
	}
}

func TestNoTrackWindowsKeepsNoStats(t *testing.T) {
	var c Counters
	c.AddWrite(10, 8)
	c.EndWindow()
	if c.WindowStats != nil {
		t.Fatal("window stats recorded without TrackWindows")
	}
}

func TestStringContainsFields(t *testing.T) {
	c := Counters{Windows: 2, TableWrites: 3, TableReads: 4, PeakFootprintBits: 5, RowsComputed: 6, RowsSkipped: 1}
	s := c.String()
	for _, want := range []string{"windows=2", "writes=3", "reads=4", "5bits", "6/7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
