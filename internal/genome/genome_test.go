package genome

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(10000))
	b := Generate(DefaultConfig(10000))
	if !bytes.Equal(a.Seq, b.Seq) {
		t.Fatal("same seed produced different genomes")
	}
	c := Generate(Config{Length: 10000, Seed: 2})
	if bytes.Equal(a.Seq, c.Seq) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestGenerateLengthAndAlphabet(t *testing.T) {
	g := Generate(DefaultConfig(5000))
	if len(g.Seq) != 5000 {
		t.Fatalf("length %d want 5000", len(g.Seq))
	}
	for i, b := range g.Seq {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("non-ACGT byte %q at %d", b, i)
		}
	}
}

func TestGenerateGCBias(t *testing.T) {
	cfg := DefaultConfig(200000)
	cfg.RepeatFraction = 0
	g := Generate(cfg)
	gc := GCContent(g.Seq)
	if math.Abs(gc-0.41) > 0.01 {
		t.Fatalf("GC %f want ~0.41", gc)
	}
}

func TestGenerateRepeatsCreateDuplicates(t *testing.T) {
	// With repeats on, some 64-mers must occur more than once; with
	// repeats off at this scale, duplicate 64-mers are vanishingly rare.
	count64 := func(seq []byte) int {
		seen := map[string]bool{}
		dup := 0
		for i := 0; i+64 <= len(seq); i += 16 {
			s := string(seq[i : i+64])
			if seen[s] {
				dup++
			}
			seen[s] = true
		}
		return dup
	}
	with := Generate(Config{Length: 100000, RepeatFraction: 0.4, RepeatUnit: 600, Seed: 3})
	without := Generate(Config{Length: 100000, RepeatFraction: 0, Seed: 3})
	if count64(with.Seq) == 0 {
		t.Fatal("repeat genome has no duplicated 64-mers")
	}
	if count64(without.Seq) != 0 {
		t.Fatal("repeat-free genome has duplicated 64-mers")
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if g := Generate(Config{Length: 0}); len(g.Seq) != 0 {
		t.Fatal("zero length")
	}
	g := Generate(Config{Length: 30, RepeatFraction: 0.5, RepeatUnit: 100, Seed: 1})
	if len(g.Seq) != 30 {
		t.Fatal("tiny genome with oversized repeat unit")
	}
}

func TestGCContent(t *testing.T) {
	if GCContent(nil) != 0 {
		t.Fatal("empty GC")
	}
	if got := GCContent([]byte("GGCC")); got != 1 {
		t.Fatalf("GC = %f", got)
	}
	if got := GCContent([]byte("GCat")); got != 0.5 {
		t.Fatalf("GC = %f", got)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "chr1", Seq: bytes.Repeat([]byte("ACGT"), 50)},
		{Name: "chr2", Seq: []byte("GATTACA")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "chr1" || back[1].Name != "chr2" {
		t.Fatalf("records %+v", back)
	}
	if !bytes.Equal(back[0].Seq, recs[0].Seq) || !bytes.Equal(back[1].Seq, recs[1].Seq) {
		t.Fatal("sequence mismatch after round trip")
	}
}

func TestReadFASTAHeaderWithDescription(t *testing.T) {
	recs, err := ReadFASTA(strings.NewReader(">chr1 some description here\nACGT\nACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Name != "chr1" || string(recs[0].Seq) != "ACGTACGT" {
		t.Fatalf("%+v", recs[0])
	}
}

func TestReadFASTARejectsHeaderlessSequence(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Fatal("accepted sequence before header")
	}
}
