// Package genome synthesizes reference genomes and reads/writes FASTA.
//
// The paper evaluates on reads simulated from the human genome; this
// package is the substitution substrate: it generates synthetic references
// with repeat structure (segmental duplications and tandem repeats), which
// is what makes candidate generation produce both true and false mapping
// locations — the property the alignment benchmarks actually depend on.
package genome

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Record is one named sequence.
type Record struct {
	Name string
	Seq  []byte
}

// Config controls synthetic genome generation.
type Config struct {
	// Length of the generated sequence in bases.
	Length int
	// GC is the target GC fraction (0..1); 0 means 0.5.
	GC float64
	// RepeatFraction is the fraction of the genome covered by repeat
	// copies (segmental duplications), 0..0.9.
	RepeatFraction float64
	// RepeatUnit is the mean length of one repeat copy.
	RepeatUnit int
	// RepeatDivergence is the per-base mutation rate applied to each
	// repeat copy, so copies are near- but not exact duplicates.
	RepeatDivergence float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultConfig gives a human-like composition at small scale: 41% GC,
// a third of the sequence in diverged repeat copies.
func DefaultConfig(length int) Config {
	return Config{
		Length:           length,
		GC:               0.41,
		RepeatFraction:   0.33,
		RepeatUnit:       800,
		RepeatDivergence: 0.03,
		Seed:             1,
	}
}

// Generate builds a synthetic reference.
func Generate(cfg Config) Record {
	if cfg.Length <= 0 {
		return Record{Name: "synthetic", Seq: nil}
	}
	if cfg.GC <= 0 || cfg.GC >= 1 {
		cfg.GC = 0.5
	}
	if cfg.RepeatUnit <= 0 {
		cfg.RepeatUnit = 800
	}
	if cfg.RepeatFraction < 0 {
		cfg.RepeatFraction = 0
	}
	if cfg.RepeatFraction > 0.9 {
		cfg.RepeatFraction = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := make([]byte, cfg.Length)
	for i := range seq {
		seq[i] = randBase(rng, cfg.GC)
	}
	// Paste diverged repeat copies over the background until the target
	// fraction is covered.
	covered := 0
	target := int(float64(cfg.Length) * cfg.RepeatFraction)
	for covered < target {
		unit := cfg.RepeatUnit/2 + rng.Intn(cfg.RepeatUnit+1)
		if unit >= cfg.Length/2 {
			unit = cfg.Length / 2
		}
		if unit < 10 {
			break
		}
		src := rng.Intn(cfg.Length - unit)
		dst := rng.Intn(cfg.Length - unit)
		for i := 0; i < unit; i++ {
			b := seq[src+i]
			if rng.Float64() < cfg.RepeatDivergence {
				b = substitute(rng, b)
			}
			seq[dst+i] = b
		}
		covered += unit
	}
	return Record{Name: fmt.Sprintf("synthetic_%d", cfg.Length), Seq: seq}
}

func randBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return 'G'
		}
		return 'C'
	}
	if rng.Intn(2) == 0 {
		return 'A'
	}
	return 'T'
}

func substitute(rng *rand.Rand, b byte) byte {
	const alpha = "ACGT"
	for {
		c := alpha[rng.Intn(4)]
		if c != b {
			return c
		}
	}
}

// GCContent returns the fraction of G/C bases in seq (0 for empty).
func GCContent(seq []byte) float64 {
	if len(seq) == 0 {
		return 0
	}
	n := 0
	for _, b := range seq {
		switch b {
		case 'G', 'C', 'g', 'c':
			n++
		}
	}
	return float64(n) / float64(len(seq))
}

// WriteFASTA writes records in 70-column FASTA.
func WriteFASTA(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		for off := 0; off < len(r.Seq); off += 70 {
			end := off + 70
			if end > len(r.Seq) {
				end = len(r.Seq)
			}
			if _, err := bw.Write(r.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA records.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			recs = append(recs, Record{Name: strings.Fields(text[1:])[0]})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("genome: line %d: sequence before header", line)
		}
		cur.Seq = append(cur.Seq, []byte(text)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
