package baseline

import (
	"math/rand"
	"testing"

	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/stats"
	"genasm/internal/swg"
)

func randCodes(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func mutateCodes(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, byte(rng.Intn(4)))
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, byte(rng.Intn(4)))
		default:
			out = append(out, b)
		}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{W: 0, O: 0, InitialK: 1},
		{W: 65, O: 0, InitialK: 1},
		{W: 64, O: 64, InitialK: 1},
		{W: 64, O: 0, InitialK: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestWindowMatchesGoldStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 300; iter++ {
		m := 1 + rng.Intn(64)
		p := randCodes(rng, m)
		var tx []byte
		if iter%2 == 0 {
			tx = randCodes(rng, rng.Intn(80))
		} else {
			tx = mutateCodes(rng, p, 0.25)
		}
		wr, err := a.AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		wantD, _, _ := swg.PrefixAlign(dna.DecodeSeq(p), dna.DecodeSeq(tx))
		if wr.Distance != wantD {
			t.Fatalf("iter %d: distance %d want %d", iter, wr.Distance, wantD)
		}
		if err := wr.Cigar.Check(dna.DecodeSeq(p), dna.DecodeSeq(tx[:wr.TextUsed])); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// The decisive cross-validation: the independent unimproved implementation
// must produce byte-identical alignments to the improved one.
func TestBaselineMatchesImprovedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 300; iter++ {
		m := 1 + rng.Intn(64)
		p := randCodes(rng, m)
		tx := mutateCodes(rng, p, 0.3)
		if len(tx) > 80 {
			tx = tx[:80]
		}
		got, err := b.AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := imp.AlignWindow(p, tx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance || got.TextUsed != want.TextUsed ||
			got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("iter %d: baseline %d %q vs improved %d %q",
				iter, got.Distance, got.Cigar, want.Distance, want.Cigar)
		}
	}
}

func TestBaselinePipelineMatchesImproved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, _ := New(DefaultConfig())
	imp, _ := core.New(core.DefaultConfig())
	for iter := 0; iter < 10; iter++ {
		origin := randCodes(rng, 600)
		read := mutateCodes(rng, origin, 0.1)
		region := append(append([]byte{}, origin...), randCodes(rng, 80)...)
		got, err := b.AlignEncoded(read, region)
		if err != nil {
			t.Fatal(err)
		}
		want, err := imp.AlignEncoded(read, region)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance || got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("iter %d: pipelines diverge: %d vs %d", iter, got.Distance, want.Distance)
		}
	}
}

func TestWideWindowRejected(t *testing.T) {
	a, _ := New(DefaultConfig())
	if _, err := a.AlignWindow(make([]byte, 65), nil); err == nil {
		t.Fatal("accepted 65-wide window")
	}
}

func TestCountersCountEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, _ := New(DefaultConfig())
	var c stats.Counters
	a.SetCounters(&c)
	p := randCodes(rng, 64)
	tx := mutateCodes(rng, p, 0.1)
	if len(tx) > 64 {
		tx = tx[:64]
	}
	if _, err := a.AlignWindow(p, tx); err != nil {
		t.Fatal(err)
	}
	k := DefaultConfig().InitialK
	wantWrites := uint64(4 * (k + 1) * len(tx))
	if c.TableWrites != wantWrites {
		t.Fatalf("writes %d want %d", c.TableWrites, wantWrites)
	}
	if c.PeakFootprintBits != wantWrites*64 {
		t.Fatalf("footprint %d want %d", c.PeakFootprintBits, wantWrites*64)
	}
	if c.TableReads == 0 {
		t.Fatal("traceback read nothing")
	}
	if c.RowsSkipped != 0 {
		t.Fatal("baseline must not skip rows")
	}
}

func TestEmptyPattern(t *testing.T) {
	a, _ := New(DefaultConfig())
	wr, err := a.AlignWindow(nil, []byte{0, 1, 2})
	if err != nil || wr.Distance != 0 || wr.TextUsed != 0 {
		t.Fatalf("%+v err=%v", wr, err)
	}
}
