// Package baseline implements GenASM *without* the paper's improvements,
// following the MICRO 2020 formulation: the distance calculation is
// text-major (all error levels advance one text character at a time, as the
// hardware pipeline does), every DP entry stores all four edge bitvectors
// (match, substitution, deletion, insertion), all k+1 error levels are
// always computed, and nothing is banded.
//
// It is deliberately implemented independently from internal/core — the two
// packages cross-validate each other in tests (identical distances and
// alignments), and the paper's E1-E4 experiments compare their memory
// behaviour and speed.
package baseline

import (
	"fmt"

	"genasm/internal/cigar"
	"genasm/internal/core"
	"genasm/internal/dna"
	"genasm/internal/stats"
)

// Config mirrors the improved aligner's window geometry.
type Config struct {
	W        int // pattern window size (1..64; the unimproved kernel is single-word)
	O        int // window overlap
	InitialK int // per-window error budget, doubled on failure
}

// DefaultConfig matches the improved aligner's defaults (W=64, O=24, k=12).
func DefaultConfig() Config { return Config{W: 64, O: 24, InitialK: 12} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.W < 1 || c.W > 64 {
		return fmt.Errorf("baseline: window size %d outside [1,64]", c.W)
	}
	if c.O < 0 || c.O >= c.W {
		return fmt.Errorf("baseline: overlap %d outside [0,%d)", c.O, c.W)
	}
	if c.InitialK < 1 || c.InitialK > c.W {
		return fmt.Errorf("baseline: initial error budget %d outside [1,%d]", c.InitialK, c.W)
	}
	return nil
}

// Aligner is the unimproved GenASM aligner. Not safe for concurrent use.
type Aligner struct {
	cfg      Config
	counters *stats.Counters
	pRev     []byte
	tRev     []byte
	rows     [][]uint64
	col      []uint64
}

// New returns an Aligner for cfg.
func New(cfg Config) (*Aligner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aligner{cfg: cfg}, nil
}

// SetCounters attaches memory-behaviour instrumentation (nil disables).
func (a *Aligner) SetCounters(c *stats.Counters) { a.counters = c }

// Align aligns query against the candidate reference region (raw ASCII).
func (a *Aligner) Align(query, ref []byte) (core.Result, error) {
	return a.AlignEncoded(dna.EncodeSeq(query), dna.EncodeSeq(ref))
}

// AlignEncoded aligns pre-encoded base-code sequences using the shared
// GenASM windowing pipeline.
func (a *Aligner) AlignEncoded(query, ref []byte) (core.Result, error) {
	return core.AlignWindowed(query, ref, a.cfg.W, a.cfg.O, a.AlignWindow)
}

const (
	edgeM = 0
	edgeS = 1
	edgeD = 2
	edgeI = 3
)

// AlignWindow aligns one pattern window against one text window (base
// codes, forward orientation) with the unimproved algorithm.
func (a *Aligner) AlignWindow(p, t []byte) (core.WindowResult, error) {
	m, n := len(p), len(t)
	if m == 0 {
		return core.WindowResult{}, nil
	}
	if m > 64 {
		return core.WindowResult{}, fmt.Errorf("baseline: window %d wider than one word", m)
	}
	a.pRev = reverseInto(a.pRev[:0], p)
	a.tRev = reverseInto(a.tRev[:0], t)

	var high uint64
	if m < 64 {
		high = ^uint64(0) << uint(m)
	}
	var pm [dna.Alphabet]uint64
	for c := range pm {
		pm[c] = ^uint64(0)
	}
	for j, pc := range a.pRev {
		if pc != dna.N {
			pm[pc] &^= uint64(1) << uint(j)
		}
	}
	initRow := func(d int) uint64 {
		if d >= 64 {
			return high
		}
		return (^uint64(0) << uint(d)) | high
	}

	k := a.cfg.InitialK
	if k > m {
		k = m
	}
	for {
		dStar := a.dc(pm[:], initRow, high, n, m, k)
		a.counters.AddRows(uint64(k+1), 0)
		if dStar >= 0 {
			cg, used, err := a.traceback(pm[:], n, m, dStar)
			a.counters.EndWindow()
			if err != nil {
				return core.WindowResult{}, err
			}
			if got := cg.EditCost(); got != dStar {
				return core.WindowResult{}, fmt.Errorf("baseline: traceback cost %d != distance %d", got, dStar)
			}
			return core.WindowResult{Distance: dStar, Cigar: cg, TextUsed: used}, nil
		}
		a.counters.EndWindow()
		if k >= m {
			return core.WindowResult{}, fmt.Errorf("baseline: window unsolved at k=m=%d", m)
		}
		k *= 2
		if k > m {
			k = m
		}
	}
}

// dc runs the text-major unimproved distance calculation, filling a.rows
// with four edge words per (i, d) entry. It returns the minimal error level
// whose automaton accepts after the full text, or -1.
func (a *Aligner) dc(pm []uint64, initRow func(int) uint64, high uint64, n, m, k int) int {
	if cap(a.col) < k+1 {
		a.col = make([]uint64, k+1)
	}
	R := a.col[:k+1]
	for d := 0; d <= k; d++ {
		R[d] = initRow(d)
	}
	for len(a.rows) <= k {
		a.rows = append(a.rows, nil)
	}
	for d := 0; d <= k; d++ {
		if cap(a.rows[d]) < 4*n {
			a.rows[d] = make([]uint64, 4*n)
		}
		a.rows[d] = a.rows[d][:4*n]
	}
	for i := 1; i <= n; i++ {
		pmt := pm[a.tRev[i-1]]
		prevOld := R[0] // R[d-1] at text position i-1
		M := R[0]<<1 | pmt
		R[0] = M | high
		e := a.rows[0][4*(i-1):]
		e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, ^uint64(0), ^uint64(0), ^uint64(0)
		a.counters.AddWrite(4, 8)
		a.counters.AddFootprint(4 * 64)
		for d := 1; d <= k; d++ {
			oldRd := R[d]
			M := oldRd<<1 | pmt
			S := prevOld << 1
			D := R[d-1] << 1 // R[d-1] already advanced to text position i
			I := prevOld
			R[d] = (M & S & D & I) | high
			e := a.rows[d][4*(i-1):]
			e[edgeM], e[edgeS], e[edgeD], e[edgeI] = M, S, D, I
			a.counters.AddWrite(4, 8)
			a.counters.AddFootprint(4 * 64)
			prevOld = oldRd
		}
	}
	for d := 0; d <= k; d++ {
		if R[d]>>uint(m-1)&1 == 0 {
			return d
		}
	}
	return -1
}

// traceback mirrors the improved traceback's edge priority (match,
// substitution, deletion, insertion) but reads the stored edge vectors
// directly, as GenASM-TB does.
func (a *Aligner) traceback(pm []uint64, n, m, dStar int) (cigar.Cigar, int, error) {
	var cg cigar.Cigar
	i, j, d := n, m-1, dStar
	edge := func(e int) uint64 {
		a.counters.AddRead(1, 8)
		return a.rows[d][4*(i-1)+e] >> uint(j) & 1
	}
	for j >= 0 {
		if i >= 1 && edge(edgeM) == 0 {
			cg = cg.Append(cigar.Match, 1)
			i, j = i-1, j-1
			continue
		}
		if d >= 1 {
			if i >= 1 {
				if edge(edgeS) == 0 {
					cg = cg.Append(cigar.Mismatch, 1)
					i, j, d = i-1, j-1, d-1
					continue
				}
				if edge(edgeD) == 0 {
					cg = cg.Append(cigar.Ins, 1)
					j, d = j-1, d-1
					continue
				}
				if edge(edgeI) == 0 {
					cg = cg.Append(cigar.Del, 1)
					i, d = i-1, d-1
					continue
				}
			} else if j < d {
				cg = cg.Append(cigar.Ins, 1)
				j, d = j-1, d-1
				continue
			}
		}
		return nil, 0, fmt.Errorf("baseline: traceback stuck at i=%d j=%d d=%d", i, j, d)
	}
	return cg, n - i, nil
}

func reverseInto(dst, src []byte) []byte {
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, src[i])
	}
	return dst
}
