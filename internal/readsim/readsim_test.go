package readsim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"genasm/internal/genome"
	"genasm/internal/swg"
)

func testRef(n int) []byte {
	return genome.Generate(genome.DefaultConfig(n)).Seq
}

func TestSimulateDeterministic(t *testing.T) {
	ref := testRef(50000)
	a, err := Simulate(ref, 10, PacBioCLR(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(ref, 10, PacBioCLR(), 7)
	for i := range a {
		if !bytes.Equal(a[i].Seq, b[i].Seq) || a[i].Name != b[i].Name {
			t.Fatal("same seed produced different reads")
		}
	}
}

func TestSimulateGroundTruthDistance(t *testing.T) {
	// The true edit distance between a read and its origin must be at
	// most the number of injected errors (some errors can cancel).
	ref := testRef(20000)
	p := PacBioCLR()
	p.MeanLength, p.LengthSD = 800, 100
	reads, err := Simulate(ref, 30, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		tpl := ref[r.Pos : r.Pos+r.RefSpan]
		read := r.Seq
		if r.RevComp {
			read = revComp(read)
		}
		d := swg.EditDistance(read, tpl)
		if d > r.Errors {
			t.Fatalf("read %d: distance %d > injected errors %d", i, d, r.Errors)
		}
		if r.Errors > 0 && d == 0 {
			t.Fatalf("read %d: injected %d errors but distance 0", i, r.Errors)
		}
	}
}

func TestSimulateErrorRateCloseToTarget(t *testing.T) {
	ref := testRef(200000)
	p := PacBioCLR()
	p.MeanLength, p.LengthSD, p.ErrorRateSD = 5000, 0, 0
	reads, err := Simulate(ref, 40, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	totErr, totLen := 0, 0
	for _, r := range reads {
		totErr += r.Errors
		totLen += r.RefSpan
	}
	rate := float64(totErr) / float64(totLen)
	if math.Abs(rate-0.10) > 0.01 {
		t.Fatalf("realized error rate %f want ~0.10", rate)
	}
}

func TestSimulateLengths(t *testing.T) {
	ref := testRef(100000)
	p := PacBioCLR()
	p.MeanLength, p.LengthSD = 2000, 400
	reads, err := Simulate(ref, 50, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0
	for _, r := range reads {
		if r.RefSpan < p.MinLength {
			t.Fatalf("read span %d below minimum", r.RefSpan)
		}
		if len(r.Seq) != len(r.Qual) {
			t.Fatal("quality length mismatch")
		}
		mean += r.RefSpan
	}
	mean /= len(reads)
	if mean < 1700 || mean > 2300 {
		t.Fatalf("mean span %d want ~2000", mean)
	}
}

func TestQualityTracksErrors(t *testing.T) {
	// Erroneous bases draw from a lower quality distribution, so reads
	// at 20% error must have lower mean quality than reads at 1%.
	ref := testRef(100000)
	meanQ := func(rate float64) float64 {
		p := PacBioCLR()
		p.MeanLength, p.LengthSD = 3000, 0
		p.ErrorRate, p.ErrorRateSD = rate, 0
		reads, err := Simulate(ref, 20, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		tot, n := 0.0, 0
		for _, r := range reads {
			for _, q := range r.Qual {
				tot += float64(q - 33)
				n++
			}
		}
		return tot / float64(n)
	}
	noisy, clean := meanQ(0.20), meanQ(0.01)
	if noisy >= clean {
		t.Fatalf("mean quality at 20%% error (%f) not below 1%% error (%f)", noisy, clean)
	}
}

func TestSimulateRevCompFraction(t *testing.T) {
	ref := testRef(100000)
	p := PacBioCLR()
	p.MeanLength, p.LengthSD = 500, 0
	reads, err := Simulate(ref, 200, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := 0
	for _, r := range reads {
		if r.RevComp {
			rc++
		}
	}
	if rc < 60 || rc > 140 {
		t.Fatalf("revcomp count %d/200, want ~100", rc)
	}
}

func TestValidate(t *testing.T) {
	bad := PacBioCLR()
	bad.SubFrac = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted fractions summing over 1")
	}
	bad = PacBioCLR()
	bad.ErrorRate = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted 90% error rate")
	}
	if err := Illumina().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRefTooShort(t *testing.T) {
	if _, err := Simulate([]byte("ACGT"), 1, PacBioCLR(), 1); err == nil {
		t.Fatal("accepted reference shorter than min read")
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	ref := testRef(20000)
	p := PacBioCLR()
	p.MeanLength, p.LengthSD = 300, 50
	reads, err := Simulate(ref, 5, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reads) {
		t.Fatalf("%d records, want %d", len(back), len(reads))
	}
	for i := range back {
		if back[i].Name != reads[i].Name || !bytes.Equal(back[i].Seq, reads[i].Seq) ||
			!bytes.Equal(back[i].Qual, reads[i].Qual) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadFASTQMalformed(t *testing.T) {
	cases := []string{
		"not a header\nACGT\n+\nIIII\n",
		"@r1\nACGT\n+\nIII\n", // quality too short
		"@r1\nACGT\nIIII\n",   // missing separator
		"@r1\nACGT\n+\n",      // truncated
	}
	for i, c := range cases {
		if _, err := ReadFASTQ(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted malformed FASTQ", i)
		}
	}
}

func TestIlluminaProfileShape(t *testing.T) {
	ref := testRef(50000)
	reads, err := Simulate(ref, 50, Illumina(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if r.RefSpan != 150 {
			t.Fatalf("illumina span %d want 150", r.RefSpan)
		}
		// Substitution-dominated: length changes are rare.
		if len(r.Seq) < 145 || len(r.Seq) > 155 {
			t.Fatalf("illumina read length %d implausible", len(r.Seq))
		}
	}
}
