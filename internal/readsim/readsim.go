// Package readsim simulates sequencing reads with a PBSIM2-like generative
// model (Ono et al., Bioinformatics 2020): per-read accuracy drawn around a
// target mean, indel-dominated error composition for long reads, and a
// quality-score model whose per-base scores track the local error process.
//
// The paper's workload is 500 PacBio reads of length 10 kb at PBSIM2's
// default accuracy; Profile PacBioCLR reproduces that shape.
package readsim

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"genasm/internal/dna"
	"genasm/internal/genome"
)

// Profile is an error-model preset.
type Profile struct {
	// MeanLength and LengthSD describe the read-length distribution
	// (normal, truncated at MinLength).
	MeanLength int
	LengthSD   int
	MinLength  int
	// ErrorRate is the mean per-base error rate; each read draws its own
	// rate from a normal with ErrorRateSD.
	ErrorRate   float64
	ErrorRateSD float64
	// SubFrac/InsFrac/DelFrac split the error rate by kind and must sum
	// to 1.
	SubFrac, InsFrac, DelFrac float64
	// RevCompFrac is the fraction of reads drawn from the reverse
	// strand.
	RevCompFrac float64
}

// PacBioCLR mirrors PBSIM2's continuous-long-read defaults at the paper's
// scale: ~10 kb reads around 10% error, insertion-dominated.
func PacBioCLR() Profile {
	return Profile{
		MeanLength: 10000, LengthSD: 2000, MinLength: 100,
		ErrorRate: 0.10, ErrorRateSD: 0.02,
		SubFrac: 0.10, InsFrac: 0.60, DelFrac: 0.30,
		RevCompFrac: 0.5,
	}
}

// Illumina mirrors a short-read profile: 150 bp, 1% error, almost all
// substitutions.
func Illumina() Profile {
	return Profile{
		MeanLength: 150, LengthSD: 0, MinLength: 50,
		ErrorRate: 0.01, ErrorRateSD: 0.002,
		SubFrac: 0.94, InsFrac: 0.03, DelFrac: 0.03,
		RevCompFrac: 0.5,
	}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.MeanLength < 1 || p.MinLength < 1 {
		return fmt.Errorf("readsim: invalid lengths %d/%d", p.MeanLength, p.MinLength)
	}
	if p.ErrorRate < 0 || p.ErrorRate > 0.5 {
		return fmt.Errorf("readsim: error rate %g outside [0,0.5]", p.ErrorRate)
	}
	if s := p.SubFrac + p.InsFrac + p.DelFrac; s < 0.999 || s > 1.001 {
		return fmt.Errorf("readsim: error fractions sum to %g, want 1", s)
	}
	if p.RevCompFrac < 0 || p.RevCompFrac > 1 {
		return fmt.Errorf("readsim: revcomp fraction %g outside [0,1]", p.RevCompFrac)
	}
	return nil
}

// Read is one simulated read with its ground truth.
type Read struct {
	Name string
	Seq  []byte // ASCII bases
	Qual []byte // Phred+33
	// Ground truth: the read was drawn from ref[Pos:Pos+RefSpan] on the
	// given strand (RevComp reads are reported in read orientation).
	Pos     int
	RefSpan int
	RevComp bool
	// Errors is the number of edit operations applied.
	Errors int
}

// Simulate draws n reads from ref deterministically under seed.
func Simulate(ref []byte, n int, p Profile, seed int64) ([]Read, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(ref) < p.MinLength {
		return nil, fmt.Errorf("readsim: reference (%d bp) shorter than minimum read (%d bp)", len(ref), p.MinLength)
	}
	rng := rand.New(rand.NewSource(seed))
	reads := make([]Read, 0, n)
	for i := 0; i < n; i++ {
		length := p.MeanLength
		if p.LengthSD > 0 {
			length = int(rng.NormFloat64()*float64(p.LengthSD)) + p.MeanLength
		}
		if length < p.MinLength {
			length = p.MinLength
		}
		if length > len(ref) {
			length = len(ref)
		}
		rate := p.ErrorRate
		if p.ErrorRateSD > 0 {
			rate += rng.NormFloat64() * p.ErrorRateSD
		}
		if rate < 0 {
			rate = 0
		}
		if rate > 0.45 {
			rate = 0.45
		}
		pos := rng.Intn(len(ref) - length + 1)
		template := ref[pos : pos+length]
		rc := rng.Float64() < p.RevCompFrac
		if rc {
			template = revComp(template)
		}
		seq, qual, errs := applyErrors(rng, template, rate, p)
		reads = append(reads, Read{
			Name:    fmt.Sprintf("read_%d_%d_%d_%c", i, pos, length, strandChar(rc)),
			Seq:     seq,
			Qual:    qual,
			Pos:     pos,
			RefSpan: length,
			RevComp: rc,
			Errors:  errs,
		})
	}
	return reads, nil
}

func strandChar(rc bool) byte {
	if rc {
		return '-'
	}
	return '+'
}

func revComp(s []byte) []byte {
	return dna.DecodeSeq(dna.ReverseComplement(dna.EncodeSeq(s)))
}

// applyErrors walks the template, emitting errors at the per-read rate.
// Quality scores follow a two-state process: high-quality baseline with
// noisy dips, and erroneous bases drawn from the low tail, which is how
// PBSIM2's quality model behaves at a distance.
func applyErrors(rng *rand.Rand, template []byte, rate float64, p Profile) ([]byte, []byte, int) {
	const alpha = "ACGT"
	seq := make([]byte, 0, len(template)+len(template)/8)
	qual := make([]byte, 0, cap(seq))
	errs := 0
	pushQ := func(erroneous bool) byte {
		q := 13.0 + rng.NormFloat64()*3.0 // CLR-like baseline Q13
		if erroneous {
			q = 6.0 + rng.NormFloat64()*2.0
		}
		if q < 2 {
			q = 2
		}
		if q > 40 {
			q = 40
		}
		return byte(q) + 33
	}
	subCut := rate * p.SubFrac
	insCut := rate * (p.SubFrac + p.InsFrac)
	delCut := rate
	for _, b := range template {
		r := rng.Float64()
		switch {
		case r < subCut:
			seq = append(seq, substituteBase(rng, b))
			qual = append(qual, pushQ(true))
			errs++
		case r < insCut:
			seq = append(seq, b, alpha[rng.Intn(4)])
			qual = append(qual, pushQ(false), pushQ(true))
			errs++
		case r < delCut:
			errs++
		default:
			seq = append(seq, b)
			qual = append(qual, pushQ(false))
		}
	}
	if len(seq) == 0 {
		seq = append(seq, template[0])
		qual = append(qual, pushQ(false))
	}
	return seq, qual, errs
}

func substituteBase(rng *rand.Rand, b byte) byte {
	const alpha = "ACGT"
	for {
		c := alpha[rng.Intn(4)]
		if c != b {
			return c
		}
	}
}

// WriteFASTQ writes reads as FASTQ.
func WriteFASTQ(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for _, r := range reads {
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.Name, r.Seq, r.Qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses FASTQ records (sequence and quality on single lines, as
// produced by WriteFASTQ and virtually all modern tools).
func ReadFASTQ(r io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	var reads []Read
	for {
		header, ok, err := nextLine(sc)
		if err != nil {
			return nil, err
		}
		if !ok {
			return reads, nil
		}
		if !strings.HasPrefix(header, "@") {
			return nil, fmt.Errorf("readsim: malformed FASTQ header %q", header)
		}
		seq, ok, err := nextLine(sc)
		if err != nil || !ok {
			return nil, fmt.Errorf("readsim: truncated FASTQ record %q", header)
		}
		plus, ok, err := nextLine(sc)
		if err != nil || !ok || !strings.HasPrefix(plus, "+") {
			return nil, fmt.Errorf("readsim: missing separator for %q", header)
		}
		qual, ok, err := nextLine(sc)
		if err != nil || !ok {
			return nil, fmt.Errorf("readsim: missing quality for %q", header)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("readsim: quality length %d != sequence length %d for %q",
				len(qual), len(seq), header)
		}
		reads = append(reads, Read{
			Name: strings.Fields(header[1:])[0],
			Seq:  []byte(seq),
			Qual: []byte(qual),
		})
	}
}

func nextLine(sc *bufio.Scanner) (string, bool, error) {
	for sc.Scan() {
		t := strings.TrimSpace(sc.Text())
		if t != "" {
			return t, true, nil
		}
	}
	return "", false, sc.Err()
}

// LoadReadsFile reads a FASTA or FASTQ reads file, sniffing the format
// from the path suffix (.fq / .fastq = FASTQ, anything else = FASTA).
// It is the one read-loading path shared by the CLIs, so format handling
// cannot drift between them.
func LoadReadsFile(path string) ([]Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".fq") || strings.HasSuffix(path, ".fastq") {
		return ReadFASTQ(f)
	}
	recs, err := genome.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	reads := make([]Read, len(recs))
	for i, r := range recs {
		reads[i] = Read{Name: r.Name, Seq: r.Seq}
	}
	return reads, nil
}
