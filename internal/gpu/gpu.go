// Package gpu models the execution of data-parallel kernels on a SIMT GPU.
//
// Go has no CUDA path, so the paper's A6000 experiments run on this
// simulator instead (see DESIGN.md "Substitutions"). The model captures the
// two effects the paper's GPU results hinge on:
//
//  1. Capacity: each thread block declares how much fast per-SM shared
//     memory it needs. Blocks whose DP working set fits run out of shared
//     memory; blocks whose working set does not fit (unimproved GenASM)
//     push that traffic to the L2/DRAM hierarchy, and shared-memory
//     capacity also bounds how many blocks an SM can run concurrently
//     (occupancy).
//  2. Throughput: per-block cycles are accounted from instruction and
//     memory-access counts, blocks are scheduled across SM slots, and
//     device-wide L2/DRAM bandwidth floors bound the makespan.
//
// The kernel's real computation executes on the host (across CPU workers),
// so simulated kernels produce bit-exact functional results while the cost
// model produces the timing.
package gpu

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
)

// DeviceConfig describes the modelled GPU.
type DeviceConfig struct {
	Name     string
	SMs      int
	ClockGHz float64
	WarpSize int
	// SharedMemPerSM is the shared-memory capacity of one SM in bytes.
	SharedMemPerSM int
	// MaxBlocksPerSM caps occupancy regardless of shared-memory use.
	MaxBlocksPerSM int
	// SharedWordsPerCycle is the per-SM shared-memory throughput in
	// 64-bit words per cycle (banked, conflict-free assumption).
	SharedWordsPerCycle float64
	// L2CostPerWord is the amortized per-word cycle cost a block pays
	// for an L2 access (latency partially hidden by other warps).
	L2CostPerWord float64
	// L2BytesPerCycle is the device-wide L2 bandwidth.
	L2BytesPerCycle float64
	// DRAMBytesPerCycle is the device-wide DRAM bandwidth.
	DRAMBytesPerCycle float64
}

// A6000 approximates an NVIDIA RTX A6000 (GA102): 84 SMs at 1.41 GHz,
// 100 KiB usable shared memory per SM, ~6 MiB L2 at ~2 TB/s, ~768 GB/s
// DRAM. This is the paper's evaluation GPU.
func A6000() DeviceConfig {
	return DeviceConfig{
		Name:                "A6000-model",
		SMs:                 84,
		ClockGHz:            1.41,
		WarpSize:            32,
		SharedMemPerSM:      100 << 10,
		MaxBlocksPerSM:      16,
		SharedWordsPerCycle: 16,
		L2CostPerWord:       4,
		L2BytesPerCycle:     1400,
		DRAMBytesPerCycle:   540,
	}
}

// A100 approximates an NVIDIA A100-SXM (GA100): 108 SMs at 1.41 GHz,
// 164 KiB shared memory per SM, 40 MiB L2, ~1.6 TB/s HBM2.
func A100() DeviceConfig {
	return DeviceConfig{
		Name:                "A100-model",
		SMs:                 108,
		ClockGHz:            1.41,
		WarpSize:            32,
		SharedMemPerSM:      164 << 10,
		MaxBlocksPerSM:      32,
		SharedWordsPerCycle: 16,
		L2CostPerWord:       3,
		L2BytesPerCycle:     3000,
		DRAMBytesPerCycle:   1100,
	}
}

// LaptopGPU approximates a mobile mid-range part (e.g. an RTX 3060
// Laptop): 30 SMs, 100 KiB shared per SM, narrow memory system. Useful to
// study how the improvements behave when bandwidth is scarce.
func LaptopGPU() DeviceConfig {
	return DeviceConfig{
		Name:                "laptop-gpu-model",
		SMs:                 30,
		ClockGHz:            1.28,
		WarpSize:            32,
		SharedMemPerSM:      100 << 10,
		MaxBlocksPerSM:      16,
		SharedWordsPerCycle: 16,
		L2CostPerWord:       5,
		L2BytesPerCycle:     700,
		DRAMBytesPerCycle:   230,
	}
}

// Validate reports whether the configuration is usable.
func (c DeviceConfig) Validate() error {
	if c.SMs < 1 || c.WarpSize < 1 || c.MaxBlocksPerSM < 1 {
		return fmt.Errorf("gpu: invalid geometry %+v", c)
	}
	if c.ClockGHz <= 0 || c.SharedWordsPerCycle <= 0 ||
		c.L2BytesPerCycle <= 0 || c.DRAMBytesPerCycle <= 0 || c.L2CostPerWord < 0 {
		return fmt.Errorf("gpu: invalid rates %+v", c)
	}
	if c.SharedMemPerSM < 1 {
		return fmt.Errorf("gpu: no shared memory")
	}
	return nil
}

// BlockCost is one thread block's resource usage, reported by the kernel.
type BlockCost struct {
	// ALUCycles is the block's warp-instruction count.
	ALUCycles uint64
	// SharedWords counts 64-bit-word accesses served by shared memory.
	SharedWords uint64
	// L2Words counts word accesses that spilled past shared memory.
	L2Words uint64
	// DRAMBytes is streamed input/output traffic (sequences, results).
	DRAMBytes uint64
	// SharedMemBytes is the block's static shared-memory allocation,
	// which determines occupancy.
	SharedMemBytes int
}

// LaunchStats summarizes one simulated kernel launch.
type LaunchStats struct {
	Device         string
	Blocks         int
	BlocksPerSM    int
	Slots          int
	MakespanCycles uint64
	// ComputeCycles is the sum of all block cycle costs.
	ComputeCycles uint64
	// L2FloorCycles / DRAMFloorCycles are the device-wide bandwidth
	// bounds; the makespan is at least each of them.
	L2FloorCycles   uint64
	DRAMFloorCycles uint64
	TotalShared     uint64 // words
	TotalL2         uint64 // words
	TotalDRAM       uint64 // bytes
	Seconds         float64
}

// Throughput returns blocks per second.
func (s LaunchStats) Throughput() float64 {
	if s.Seconds == 0 {
		return 0
	}
	return float64(s.Blocks) / s.Seconds
}

// Device is a reusable simulated GPU.
type Device struct {
	cfg DeviceConfig
}

// NewDevice validates the configuration and returns a Device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// blockCycles converts a cost record into block-resident cycles.
func (d *Device) blockCycles(bc BlockCost) uint64 {
	c := float64(bc.ALUCycles)
	c += float64(bc.SharedWords) / d.cfg.SharedWordsPerCycle
	c += float64(bc.L2Words) * d.cfg.L2CostPerWord
	return uint64(c)
}

// Launch simulates running n thread blocks of kernel fn. fn is invoked once
// per block index (concurrently, across host CPU workers) and must perform
// the block's real work and return its cost. sharedPerBlock is the kernel's
// static shared-memory allocation per block, used for occupancy; blocks may
// report a larger dynamic SharedMemBytes, in which case the maximum governs
// a conservative re-check.
func (d *Device) Launch(n int, sharedPerBlock int, fn func(block int) BlockCost) (LaunchStats, error) {
	if n < 0 {
		return LaunchStats{}, fmt.Errorf("gpu: negative block count")
	}
	if sharedPerBlock > d.cfg.SharedMemPerSM {
		return LaunchStats{}, fmt.Errorf("gpu: block shared allocation %d exceeds SM capacity %d",
			sharedPerBlock, d.cfg.SharedMemPerSM)
	}
	costs := make([]BlockCost, n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for i := range next {
				costs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	blocksPerSM := d.cfg.MaxBlocksPerSM
	if sharedPerBlock > 0 {
		if byShared := d.cfg.SharedMemPerSM / sharedPerBlock; byShared < blocksPerSM {
			blocksPerSM = byShared
		}
	}
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	slots := d.cfg.SMs * blocksPerSM

	st := LaunchStats{
		Device:      d.cfg.Name,
		Blocks:      n,
		BlocksPerSM: blocksPerSM,
		Slots:       slots,
	}
	// Greedy earliest-slot scheduling.
	h := make(slotHeap, slots)
	heap.Init(&h)
	for i := 0; i < n; i++ {
		bc := costs[i]
		cyc := d.blockCycles(bc)
		st.ComputeCycles += cyc
		st.TotalShared += bc.SharedWords
		st.TotalL2 += bc.L2Words
		st.TotalDRAM += bc.DRAMBytes
		end := h[0] + cyc
		h[0] = end
		heap.Fix(&h, 0)
		if end > st.MakespanCycles {
			st.MakespanCycles = end
		}
	}
	st.L2FloorCycles = uint64(float64(st.TotalL2*8) / d.cfg.L2BytesPerCycle)
	st.DRAMFloorCycles = uint64(float64(st.TotalDRAM) / d.cfg.DRAMBytesPerCycle)
	if st.L2FloorCycles > st.MakespanCycles {
		st.MakespanCycles = st.L2FloorCycles
	}
	if st.DRAMFloorCycles > st.MakespanCycles {
		st.MakespanCycles = st.DRAMFloorCycles
	}
	st.Seconds = float64(st.MakespanCycles) / (d.cfg.ClockGHz * 1e9)
	return st, nil
}

// slotHeap is a min-heap of slot finish times.
type slotHeap []uint64

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(uint64)) }
func (h *slotHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
