package gpu

import (
	"sync/atomic"
	"testing"
)

func smallDevice() DeviceConfig {
	return DeviceConfig{
		Name: "test-gpu", SMs: 4, ClockGHz: 1.0, WarpSize: 32,
		SharedMemPerSM: 64 << 10, MaxBlocksPerSM: 8,
		SharedWordsPerCycle: 16, L2CostPerWord: 4,
		L2BytesPerCycle: 1000, DRAMBytesPerCycle: 500,
	}
}

func TestValidate(t *testing.T) {
	if err := A6000().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := A6000()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted 0 SMs")
	}
	bad = A6000()
	bad.ClockGHz = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted 0 clock")
	}
	bad = A6000()
	bad.SharedMemPerSM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted no shared memory")
	}
}

func TestLaunchRunsEveryBlockExactlyOnce(t *testing.T) {
	d, err := NewDevice(smallDevice())
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var ran [n]atomic.Int32
	st, err := d.Launch(n, 0, func(i int) BlockCost {
		ran[i].Add(1)
		return BlockCost{ALUCycles: 100}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("block %d ran %d times", i, ran[i].Load())
		}
	}
	if st.Blocks != n {
		t.Fatalf("blocks %d", st.Blocks)
	}
}

func TestMakespanBounds(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	const n = 1000
	const per = 100
	st, err := d.Launch(n, 0, func(i int) BlockCost { return BlockCost{ALUCycles: per} })
	if err != nil {
		t.Fatal(err)
	}
	slots := uint64(st.Slots)
	lower := uint64(n) * per / slots
	upper := lower + per
	if st.MakespanCycles < lower || st.MakespanCycles > upper {
		t.Fatalf("makespan %d outside [%d,%d]", st.MakespanCycles, lower, upper)
	}
	if st.ComputeCycles != n*per {
		t.Fatalf("compute cycles %d want %d", st.ComputeCycles, n*per)
	}
}

func TestOccupancyLimitedByShared(t *testing.T) {
	cfg := smallDevice()
	d, _ := NewDevice(cfg)
	// 64 KiB per SM / 16 KiB per block = 4 blocks/SM.
	st, err := d.Launch(10, 16<<10, func(i int) BlockCost { return BlockCost{ALUCycles: 1} })
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksPerSM != 4 {
		t.Fatalf("blocksPerSM %d want 4", st.BlocksPerSM)
	}
	if st.Slots != 16 {
		t.Fatalf("slots %d want 16", st.Slots)
	}
	// Tiny allocation: capped by MaxBlocksPerSM.
	st, _ = d.Launch(10, 16, func(i int) BlockCost { return BlockCost{ALUCycles: 1} })
	if st.BlocksPerSM != cfg.MaxBlocksPerSM {
		t.Fatalf("blocksPerSM %d want %d", st.BlocksPerSM, cfg.MaxBlocksPerSM)
	}
}

func TestOversizedSharedAllocationRejected(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	if _, err := d.Launch(1, 1<<20, func(i int) BlockCost { return BlockCost{} }); err == nil {
		t.Fatal("accepted block larger than SM shared memory")
	}
}

func TestBandwidthFloors(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	// Heavy L2 traffic, trivial compute: makespan must hit the L2 floor.
	st, err := d.Launch(100, 0, func(i int) BlockCost {
		return BlockCost{ALUCycles: 1, L2Words: 0, DRAMBytes: 10_000_000}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFloor := uint64(100 * 10_000_000 / 500)
	if st.DRAMFloorCycles != wantFloor {
		t.Fatalf("DRAM floor %d want %d", st.DRAMFloorCycles, wantFloor)
	}
	if st.MakespanCycles < wantFloor {
		t.Fatalf("makespan %d below DRAM floor %d", st.MakespanCycles, wantFloor)
	}
}

func TestSharedVsL2Cost(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	shared, _ := d.Launch(64, 0, func(i int) BlockCost {
		return BlockCost{SharedWords: 1 << 20}
	})
	spilled, _ := d.Launch(64, 0, func(i int) BlockCost {
		return BlockCost{L2Words: 1 << 20}
	})
	if spilled.MakespanCycles <= shared.MakespanCycles {
		t.Fatalf("L2 traffic (%d cycles) not slower than shared (%d cycles)",
			spilled.MakespanCycles, shared.MakespanCycles)
	}
}

func TestLaunchDeterministic(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	run := func() LaunchStats {
		st, err := d.Launch(777, 4096, func(i int) BlockCost {
			return BlockCost{ALUCycles: uint64(10 + i%97), SharedWords: uint64(i % 13)}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic launch: %+v vs %+v", a, b)
	}
}

func TestZeroBlocks(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	st, err := d.Launch(0, 0, func(i int) BlockCost { return BlockCost{} })
	if err != nil || st.MakespanCycles != 0 || st.Seconds != 0 {
		t.Fatalf("%+v err=%v", st, err)
	}
}

func TestThroughputAndSeconds(t *testing.T) {
	d, _ := NewDevice(smallDevice())
	st, _ := d.Launch(32, 0, func(i int) BlockCost { return BlockCost{ALUCycles: 1000} })
	wantSec := float64(st.MakespanCycles) / 1e9
	if st.Seconds != wantSec {
		t.Fatalf("seconds %g want %g", st.Seconds, wantSec)
	}
	if st.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}
