// Package samfmt renders genasm map-align emissions as the standard
// read-mapping interchange formats: SAM (v1.6) records and PAF lines.
// It is the bridge between the Engine.MapAlign pipeline's internal
// MappedAlignment values and downstream tooling (samtools, paftools,
// IGV, ...): cmd/genasm-map and the HTTP server's streaming /map-align
// responses are both built on it.
//
// Conventions:
//
//   - Coordinates. A MappedAlignment aligns the read (reverse-complemented
//     for '-' strand candidates) against the forward-strand reference
//     slice starting at Candidate.Start; the alignment consumes
//     Result.RefConsumed reference bases. SAM POS is therefore
//     Candidate.Start+1 (1-based) and the PAF target interval is
//     [Candidate.Start, Candidate.Start+RefConsumed).
//   - CIGAR. Records carry the extended operation alphabet (=, X, I, D)
//     exactly as produced by internal/cigar; SAM v1.6 permits it, and it
//     round-trips losslessly through cigar.Parse.
//   - Strand. '-' strand records follow the SAM convention: FLAG 0x10 is
//     set, SEQ is the reverse complement of the read, and QUAL is
//     reversed, so SEQ always matches the forward reference.
//   - Unmapped reads (no candidate location) become FLAG 0x4 SAM records
//     with *-valued RNAME/POS/CIGAR. PAF has no unmapped record; they are
//     skipped there.
package samfmt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"genasm"
	"genasm/internal/cigar"
)

// Format selects an output format for a Writer.
type Format string

const (
	// SAM is the Sequence Alignment/Map text format (v1.6).
	SAM Format = "sam"
	// PAF is minimap2's Pairwise mApping Format.
	PAF Format = "paf"
)

// ParseFormat parses a user-supplied format name ("sam" or "paf",
// case-insensitive).
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "sam":
		return SAM, nil
	case "paf":
		return PAF, nil
	default:
		return "", fmt.Errorf("samfmt: unknown format %q (want sam or paf)", s)
	}
}

// SAM FLAG bits used by this package.
const (
	// FlagUnmapped marks a read with no candidate location (0x4).
	FlagUnmapped = 0x4
	// FlagRevComp marks a '-' strand alignment (0x10); SEQ/QUAL are
	// stored reverse-complemented / reversed.
	FlagRevComp = 0x10
	// FlagSecondary marks a non-best candidate alignment (0x100),
	// emitted under WithAllCandidates.
	FlagSecondary = 0x100
)

// Ref identifies one reference sequence in SAM/PAF coordinates.
type Ref struct {
	Name   string
	Length int
}

// Program describes the generating program for the SAM @PG header line.
// Zero-valued fields are omitted from the line.
type Program struct {
	Name        string // @PG ID and PN
	Version     string // @PG VN
	CommandLine string // @PG CL
}

// SAMHeader renders the SAM header: @HD, one @SQ per reference, and an
// optional @PG (emitted when pg.Name is set). The returned string ends
// with a newline.
func SAMHeader(refs []Ref, pg Program) string {
	var b strings.Builder
	b.WriteString("@HD\tVN:1.6\tSO:unsorted\n")
	for _, r := range refs {
		fmt.Fprintf(&b, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length)
	}
	if pg.Name != "" {
		fmt.Fprintf(&b, "@PG\tID:%s\tPN:%s", pg.Name, pg.Name)
		if pg.Version != "" {
			fmt.Fprintf(&b, "\tVN:%s", pg.Version)
		}
		if pg.CommandLine != "" {
			fmt.Fprintf(&b, "\tCL:%s", pg.CommandLine)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MapQ estimates a Phred-scaled mapping quality from the mapper's chain
// scores, minimap2-style: a read whose best candidate has no plausible
// rival maps with full confidence (60), and confidence degrades linearly
// with the runner-up's relative chain score down to 0 for an exact tie.
// A read with no positive best score gets 0.
func MapQ(best, second float64, candidates int) int {
	if best <= 0 {
		return 0
	}
	if candidates <= 1 || second <= 0 {
		return 60
	}
	q := 60 * (1 - second/best)
	if q < 0 {
		return 0
	}
	return int(q)
}

// SAMRecord renders one MappedAlignment as a SAM alignment line (no
// trailing newline). Unmapped emissions become FLAG 0x4 records; '-'
// strand emissions store SEQ/QUAL in forward-reference orientation; Rank
// > 0 emissions are flagged secondary with MAPQ 0. m.Err is returned
// as-is: a failed read has no SAM representation.
func SAMRecord(ref Ref, m genasm.MappedAlignment) (string, error) {
	if m.Err != nil {
		return "", m.Err
	}
	name := m.Read.Name
	if name == "" {
		name = "*"
	}
	if m.Unmapped {
		return fmt.Sprintf("%s\t%d\t*\t0\t0\t*\t*\t0\t0\t%s\t%s",
			name, FlagUnmapped, seqOrStar(m.Read.Seq), qualString(m.Read.Qual, len(m.Read.Seq), false)), nil
	}
	flag := 0
	seq := m.Read.Seq
	revved := false
	if m.Candidate.RevComp {
		flag |= FlagRevComp
		seq = genasm.ReverseComplement(seq)
		revved = true
	}
	mapq := MapQ(m.Candidate.Score, m.SecondaryScore, m.Candidates)
	if m.Rank > 0 {
		flag |= FlagSecondary
		mapq = 0
	}
	pos := m.Candidate.Start
	if pos < 0 {
		pos = 0
	}
	cg := m.Result.Cigar
	if cg == "" {
		cg = "*"
	}
	return fmt.Sprintf("%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t%s\tNM:i:%d\tAS:i:%d",
		name, flag, ref.Name, pos+1, mapq, cg,
		seqOrStar(seq), qualString(m.Read.Qual, len(m.Read.Seq), revved),
		m.Result.Distance, m.Result.Score), nil
}

// PAFRecord renders one MappedAlignment as a PAF line (no trailing
// newline). The second return is false for emissions PAF cannot
// represent (unmapped reads). m.Err is returned as-is.
func PAFRecord(ref Ref, m genasm.MappedAlignment) (string, bool, error) {
	if m.Err != nil {
		return "", false, m.Err
	}
	if m.Unmapped {
		return "", false, nil
	}
	strand := '+'
	if m.Candidate.RevComp {
		strand = '-'
	}
	tstart := m.Candidate.Start
	if tstart < 0 {
		tstart = 0
	}
	matches, blockLen := 0, 0
	if m.Result.Cigar != "" {
		cg, err := cigar.Parse(m.Result.Cigar)
		if err != nil {
			return "", false, fmt.Errorf("samfmt: read %q: %w", m.Read.Name, err)
		}
		for _, op := range cg {
			blockLen += op.Len
			if op.Kind == cigar.Match {
				matches += op.Len
			}
		}
	}
	mapq := MapQ(m.Candidate.Score, m.SecondaryScore, m.Candidates)
	tp := 'P'
	if m.Rank > 0 {
		mapq, tp = 0, 'S'
	}
	qlen := len(m.Read.Seq)
	line := fmt.Sprintf("%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tNM:i:%d\tAS:i:%d\ttp:A:%c",
		m.Read.Name, qlen, 0, qlen, strand, ref.Name, ref.Length,
		tstart, tstart+m.Result.RefConsumed, matches, blockLen, mapq,
		m.Result.Distance, m.Result.Score, tp)
	if m.Result.Cigar != "" {
		line += "\tcg:Z:" + m.Result.Cigar
	}
	return line, true, nil
}

// seqOrStar renders a SAM SEQ column ('*' when the sequence is absent).
func seqOrStar(seq []byte) string {
	if len(seq) == 0 {
		return "*"
	}
	return string(seq)
}

// qualString renders a SAM QUAL column: '*' when qualities are absent or
// disagree with the sequence length, reversed for '-' strand records.
func qualString(qual []byte, seqLen int, reverse bool) string {
	if len(qual) == 0 || len(qual) != seqLen {
		return "*"
	}
	if !reverse {
		return string(qual)
	}
	out := make([]byte, len(qual))
	for i, q := range qual {
		out[len(qual)-1-i] = q
	}
	return string(out)
}

// Writer streams MappedAlignments to an io.Writer in one Format. For SAM
// the header is written eagerly at construction; records follow in call
// order. Writer is not safe for concurrent use.
type Writer struct {
	bw     *bufio.Writer
	format Format
}

// NewWriter wraps w. For the SAM format the header (refs + pg) is
// buffered immediately; for PAF both header arguments are ignored.
func NewWriter(w io.Writer, format Format, refs []Ref, pg Program) *Writer {
	sw := &Writer{bw: bufio.NewWriter(w), format: format}
	if format == SAM {
		sw.bw.WriteString(SAMHeader(refs, pg))
	}
	return sw
}

// Write renders one emission. Emissions the format cannot represent
// (unmapped reads in PAF) are skipped silently; m.Err fails the call.
func (w *Writer) Write(ref Ref, m genasm.MappedAlignment) error {
	switch w.format {
	case PAF:
		line, ok, err := PAFRecord(ref, m)
		if err != nil || !ok {
			return err
		}
		w.bw.WriteString(line)
	default:
		line, err := SAMRecord(ref, m)
		if err != nil {
			return err
		}
		w.bw.WriteString(line)
	}
	return w.bw.WriteByte('\n')
}

// Flush writes any buffered output through to the underlying writer and
// reports the first error the buffer absorbed.
func (w *Writer) Flush() error { return w.bw.Flush() }
