package samfmt

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"genasm"
	"genasm/internal/cigar"
)

func TestSAMHeader(t *testing.T) {
	h := SAMHeader(
		[]Ref{{Name: "chr1", Length: 1000}, {Name: "chr2", Length: 500}},
		Program{Name: "genasm-map", Version: "1.0", CommandLine: "genasm-map -ref x.fa"},
	)
	want := "@HD\tVN:1.6\tSO:unsorted\n" +
		"@SQ\tSN:chr1\tLN:1000\n" +
		"@SQ\tSN:chr2\tLN:500\n" +
		"@PG\tID:genasm-map\tPN:genasm-map\tVN:1.0\tCL:genasm-map -ref x.fa\n"
	if h != want {
		t.Fatalf("header:\n%q\nwant:\n%q", h, want)
	}
	// No @PG without a program name; always newline-terminated.
	h = SAMHeader([]Ref{{Name: "r", Length: 1}}, Program{})
	if strings.Contains(h, "@PG") || !strings.HasSuffix(h, "\n") {
		t.Fatalf("headerless-program header %q", h)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"sam": SAM, "SAM": SAM, "paf": PAF, "Paf": PAF} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("bam"); err == nil {
		t.Fatal("ParseFormat accepted bam")
	}
}

func TestMapQ(t *testing.T) {
	cases := []struct {
		best, second float64
		candidates   int
		want         int
	}{
		{0, 0, 0, 0},        // no mapping evidence
		{100, 0, 1, 60},     // unique candidate
		{100, 50, 2, 30},    // runner-up at half the score
		{100, 100, 2, 0},    // exact tie
		{100, 200, 2, 0},    // corrupt ordering clamps at 0
		{100, 0.001, 5, 59}, // negligible runner-up
	}
	for _, c := range cases {
		if got := MapQ(c.best, c.second, c.candidates); got != c.want {
			t.Errorf("MapQ(%g, %g, %d) = %d want %d", c.best, c.second, c.candidates, got, c.want)
		}
	}
}

// mal builds a consistent forward-strand MappedAlignment for unit tests.
func mal() genasm.MappedAlignment {
	return genasm.MappedAlignment{
		Read:       genasm.Read{Name: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIHHHH")},
		Candidate:  genasm.CandidateRegion{Start: 9, End: 27, Score: 40},
		Candidates: 1,
		Result:     genasm.Result{Distance: 1, Score: 10, Cigar: "4=1X3=", RefConsumed: 8},
	}
}

func TestSAMRecordForward(t *testing.T) {
	rec, err := SAMRecord(Ref{Name: "chr1", Length: 100}, mal())
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Split(rec, "\t")
	if len(f) != 13 {
		t.Fatalf("%d SAM fields in %q", len(f), rec)
	}
	want := []string{"r1", "0", "chr1", "10", "60", "4=1X3=", "*", "0", "0", "ACGTACGT", "IIIIHHHH", "NM:i:1", "AS:i:10"}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("field %d = %q want %q (record %q)", i, f[i], want[i], rec)
		}
	}
}

func TestSAMRecordRevComp(t *testing.T) {
	m := mal()
	m.Candidate.RevComp = true
	rec, err := SAMRecord(Ref{Name: "chr1", Length: 100}, m)
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Split(rec, "\t")
	flag, _ := strconv.Atoi(f[1])
	if flag&FlagRevComp == 0 {
		t.Fatalf("flag %d missing 0x10 in %q", flag, rec)
	}
	// SEQ is stored in forward-reference orientation, QUAL reversed.
	wantSeq := string(genasm.ReverseComplement([]byte("ACGTACGT")))
	if f[9] != wantSeq {
		t.Fatalf("SEQ %q want %q", f[9], wantSeq)
	}
	if f[10] != "HHHHIIII" {
		t.Fatalf("QUAL %q want reversed HHHHIIII", f[10])
	}
}

func TestSAMRecordUnmappedFlag4(t *testing.T) {
	m := genasm.MappedAlignment{
		Read:     genasm.Read{Name: "lost", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		Unmapped: true,
	}
	rec, err := SAMRecord(Ref{Name: "chr1", Length: 100}, m)
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Split(rec, "\t")
	want := []string{"lost", "4", "*", "0", "0", "*", "*", "0", "0", "ACGT", "IIII"}
	if len(f) != len(want) {
		t.Fatalf("%d fields in unmapped record %q", len(f), rec)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("field %d = %q want %q", i, f[i], want[i])
		}
	}
}

func TestSAMRecordSecondaryAndErrors(t *testing.T) {
	m := mal()
	m.Rank = 1
	m.Candidates = 2
	m.SecondaryScore = 35
	rec, err := SAMRecord(Ref{Name: "chr1", Length: 100}, m)
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Split(rec, "\t")
	flag, _ := strconv.Atoi(f[1])
	if flag&FlagSecondary == 0 || f[4] != "0" {
		t.Fatalf("secondary record %q: want 0x100 flag and MAPQ 0", rec)
	}

	m = mal()
	m.Err = errors.New("boom")
	if _, err := SAMRecord(Ref{Name: "chr1"}, m); err == nil {
		t.Fatal("errored emission produced a record")
	}
}

func TestSAMRecordQualMismatchBecomesStar(t *testing.T) {
	m := mal()
	m.Read.Qual = []byte("II") // wrong length: must degrade to '*', not emit an invalid record
	rec, err := SAMRecord(Ref{Name: "chr1", Length: 100}, m)
	if err != nil {
		t.Fatal(err)
	}
	if f := strings.Split(rec, "\t"); f[10] != "*" {
		t.Fatalf("QUAL %q want *", f[10])
	}
}

func TestPAFRecord(t *testing.T) {
	line, ok, err := PAFRecord(Ref{Name: "chr1", Length: 100}, mal())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	f := strings.Split(line, "\t")
	want := []string{"r1", "8", "0", "8", "+", "chr1", "100", "9", "17", "7", "8", "60",
		"NM:i:1", "AS:i:10", "tp:A:P", "cg:Z:4=1X3="}
	if len(f) != len(want) {
		t.Fatalf("%d PAF fields in %q", len(f), line)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("field %d = %q want %q", i, f[i], want[i])
		}
	}

	// Unmapped reads have no PAF representation.
	if _, ok, err := PAFRecord(Ref{Name: "chr1"}, genasm.MappedAlignment{Unmapped: true}); ok || err != nil {
		t.Fatalf("unmapped PAF ok=%v err=%v", ok, err)
	}
}

// TestPipelineRecordsRoundTrip drives the real MapAlign pipeline over a
// simulated workload and validates every emitted SAM record against
// internal/cigar: the CIGAR parses back, consumes exactly the read
// against the reference slice at POS, and the NM tag equals both the
// reported Distance and the CIGAR's own edit cost.
func TestPipelineRecordsRoundTrip(t *testing.T) {
	ref := genasm.GenerateGenome(60_000, 3)
	reads, err := genasm.SimulateLongReads(ref, 12, 1200, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := genasm.NewMapper(ref)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := genasm.NewEngine(genasm.WithMapper(mapper))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]genasm.Read, len(reads))
	for i, r := range reads {
		in[i] = genasm.Read{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
	}
	out, err := eng.MapAlign(context.Background(), genasm.StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	sref := Ref{Name: "synthetic", Length: len(ref)}
	mapped := 0
	var buf bytes.Buffer
	w := NewWriter(&buf, SAM, []Ref{sref}, Program{Name: "test"})
	for m := range out {
		if m.Err != nil {
			t.Fatal(m.Err)
		}
		if err := w.Write(sref, m); err != nil {
			t.Fatal(err)
		}
		if m.Unmapped {
			continue
		}
		mapped++
		rec, err := SAMRecord(sref, m)
		if err != nil {
			t.Fatal(err)
		}
		f := strings.Split(rec, "\t")
		flag, _ := strconv.Atoi(f[1])
		pos, _ := strconv.Atoi(f[3])
		cg, err := cigar.Parse(f[5])
		if err != nil {
			t.Fatalf("CIGAR %q does not parse: %v", f[5], err)
		}
		if cg.String() != m.Result.Cigar {
			t.Fatalf("CIGAR round-trip %q -> %q", m.Result.Cigar, cg.String())
		}
		// The record's SEQ aligned against the reference slice at POS must
		// satisfy the CIGAR exactly.
		query := []byte(f[9])
		region := ref[pos-1 : pos-1+cg.RefLen()]
		if err := cg.Check(query, region); err != nil {
			t.Fatalf("read %s: %v", f[0], err)
		}
		wantNM := "NM:i:" + strconv.Itoa(m.Result.Distance)
		if !strings.Contains(rec, wantNM) {
			t.Fatalf("record %q missing %s", rec, wantNM)
		}
		if cg.EditCost() != m.Result.Distance {
			t.Fatalf("CIGAR edit cost %d != distance %d", cg.EditCost(), m.Result.Distance)
		}
		if flag&FlagRevComp == 0 && !bytes.Equal(query, m.Read.Seq) {
			t.Fatal("forward record SEQ differs from the read")
		}
	}
	if mapped == 0 {
		t.Fatal("no reads mapped; workload too small")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n < len(reads)+2 {
		t.Fatalf("writer emitted %d lines for %d reads plus header", n, len(reads))
	}
}

func TestWriterPAFSkipsUnmapped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, PAF, nil, Program{})
	if err := w.Write(Ref{Name: "chr1"}, genasm.MappedAlignment{Unmapped: true, Read: genasm.Read{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("PAF writer emitted %q for an unmapped read", buf.String())
	}
}
