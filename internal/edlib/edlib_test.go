package edlib

import (
	"math/rand"
	"testing"

	"genasm/internal/dna"
	"genasm/internal/swg"
)

func randSeq(rng *rand.Rand, n int) []byte {
	alpha := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(4)]
	}
	return s
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	alpha := []byte("ACGT")
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, alpha[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, alpha[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}

func TestDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACG", 3},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"ACGT", "AGT", 1},
		{"ACGT", "TACGT", 1},
		{"AAAA", "TTTT", 4},
	}
	for _, c := range cases {
		if got := Distance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Distance(%q,%q) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceMatchesGoldStandardShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		a := randSeq(rng, rng.Intn(150))
		var b []byte
		if iter%3 == 0 {
			b = randSeq(rng, rng.Intn(150))
		} else {
			b = mutate(rng, a, 0.3)
		}
		want := swg.EditDistance(a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("iter %d (m=%d n=%d): %d want %d", iter, len(a), len(b), got, want)
		}
	}
}

func TestDistanceCrossesWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{63, 64, 65, 127, 128, 129, 300} {
		for iter := 0; iter < 10; iter++ {
			a := randSeq(rng, m)
			b := mutate(rng, a, 0.15)
			want := swg.EditDistance(a, b)
			if got := Distance(a, b); got != want {
				t.Fatalf("m=%d iter %d: %d want %d", m, iter, got, want)
			}
		}
	}
}

func TestDistanceHighDivergenceForcesBandDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Random vs random: distance far above the initial band of 64.
	a := randSeq(rng, 400)
	b := randSeq(rng, 350)
	want := swg.EditDistance(a, b)
	if want <= 64 {
		t.Fatalf("test setup: distance %d too small", want)
	}
	if got := Distance(a, b); got != want {
		t.Fatalf("%d want %d", got, want)
	}
}

func TestDistanceVeryUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSeq(rng, 30)
	b := append(append([]byte{}, a...), randSeq(rng, 500)...)
	want := swg.EditDistance(a, b)
	if got := Distance(a, b); got != want {
		t.Fatalf("%d want %d", got, want)
	}
	// And the transpose.
	if got := Distance(b, a); got != want {
		t.Fatalf("transposed: %d want %d", got, want)
	}
}

func TestAlignProducesOptimalValidCigar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		a := randSeq(rng, 1+rng.Intn(200))
		b := mutate(rng, a, 0.25)
		d, cg, err := Align(a, b)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if want := swg.EditDistance(a, b); d != want {
			t.Fatalf("iter %d: distance %d want %d", iter, d, want)
		}
		if err := cg.Check(a, b); err != nil {
			t.Fatalf("iter %d: cigar: %v", iter, err)
		}
		if cg.EditCost() != d {
			t.Fatalf("iter %d: cigar cost %d != %d", iter, cg.EditCost(), d)
		}
	}
}

func TestAlignEmpty(t *testing.T) {
	d, cg, err := Align(nil, []byte("ACG"))
	if err != nil || d != 3 || cg.String() != "3D" {
		t.Fatalf("%d %s %v", d, cg, err)
	}
	d, cg, err = Align([]byte("AC"), nil)
	if err != nil || d != 2 || cg.String() != "2I" {
		t.Fatalf("%d %s %v", d, cg, err)
	}
	d, cg, err = Align(nil, nil)
	if err != nil || d != 0 || len(cg) != 0 {
		t.Fatalf("%d %v %v", d, cg, err)
	}
}

func TestNNeverMatches(t *testing.T) {
	if got := Distance([]byte("ANNA"), []byte("ANNA")); got != 2 {
		t.Fatalf("N-vs-N distance %d want 2", got)
	}
}

func TestAlignLongRead(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randSeq(rng, 5000)
	b := mutate(rng, a, 0.10)
	d, cg, err := Align(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Check(a, b); err != nil {
		t.Fatal(err)
	}
	if cg.EditCost() != d {
		t.Fatalf("cost %d != %d", cg.EditCost(), d)
	}
	// ~10%/3-per-kind mutation => distance around 6-7% of the length.
	if d < 100 || d > 900 {
		t.Fatalf("implausible distance %d for 10%% error 5kb read", d)
	}
}

func TestAdvanceBlockAgainstScalarDP(t *testing.T) {
	// One 64-row block computed by advanceBlock must equal the scalar DP
	// column deltas, for every hin.
	rng := rand.New(rand.NewSource(7))
	q := randSeq(rng, 64)
	p, _ := buildPeq(dna.EncodeSeq(q))
	for _, hin := range []int{-1, 0, 1} {
		// Scalar reference: column c0 = 1..64 (NW boundary), one text
		// char step with boundary delta hin.
		prev := make([]int, 65)
		for i := range prev {
			prev[i] = i
		}
		cur := make([]int, 65)
		cur[0] = prev[0] + hin
		tc := byte(2) // 'G'
		for i := 1; i <= 64; i++ {
			best := prev[i-1]
			if q[i-1] != "ACGT"[tc] {
				best++
			}
			if v := prev[i] + 1; v < best {
				best = v
			}
			if v := cur[i-1] + 1; v < best {
				best = v
			}
			cur[i] = best
		}
		pv, mv, hout := advanceBlock(^uint64(0), 0, p[int(tc)], hin)
		if wantHout := cur[64] - prev[64]; hout != wantHout {
			t.Fatalf("hin=%d: hout %d want %d", hin, hout, wantHout)
		}
		for i := 1; i <= 64; i++ {
			want := cur[i] - cur[i-1]
			got := 0
			if pv>>(uint(i-1))&1 != 0 {
				got = 1
			} else if mv>>(uint(i-1))&1 != 0 {
				got = -1
			}
			if got != want {
				t.Fatalf("hin=%d row %d: delta %d want %d", hin, i, got, want)
			}
		}
	}
}

func BenchmarkAlign5kb(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	q := randSeq(rng, 5000)
	r := mutate(rng, q, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Align(q, r); err != nil {
			b.Fatal(err)
		}
	}
}
