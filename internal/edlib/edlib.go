// Package edlib reproduces the Edlib aligner (Šošić & Šikić,
// Bioinformatics 2017): global (Needleman-Wunsch) edit-distance alignment
// built on Myers' 1999 bit-parallel algorithm, blocked into 64-row bands,
// with Ukkonen banding and outward band doubling until the distance fits.
//
// It is one of the paper's two state-of-the-art CPU baselines. Semantics
// match the other aligners in this repository: unit edit costs, and
// non-ACGT bases never match anything.
package edlib

import (
	"fmt"
	"math/bits"

	"genasm/internal/cigar"
	"genasm/internal/dna"
)

const (
	wordSize = 64
	hiBit    = uint64(1) << 63
)

// peq holds the per-block match masks: peq[b*dna.Alphabet+c] has bit r set
// iff query row b*64+r holds base code c. Padding rows (beyond the query
// length in the last block) match nothing.
type peq []uint64

func buildPeq(query []byte) (peq, int) {
	nb := (len(query) + wordSize - 1) / wordSize
	if nb == 0 {
		nb = 1
	}
	p := make(peq, nb*dna.Alphabet)
	for i, qc := range query {
		if qc != dna.N {
			p[(i/wordSize)*dna.Alphabet+int(qc)] |= 1 << uint(i%wordSize)
		}
	}
	return p, nb
}

// advanceBlock performs one Myers column step on a 64-row block.
// pv/mv are the vertical +1/-1 delta masks, eq the match mask for the
// current text character, hin the horizontal delta entering the block
// (-1, 0 or +1). It returns the new pv/mv and the outgoing delta.
func advanceBlock(pv, mv, eq uint64, hin int) (uint64, uint64, int) {
	hinNeg := uint64(hin) >> 63 // 1 iff hin < 0
	xv := eq | mv
	eq |= hinNeg
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh

	hout := 0
	if ph&hiBit != 0 {
		hout = 1
	} else if mh&hiBit != 0 {
		hout = -1
	}
	ph <<= 1
	mh <<= 1
	mh |= hinNeg
	if hin > 0 {
		ph |= 1
	}
	pvOut := mh | ^(xv | ph)
	mvOut := ph & xv
	return pvOut, mvOut, hout
}

// block is one stored 64-row automaton state.
type block struct {
	pv, mv uint64
}

// column records the band of blocks computed at one text position, for the
// traceback, together with each stored block's score (the DP value at the
// block's last row). Blocks below the stored band were not computed; the
// forward pass treated them as all-+1 vertical deltas, and the traceback
// replays exactly that substitution so its cell values match the forward
// automaton.
type column struct {
	lo     int
	blocks []block
	scores []int
}

// run executes banded Myers over the whole text with error bound k.
// If store is non-nil it appends one column record per text position.
// It returns the block states of the final column, the final band, and the
// block scores (value at each block's last row) of the final column.
func run(p peq, nb int, m int, text []byte, k int, store *[]column) ([]block, int, int, []int) {
	blocksNeeded := func(j int) (int, int) {
		lo := (j - k) / wordSize
		if lo < 0 {
			lo = 0
		}
		if lo > nb-1 {
			lo = nb - 1
		}
		hi := (j + k) / wordSize
		if hi > nb-1 {
			hi = nb - 1
		}
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}

	blk := make([]block, nb)
	score := make([]int, nb)
	lo, hi := 0, -1
	// Initialize the first column's band before any text character.
	firstLo, firstHi := blocksNeeded(0)
	_ = firstLo
	for b := 0; b <= firstHi; b++ {
		blk[b] = block{pv: ^uint64(0), mv: 0}
		score[b] = (b + 1) * wordSize
	}
	hi = firstHi
	lo = 0

	for j := 0; j < len(text); j++ {
		nlo, nhi := blocksNeeded(j)
		// Extend the band downward: newly entering blocks start from
		// the all-+1 upper-bound state at the previous column.
		for b := hi + 1; b <= nhi; b++ {
			blk[b] = block{pv: ^uint64(0), mv: 0}
			score[b] = score[b-1] + wordSize
		}
		hi = nhi
		lo = nlo

		c := int(text[j])
		hin := 1 // NW top boundary, or upper bound above the band
		for b := lo; b <= hi; b++ {
			eq := p[b*dna.Alphabet+c]
			var hout int
			blk[b].pv, blk[b].mv, hout = advanceBlock(blk[b].pv, blk[b].mv, eq, hin)
			score[b] += hout
			hin = hout
		}
		if store != nil {
			saved := make([]block, hi-lo+1)
			copy(saved, blk[lo:hi+1])
			sc := make([]int, hi-lo+1)
			copy(sc, score[lo:hi+1])
			*store = append(*store, column{lo: lo, blocks: saved, scores: sc})
		}
	}
	return blk, lo, hi, score
}

// finalScore converts the last block's boundary score into the score at the
// real last query row, subtracting the padding rows' deltas.
func finalScore(blk []block, score []int, m int) int {
	b := (m - 1) / wordSize
	s := score[b]
	r := (m - 1) % wordSize
	if r != wordSize-1 {
		mask := ^uint64(0) << uint(r+1)
		s -= bits.OnesCount64(blk[b].pv & mask)
		s += bits.OnesCount64(blk[b].mv & mask)
	}
	return s
}

// Distance returns the global edit distance between query and ref, doubling
// the Ukkonen band until the result is certain.
func Distance(query, ref []byte) int {
	d, _, _ := alignImpl(dna.EncodeSeq(query), dna.EncodeSeq(ref), false)
	return d
}

// Align returns the global edit distance and an optimal alignment.
func Align(query, ref []byte) (int, cigar.Cigar, error) {
	d, cg, err := alignImpl(dna.EncodeSeq(query), dna.EncodeSeq(ref), true)
	return d, cg, err
}

// AlignEncoded is Align on pre-encoded base codes.
func AlignEncoded(query, ref []byte) (int, cigar.Cigar, error) {
	return alignImpl(query, ref, true)
}

// DistanceEncoded is Distance on pre-encoded base codes.
func DistanceEncoded(query, ref []byte) int {
	d, _, _ := alignImpl(query, ref, false)
	return d
}

func alignImpl(q, t []byte, wantCigar bool) (int, cigar.Cigar, error) {
	m, n := len(q), len(t)
	switch {
	case m == 0 && n == 0:
		return 0, nil, nil
	case m == 0:
		return n, cigar.Cigar{{Kind: cigar.Del, Len: n}}, nil
	case n == 0:
		return m, cigar.Cigar{{Kind: cigar.Ins, Len: m}}, nil
	}
	p, nb := buildPeq(q)

	k := wordSize
	if d := abs(m - n); d >= k {
		k = d + 1
	}
	maxK := m + n
	for {
		var store []column
		var storePtr *[]column
		if wantCigar {
			store = make([]column, 0, n)
			storePtr = &store
		}
		blk, _, hi, score := run(p, nb, m, t, k, storePtr)
		if hi == nb-1 {
			d := finalScore(blk, score, m)
			if d <= k {
				if !wantCigar {
					return d, nil, nil
				}
				cg, err := traceback(q, t, store, nb, d)
				return d, cg, err
			}
		}
		if k >= maxK {
			// Unreachable: k = m+n always contains the answer.
			return -1, nil, fmt.Errorf("edlib: band %d exhausted", k)
		}
		k *= 2
		if k > maxK {
			k = maxK
		}
	}
}

// cellValue returns the forward-pass DP value of cell (i, j) from the
// stored column record: the stored block score minus the vertical deltas of
// the rows below i inside the block. Cells in blocks below the stored band
// read the substituted all-+1 region, matching what the forward automaton
// actually used there. i == -1 addresses the top boundary row.
func cellValue(col *column, i, j int) (int, error) {
	if i < 0 {
		return j + 1, nil
	}
	b := i / wordSize
	idx := b - col.lo
	if idx < 0 {
		return 0, fmt.Errorf("edlib: traceback read above band (row %d, block lo %d)", i, col.lo)
	}
	if idx >= len(col.blocks) {
		last := col.lo + len(col.blocks) - 1
		lastRow := (last+1)*wordSize - 1
		return col.scores[len(col.scores)-1] + (i - lastRow), nil
	}
	s := col.scores[idx]
	r := i % wordSize
	if r != wordSize-1 {
		mask := ^uint64(0) << uint(r+1)
		s -= bits.OnesCount64(col.blocks[idx].pv & mask)
		s += bits.OnesCount64(col.blocks[idx].mv & mask)
	}
	return s, nil
}

// traceback reconstructs an optimal alignment from the stored per-column
// automaton states by comparing explicit neighbour cell values.
func traceback(q, t []byte, cols []column, nb int, d int) (cigar.Cigar, error) {
	var rev cigar.Cigar
	i, j := len(q)-1, len(t)-1
	val := d
	for i >= 0 && j >= 0 {
		valUp, err := cellValue(&cols[j], i-1, j)
		if err != nil {
			return nil, err
		}
		var valLeft, valDiag int
		if j == 0 {
			valLeft = i + 1 // D(i, -1)
			valDiag = i     // D(i-1, -1)
		} else {
			if valLeft, err = cellValue(&cols[j-1], i, j-1); err != nil {
				return nil, err
			}
			if valDiag, err = cellValue(&cols[j-1], i-1, j-1); err != nil {
				return nil, err
			}
		}
		match := q[i] == t[j] && q[i] != dna.N
		switch {
		case match && valDiag == val:
			rev = rev.Append(cigar.Match, 1)
			i, j, val = i-1, j-1, valDiag
		case valDiag+1 == val:
			rev = rev.Append(cigar.Mismatch, 1)
			i, j, val = i-1, j-1, valDiag
		case valLeft+1 == val:
			rev = rev.Append(cigar.Del, 1)
			j, val = j-1, valLeft
		case valUp+1 == val:
			rev = rev.Append(cigar.Ins, 1)
			i, val = i-1, valUp
		default:
			return nil, fmt.Errorf("edlib: traceback stuck at i=%d j=%d val=%d (up=%d left=%d diag=%d)",
				i, j, val, valUp, valLeft, valDiag)
		}
	}
	if j >= 0 {
		rev = rev.Append(cigar.Del, j+1)
	}
	if i >= 0 {
		rev = rev.Append(cigar.Ins, i+1)
	}
	return rev.Reverse(), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
