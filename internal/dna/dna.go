// Package dna provides the nucleotide encoding shared by every alignment
// kernel in this repository. Bases are mapped to small integers so pattern
// bitmasks can be indexed by code instead of by byte value.
package dna

// Alphabet size including the ambiguous base N. Codes 0..3 are A,C,G,T;
// code 4 (N) never matches anything, including another N, so ambiguous
// bases always cost an edit. This mirrors how GenASM hardware treats
// non-ACGT symbols.
const (
	A        = 0
	C        = 1
	G        = 2
	T        = 3
	N        = 4
	Alphabet = 5
)

var encodeTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = N
	}
	t['A'], t['a'] = A, A
	t['C'], t['c'] = C, C
	t['G'], t['g'] = G, G
	t['T'], t['t'] = T, T
	return t
}()

var decodeTable = [Alphabet]byte{'A', 'C', 'G', 'T', 'N'}

// Encode maps one base byte (case-insensitive) to its code; anything that is
// not ACGT becomes N.
func Encode(b byte) byte { return encodeTable[b] }

// Decode maps a code back to its canonical uppercase base byte.
func Decode(c byte) byte { return decodeTable[c] }

// EncodeSeq encodes a whole sequence into a fresh slice.
func EncodeSeq(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[i] = encodeTable[b]
	}
	return out
}

// DecodeSeq decodes a code sequence into a fresh byte slice.
func DecodeSeq(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = decodeTable[c]
	}
	return out
}

// Complement returns the complementary base code (N maps to N).
func Complement(c byte) byte {
	switch c {
	case A:
		return T
	case T:
		return A
	case C:
		return G
	case G:
		return C
	}
	return N
}

// ReverseComplement writes the reverse complement of codes into a new slice.
func ReverseComplement(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[len(codes)-1-i] = Complement(c)
	}
	return out
}
