package dna

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecode(t *testing.T) {
	cases := map[byte]byte{
		'A': A, 'a': A, 'C': C, 'c': C, 'G': G, 'g': G, 'T': T, 't': T,
		'N': N, 'n': N, 'X': N, '-': N, 0: N,
	}
	for in, want := range cases {
		if got := Encode(in); got != want {
			t.Errorf("Encode(%q) = %d want %d", in, got, want)
		}
	}
	for c := byte(0); c < Alphabet; c++ {
		if Encode(Decode(c)) != c {
			t.Errorf("Encode(Decode(%d)) != %d", c, c)
		}
	}
}

func TestEncodeSeqDecodeSeqRoundTrip(t *testing.T) {
	in := []byte("ACGTacgtNnX")
	codes := EncodeSeq(in)
	back := DecodeSeq(codes)
	want := []byte("ACGTACGTNNN")
	if !bytes.Equal(back, want) {
		t.Fatalf("round trip %q want %q", back, want)
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{A: T, T: A, C: G, G: C, N: N}
	for in, want := range pairs {
		if got := Complement(in); got != want {
			t.Errorf("Complement(%d) = %d want %d", in, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	codes := EncodeSeq([]byte("AACGT"))
	rc := ReverseComplement(codes)
	if got := string(DecodeSeq(rc)); got != "ACGTT" {
		t.Fatalf("revcomp = %q want ACGTT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(seq []byte) bool {
		codes := EncodeSeq(seq)
		back := ReverseComplement(ReverseComplement(codes))
		return bytes.Equal(back, codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIsTotal(t *testing.T) {
	// Every possible byte maps to a valid code.
	for b := 0; b < 256; b++ {
		if c := Encode(byte(b)); c >= Alphabet {
			t.Fatalf("Encode(%d) = %d out of range", b, c)
		}
	}
}
