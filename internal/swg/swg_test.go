package swg

import (
	"math/rand"
	"testing"

	"genasm/internal/cigar"
)

func randSeq(rng *rand.Rand, n int) []byte {
	alpha := []byte("ACGT")
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(4)]
	}
	return s
}

// mutate applies roughly rate errors per base.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	alpha := []byte("ACGT")
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3: // substitution
			out = append(out, alpha[rng.Intn(4)])
		case r < 2*rate/3: // deletion from query
		case r < rate: // insertion
			out = append(out, b, alpha[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, 'A')
	}
	return out
}

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACG", 3},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"ACGT", "AGT", 1},
		{"ACGT", "TACGT", 1},
		{"kitten", "sitting", 3},
		{"GATTACA", "GCATGCU", 4},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := randSeq(rng, rng.Intn(60))
		b := randSeq(rng, rng.Intn(60))
		if EditDistance(a, b) != EditDistance(b, a) {
			t.Fatalf("asymmetric edit distance for %q %q", a, b)
		}
	}
}

func TestEditAlignMatchesDistanceAndChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := randSeq(rng, 1+rng.Intn(80))
		b := mutate(rng, a, 0.2)
		d, c := EditAlign(a, b)
		if want := EditDistance(a, b); d != want {
			t.Fatalf("EditAlign distance %d != EditDistance %d", d, want)
		}
		if err := c.Check(a, b); err != nil {
			t.Fatalf("cigar check: %v", err)
		}
		if c.EditCost() != d {
			t.Fatalf("cigar cost %d != distance %d", c.EditCost(), d)
		}
	}
}

func TestEditAlignEmptyInputs(t *testing.T) {
	d, c := EditAlign(nil, []byte("ACG"))
	if d != 3 || c.String() != "3D" {
		t.Fatalf("got %d %s", d, c)
	}
	d, c = EditAlign([]byte("ACG"), nil)
	if d != 3 || c.String() != "3I" {
		t.Fatalf("got %d %s", d, c)
	}
	d, c = EditAlign(nil, nil)
	if d != 0 || len(c) != 0 {
		t.Fatalf("got %d %v", d, c)
	}
}

func TestPrefixAlignBasics(t *testing.T) {
	// query equals a prefix of ref: distance 0, consumes exactly it.
	d, c, used := PrefixAlign([]byte("ACGT"), []byte("ACGTTTTT"))
	if d != 0 || used != 4 {
		t.Fatalf("d=%d used=%d", d, used)
	}
	if err := c.Check([]byte("ACGT"), []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	// whole ref needed
	d, _, used = PrefixAlign([]byte("AACC"), []byte("AACC"))
	if d != 0 || used != 4 {
		t.Fatalf("d=%d used=%d", d, used)
	}
}

func TestPrefixAlignNeverWorseThanGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := randSeq(rng, 1+rng.Intn(50))
		r := randSeq(rng, 1+rng.Intn(70))
		d, c, used := PrefixAlign(q, r)
		if g := EditDistance(q, r); d > g {
			t.Fatalf("prefix distance %d > global %d", d, g)
		}
		if err := c.Check(q, r[:used]); err != nil {
			t.Fatalf("cigar: %v", err)
		}
		if c.EditCost() != d {
			t.Fatalf("cost %d != %d", c.EditCost(), d)
		}
		// Optimality: d equals min over all prefixes.
		best := len(q)
		for cut := 0; cut <= len(r); cut++ {
			if e := EditDistance(q, r[:cut]); e < best {
				best = e
			}
		}
		if d != best {
			t.Fatalf("prefix distance %d != brute force %d", d, best)
		}
	}
}

func TestAffineAlignAgainstBruteForceScore(t *testing.T) {
	p := cigar.DefaultAffine
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		q := randSeq(rng, 1+rng.Intn(40))
		r := mutate(rng, q, 0.25)
		score, c := AffineAlign(q, r, p)
		if err := c.Check(q, r); err != nil {
			t.Fatalf("cigar: %v", err)
		}
		if got := c.AffineScore(p); got != score {
			t.Fatalf("cigar scores %d but DP says %d (%s)", got, score, c)
		}
		if s2 := AffineScore(q, r, p); s2 != score {
			t.Fatalf("AffineScore %d != AffineAlign %d", s2, score)
		}
	}
}

func TestAffineAlignPrefersSingleLongGap(t *testing.T) {
	// With affine penalties one 4-gap is cheaper than four 1-gaps.
	q := []byte("AAAATTTT")
	r := []byte("AAAACCCCTTTT")
	score, c := AffineAlign(q, r, cigar.DefaultAffine)
	wantScore := 8*2 - (4 + 4*2) // 8 matches, one 4-long del
	if score != wantScore {
		t.Fatalf("score %d want %d (%s)", score, wantScore, c)
	}
	dels := 0
	for _, op := range c {
		if op.Kind == cigar.Del {
			dels++
		}
	}
	if dels != 1 {
		t.Fatalf("want a single deletion run, got %s", c)
	}
}

func TestAffineScoreIdentical(t *testing.T) {
	s := []byte("ACGTACGTAC")
	score := AffineScore(s, s, cigar.DefaultAffine)
	if score != len(s)*2 {
		t.Fatalf("score %d want %d", score, len(s)*2)
	}
}

func TestAffineEmpty(t *testing.T) {
	p := cigar.DefaultAffine
	score, c := AffineAlign(nil, []byte("ACG"), p)
	if want := -(p.Q + 3*p.E); score != want {
		t.Fatalf("score %d want %d", score, want)
	}
	if c.String() != "3D" {
		t.Fatalf("cigar %s", c)
	}
}

func BenchmarkEditDistance1k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	q := randSeq(rng, 1000)
	r := mutate(rng, q, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EditDistance(q, r)
	}
}
