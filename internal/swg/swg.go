// Package swg implements classic quadratic dynamic-programming sequence
// alignment: unit-cost (Levenshtein) global and prefix-global alignment with
// traceback, and Smith-Waterman-Gotoh affine-gap global alignment.
//
// These are the textbook O(n*m) algorithms the paper's introduction cites as
// the baseline approach. They serve two roles in this repository: the gold
// standard every bit-parallel aligner is tested against, and the slow
// reference point in the benchmark harness.
package swg

import (
	"genasm/internal/cigar"
)

// EditDistance returns the unit-cost global edit distance between a and b
// using the standard two-row DP.
func EditDistance(a, b []byte) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			best := sub
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// EditAlign returns the unit-cost global edit distance between query and ref
// together with an optimal alignment. Tie-breaking prefers diagonal moves
// (match/mismatch), then deletion (reference gap consumed first), then
// insertion; this matches the traceback priority used by the GenASM
// implementations so small cases agree exactly.
func EditAlign(query, ref []byte) (int, cigar.Cigar) {
	n, m := len(query), len(ref)
	// dp[i*(m+1)+j] = edit distance of query[:i] vs ref[:j].
	dp := make([]int32, (n+1)*(m+1))
	idx := func(i, j int) int { return i*(m+1) + j }
	for j := 0; j <= m; j++ {
		dp[idx(0, j)] = int32(j)
	}
	for i := 1; i <= n; i++ {
		dp[idx(i, 0)] = int32(i)
		for j := 1; j <= m; j++ {
			sub := dp[idx(i-1, j-1)]
			if query[i-1] != ref[j-1] {
				sub++
			}
			best := sub
			if d := dp[idx(i-1, j)] + 1; d < best {
				best = d
			}
			if d := dp[idx(i, j-1)] + 1; d < best {
				best = d
			}
			dp[idx(i, j)] = best
		}
	}
	// Traceback.
	var rev cigar.Cigar
	i, j := n, m
	for i > 0 || j > 0 {
		cur := dp[idx(i, j)]
		switch {
		case i > 0 && j > 0 && query[i-1] == ref[j-1] && dp[idx(i-1, j-1)] == cur:
			rev = rev.Append(cigar.Match, 1)
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[idx(i-1, j-1)]+1 == cur:
			rev = rev.Append(cigar.Mismatch, 1)
			i, j = i-1, j-1
		case j > 0 && dp[idx(i, j-1)]+1 == cur:
			rev = rev.Append(cigar.Del, 1)
			j--
		default:
			rev = rev.Append(cigar.Ins, 1)
			i--
		}
	}
	return int(dp[idx(n, m)]), rev.Reverse()
}

// PrefixAlign aligns all of query against the best-scoring *prefix* of ref
// under unit costs: the window-alignment semantics used by the GenASM
// implementations (the unconsumed reference tail is free). It returns the
// distance, the alignment, and the number of reference characters consumed.
// Ties on distance prefer the longest consumed prefix, matching GenASM's
// traceback which extends matches as far as possible.
func PrefixAlign(query, ref []byte) (int, cigar.Cigar, int) {
	n, m := len(query), len(ref)
	dp := make([]int32, (n+1)*(m+1))
	idx := func(i, j int) int { return i*(m+1) + j }
	// dp[0][j] = 0: any reference prefix may be skipped for free at the
	// END of the alignment; equivalently we align query to ref[:c] and
	// take the min over c. Standard trick: make row 0 cost j (global
	// start) and take min over the last row. Implemented the second way.
	for j := 0; j <= m; j++ {
		dp[idx(0, j)] = int32(j)
	}
	for i := 1; i <= n; i++ {
		dp[idx(i, 0)] = int32(i)
		for j := 1; j <= m; j++ {
			sub := dp[idx(i-1, j-1)]
			if query[i-1] != ref[j-1] {
				sub++
			}
			best := sub
			if d := dp[idx(i-1, j)] + 1; d < best {
				best = d
			}
			if d := dp[idx(i, j-1)] + 1; d < best {
				best = d
			}
			dp[idx(i, j)] = best
		}
	}
	bestC, bestD := 0, dp[idx(n, 0)]
	for j := 1; j <= m; j++ {
		if d := dp[idx(n, j)]; d < bestD || (d == bestD && j > bestC) {
			bestD, bestC = d, j
		}
	}
	// Traceback within query vs ref[:bestC].
	var rev cigar.Cigar
	i, j := n, bestC
	for i > 0 || j > 0 {
		cur := dp[idx(i, j)]
		switch {
		case i > 0 && j > 0 && query[i-1] == ref[j-1] && dp[idx(i-1, j-1)] == cur:
			rev = rev.Append(cigar.Match, 1)
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[idx(i-1, j-1)]+1 == cur:
			rev = rev.Append(cigar.Mismatch, 1)
			i, j = i-1, j-1
		case j > 0 && dp[idx(i, j-1)]+1 == cur:
			rev = rev.Append(cigar.Del, 1)
			j--
		default:
			rev = rev.Append(cigar.Ins, 1)
			i--
		}
	}
	return int(bestD), rev.Reverse(), bestC
}

const negInf = int32(-1 << 29)

// AffineAlign computes a global Smith-Waterman-Gotoh alignment of query vs
// ref under affine penalties p (three-matrix Gotoh formulation) and returns
// the score and an optimal alignment. This is the scoring-model gold
// standard for the KSW2 reproduction.
func AffineAlign(query, ref []byte, p cigar.AffinePenalties) (int, cigar.Cigar) {
	n, m := len(query), len(ref)
	w := m + 1
	// H: best score ending at (i,j); E: gap in query (Del run, consumes
	// ref); F: gap in ref (Ins run, consumes query).
	H := make([]int32, (n+1)*w)
	E := make([]int32, (n+1)*w)
	F := make([]int32, (n+1)*w)
	idx := func(i, j int) int { return i*w + j }
	gap := func(l int) int32 { return int32(-(p.Q + p.E*l)) }
	H[0] = 0
	for j := 1; j <= m; j++ {
		H[idx(0, j)] = gap(j)
		E[idx(0, j)] = gap(j)
		F[idx(0, j)] = negInf
	}
	for i := 1; i <= n; i++ {
		H[idx(i, 0)] = gap(i)
		F[idx(i, 0)] = gap(i)
		E[idx(i, 0)] = negInf
		for j := 1; j <= m; j++ {
			e := E[idx(i, j-1)] - int32(p.E)
			if h := H[idx(i, j-1)] - int32(p.Q+p.E); h > e {
				e = h
			}
			f := F[idx(i-1, j)] - int32(p.E)
			if h := H[idx(i-1, j)] - int32(p.Q+p.E); h > f {
				f = h
			}
			s := int32(p.A)
			if query[i-1] != ref[j-1] {
				s = int32(-p.B)
			}
			h := H[idx(i-1, j-1)] + s
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			E[idx(i, j)] = e
			F[idx(i, j)] = f
			H[idx(i, j)] = h
		}
	}
	// Traceback across the three matrices. state 0=H, 1=E(del), 2=F(ins).
	var rev cigar.Cigar
	i, j, state := n, m, 0
	for i > 0 || j > 0 {
		switch state {
		case 0:
			cur := H[idx(i, j)]
			if i > 0 && j > 0 {
				s := int32(p.A)
				kind := cigar.Match
				if query[i-1] != ref[j-1] {
					s = int32(-p.B)
					kind = cigar.Mismatch
				}
				if H[idx(i-1, j-1)]+s == cur {
					rev = rev.Append(kind, 1)
					i, j = i-1, j-1
					continue
				}
			}
			if j > 0 && E[idx(i, j)] == cur {
				state = 1
				continue
			}
			state = 2
		case 1: // inside a deletion run (consumes ref)
			rev = rev.Append(cigar.Del, 1)
			j--
			if !(j > 0 && E[idx(i, j+1)] == E[idx(i, j)]-int32(p.E)) {
				state = 0
			}
		case 2: // inside an insertion run (consumes query)
			rev = rev.Append(cigar.Ins, 1)
			i--
			if !(i > 0 && F[idx(i+1, j)] == F[idx(i, j)]-int32(p.E)) {
				state = 0
			}
		}
	}
	return int(H[idx(n, m)]), rev.Reverse()
}

// AffineScore computes only the global Gotoh score with a two-row DP,
// suitable for long sequences where the full matrix would not fit.
func AffineScore(query, ref []byte, p cigar.AffinePenalties) int {
	n, m := len(query), len(ref)
	H := make([]int32, m+1) // row i-1, overwritten in place to row i
	F := make([]int32, m+1) // vertical gap state, carried across rows
	gap := func(l int) int32 { return int32(-(p.Q + p.E*l)) }
	openExt := int32(p.Q + p.E)
	ext := int32(p.E)
	H[0] = 0
	for j := 1; j <= m; j++ {
		H[j] = gap(j)
		F[j] = negInf
	}
	for i := 1; i <= n; i++ {
		diag := H[0] // H[i-1][j-1] for j=1
		H[0] = gap(i)
		e := negInf // E[i][0]
		for j := 1; j <= m; j++ {
			e -= ext
			if h := H[j-1] - openExt; h > e { // H[j-1] already holds row i
				e = h
			}
			f := F[j] - ext
			if h := H[j] - openExt; h > f { // H[j] still holds row i-1
				f = h
			}
			s := int32(p.A)
			if query[i-1] != ref[j-1] {
				s = int32(-p.B)
			}
			h := diag + s
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			diag = H[j]
			F[j] = f
			H[j] = h
		}
	}
	return int(H[m])
}
