package loadgen

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"genasm/server"
)

// clusterNodes boots n in-process genasm-serve nodes and returns their
// base URLs.
func clusterNodes(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = smokeServer(t, server.Config{}).URL
	}
	return urls
}

// TestRunTargetsAggregate: the multi-target runner measures every node
// and the aggregate sums their throughput and counts.
func TestRunTargetsAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	targets := clusterNodes(t, 2)
	per, agg, err := RunTargets(context.Background(), Config{
		Scenario:  ScenarioBaseline,
		Seed:      7,
		Warmup:    300 * time.Millisecond,
		Duration:  time.Second,
		GenomeLen: 40_000,
	}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("%d per-target results, want 2", len(per))
	}
	var sumRPS float64
	var sumReq int
	for i, r := range per {
		if r.Target != targets[i] {
			t.Fatalf("result %d carries target %q, want %q", i, r.Target, targets[i])
		}
		if r.Requests == 0 {
			t.Fatalf("target %s measured no requests", r.Target)
		}
		if r.Errors != 0 {
			t.Fatalf("target %s saw %d errors (last: %s)", r.Target, r.Errors, r.LastError)
		}
		sumRPS += r.AchievedRPS
		sumReq += r.Requests
	}
	if agg.Target != "aggregate" || agg.Requests != sumReq {
		t.Fatalf("aggregate %+v does not sum per-target requests %d", agg, sumReq)
	}
	if diff := agg.AchievedRPS - sumRPS; diff > 0.001 || diff < -0.001 {
		t.Fatalf("aggregate RPS %.3f != per-target sum %.3f", agg.AchievedRPS, sumRPS)
	}
	if agg.P99ms < per[0].P99ms && agg.P99ms < per[1].P99ms {
		t.Fatal("aggregate p99 must be the per-target maximum")
	}
	row := Row(per, agg)
	if row.Nodes != 2 || row.AggregateRPS != agg.AchievedRPS || len(row.PerTargetRPS) != 2 {
		t.Fatalf("cluster row %+v", row)
	}
}

func TestRunTargetsValidation(t *testing.T) {
	if _, _, err := RunTargets(context.Background(), Config{Scenario: ScenarioBaseline}, nil); err == nil {
		t.Fatal("no targets did not error")
	}
	if agg := Aggregate(nil); agg != nil {
		t.Fatalf("Aggregate(nil) = %+v, want nil", agg)
	}
}

// TestClusterBench generates the checked-in node-count scaling evidence
// (BENCH_6.json): the mixed scenario offered to 1 and then 3 upstream
// nodes, with the aggregate throughput required to increase. Gated
// behind GENASM_CLUSTER_BENCH (naming the output file) because the
// measured phases take tens of seconds.
func TestClusterBench(t *testing.T) {
	out := os.Getenv("GENASM_CLUSTER_BENCH")
	if out == "" {
		t.Skip("set GENASM_CLUSTER_BENCH=<path> to run the cluster scaling bench")
	}
	urls := clusterNodes(t, 3)
	cfg := Config{
		Scenario:  ScenarioMixed,
		Seed:      7,
		Warmup:    time.Second,
		Duration:  8 * time.Second,
		GenomeLen: 80_000,
	}
	var rows []ClusterRow
	var scenarios, perTarget []*Result
	for _, nodes := range []int{1, 3} {
		per, agg, err := RunTargets(context.Background(), cfg, urls[:nodes])
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, Row(per, agg))
		perTarget = append(perTarget, per...)
		scenarios = append(scenarios, agg)
		t.Logf("nodes=%d aggregate %.1f rps (p99 %.2fms)", nodes, agg.AchievedRPS, agg.P99ms)
	}
	if rows[1].AggregateRPS <= rows[0].AggregateRPS {
		t.Fatalf("3-node aggregate %.1f rps did not exceed 1-node %.1f rps",
			rows[1].AggregateRPS, rows[0].AggregateRPS)
	}
	rep := Report{
		Target:    fmt.Sprintf("in-process cluster (%d nodes max)", len(urls)),
		Seed:      cfg.Seed,
		Scenarios: scenarios,
		PerTarget: perTarget,
		Cluster:   rows,
	}
	if err := WriteBench(out, rep); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
