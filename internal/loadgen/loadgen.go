package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"genasm/server"
)

// Config configures one scenario run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Scenario names the workload (see Scenarios()).
	Scenario string
	// Seed drives the deterministic workload generator. Two runs with
	// the same seed offer the identical request sequence.
	Seed int64
	// Warmup is how long to pace traffic before measurement starts:
	// warms the result cache (the mixed scenario's cache-hit keys), the
	// scheduler and the connection pool. Default 500ms.
	Warmup time.Duration
	// Duration is the measured phase length. Default 5s.
	Duration time.Duration
	// Rate overrides the scenario's offered request rate per second
	// (0 = scenario default). The pacer is open-loop: it does not wait
	// for responses.
	Rate float64
	// Concurrency overrides the scenario's in-flight request cap
	// (0 = scenario default). When every slot is busy at fire time the
	// request is shed client-side and counted in Result.Dropped.
	Concurrency int
	// GenomeLen sizes the synthetic reference the workload is drawn
	// from. Default 120_000.
	GenomeLen int
	// RefName is the name the main reference uploads under. Default
	// "loadgen".
	RefName string
	// Client is the HTTP client to use (default: a dedicated client with
	// a per-request timeout of 30s).
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.Warmup <= 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.GenomeLen <= 0 {
		c.GenomeLen = 120_000
	}
	if c.RefName == "" {
		c.RefName = "loadgen"
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
}

// Result is one scenario's measured outcome. Latency percentiles are
// computed client-side from the raw per-request samples of the measure
// phase (nearest-rank); ServerDelta is the server's own /metrics
// counter movement across the same phase.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Target is the base URL this result measured (multi-target runs;
	// "aggregate" for the cross-target sum, empty for single-target runs).
	Target string `json:"target,omitempty"`
	// OfferedRPS is the configured open-loop rate; AchievedRPS is what
	// the measure phase actually completed per second.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Requests counts measure-phase requests that got any HTTP response;
	// Errors those with transport failures or statuses outside the
	// request's allowance; Status429 backpressure rejections (never
	// errors); Dropped client-side sheds at the concurrency cap.
	Requests  int `json:"requests"`
	Errors    int `json:"errors"`
	Status429 int `json:"status_429"`
	Dropped   int `json:"dropped"`
	// CacheMismatches counts cache-keyed responses that were not
	// bit-identical to the first measure-phase response under the same
	// key — any nonzero value means the result cache served a wrong or
	// torn entry.
	CacheMismatches int `json:"cache_mismatches"`
	// CacheChecked counts the cache-keyed 200 responses compared.
	CacheChecked int `json:"cache_checked"`

	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`

	MeasureSeconds float64     `json:"measure_seconds"`
	StatusCounts   map[int]int `json:"status_counts"`
	LastError      string      `json:"last_error,omitempty"`

	// ServerDelta is the /metrics JSON snapshot movement across the
	// measure phase (nil when scraping failed).
	ServerDelta *server.Scrape `json:"server_delta,omitempty"`
}

// ErrorRate returns Errors/Requests (0 when no requests completed).
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// Rate429 returns Status429/Requests (0 when no requests completed).
func (r *Result) Rate429() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Status429) / float64(r.Requests)
}

// collector accumulates worker outcomes under one mutex (the workers'
// shared slow path; the hot path is the HTTP round-trip).
type collector struct {
	mu            sync.Mutex
	samples       []float64 // measure-phase latencies, milliseconds
	status        map[int]int
	errors        int
	transportErrs int // errors with no HTTP response (no latency sample)
	status429     int
	cacheBodies   map[int][]byte
	cacheMiss     int
	cacheChecked  int
	lastErr       string
}

func (c *collector) record(req Request, status int, body []byte, latency time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		c.transportErrs++
		c.lastErr = err.Error()
		return
	}
	c.status[status]++
	c.samples = append(c.samples, float64(latency)/float64(time.Millisecond))
	switch {
	case status == http.StatusTooManyRequests:
		c.status429++
	case !statusAllowed(req.Expect, status):
		c.errors++
		c.lastErr = fmt.Sprintf("%s %s: unexpected status %d: %.200s", req.Method, req.Path, status, body)
	case req.CacheKey > 0 && status == http.StatusOK:
		prev, ok := c.cacheBodies[req.CacheKey]
		if !ok {
			c.cacheBodies[req.CacheKey] = append([]byte(nil), body...)
			return
		}
		c.cacheChecked++
		if !bytes.Equal(prev, body) {
			c.cacheMiss++
			c.lastErr = fmt.Sprintf("cache key %d: response diverged", req.CacheKey)
		}
	}
}

func statusAllowed(expect []int, status int) bool {
	for _, s := range expect {
		if s == status {
			return true
		}
	}
	return false
}

// Run executes one scenario against cfg.BaseURL: builds the
// deterministic plan, uploads the main reference, paces the request
// cycle open-loop through warmup then measure, and returns the measured
// Result. ctx cancellation aborts the run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	plan, err := BuildPlan(cfg)
	if err != nil {
		return nil, err
	}
	rate, conc := plan.Rate, plan.Concurrency
	if cfg.Rate > 0 {
		rate = cfg.Rate
	}
	if cfg.Concurrency > 0 {
		conc = cfg.Concurrency
	}
	if err := uploadRef(ctx, cfg, plan); err != nil {
		return nil, err
	}

	col := &collector{status: make(map[int]int), cacheBodies: make(map[int][]byte)}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = 100 * time.Microsecond
	}
	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	deadline := measureStart.Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var before server.Scrape
	scraped := false
	offered, dropped := 0, 0
	idx := 0
pacing:
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		case now := <-ticker.C:
			if now.After(deadline) {
				break pacing
			}
			measured := !now.Before(measureStart)
			if measured && !scraped {
				// Crossing into the measure phase: snapshot the server's
				// own counters so the delta covers exactly this phase.
				before, _ = Scrape(ctx, cfg.Client, cfg.BaseURL)
				scraped = true
			}
			req := plan.Requests[idx%len(plan.Requests)]
			idx++
			if measured {
				offered++
			}
			select {
			case sem <- struct{}{}:
			default:
				if measured {
					dropped++
				}
				continue
			}
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				doRequest(ctx, cfg, req, col, measured)
			}()
		}
	}
	wg.Wait()
	after, _ := Scrape(ctx, cfg.Client, cfg.BaseURL)
	measureDur := time.Since(measureStart)
	if measureDur > cfg.Duration {
		measureDur = cfg.Duration
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	sort.Float64s(col.samples)
	res := &Result{
		Scenario:        plan.Scenario,
		Seed:            plan.Seed,
		OfferedRPS:      rate,
		AchievedRPS:     float64(len(col.samples)) / measureDur.Seconds(),
		Requests:        len(col.samples) + col.transportErrs,
		Errors:          col.errors,
		Status429:       col.status429,
		Dropped:         dropped,
		CacheMismatches: col.cacheMiss,
		CacheChecked:    col.cacheChecked,
		P50ms:           percentile(col.samples, 0.50),
		P95ms:           percentile(col.samples, 0.95),
		P99ms:           percentile(col.samples, 0.99),
		MeasureSeconds:  measureDur.Seconds(),
		StatusCounts:    col.status,
		LastError:       col.lastErr,
	}
	if scraped {
		delta := after.Sub(before)
		res.ServerDelta = &delta
	}
	return res, nil
}

// doRequest performs one request and records its outcome when measured.
func doRequest(ctx context.Context, cfg Config, req Request, col *collector, measured bool) {
	hreq, err := http.NewRequestWithContext(ctx, req.Method, cfg.BaseURL+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		if measured {
			col.record(req, 0, nil, 0, err)
		}
		return
	}
	ct := req.ContentType
	if ct == "" {
		ct = "application/json"
	}
	if req.Body != nil {
		hreq.Header.Set("Content-Type", ct)
	}
	t0 := time.Now()
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		if measured && ctx.Err() == nil {
			col.record(req, 0, nil, 0, err)
		}
		return
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	latency := time.Since(t0)
	if !measured {
		return
	}
	if readErr != nil && ctx.Err() == nil {
		col.record(req, 0, nil, 0, readErr)
		return
	}
	col.record(req, resp.StatusCode, body, latency, nil)
}

// uploadRef registers the plan's main reference, tolerating 409 from a
// previous run against the same server.
func uploadRef(ctx context.Context, cfg Config, plan *Plan) error {
	body, err := json.Marshal(server.RefAddRequest{Name: plan.RefName, Sequence: string(plan.RefSeq)})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", cfg.BaseURL+"/refs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: uploading reference: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: uploading reference %q: status %d: %s", plan.RefName, resp.StatusCode, msg)
	}
	return nil
}

// Scrape fetches the server's /metrics JSON snapshot into the typed
// client view.
func Scrape(ctx context.Context, client *http.Client, baseURL string) (server.Scrape, error) {
	var s server.Scrape
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/metrics", nil)
	if err != nil {
		return s, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("loadgen: /metrics status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("loadgen: decoding /metrics: %w", err)
	}
	return s, nil
}

// percentile returns the nearest-rank p-quantile of sorted (ascending)
// samples; 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
