package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"genasm/internal/cliutil"
)

// SLO declares per-scenario ceilings. Every field is optional (nil =
// unchecked), so an SLO file only constrains what it names — and an
// explicit 0 is a real ceiling ("no errors at all"), distinct from
// absent.
type SLO struct {
	// MaxP99ms caps the client-side p99 latency in milliseconds.
	MaxP99ms *float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate caps Errors/Requests (429s never count as errors).
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// Max429Rate caps Status429/Requests — backpressure is expected
	// under stress but an SLO can still bound it.
	Max429Rate *float64 `json:"max_429_rate,omitempty"`
	// MinAchievedRPS floors the measured throughput.
	MinAchievedRPS *float64 `json:"min_achieved_rps,omitempty"`
}

// SLOFile maps scenario names to their ceilings. A scenario named in
// the file but missing from the results is itself a violation, so a
// gate cannot silently pass by not running a scenario.
type SLOFile struct {
	Scenarios map[string]SLO `json:"scenarios"`
}

// ParseSLO decodes an SLO file payload, rejecting unknown fields so a
// typoed ceiling cannot silently gate nothing.
func ParseSLO(data []byte) (SLOFile, error) {
	var f SLOFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("loadgen: parsing SLO file: %w", err)
	}
	if len(f.Scenarios) == 0 {
		return f, fmt.Errorf("loadgen: SLO file declares no scenarios")
	}
	for name := range f.Scenarios {
		if !validScenario(name) {
			return f, fmt.Errorf("loadgen: SLO file names unknown scenario %q", name)
		}
	}
	return f, nil
}

// LoadSLO reads and parses an SLO file from disk.
func LoadSLO(path string) (SLOFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SLOFile{}, err
	}
	return ParseSLO(data)
}

func validScenario(name string) bool {
	for _, s := range Scenarios() {
		if s == name {
			return true
		}
	}
	return false
}

// Violation is one broken ceiling.
type Violation struct {
	Scenario string  `json:"scenario"`
	Rule     string  `json:"rule"`
	Limit    float64 `json:"limit"`
	Actual   float64 `json:"actual"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %.4g exceeds limit %.4g", v.Scenario, v.Rule, v.Actual, v.Limit)
}

// Check evaluates results against the file's ceilings and returns every
// violation, sorted for stable output. Scenarios the file does not name
// are unconstrained; scenarios it names but the results lack are
// violations.
func (f SLOFile) Check(results []*Result) []Violation {
	byName := make(map[string]*Result, len(results))
	for _, r := range results {
		byName[r.Scenario] = r
	}
	var out []Violation
	for name, slo := range f.Scenarios {
		r, ok := byName[name]
		if !ok {
			out = append(out, Violation{Scenario: name, Rule: "scenario_not_run", Limit: 1, Actual: 0})
			continue
		}
		if r.Requests == 0 {
			out = append(out, Violation{Scenario: name, Rule: "no_requests_measured", Limit: 1, Actual: 0})
			continue
		}
		if slo.MaxP99ms != nil && r.P99ms > *slo.MaxP99ms {
			out = append(out, Violation{Scenario: name, Rule: "p99_ms", Limit: *slo.MaxP99ms, Actual: r.P99ms})
		}
		if slo.MaxErrorRate != nil && r.ErrorRate() > *slo.MaxErrorRate {
			out = append(out, Violation{Scenario: name, Rule: "error_rate", Limit: *slo.MaxErrorRate, Actual: r.ErrorRate()})
		}
		if slo.Max429Rate != nil && r.Rate429() > *slo.Max429Rate {
			out = append(out, Violation{Scenario: name, Rule: "rate_429", Limit: *slo.Max429Rate, Actual: r.Rate429()})
		}
		if slo.MinAchievedRPS != nil && r.AchievedRPS < *slo.MinAchievedRPS {
			out = append(out, Violation{Scenario: name, Rule: "achieved_rps_below_min", Limit: *slo.MinAchievedRPS, Actual: r.AchievedRPS})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scenario != out[j].Scenario {
			return out[i].Scenario < out[j].Scenario
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Report is the BENCH_*.json schema-3 "serving" section: one loadgen
// run's scenario results plus enough context to compare across PRs.
type Report struct {
	Target    string    `json:"target"`
	Seed      int64     `json:"seed"`
	Scenarios []*Result `json:"scenarios"`
	// PerTarget holds the per-node results of a multi-target run
	// (RunTargets); Scenarios then carries the aggregates.
	PerTarget []*Result `json:"per_target,omitempty"`
	// Cluster is the node-count scaling table: the same scenario offered
	// to growing upstream sets.
	Cluster []ClusterRow `json:"cluster,omitempty"`
}

// WriteBench writes (or merges into) a BENCH_*.json report at path:
// when the file already holds a microbenchmark report, the serving
// section is added and the schema stamped 3; otherwise a serving-only
// schema-3 report is created. The write is atomic.
func WriteBench(path string, rep Report) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("loadgen: existing %s is not JSON: %w", path, err)
		}
	}
	// Keep a newer schema stamped by the caller; only raise older docs to
	// the version that introduced the serving section.
	if v, ok := doc["schema"].(float64); !ok || v < 3 {
		doc["schema"] = 3
	}
	if _, ok := doc["go"]; !ok {
		doc["go"] = runtime.Version()
	}
	if _, ok := doc["gomaxprocs"]; !ok {
		doc["gomaxprocs"] = runtime.GOMAXPROCS(0)
	}
	doc["serving"] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return cliutil.WriteAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(append(out, '\n'))
		return werr
	})
}
