package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestParseSLO(t *testing.T) {
	for _, tc := range []struct {
		name    string
		payload string
		wantErr string
	}{
		{
			name:    "valid",
			payload: `{"scenarios": {"baseline": {"max_p99_ms": 250, "max_error_rate": 0}}}`,
		},
		{
			name:    "empty",
			payload: `{"scenarios": {}}`,
			wantErr: "no scenarios",
		},
		{
			name:    "unknown scenario",
			payload: `{"scenarios": {"basline": {"max_p99_ms": 250}}}`,
			wantErr: "unknown scenario",
		},
		{
			name:    "typoed ceiling",
			payload: `{"scenarios": {"baseline": {"max_p99ms": 250}}}`,
			wantErr: "unknown field",
		},
		{
			name:    "not json",
			payload: `ceilings: yes`,
			wantErr: "parsing SLO file",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSLO([]byte(tc.payload))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadSLO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(path, []byte(`{"scenarios": {"stress": {"max_error_rate": 0.01}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadSLO(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenarios["stress"].MaxErrorRate == nil {
		t.Fatal("ceiling not loaded")
	}
	if _, err := LoadSLO(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestSLOCheck(t *testing.T) {
	good := &Result{Scenario: ScenarioBaseline, Requests: 100, Errors: 0, Status429: 0, P99ms: 40, AchievedRPS: 24}
	bad := &Result{Scenario: ScenarioStress, Requests: 100, Errors: 5, Status429: 40, P99ms: 900, AchievedRPS: 50}
	empty := &Result{Scenario: ScenarioMixed}

	t.Run("pass", func(t *testing.T) {
		f := SLOFile{Scenarios: map[string]SLO{
			ScenarioBaseline: {MaxP99ms: f64(250), MaxErrorRate: f64(0), MinAchievedRPS: f64(10)},
		}}
		if v := f.Check([]*Result{good, bad}); len(v) != 0 {
			t.Fatalf("unexpected violations: %v", v)
		}
	})

	t.Run("every rule fires", func(t *testing.T) {
		f := SLOFile{Scenarios: map[string]SLO{
			ScenarioStress: {MaxP99ms: f64(250), MaxErrorRate: f64(0.01), Max429Rate: f64(0.1), MinAchievedRPS: f64(100)},
		}}
		v := f.Check([]*Result{bad})
		rules := make([]string, len(v))
		for i, viol := range v {
			rules[i] = viol.Rule
		}
		want := []string{"achieved_rps_below_min", "error_rate", "p99_ms", "rate_429"}
		if strings.Join(rules, ",") != strings.Join(want, ",") {
			t.Fatalf("rules %v, want %v (sorted)", rules, want)
		}
	})

	t.Run("explicit zero is a real ceiling", func(t *testing.T) {
		f := SLOFile{Scenarios: map[string]SLO{
			ScenarioStress: {MaxErrorRate: f64(0)},
		}}
		if v := f.Check([]*Result{bad}); len(v) != 1 || v[0].Rule != "error_rate" {
			t.Fatalf("violations %v, want one error_rate", v)
		}
	})

	t.Run("named but not run", func(t *testing.T) {
		f := SLOFile{Scenarios: map[string]SLO{ScenarioChurn: {MaxP99ms: f64(250)}}}
		v := f.Check([]*Result{good})
		if len(v) != 1 || v[0].Rule != "scenario_not_run" {
			t.Fatalf("violations %v, want one scenario_not_run", v)
		}
	})

	t.Run("ran but measured nothing", func(t *testing.T) {
		f := SLOFile{Scenarios: map[string]SLO{ScenarioMixed: {MaxP99ms: f64(250)}}}
		v := f.Check([]*Result{empty})
		if len(v) != 1 || v[0].Rule != "no_requests_measured" {
			t.Fatalf("violations %v, want one no_requests_measured", v)
		}
	})
}

// TestWriteBenchMerge pins the schema-3 merge contract: writing the
// serving section into an existing microbenchmark report keeps the
// benchmarks and stamps schema 3; writing to a fresh path creates a
// serving-only report.
func TestWriteBenchMerge(t *testing.T) {
	dir := t.TempDir()
	rep := Report{Target: "http://test", Seed: 7, Scenarios: []*Result{
		{Scenario: ScenarioBaseline, Requests: 10, P99ms: 12.5},
	}}

	t.Run("merge into existing", func(t *testing.T) {
		path := filepath.Join(dir, "BENCH.json")
		seed := `{"schema": 2, "go": "go-prior", "benchmarks": [{"name": "Align"}]}`
		if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteBench(path, rep); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["schema"] != float64(3) {
			t.Fatalf("schema = %v, want 3", doc["schema"])
		}
		if doc["go"] != "go-prior" {
			t.Fatalf("merge clobbered existing go field: %v", doc["go"])
		}
		if _, ok := doc["benchmarks"]; !ok {
			t.Fatal("merge dropped the benchmarks section")
		}
		serving, ok := doc["serving"].(map[string]any)
		if !ok {
			t.Fatalf("no serving section: %v", doc)
		}
		if serving["target"] != "http://test" {
			t.Fatalf("serving target = %v", serving["target"])
		}
	})

	t.Run("fresh file", func(t *testing.T) {
		path := filepath.Join(dir, "FRESH.json")
		if err := WriteBench(path, rep); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["schema"] != float64(3) || doc["serving"] == nil || doc["go"] == nil {
			t.Fatalf("fresh report incomplete: %v", doc)
		}
	})

	t.Run("corrupt existing rejected", func(t *testing.T) {
		path := filepath.Join(dir, "CORRUPT.json")
		if err := os.WriteFile(path, []byte("{half"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteBench(path, rep); err == nil {
			t.Fatal("corrupt existing report did not error")
		}
	})
}

func TestResultRates(t *testing.T) {
	r := &Result{Requests: 200, Errors: 4, Status429: 30}
	if got := r.ErrorRate(); got != 0.02 {
		t.Fatalf("ErrorRate = %v", got)
	}
	if got := r.Rate429(); got != 0.15 {
		t.Fatalf("Rate429 = %v", got)
	}
	zero := &Result{}
	if zero.ErrorRate() != 0 || zero.Rate429() != 0 {
		t.Fatal("zero-request rates must be 0")
	}
}
