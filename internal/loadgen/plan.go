// Package loadgen is the scenario-driven load harness for the genasm
// serving layer: a stdlib-only HTTP client that generates deterministic,
// seeded request workloads against a running server (cmd/genasm-serve or
// an httptest.Server over server.Handler), paces them open-loop at a
// target rate under a bounded in-flight cap, and reports per-scenario
// throughput, error/backpressure counts and client-side latency
// percentiles — the serving-side evidence microbenchmarks cannot give.
//
// Five named scenarios model the traffic shapes the server was built
// for:
//
//   - baseline: low-rate interactive /align singles — the latency floor.
//   - mixed:    /align plus /map-align in all three response formats
//     (json, sam, paf) plus repeated-key traffic that must be served
//     from the result cache bit-identically.
//   - stress:   max-rate tiny alignments — exercises scheduler
//     coalescing and bounded-queue 429 backpressure.
//   - churn:    references uploaded and deleted while /map-align
//     traffic runs against them — registry lifecycle under load.
//   - bulk:     /jobs submissions riding alongside interactive traffic
//     — the two-lane contention shape (requires -jobs-dir).
//
// Every scenario's request sequence is derived deterministically from
// its seed (internal/readsim drives the read generation), so two runs
// with the same seed offer the exact same byte-for-byte request stream
// and results are comparable across PRs. Results feed the BENCH_*.json
// schema-3 "serving" section and the SLO regression gate (see slo.go
// and cmd/genasm-loadgen).
package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"

	"genasm"
	"genasm/internal/readsim"
	"genasm/server"
)

// Scenario names, in canonical order.
const (
	ScenarioBaseline = "baseline"
	ScenarioMixed    = "mixed"
	ScenarioStress   = "stress"
	ScenarioChurn    = "churn"
	ScenarioBulk     = "bulk"
)

// Scenarios returns every named scenario in canonical run order.
func Scenarios() []string {
	return []string{ScenarioBaseline, ScenarioMixed, ScenarioStress, ScenarioChurn, ScenarioBulk}
}

// Request is one fully materialized HTTP request of a scenario plan:
// method, path (query string included) and a pre-marshaled body. Plans
// are built once per run and cycled, so requests are immutable.
type Request struct {
	// Op labels the request kind for reporting (align, map-align-sam,
	// cache-hit, ref-add, job-submit, ...).
	Op string
	// Method and Path address the server; Path includes any query string.
	Method string
	Path   string
	// Body is the request payload (JSON for the API endpoints, raw FASTQ
	// for job submissions); nil for body-less requests.
	Body []byte
	// ContentType is the request Content-Type (empty = application/json).
	ContentType string
	// CacheKey groups requests whose 200 responses must be bit-identical
	// to each other: the plan repeats the same body under one key, so
	// after the warmup phase primes the result cache every response is a
	// cache hit and any byte difference is a torn or stale cache entry.
	// Zero means unchecked.
	CacheKey int
	// Expect lists the HTTP statuses this request may legitimately
	// receive. 429 is always tolerated (counted as backpressure, never as
	// an error) and need not be listed.
	Expect []int
}

// Plan is a scenario's deterministic workload: the reference to upload
// and the request cycle to pace through.
type Plan struct {
	Scenario string
	Seed     int64
	// RefName/RefSeq is the main reference the plan's map-align and job
	// traffic targets; Run uploads it before pacing starts.
	RefName string
	RefSeq  []byte
	// Requests is the cycle: the pacer walks it round-robin, so the
	// offered sequence is deterministic for a given (scenario, seed).
	Requests []Request
	// Rate is the scenario's default offered request rate per second;
	// Concurrency its default in-flight cap. Config overrides both.
	Rate        float64
	Concurrency int
}

// expectOK is the common single-status allowance.
var expectOK = []int{200}

// BuildPlan materializes the named scenario's request cycle from the
// seed. The same (scenario, seed, genomeLen) always yields the same
// plan, byte for byte — pinned by TestPlanDeterministic.
func BuildPlan(cfg Config) (*Plan, error) {
	cfg.fillDefaults()
	refSeq := genasm.GenerateGenome(cfg.GenomeLen, cfg.Seed)
	p := &Plan{
		Scenario: cfg.Scenario,
		Seed:     cfg.Seed,
		RefName:  cfg.RefName,
		RefSeq:   refSeq,
	}
	var err error
	switch cfg.Scenario {
	case ScenarioBaseline:
		err = buildBaseline(p)
	case ScenarioMixed:
		err = buildMixed(p)
	case ScenarioStress:
		err = buildStress(p)
	case ScenarioChurn:
		err = buildChurn(p)
	case ScenarioBulk:
		err = buildBulk(p)
	default:
		return nil, fmt.Errorf("loadgen: unknown scenario %q (want %s)",
			cfg.Scenario, strings.Join(Scenarios(), ", "))
	}
	if err != nil {
		return nil, fmt.Errorf("loadgen: building %s plan: %w", cfg.Scenario, err)
	}
	return p, nil
}

// simulatePairs draws n reads from ref under profile and returns them as
// (query, reference-region) align pairs using the simulator's ground
// truth. RevComp is disabled so the query actually aligns to its region.
func simulatePairs(ref []byte, n int, prof readsim.Profile, seed int64) ([]server.AlignPair, error) {
	prof.RevCompFrac = 0
	reads, err := readsim.Simulate(ref, n, prof, seed)
	if err != nil {
		return nil, err
	}
	pairs := make([]server.AlignPair, len(reads))
	for i, r := range reads {
		pairs[i] = server.AlignPair{
			Query: string(r.Seq),
			Ref:   string(ref[r.Pos : r.Pos+r.RefSpan]),
		}
	}
	return pairs, nil
}

// simulateReads draws n mapping reads (both strands) from ref.
func simulateReads(ref []byte, n int, prof readsim.Profile, seed int64) ([]server.ReadIn, error) {
	reads, err := readsim.Simulate(ref, n, prof, seed)
	if err != nil {
		return nil, err
	}
	out := make([]server.ReadIn, len(reads))
	for i, r := range reads {
		out[i] = server.ReadIn{Name: r.Name, Seq: string(r.Seq), Qual: string(r.Qual)}
	}
	return out, nil
}

// interactiveProfile is the medium interactive read shape: ~600 bp at 8%
// error, long-read-like composition.
func interactiveProfile() readsim.Profile {
	p := readsim.PacBioCLR()
	p.MeanLength, p.LengthSD, p.MinLength = 600, 120, 120
	p.ErrorRate, p.ErrorRateSD = 0.08, 0.01
	return p
}

// tinyProfile is the stress shape: reads small enough that per-request
// cost is dominated by serving overhead, not alignment.
func tinyProfile() readsim.Profile {
	p := readsim.PacBioCLR()
	p.MeanLength, p.LengthSD, p.MinLength = 80, 12, 48
	p.ErrorRate, p.ErrorRateSD = 0.05, 0.01
	return p
}

func alignRequest(op string, cacheKey int, pairs ...server.AlignPair) Request {
	body, err := json.Marshal(server.AlignRequest{Pairs: pairs})
	if err != nil {
		panic(err) // static wire types; cannot fail
	}
	return Request{
		Op: op, Method: "POST", Path: "/align", Body: body,
		CacheKey: cacheKey, Expect: expectOK,
	}
}

func mapAlignRequest(op, ref, format string, expect []int, reads ...server.ReadIn) Request {
	body, err := json.Marshal(server.MapAlignRequest{Ref: ref, Reads: reads, Format: format})
	if err != nil {
		panic(err)
	}
	return Request{Op: op, Method: "POST", Path: "/map-align", Body: body, Expect: expect}
}

// buildBaseline: low-rate interactive /align singles.
func buildBaseline(p *Plan) error {
	pairs, err := simulatePairs(p.RefSeq, 64, interactiveProfile(), p.Seed)
	if err != nil {
		return err
	}
	for _, pair := range pairs {
		p.Requests = append(p.Requests, alignRequest("align", 0, pair))
	}
	p.Rate, p.Concurrency = 25, 16
	return nil
}

// buildMixed: align + /map-align in all three formats + repeated-key
// cache-hit traffic. The repeated keys are interleaved through the cycle
// so hits and misses coexist in the same scheduler batches.
func buildMixed(p *Plan) error {
	pairs, err := simulatePairs(p.RefSeq, 24, interactiveProfile(), p.Seed)
	if err != nil {
		return err
	}
	reads, err := simulateReads(p.RefSeq, 36, interactiveProfile(), p.Seed+1)
	if err != nil {
		return err
	}
	hotPairs, err := simulatePairs(p.RefSeq, 6, interactiveProfile(), p.Seed+2)
	if err != nil {
		return err
	}
	var cold, hot []Request
	for _, pair := range pairs {
		cold = append(cold, alignRequest("align", 0, pair))
	}
	for i, format := range []string{"json", "sam", "paf"} {
		for j := 0; j < 12; j++ {
			chunk := reads[(i*12+j)%len(reads):]
			if len(chunk) > 4 {
				chunk = chunk[:4]
			}
			cold = append(cold, mapAlignRequest("map-align-"+format, p.RefName, format, expectOK, chunk...))
		}
	}
	// Each hot pair repeats 6 times under one cache key: after warmup the
	// response must come from the cache, bit-identical every time.
	for rep := 0; rep < 6; rep++ {
		for k, pair := range hotPairs {
			hot = append(hot, alignRequest("cache-hit", k+1, pair))
		}
	}
	p.Requests = interleave(cold, hot)
	p.Rate, p.Concurrency = 120, 32
	return nil
}

// buildStress: max-rate tiny single-pair alignments.
func buildStress(p *Plan) error {
	pairs, err := simulatePairs(p.RefSeq, 48, tinyProfile(), p.Seed)
	if err != nil {
		return err
	}
	for _, pair := range pairs {
		p.Requests = append(p.Requests, alignRequest("align-tiny", 0, pair))
	}
	p.Rate, p.Concurrency = 2500, 64
	return nil
}

// buildChurn: secondary references uploaded and deleted mid-traffic
// while /map-align runs against both the churning names and the stable
// main reference. Because adds, deletes and lookups race by design, the
// churned endpoints tolerate 404 (deleted), 409 (re-added) and 410 —
// anything else (especially a 500) is an error.
func buildChurn(p *Plan) error {
	reads, err := simulateReads(p.RefSeq, 16, interactiveProfile(), p.Seed)
	if err != nil {
		return err
	}
	const churnRefs = 4
	for i := 0; i < churnRefs; i++ {
		name := fmt.Sprintf("churn-%d", i)
		seq := genasm.GenerateGenome(4_000, p.Seed+int64(i)+100)
		addBody, err := json.Marshal(server.RefAddRequest{Name: name, Sequence: string(seq)})
		if err != nil {
			return err
		}
		churnReads, err := simulateReads(seq, 4, interactiveProfile(), p.Seed+int64(i)+200)
		if err != nil {
			return err
		}
		p.Requests = append(p.Requests,
			Request{Op: "ref-add", Method: "POST", Path: "/refs", Body: addBody, Expect: []int{201, 409}},
			mapAlignRequest("map-align-churn", name, "json", []int{200, 404}, churnReads...),
			mapAlignRequest("map-align-stable", p.RefName, "json", expectOK, reads[i*4:i*4+4]...),
			mapAlignRequest("map-align-churn", name, "sam", []int{200, 404}, churnReads...),
			Request{Op: "ref-delete", Method: "DELETE", Path: "/refs/" + name, Expect: []int{204, 404}},
			mapAlignRequest("map-align-churn", name, "json", []int{200, 404}, churnReads...),
		)
	}
	p.Rate, p.Concurrency = 80, 16
	return nil
}

// buildBulk: /jobs submissions riding alongside interactive /align
// traffic — every 8th request spools a 24-read FASTQ job.
func buildBulk(p *Plan) error {
	pairs, err := simulatePairs(p.RefSeq, 28, interactiveProfile(), p.Seed)
	if err != nil {
		return err
	}
	prof := interactiveProfile()
	var jobBodies [][]byte
	for i := 0; i < 4; i++ {
		reads, err := readsim.Simulate(p.RefSeq, 24, prof, p.Seed+int64(i)+300)
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := readsim.WriteFASTQ(&sb, reads); err != nil {
			return err
		}
		jobBodies = append(jobBodies, []byte(sb.String()))
	}
	for i, pair := range pairs {
		if i%7 == 0 {
			p.Requests = append(p.Requests, Request{
				Op:     "job-submit",
				Method: "POST",
				Path:   "/jobs?ref=" + p.RefName + "&format=sam",
				Body:   jobBodies[(i/7)%len(jobBodies)],
				// FASTQ, not JSON; the handler sniffs the first byte.
				ContentType: "text/plain",
				Expect:      []int{202},
			})
		}
		p.Requests = append(p.Requests, alignRequest("align", 0, pair))
	}
	p.Rate, p.Concurrency = 60, 16
	return nil
}

// interleave spreads b's entries evenly through a, preserving both
// orders — deterministic, no randomness.
func interleave(a, b []Request) []Request {
	if len(b) == 0 {
		return a
	}
	out := make([]Request, 0, len(a)+len(b))
	stride := 1
	if len(b) > 0 {
		stride = (len(a) + len(b)) / len(b)
		if stride < 1 {
			stride = 1
		}
	}
	ai, bi := 0, 0
	for len(out) < len(a)+len(b) {
		if (len(out)%stride == stride-1 || ai == len(a)) && bi < len(b) {
			out = append(out, b[bi])
			bi++
		} else {
			out = append(out, a[ai])
			ai++
		}
	}
	return out
}
