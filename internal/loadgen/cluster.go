package loadgen

import (
	"context"
	"fmt"
	"sync"
)

// RunTargets runs one scenario against several base URLs concurrently —
// the node-count scaling probe for a serving cluster. Each target gets
// its own deterministic plan (same seed, so every node sees the same
// workload) and its own open-loop pacer; the aggregate result sums
// throughput and counts across targets. Latency percentiles cannot be
// summed, so the aggregate reports the worst (maximum) per-target
// percentile — a conservative cluster-wide bound.
//
// Targets may be genasm-serve nodes hit directly (per-node capacity) or
// a single routing front listed once (front-tier capacity); the
// aggregate is meaningful either way.
func RunTargets(ctx context.Context, cfg Config, targets []string) (perTarget []*Result, aggregate *Result, err error) {
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("loadgen: RunTargets needs at least one target")
	}
	perTarget = make([]*Result, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			tcfg := cfg
			tcfg.BaseURL = target
			res, rerr := Run(ctx, tcfg)
			if rerr != nil {
				errs[i] = fmt.Errorf("loadgen: target %s: %w", target, rerr)
				return
			}
			res.Target = target
			perTarget[i] = res
		}(i, target)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	return perTarget, Aggregate(perTarget), nil
}

// Aggregate folds per-target results into one cluster-wide view:
// throughput and counts sum, percentiles take the per-target maximum
// (see RunTargets). Returns nil for no results.
func Aggregate(results []*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	agg := &Result{
		Scenario:     results[0].Scenario,
		Seed:         results[0].Seed,
		Target:       "aggregate",
		StatusCounts: make(map[int]int),
	}
	for _, r := range results {
		agg.OfferedRPS += r.OfferedRPS
		agg.AchievedRPS += r.AchievedRPS
		agg.Requests += r.Requests
		agg.Errors += r.Errors
		agg.Status429 += r.Status429
		agg.Dropped += r.Dropped
		agg.CacheMismatches += r.CacheMismatches
		agg.CacheChecked += r.CacheChecked
		agg.P50ms = max(agg.P50ms, r.P50ms)
		agg.P95ms = max(agg.P95ms, r.P95ms)
		agg.P99ms = max(agg.P99ms, r.P99ms)
		agg.MeasureSeconds = max(agg.MeasureSeconds, r.MeasureSeconds)
		for code, n := range r.StatusCounts {
			agg.StatusCounts[code] += n
		}
		if r.LastError != "" {
			agg.LastError = r.LastError
		}
	}
	return agg
}

// ClusterRow is one node-count scaling measurement in the BENCH_*.json
// serving section: the same scenario offered to N upstream nodes, with
// the cluster-wide achieved throughput.
type ClusterRow struct {
	Nodes        int       `json:"nodes"`
	Scenario     string    `json:"scenario"`
	AggregateRPS float64   `json:"aggregate_rps"`
	PerTargetRPS []float64 `json:"per_target_rps"`
	P99ms        float64   `json:"p99_ms"`
}

// Row renders a RunTargets outcome as one scaling-table row.
func Row(perTarget []*Result, aggregate *Result) ClusterRow {
	row := ClusterRow{
		Nodes:        len(perTarget),
		Scenario:     aggregate.Scenario,
		AggregateRPS: aggregate.AchievedRPS,
		P99ms:        aggregate.P99ms,
		PerTargetRPS: make([]float64, len(perTarget)),
	}
	for i, r := range perTarget {
		row.PerTargetRPS[i] = r.AchievedRPS
	}
	return row
}
