package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"genasm/server"
)

// TestPlanDeterministic pins the harness's central guarantee: the same
// (scenario, seed, genome length) builds the identical plan byte for
// byte, and a different seed builds a different one.
func TestPlanDeterministic(t *testing.T) {
	for _, scenario := range Scenarios() {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			cfg := Config{Scenario: scenario, Seed: 7, GenomeLen: 40_000}
			a, err := BuildPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed built different plans")
			}
			if len(a.Requests) == 0 {
				t.Fatal("plan has no requests")
			}
			if a.Rate <= 0 || a.Concurrency <= 0 {
				t.Fatalf("plan defaults missing: rate %v concurrency %d", a.Rate, a.Concurrency)
			}
			cfg.Seed = 8
			c, err := BuildPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Requests, c.Requests) {
				t.Fatal("different seeds built identical request sequences")
			}
		})
	}
}

func TestBuildPlanUnknownScenario(t *testing.T) {
	if _, err := BuildPlan(Config{Scenario: "nope", GenomeLen: 10_000}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// smokeServer boots an in-process server for loadgen to drive.
func smokeServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func smokeRun(t *testing.T, ts *httptest.Server, scenario string) *Result {
	t.Helper()
	res, err := Run(context.Background(), Config{
		BaseURL:   ts.URL,
		Scenario:  scenario,
		Seed:      7,
		Warmup:    400 * time.Millisecond,
		Duration:  1500 * time.Millisecond,
		GenomeLen: 40_000,
		RefName:   "loadgen",
	})
	if err != nil {
		t.Fatalf("%s: %v", scenario, err)
	}
	return res
}

// TestSmokeBaseline runs the baseline scenario against an in-process
// server: clean traffic, measured latency, a server-side counter delta.
func TestSmokeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	ts := smokeServer(t, server.Config{})
	res := smokeRun(t, ts, ScenarioBaseline)
	if res.Requests == 0 {
		t.Fatal("baseline measured no requests")
	}
	if res.Errors != 0 {
		t.Fatalf("baseline saw %d errors (last: %s)", res.Errors, res.LastError)
	}
	if res.P50ms <= 0 || res.P99ms < res.P50ms {
		t.Fatalf("implausible percentiles: p50 %v p99 %v", res.P50ms, res.P99ms)
	}
	if res.ServerDelta == nil {
		t.Fatal("no server-side scrape delta")
	}
	if res.ServerDelta.PairsDoneTotal == 0 {
		t.Fatalf("server delta shows no pairs done: %+v", *res.ServerDelta)
	}
}

// TestSmokeStressBackpressure pins that the stress scenario actually
// reaches the bounded-queue admission path: with a tiny queue the server
// must shed with 429s, and the client must count them as backpressure,
// not errors.
func TestSmokeStressBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	ts := smokeServer(t, server.Config{
		// Disable the result cache so every request reaches the
		// scheduler's admission check — the stress cycle repeats its
		// pairs, and cache hits would bypass the queue entirely.
		CacheSize: -1,
		Scheduler: server.SchedulerConfig{MaxQueue: 2, MaxBatch: 4, MaxDelay: 5 * time.Millisecond},
	})
	res := smokeRun(t, ts, ScenarioStress)
	if res.Requests == 0 {
		t.Fatal("stress measured no requests")
	}
	if res.Status429 == 0 {
		t.Fatalf("stress against MaxQueue=2 produced no 429s (statuses: %v)", res.StatusCounts)
	}
	if res.Errors != 0 {
		t.Fatalf("429s leaked into errors: %d (last: %s)", res.Errors, res.LastError)
	}
	if res.ServerDelta != nil && res.ServerDelta.RejectedTotal == 0 {
		t.Fatalf("client saw 429s but server rejected_total did not move: %+v", *res.ServerDelta)
	}
}

// TestSmokeMixedCacheIdentity pins bit-identical cache-hit responses:
// the mixed scenario's repeated-key traffic is primed during warmup, so
// every measured response under a cache key must be byte-equal.
func TestSmokeMixedCacheIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	ts := smokeServer(t, server.Config{})
	res := smokeRun(t, ts, ScenarioMixed)
	if res.Errors != 0 {
		t.Fatalf("mixed saw %d errors (last: %s)", res.Errors, res.LastError)
	}
	if res.CacheChecked == 0 {
		t.Fatal("mixed checked no cache-keyed responses")
	}
	if res.CacheMismatches != 0 {
		t.Fatalf("%d of %d cache-keyed responses diverged (last: %s)",
			res.CacheMismatches, res.CacheChecked, res.LastError)
	}
	if res.ServerDelta != nil && res.ServerDelta.CacheHitsTotal == 0 {
		t.Fatalf("mixed produced no server-side cache hits: %+v", *res.ServerDelta)
	}
}

// TestRunCancel pins that ctx cancellation aborts a run promptly.
func TestRunCancel(t *testing.T) {
	ts := smokeServer(t, server.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{BaseURL: ts.URL, Scenario: ScenarioBaseline, GenomeLen: 10_000}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}} {
		if got := percentile(samples, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}
