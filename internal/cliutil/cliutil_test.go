package cliutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicSuccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("content %q", data)
	}
}

func TestWriteAtomicFailureLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed run left %s behind", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteAtomicFailurePreservesOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteAtomic(path, func(w io.Writer) error { return errors.New("boom") })
	if err == nil {
		t.Fatal("want error")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "good" {
		t.Fatalf("previous output clobbered: %q", data)
	}
}
