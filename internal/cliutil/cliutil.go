// Package cliutil holds small helpers shared by the cmd/ binaries.
package cliutil

import (
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic runs fn against path's writer. For path "-" fn writes
// straight to stdout. Otherwise fn writes to a temp file in path's
// directory that is renamed into place only after fn and the file close
// both succeed, so a failing run never leaves an empty or truncated
// output behind (and never clobbers a good file from a previous run).
func WriteAtomic(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if err := fn(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	name := f.Name()
	f = nil // close/remove already handled; skip the deferred cleanup
	return os.Rename(name, path)
}
