package genasm_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownLink matches inline markdown links and captures the target.
var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks walks README.md and docs/*.md and checks that
// every relative link target exists, so documentation cannot silently
// rot as files move. External (scheme-qualified) links and pure anchors
// are skipped.
func TestDocsRelativeLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least two docs/ files, found %v", files)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, match := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop anchors
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist (%v)", file, match[1], err)
			}
		}
	}
}
