package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"genasm"
	"genasm/internal/obs"
)

// Scheduler errors surfaced to callers (the HTTP layer maps ErrQueueFull
// to 429 Too Many Requests and ErrClosed to 503 Service Unavailable).
var (
	ErrQueueFull = errors.New("server: scheduler queue full")
	ErrClosed    = errors.New("server: scheduler closed")
)

// SchedulerConfig tunes the dynamic batcher.
type SchedulerConfig struct {
	// MaxBatch flushes a batch as soon as this many pairs are pending.
	// The default is the engine backend's Capabilities().PreferredBatch
	// (a few pairs per CPU worker, one wave of resident blocks on the
	// GPU, the children's sum on a composite; 64 if the backend states
	// no preference). Bigger batches keep the backend saturated — the
	// paper's throughput lever — at the cost of per-request latency.
	MaxBatch int
	// MaxDelay bounds how long the first pair of a batch may wait before
	// the batch is flushed regardless of size (default 2ms). This is the
	// latency ceiling the batcher adds on an idle server.
	MaxDelay time.Duration
	// MaxQueue bounds the pairs admitted but not yet completed (queued
	// plus in flight, default 4096). Beyond it Submit fails fast with
	// ErrQueueFull so callers can shed load instead of piling up.
	MaxQueue int
}

func (c *SchedulerConfig) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
}

// schedJob is one Submit call: its pairs travel through a backend batch
// together with other jobs' pairs, and its results come back on done.
// trace is the submitter's request trace (nil when the caller's context
// carries none): the executor records the job's queue wait on it and
// splices in the shared batch spans before signalling done.
type schedJob struct {
	pairs    []genasm.Pair
	done     chan schedResult // buffered(1): the executor never blocks
	enqueued time.Time
	trace    *obs.Trace
}

type schedResult struct {
	results []genasm.Result
	err     error
}

// Scheduler coalesces many small concurrent alignment requests into the
// large backend batches the CPU/GPU backends are fast at. Requests are
// admitted under a bounded queue, gathered until either MaxBatch pairs
// are pending or the oldest has waited MaxDelay, then executed as one
// Engine.AlignBatch call; each caller gets back exactly its slice of the
// batch. Safe for concurrent use.
type Scheduler struct {
	eng *genasm.Engine
	cfg SchedulerConfig
	m   *Metrics

	mu        sync.Mutex
	pending   []*schedJob
	nPending  int // pairs in pending
	nInFlight int // pairs dispatched, not yet completed
	timer     *time.Timer
	timerGen  uint64 // bumped whenever a batch is claimed; stale timer callbacks no-op
	closed    bool
	wg        sync.WaitGroup // in-flight batch executors
}

// NewScheduler wraps eng with a dynamic batcher. Metrics may be nil.
func NewScheduler(eng *genasm.Engine, cfg SchedulerConfig, m *Metrics) *Scheduler {
	if cfg.MaxBatch <= 0 {
		// Size the flush threshold to the backend's stated appetite
		// instead of special-casing backend kinds.
		cfg.MaxBatch = eng.Capabilities().PreferredBatch
	}
	cfg.fillDefaults()
	if m == nil {
		m = NewMetrics(eng.BackendName())
	}
	return &Scheduler{eng: eng, cfg: cfg, m: m}
}

// Metrics returns the scheduler's metrics sink.
func (s *Scheduler) Metrics() *Metrics { return s.m }

// Submit admits pairs, waits for the batch containing them to execute,
// and returns results index-aligned with pairs. It fails fast with
// ErrQueueFull when admission would exceed MaxQueue and with ErrClosed
// after Close. A ctx cancellation abandons the wait (the batch still
// runs; the caller's results are discarded). A submission larger than
// the queue bound — which could never be admitted whole — is split into
// sequential half-queue sub-submissions, so a single big request can
// make progress instead of being rejected forever.
func (s *Scheduler) Submit(ctx context.Context, pairs []genasm.Pair) ([]genasm.Result, error) {
	if len(pairs) > s.cfg.MaxQueue {
		chunk := max(1, s.cfg.MaxQueue/2)
		out := make([]genasm.Result, 0, len(pairs))
		for off := 0; off < len(pairs); off += chunk {
			res, err := s.submit(ctx, pairs[off:min(off+chunk, len(pairs))])
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		return out, nil
	}
	return s.submit(ctx, pairs)
}

func (s *Scheduler) submit(ctx context.Context, pairs []genasm.Pair) ([]genasm.Result, error) {
	if len(pairs) == 0 {
		return []genasm.Result{}, ctx.Err()
	}
	j := &schedJob{
		pairs:    pairs,
		done:     make(chan schedResult, 1),
		enqueued: time.Now(),
		trace:    obs.FromContext(ctx),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.nPending+s.nInFlight+len(pairs) > s.cfg.MaxQueue {
		s.mu.Unlock()
		s.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.pending = append(s.pending, j)
	s.nPending += len(pairs)
	s.m.pairsIn.Add(int64(len(pairs)))
	s.m.queueDepth.Store(int64(s.nPending + s.nInFlight))
	if s.nPending >= s.cfg.MaxBatch {
		batch := s.takeBatchLocked()
		s.mu.Unlock()
		s.dispatch(batch)
	} else {
		if s.timer == nil {
			gen := s.timerGen
			s.timer = time.AfterFunc(s.cfg.MaxDelay, func() { s.flushOnDeadline(gen) })
		}
		s.mu.Unlock()
	}

	select {
	case r := <-j.done:
		return r.results, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// takeBatchLocked claims every pending job as one batch and resets the
// accumulator. Caller holds s.mu; the wg increment for the batch's
// executor happens here, under the lock, so a concurrent Close cannot
// observe a zero counter between the claim and the dispatch. Bumping
// timerGen invalidates any MaxDelay callback already in flight, so a
// stale timer cannot prematurely flush the next batch or orphan its
// live timer.
func (s *Scheduler) takeBatchLocked() []*schedJob {
	batch := s.pending
	s.pending = nil
	s.nInFlight += s.nPending
	s.nPending = 0
	s.timerGen++
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(batch) > 0 {
		s.wg.Add(1)
	}
	return batch
}

// flushOnDeadline is the MaxDelay timer callback: whatever is pending
// ships now. gen identifies the batch generation the timer was armed
// for; if a size-triggered flush (or Close) claimed that batch first,
// the callback is stale and must not touch the newer accumulation.
func (s *Scheduler) flushOnDeadline(gen uint64) {
	s.mu.Lock()
	if gen != s.timerGen {
		s.mu.Unlock()
		return
	}
	s.timer = nil
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return
	}
	batch := s.takeBatchLocked()
	s.mu.Unlock()
	s.dispatch(batch)
}

// dispatch executes one batch asynchronously so Submit returns to its
// select immediately and new arrivals keep coalescing meanwhile.
func (s *Scheduler) dispatch(batch []*schedJob) {
	if len(batch) == 0 {
		return
	}
	go s.runBatch(batch)
}

func (s *Scheduler) runBatch(batch []*schedJob) {
	defer s.wg.Done()
	claimed := time.Now()
	n := 0
	traced := false
	for _, j := range batch {
		n += len(j.pairs)
		wait := claimed.Sub(j.enqueued)
		s.m.observeQueueWait(wait)
		j.trace.Record("queue_wait", j.enqueued, wait, obs.Int("pairs", len(j.pairs)))
		traced = traced || j.trace != nil
	}
	// The batch serves many requests at once, so its shared stages
	// (assembly, backend execution, composite shard fan-out) record onto
	// one batch trace that is spliced into every co-batched request's
	// trace afterwards. Untraced batches skip the bookkeeping entirely.
	var btr *obs.Trace
	if traced {
		btr = obs.NewTrace("batch", "")
	}
	all := make([]genasm.Pair, 0, n)
	for _, j := range batch {
		all = append(all, j.pairs...)
	}
	btr.Record("batch_assemble", claimed, time.Since(claimed),
		obs.Int("pairs", n), obs.Int("requests", len(batch)))
	// The batch runs under the scheduler's lifetime, not any single
	// caller's context: one impatient client must not cancel its
	// co-batched neighbours.
	//lint:allow ctxflow a coalesced batch must outlive every submitter's ctx; Close drains via wg, not cancellation
	ctx := context.Background()
	if btr != nil {
		ctx = obs.WithTrace(ctx, btr)
	}
	execStart := time.Now()
	results, err := s.eng.AlignBatch(ctx, all)
	execDur := time.Since(execStart)
	btr.Record("backend_exec", execStart, execDur,
		obs.String("backend", s.eng.BackendName()), obs.Int("pairs", n))
	s.m.observeBatch(n, execDur)
	if err != nil {
		s.m.batchErrs.Add(1)
		err = fmt.Errorf("server: batch of %d pairs: %w", n, err)
	} else {
		s.m.pairsDone.Add(int64(n))
	}
	off := 0
	for _, j := range batch {
		// Splice the shared batch spans in before signalling done, so a
		// submitter that resumes immediately sees a complete trace.
		j.trace.Absorb(btr)
		if err != nil {
			j.done <- schedResult{err: err}
		} else {
			j.done <- schedResult{results: results[off : off+len(j.pairs)]}
		}
		off += len(j.pairs)
	}
	s.mu.Lock()
	s.nInFlight -= n
	s.m.queueDepth.Store(int64(s.nPending + s.nInFlight))
	s.mu.Unlock()
}

// Close stops admission, flushes anything pending, and waits for
// in-flight batches to finish. Subsequent Submits return ErrClosed.
// Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	batch := s.takeBatchLocked()
	s.mu.Unlock()
	s.dispatch(batch)
	s.wg.Wait()
}
