package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"genasm"
)

// Cache is a fixed-capacity LRU of alignment Results keyed by
// (engine fingerprint, reference, query) digests. It is safe for
// concurrent use. A nil *Cache is a valid no-op cache (every Get misses,
// Put is dropped), which is how caching is disabled.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val genasm.Result
}

// NewCache returns an LRU holding at most capacity results, or nil (the
// no-op cache) when capacity <= 0.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get looks key up, promoting it to most-recently-used on a hit.
func (c *Cache) Get(key string) (genasm.Result, bool) {
	if c == nil {
		return genasm.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return genasm.Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores key -> val, evicting the least-recently-used entry when the
// cache is full.
func (c *Cache) Put(key string, val genasm.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports how many results are cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Enabled reports whether this is a real cache (false for the nil no-op
// cache), letting hot paths skip key hashing entirely when caching is
// off.
func (c *Cache) Enabled() bool { return c != nil }

// Cap reports the cache capacity (0 for the no-op cache).
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// resultKey digests everything that determines an alignment Result: the
// engine fingerprint (algorithm, geometry, scoring, backend — see
// genasm.Engine.Fingerprint), the reference region and the query. Inputs
// are length-prefixed so no two distinct triples collide structurally.
func resultKey(fingerprint string, ref, query []byte) string {
	h := sha256.New()
	var n [8]byte
	write := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	write([]byte(fingerprint))
	write(ref)
	write(query)
	return hex.EncodeToString(h.Sum(nil))
}
