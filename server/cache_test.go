package server

import (
	"fmt"
	"sync"
	"testing"

	"genasm"
)

func res(d int) genasm.Result { return genasm.Result{Distance: d, Cigar: "1="} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.Put("c", res(3)) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	for key, want := range map[string]int{"a": 1, "c": 3} {
		got, ok := c.Get(key)
		if !ok || got.Distance != want {
			t.Fatalf("%s: got %+v ok=%v", key, got, ok)
		}
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res(1))
	c.Put("a", res(9))
	got, ok := c.Get("a")
	if !ok || got.Distance != 9 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0) // nil no-op cache
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("a", res(1)) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("disabled cache reports non-zero size")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*200+i)%100)
				c.Put(key, res(i))
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}

// TestResultKeyStructural: the digest must separate fingerprint, ref and
// query structurally, not just concatenate them.
func TestResultKeyStructural(t *testing.T) {
	base := resultKey("fp", []byte("AB"), []byte("C"))
	cases := map[string]string{
		"boundary shift":        resultKey("fp", []byte("A"), []byte("BC")),
		"field shift":           resultKey("fpA", []byte("B"), []byte("C")),
		"different fingerprint": resultKey("fp2", []byte("AB"), []byte("C")),
		"different ref":         resultKey("fp", []byte("AC"), []byte("C")),
		"different query":       resultKey("fp", []byte("AB"), []byte("G")),
	}
	for name, key := range cases {
		if key == base {
			t.Fatalf("%s collides with base key", name)
		}
	}
	if resultKey("fp", []byte("AB"), []byte("C")) != base {
		t.Fatal("resultKey is not deterministic")
	}
}
