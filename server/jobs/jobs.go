// Package jobs is the server's asynchronous bulk lane: submit a
// genome-sized read set once, poll its progress, download the result
// when it is done. The interactive endpoints (/align, /map-align) hold
// the HTTP connection open for the whole run, which caps them at
// request-sized work; a job survives client disconnects, reports
// read-level progress, and spools its input and result on disk so a
// completed run costs nothing to re-download.
//
// The package is deliberately ignorant of HTTP and of the alignment
// engine: the Manager owns the job index, the spool directory, a
// bounded worker pool, cancellation, TTL-based retention and drain
// semantics, and delegates the actual work to a RunFunc supplied by the
// serving layer. That keeps the state machine independently testable
// and leaves scheduler/engine reuse where those live.
//
// Job state machine:
//
//	queued ──► running ──► done
//	   │           │   └──► failed   (run error, or server shutdown)
//	   └───────────┴──────► canceled (DELETE while queued or running)
//
// Results are written through internal/cliutil.WriteAtomic: a result
// file either exists complete or not at all — a crashed, canceled or
// drained job never leaves a half-written download behind.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"genasm/internal/cliutil"
	"genasm/internal/obs"
)

// Errors surfaced to the HTTP layer (mapped to 429 and 503).
var (
	// ErrBacklogFull reports that Submit would exceed Config.MaxQueued
	// undispatched jobs.
	ErrBacklogFull = errors.New("jobs: backlog full")
	// ErrClosed reports a Submit after Close began.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotTerminal reports a Remove of a job that is still queued or
	// running (cancel it first).
	ErrNotTerminal = errors.New("jobs: job not terminal")
)

// State is a job's position in the lifecycle state machine.
type State string

const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether s is an end state (done, failed, canceled) —
// the states retention sweeping and result download apply to.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// Spec is what a job should compute, fixed at submission.
type Spec struct {
	// Ref names the registered reference to map against.
	Ref string `json:"ref"`
	// Format is the result representation: "sam", "paf" or "json".
	Format string `json:"format"`
	// AllCandidates aligns every candidate location, not just the best.
	AllCandidates bool `json:"all_candidates,omitempty"`
}

// Progress carries a running job's read-level counters. The RunFunc
// updates it batch by batch; snapshots read it concurrently.
type Progress struct {
	total  atomic.Int64
	done   atomic.Int64
	failed atomic.Int64
	// onAdd (set by the Manager) forwards increments into the
	// manager-wide metrics counters.
	onAdd func(done, failed int64)
}

// SetTotal records how many reads the job's input parsed into (known
// only once the job starts running).
func (p *Progress) SetTotal(n int) { p.total.Store(int64(n)) }

// Add records done reads processed, failed of which had per-read errors
// (and so have no record in the result).
func (p *Progress) Add(done, failed int) {
	p.done.Add(int64(done))
	p.failed.Add(int64(failed))
	if p.onAdd != nil {
		p.onAdd(int64(done), int64(failed))
	}
}

// RunFunc executes one job's work: parse the spooled input file at
// inputPath, write the complete result to out, and report progress on
// p. It must honor ctx — cancellation is how DELETE and server drain
// interrupt a running job — and must not retain out after returning
// (out is the atomic-write temp file; it is renamed into place only
// when RunFunc returns nil).
type RunFunc func(ctx context.Context, spec Spec, inputPath string, out io.Writer, p *Progress) error

// Config tunes a Manager. Zero values take the documented defaults.
type Config struct {
	// Dir is the spool directory (required). Each job gets
	// Dir/<id>/input.<fasta|fastq> and Dir/<id>/result.<format>.
	// A non-empty pre-existing Dir is refused: the in-memory job index
	// does not survive restarts, so leftover spool entries are
	// unreachable state that would otherwise leak disk forever.
	Dir string
	// Workers bounds how many jobs run concurrently (default 2). Each
	// worker drains its job through the shared batch scheduler in
	// backend-capability-sized batches, so a small pool already
	// saturates the backend; more workers mainly trade bulk-lane
	// fairness against interactive latency.
	Workers int
	// TTL is how long a terminal job (and its spool files) is retained
	// before the sweeper garbage-collects it (default 1h).
	TTL time.Duration
	// SweepEvery is the sweeper period (default TTL/10, clamped to
	// [1s, 1m]).
	SweepEvery time.Duration
	// MaxQueued bounds submitted-but-undispatched jobs (default 64);
	// beyond it Submit fails fast with ErrBacklogFull.
	MaxQueued int
	// DrainGrace is how long Close waits for running jobs to finish
	// before canceling them and marking them failed (default 10s).
	DrainGrace time.Duration
	// Logger receives job lifecycle transitions (submitted, running,
	// terminal states, sweeps). Nil discards them.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = min(max(c.TTL/10, time.Second), time.Minute)
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
}

// Snapshot is a job's externally visible state, safe to serialize.
type Snapshot struct {
	ID string `json:"id"`
	Spec
	State State `json:"state"`
	// Error is set for failed (run error) and canceled (cancel reason)
	// jobs.
	Error string `json:"error,omitempty"`
	// Read-level progress: ReadsTotal is 0 until the input is parsed at
	// run start; ReadsFailed counts per-read errors (reads absent from
	// the result).
	ReadsTotal  int64 `json:"reads_total"`
	ReadsDone   int64 `json:"reads_done"`
	ReadsFailed int64 `json:"reads_failed,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// ResultBytes is the complete result's size (done jobs only).
	ResultBytes int64 `json:"result_bytes,omitempty"`
}

// job is the internal record behind a Snapshot. Fields other than
// progress are guarded by the Manager mutex.
type job struct {
	id   string
	spec Spec
	dir  string // spool dir for this job
	in   string // spooled input path
	out  string // result path

	state     State
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	resBytes  int64
	progress  Progress
	cancel    context.CancelFunc // non-nil while running
	cancelReq bool               // DELETE asked for cancellation
	drained   bool               // Close canceled it (failed, not canceled)
}

// Stats is the manager-wide counter snapshot feeding the jobs_* fields
// of the server's /metrics.
type Stats struct {
	Submitted   int64 // jobs accepted by Submit
	Done        int64 // jobs finished successfully
	Failed      int64 // jobs that errored (including drain interruptions)
	Canceled    int64 // jobs canceled by DELETE
	Swept       int64 // terminal jobs garbage-collected (TTL or DELETE)
	Queued      int64 // gauge: submitted, not yet running
	Running     int64 // gauge: running right now
	ReadsDone   int64 // reads processed across all jobs
	ReadsFailed int64 // reads with per-read errors across all jobs
	ResultBytes int64 // bytes of completed results produced
}

// Manager owns the job index, spool directory, worker pool and
// retention sweeping. Construct with NewManager, stop with Close. All
// methods are safe for concurrent use.
type Manager struct {
	cfg Config
	run RunFunc

	mu      sync.Mutex
	cond    *sync.Cond // signals workers that pending changed
	pending []*job     // FIFO of queued jobs awaiting a worker
	jobs    map[string]*job
	order   []string             // submission order (List reverses it)
	gone    map[string]time.Time // tombstones of swept job IDs -> sweep time
	queued  int                  // jobs submitted, not yet running
	closed  bool

	stopc chan struct{} // closes when Close begins (stops the sweeper)
	wg    sync.WaitGroup

	stats struct {
		submitted, done, failed, canceled, swept atomic.Int64
		running                                  atomic.Int64
		readsDone, readsFailed, resultBytes      atomic.Int64
	}
}

// goneTombstones bounds the swept-ID memory: enough to answer 410 Gone
// for any plausibly retried download, never enough to leak.
const goneTombstones = 4096

// NewManager validates cfg, prepares the spool directory and starts the
// worker pool and retention sweeper.
//
// A pre-existing non-empty Dir is refused with a clear error: the job
// index lives in memory, so spool entries from a previous process are
// unreachable and would leak disk forever. Operators should point
// -jobs-dir at a fresh (or emptied) directory per server instance.
func NewManager(cfg Config, run RunFunc) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if run == nil {
		return nil, errors.New("jobs: RunFunc is required")
	}
	cfg.fillDefaults()
	if entries, err := os.ReadDir(cfg.Dir); err == nil && len(entries) > 0 {
		return nil, fmt.Errorf("jobs: spool dir %s already contains %d entries "+
			"(stale state from a previous run?): jobs do not survive restarts — "+
			"remove the directory contents or point -jobs-dir at a fresh directory",
			cfg.Dir, len(entries))
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jobs: reading spool dir: %w", err)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating spool dir: %w", err)
	}
	m := &Manager{
		cfg:   cfg,
		run:   run,
		jobs:  make(map[string]*job),
		gone:  make(map[string]time.Time),
		stopc: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.sweeper()
	return m, nil
}

// newID returns a 12-hex-character random job ID.
func newID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Submit spools input to disk (atomically), registers the job as queued
// and hands it to the worker pool. ext selects the input spool name
// suffix (".fasta" or ".fastq" — it drives format detection at run
// time). It fails fast with ErrBacklogFull beyond MaxQueued pending
// jobs and ErrClosed after Close.
func (m *Manager) Submit(spec Spec, input io.Reader, ext string) (Snapshot, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if m.queued >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return Snapshot{}, fmt.Errorf("%w: %d jobs pending", ErrBacklogFull, m.cfg.MaxQueued)
	}
	// Reserve the backlog slot before the (slow, unlocked) input spool
	// so concurrent submits cannot oversubscribe the queue channel.
	m.queued++
	m.mu.Unlock()

	j, err := m.spool(spec, input, ext)
	if err != nil {
		m.mu.Lock()
		m.queued--
		m.mu.Unlock()
		return Snapshot{}, err
	}

	m.mu.Lock()
	if m.closed {
		// Lost the race with Close: the workers may already be gone.
		m.queued--
		m.mu.Unlock()
		os.RemoveAll(j.dir)
		return Snapshot{}, ErrClosed
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pending = append(m.pending, j)
	m.stats.submitted.Add(1)
	snap := j.snapshotLocked()
	m.cond.Signal()
	m.mu.Unlock()
	m.cfg.Logger.Info("job submitted",
		"job_id", j.id, "ref", spec.Ref, "format", spec.Format)
	return snap, nil
}

// spool creates the job's directory and writes its input file.
func (m *Manager) spool(spec Spec, input io.Reader, ext string) (*job, error) {
	id, err := newID()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating spool for %s: %w", id, err)
	}
	j := &job{
		id:      id,
		spec:    spec,
		dir:     dir,
		in:      filepath.Join(dir, "input"+ext),
		out:     filepath.Join(dir, "result."+spec.Format),
		state:   Queued,
		created: time.Now(),
	}
	j.progress.onAdd = func(done, failed int64) {
		m.stats.readsDone.Add(done)
		m.stats.readsFailed.Add(failed)
	}
	if err := cliutil.WriteAtomic(j.in, func(w io.Writer) error {
		_, err := io.Copy(w, input)
		return err
	}); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("jobs: spooling input for %s: %w", id, err)
	}
	return j, nil
}

// worker pops queued jobs in FIFO order and drives each to a terminal
// state. It exits once the manager is closed and the queue is empty.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		//lint:allow ctxflow a job outlives the HTTP request that submitted it; cancellation flows through job.cancel (DELETE /jobs/{id}) and Close's drain instead
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.state = Running
		j.started = time.Now()
		m.queued--
		m.stats.running.Add(1)
		m.mu.Unlock()
		m.cfg.Logger.Info("job running", "job_id", j.id,
			"queue_wait_ms", float64(j.started.Sub(j.created))/float64(time.Millisecond))
		m.runJob(ctx, cancel, j)
	}
}

// runJob executes one running job. The result is written atomically: it
// appears under the job's result path only if the RunFunc completed, so
// cancellation and drain never leave a half-written download.
func (m *Manager) runJob(ctx context.Context, cancel context.CancelFunc, j *job) {
	defer cancel()
	err := cliutil.WriteAtomic(j.out, func(w io.Writer) error {
		return m.run(ctx, j.spec, j.in, w, &j.progress)
	})

	m.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	m.stats.running.Add(-1)
	switch {
	case err == nil:
		j.state = Done
		if fi, serr := os.Stat(j.out); serr == nil {
			j.resBytes = fi.Size()
		}
		m.stats.done.Add(1)
		m.stats.resultBytes.Add(j.resBytes)
	case j.cancelReq:
		j.state = Canceled
		j.errMsg = "canceled by request"
		m.stats.canceled.Add(1)
	case j.drained:
		// Interrupted by server shutdown after DrainGrace: the job is
		// checkpointed as failed — resubmit it after the restart.
		j.state = Failed
		j.errMsg = "interrupted by server shutdown: " + err.Error()
		m.stats.failed.Add(1)
	default:
		j.state = Failed
		j.errMsg = err.Error()
		m.stats.failed.Add(1)
	}
	state, errMsg := j.state, j.errMsg
	runMS := float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	reads, readsFailed := j.progress.done.Load(), j.progress.failed.Load()
	resBytes := j.resBytes
	m.mu.Unlock()
	attrs := []any{"job_id", j.id, "state", string(state), "run_ms", runMS,
		"reads_done", reads, "reads_failed", readsFailed, "result_bytes", resBytes}
	if state == Done {
		m.cfg.Logger.Info("job finished", attrs...)
	} else {
		m.cfg.Logger.Warn("job finished", append(attrs, "error", errMsg)...)
	}
}

// Get returns a job's snapshot. gone reports a job that existed but has
// been garbage-collected (tombstoned) — the HTTP layer answers 410 Gone
// instead of 404.
func (m *Manager) Get(id string) (snap Snapshot, ok, gone bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, found := m.jobs[id]; found {
		return j.snapshotLocked(), true, false
	}
	_, gone = m.gone[id]
	return Snapshot{}, false, gone
}

// ResultPath returns the completed result file for a done job. The
// same (ok, gone) semantics as Get apply; a job that is not done yet
// returns ok with an empty path.
func (m *Manager) ResultPath(id string) (path string, snap Snapshot, ok, gone bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, found := m.jobs[id]
	if !found {
		_, gone = m.gone[id]
		return "", Snapshot{}, false, gone
	}
	snap = j.snapshotLocked()
	if j.state == Done {
		path = j.out
	}
	return path, snap, true, false
}

// List returns every live job, most recently submitted first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for i := len(m.order) - 1; i >= 0; i-- {
		if j, ok := m.jobs[m.order[i]]; ok {
			out = append(out, j.snapshotLocked())
		}
	}
	return out
}

// Cancel requests cancellation of a queued or running job: queued jobs
// transition to canceled immediately, running jobs have their context
// canceled and transition when the RunFunc unwinds (within one batch).
// Canceling a terminal job is a no-op; the returned snapshot reflects
// the post-call state.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	switch j.state {
	case Queued:
		j.state = Canceled
		j.errMsg = "canceled by request"
		j.finished = time.Now()
		m.queued--
		m.unqueueLocked(j)
		m.stats.canceled.Add(1)
	case Running:
		j.cancelReq = true
		j.cancel() // runJob observes ctx and finishes the transition
	}
	return j.snapshotLocked(), true
}

// unqueueLocked removes j from the pending FIFO. Caller holds m.mu.
func (m *Manager) unqueueLocked(j *job) {
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

// Remove garbage-collects a terminal job right now: its spool directory
// is deleted and its ID tombstoned (subsequent lookups report gone).
// Removing a queued or running job fails with ErrNotTerminal — cancel
// it first.
func (m *Manager) Remove(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false, nil
	}
	if !j.state.Terminal() {
		return true, fmt.Errorf("%w: job %s is %s", ErrNotTerminal, id, j.state)
	}
	m.dropLocked(j)
	return true, nil
}

// dropLocked deletes a terminal job's spool and index entry and
// tombstones its ID. Caller holds m.mu.
func (m *Manager) dropLocked(j *job) {
	os.RemoveAll(j.dir)
	delete(m.jobs, j.id)
	m.gone[j.id] = time.Now()
	m.stats.swept.Add(1)
	if len(m.gone) > goneTombstones {
		// Bound tombstone memory by evicting the oldest half; a 410
		// degrading to a 404 for ancient IDs is acceptable.
		cutoff := time.Now()
		for _, t := range m.gone {
			if t.Before(cutoff) {
				cutoff = t
			}
		}
		mid := cutoff.Add(time.Since(cutoff) / 2)
		for id, t := range m.gone {
			if t.Before(mid) {
				delete(m.gone, id)
			}
		}
	}
}

// Sweep garbage-collects every terminal job whose finish time is older
// than TTL, returning how many were dropped. The background sweeper
// calls it every SweepEvery; it is exported so tests and operators can
// force a deterministic sweep.
func (m *Manager) Sweep() int {
	deadline := time.Now().Add(-m.cfg.TTL)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.state.Terminal() && j.finished.Before(deadline) {
			m.dropLocked(j)
			n++
		}
	}
	if n > 0 {
		// Compact the order slice so it cannot grow without bound.
		live := m.order[:0]
		for _, id := range m.order {
			if _, ok := m.jobs[id]; ok {
				live = append(live, id)
			}
		}
		m.order = live
	}
	if n > 0 {
		m.cfg.Logger.Debug("jobs swept", "count", n)
	}
	return n
}

func (m *Manager) sweeper() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Stats returns the manager-wide counters for /metrics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	queued := int64(m.queued)
	m.mu.Unlock()
	return Stats{
		Submitted:   m.stats.submitted.Load(),
		Done:        m.stats.done.Load(),
		Failed:      m.stats.failed.Load(),
		Canceled:    m.stats.canceled.Load(),
		Swept:       m.stats.swept.Load(),
		Queued:      queued,
		Running:     m.stats.running.Load(),
		ReadsDone:   m.stats.readsDone.Load(),
		ReadsFailed: m.stats.readsFailed.Load(),
		ResultBytes: m.stats.resultBytes.Load(),
	}
}

// Close drains the bulk lane: admission stops (ErrClosed), queued jobs
// are canceled, and running jobs get DrainGrace to finish before their
// contexts are canceled and they are checkpointed as failed. Either
// way no half-written result can remain (results are written
// atomically). Close is idempotent and returns once every worker has
// exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.stopc)
	// Cancel everything still waiting in the queue, then wake every
	// worker so it can observe closed and exit.
	for _, j := range m.pending {
		j.state = Canceled
		j.errMsg = "canceled: server shutting down"
		j.finished = time.Now()
		m.queued--
		m.stats.canceled.Add(1)
	}
	m.pending = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(m.cfg.DrainGrace):
	}
	// Grace expired: interrupt whatever is still running. runJob marks
	// these failed (drained), not canceled.
	m.mu.Lock()
	for _, j := range m.jobs {
		if j.state == Running && j.cancel != nil {
			j.drained = true
			j.cancel()
		}
	}
	m.mu.Unlock()
	<-done
}

// snapshotLocked builds the externally visible view. Caller holds m.mu
// (progress counters are atomics and need no lock).
func (j *job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		ReadsTotal:  j.progress.total.Load(),
		ReadsDone:   j.progress.done.Load(),
		ReadsFailed: j.progress.failed.Load(),
		CreatedAt:   j.created,
		ResultBytes: j.resBytes,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}
