package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoRun is a RunFunc that copies the input file into the result and
// reports one-shot progress, exercising the happy path without an
// engine.
func echoRun(ctx context.Context, spec Spec, inputPath string, out io.Writer, p *Progress) error {
	data, err := os.ReadFile(inputPath)
	if err != nil {
		return err
	}
	p.SetTotal(1)
	if _, err := out.Write(data); err != nil {
		return err
	}
	p.Add(1, 0)
	return nil
}

// blockingRun parks until its context is canceled (signalling started
// on the way in), so tests can hold a worker mid-job deterministically.
func blockingRun(started chan<- string) RunFunc {
	return func(ctx context.Context, spec Spec, inputPath string, out io.Writer, p *Progress) error {
		started <- spec.Ref
		<-ctx.Done()
		return ctx.Err()
	}
}

func newTestManager(t *testing.T, cfg Config, run RunFunc) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = filepath.Join(t.TempDir(), "spool")
	}
	m, err := NewManager(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func submit(t *testing.T, m *Manager, ref, body string) Snapshot {
	t.Helper()
	snap, err := m.Submit(Spec{Ref: ref, Format: "sam"}, strings.NewReader(body), ".fastq")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Queued || snap.ID == "" {
		t.Fatalf("submit snapshot %+v", snap)
	}
	return snap
}

// waitState polls until the job reaches want (or fails the test).
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok, _ := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestJobHappyPath(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1}, echoRun)
	const body = "@r1\nACGT\n+\nIIII\n"
	snap := submit(t, m, "chr1", body)
	snap = waitState(t, m, snap.ID, Done)
	if snap.ReadsTotal != 1 || snap.ReadsDone != 1 || snap.ReadsFailed != 0 {
		t.Fatalf("progress %+v", snap)
	}
	if snap.ResultBytes != int64(len(body)) {
		t.Fatalf("result bytes %d, want %d", snap.ResultBytes, len(body))
	}
	if snap.StartedAt == nil || snap.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", snap)
	}
	path, rsnap, ok, gone := m.ResultPath(snap.ID)
	if !ok || gone || path == "" || rsnap.State != Done {
		t.Fatalf("ResultPath: %q %+v ok=%v gone=%v", path, rsnap, ok, gone)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body {
		t.Fatalf("result %q != input %q", got, body)
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.ReadsDone != 1 || st.ResultBytes != int64(len(body)) {
		t.Fatalf("stats %+v", st)
	}
}

func TestJobFailedRunLeavesNoResult(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1}, func(ctx context.Context, spec Spec, in string, out io.Writer, p *Progress) error {
		io.WriteString(out, "half a result")
		return errors.New("backend exploded")
	})
	snap := submit(t, m, "chr1", "@r\nA\n+\nI\n")
	snap = waitState(t, m, snap.ID, Failed)
	if !strings.Contains(snap.Error, "backend exploded") {
		t.Fatalf("error %q", snap.Error)
	}
	// WriteAtomic never renamed the temp file: no result on disk, and
	// ResultPath refuses to serve one.
	path, _, _, _ := m.ResultPath(snap.ID)
	if path != "" {
		t.Fatalf("failed job has result path %q", path)
	}
	entries, err := os.ReadDir(filepath.Join(m.cfg.Dir, snap.ID))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "result.") && !strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("failed job left result file %s", e.Name())
		}
	}
}

// TestCancelQueuedJob: with the single worker parked on job A, queued
// job B cancels instantly and never runs.
func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 4)
	m := newTestManager(t, Config{Workers: 1}, blockingRun(started))
	a := submit(t, m, "a", "@r\nA\n+\nI\n")
	<-started // worker is inside A
	b := submit(t, m, "b", "@r\nA\n+\nI\n")
	snap, ok := m.Cancel(b.ID)
	if !ok || snap.State != Canceled {
		t.Fatalf("cancel queued: ok=%v %+v", ok, snap)
	}
	// Release A; the worker must not pick B back up.
	if snap, ok := m.Cancel(a.ID); !ok || snap.State != Running {
		t.Fatalf("cancel running returned %+v (ok=%v)", snap, ok)
	}
	waitState(t, m, a.ID, Canceled)
	select {
	case ref := <-started:
		t.Fatalf("canceled queued job %q still ran", ref)
	case <-time.After(50 * time.Millisecond):
	}
	if st := m.Stats(); st.Canceled != 2 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelMidRunReleasesWorker is the lifecycle edge the ISSUE pins:
// canceling a running job frees its worker for the next job.
func TestCancelMidRunReleasesWorker(t *testing.T) {
	started := make(chan string, 4)
	m := newTestManager(t, Config{Workers: 1}, blockingRun(started))
	a := submit(t, m, "a", "@r\nA\n+\nI\n")
	<-started
	b := submit(t, m, "b", "@r\nA\n+\nI\n")

	snap, ok := m.Cancel(a.ID)
	if !ok {
		t.Fatal("cancel of running job not found")
	}
	_ = snap // transition completes when the RunFunc unwinds
	snap = waitState(t, m, a.ID, Canceled)
	if snap.Error != "canceled by request" {
		t.Fatalf("cancel reason %q", snap.Error)
	}
	// The released worker must pick up B.
	select {
	case ref := <-started:
		if ref != "b" {
			t.Fatalf("worker resumed with %q", ref)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker never released after cancel")
	}
	m.Cancel(b.ID)
	waitState(t, m, b.ID, Canceled)
}

// TestSweepDeletesSpool: TTL-expired terminal jobs lose their spool
// directory and answer gone (the HTTP 410) afterwards.
func TestSweepDeletesSpool(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, TTL: 10 * time.Millisecond, SweepEvery: time.Hour}, echoRun)
	snap := submit(t, m, "chr1", "@r\nA\n+\nI\n")
	snap = waitState(t, m, snap.ID, Done)
	jobDir := filepath.Join(m.cfg.Dir, snap.ID)
	if _, err := os.Stat(jobDir); err != nil {
		t.Fatalf("spool dir missing before sweep: %v", err)
	}
	if n := m.Sweep(); n != 0 {
		t.Fatalf("sweep before TTL dropped %d jobs", n)
	}
	time.Sleep(20 * time.Millisecond)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep after TTL dropped %d jobs, want 1", n)
	}
	if _, err := os.Stat(jobDir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spool dir survived the sweep: %v", err)
	}
	if _, ok, gone := m.Get(snap.ID); ok || !gone {
		t.Fatalf("swept job: ok=%v gone=%v", ok, gone)
	}
	if _, _, ok, gone := m.ResultPath(snap.ID); ok || !gone {
		t.Fatalf("swept result: ok=%v gone=%v", ok, gone)
	}
	if len(m.List()) != 0 {
		t.Fatalf("List still shows %d jobs", len(m.List()))
	}
	if st := m.Stats(); st.Swept != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRemoveTerminalOnly: DELETE-style purge works on terminal jobs and
// refuses live ones.
func TestRemoveTerminalOnly(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Config{Workers: 1}, blockingRun(started))
	a := submit(t, m, "a", "@r\nA\n+\nI\n")
	<-started
	if found, err := m.Remove(a.ID); !found || !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("Remove(running): found=%v err=%v", found, err)
	}
	m.Cancel(a.ID)
	waitState(t, m, a.ID, Canceled)
	if found, err := m.Remove(a.ID); !found || err != nil {
		t.Fatalf("Remove(terminal): found=%v err=%v", found, err)
	}
	if _, ok, gone := m.Get(a.ID); ok || !gone {
		t.Fatalf("removed job: ok=%v gone=%v", ok, gone)
	}
	if found, _ := m.Remove("nonesuch"); found {
		t.Fatal("Remove invented a job")
	}
}

// TestStaleDirRefused: a jobs dir with leftover entries from a previous
// process is refused with a self-explanatory error, not silently
// adopted (the in-memory index cannot resurrect those jobs).
func TestStaleDirRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")
	if err := os.MkdirAll(filepath.Join(dir, "deadbeef0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := NewManager(Config{Dir: dir}, echoRun)
	if err == nil {
		t.Fatal("stale dir accepted")
	}
	for _, want := range []string{"stale", dir, "fresh"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// An empty pre-existing dir is fine.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Dir: empty}, echoRun)
	if err != nil {
		t.Fatalf("empty dir refused: %v", err)
	}
	m.Close()
}

// TestBacklogFull: submissions beyond MaxQueued shed with
// ErrBacklogFull while a worker is pinned.
func TestBacklogFull(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Config{Workers: 1, MaxQueued: 2, DrainGrace: 10 * time.Millisecond}, blockingRun(started))
	submit(t, m, "run", "@r\nA\n+\nI\n")
	<-started // worker busy; backlog is now free for 2 queued jobs
	submit(t, m, "q1", "@r\nA\n+\nI\n")
	submit(t, m, "q2", "@r\nA\n+\nI\n")
	if _, err := m.Submit(Spec{Ref: "q3", Format: "sam"}, strings.NewReader("@r\nA\n+\nI\n"), ".fastq"); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("err %v, want ErrBacklogFull", err)
	}
}

// TestCloseDrains: Close cancels queued jobs, gives running jobs the
// grace period, then interrupts them as failed — and never leaves a
// result file behind.
func TestCloseDrains(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Config{Workers: 1, DrainGrace: 20 * time.Millisecond}, blockingRun(started))
	run := submit(t, m, "run", "@r\nA\n+\nI\n")
	<-started
	queued := submit(t, m, "queued", "@r\nA\n+\nI\n")

	closed := make(chan struct{})
	go func() { m.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}

	rsnap, _, _ := m.Get(run.ID)
	if rsnap.State != Failed || !strings.Contains(rsnap.Error, "shutdown") {
		t.Fatalf("running job after drain: %+v", rsnap)
	}
	qsnap, _, _ := m.Get(queued.ID)
	if qsnap.State != Canceled {
		t.Fatalf("queued job after drain: %+v", qsnap)
	}
	if path, _, _, _ := m.ResultPath(run.ID); path != "" {
		t.Fatalf("drained job kept result %q", path)
	}
	if _, err := m.Submit(Spec{Ref: "late", Format: "sam"}, strings.NewReader("@r\nA\n+\nI\n"), ".fastq"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

// TestCloseWaitsForFinishingJob: a running job that completes within
// the grace period lands as done, not failed.
func TestCloseWaitsForFinishingJob(t *testing.T) {
	release := make(chan struct{})
	var ran atomic.Int64
	m := newTestManager(t, Config{Workers: 1, DrainGrace: 10 * time.Second},
		func(ctx context.Context, spec Spec, in string, out io.Writer, p *Progress) error {
			ran.Add(1)
			<-release
			_, err := io.WriteString(out, "result\n")
			return err
		})
	snap := submit(t, m, "finishes", "@r\nA\n+\nI\n")
	for ran.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() { time.Sleep(20 * time.Millisecond); close(release) }()
	m.Close()
	got, _, _ := m.Get(snap.ID)
	if got.State != Done {
		t.Fatalf("job drained as %s (%s), want done", got.State, got.Error)
	}
}

// TestListOrder: List returns live jobs newest first.
func TestListOrder(t *testing.T) {
	started := make(chan string, 4)
	m := newTestManager(t, Config{Workers: 1}, blockingRun(started))
	ids := []string{}
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, m, fmt.Sprintf("ref%d", i), "@r\nA\n+\nI\n").ID)
	}
	<-started
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("%d jobs listed", len(list))
	}
	for i, snap := range list {
		if want := ids[len(ids)-1-i]; snap.ID != want {
			t.Fatalf("list[%d] = %s, want %s", i, snap.ID, want)
		}
	}
	for _, id := range ids {
		m.Cancel(id)
	}
}

// TestSubmitValidation: constructor and Submit argument errors.
func TestSubmitValidation(t *testing.T) {
	if _, err := NewManager(Config{}, echoRun); err == nil {
		t.Fatal("empty Dir accepted")
	}
	if _, err := NewManager(Config{Dir: t.TempDir()}, nil); err == nil {
		t.Fatal("nil RunFunc accepted")
	}
}
