// Package server is the serving layer over genasm.Engine: a stdlib-only
// HTTP JSON service that turns many small concurrent alignment requests
// into the large backend batches the CPU/GPU backends are fast at (the
// paper's throughput lever, applied to a production traffic shape).
//
// Core pieces:
//
//   - Scheduler: dynamic batcher coalescing concurrent /align and
//     /map-align work into backend-sized Engine.AlignBatch calls under a
//     max-latency deadline, with bounded-queue admission control (429 on
//     overload).
//   - Registry: named references, each indexed once at upload (POST
//     /refs) into a shared read-only *genasm.Mapper.
//   - Cache: an LRU of Results keyed on (engine fingerprint, reference,
//     query) with hit/miss accounting.
//   - Observability: every request runs under an internal/obs trace
//     (X-Request-Id in and out, per-stage spans: queue wait, batch
//     assembly, backend execution, shard fan-out, serialization) with
//     the most recent traces at /debug/traces; /metrics serves the same
//     instruments as flat JSON or Prometheus text exposition
//     (?format=prometheus or Accept), latency percentiles coming from
//     fixed-bucket cumulative histograms; /healthz reports backend,
//     refs, jobs-lane status and build info; request lines log through
//     log/slog with the trace ID attached.
//   - Backends: /backends lists every registered backend name and the
//     active backend's capabilities and stats — the engine's
//     database/sql-style driver registry, surfaced over HTTP.
//   - Jobs: the asynchronous bulk lane (package server/jobs, enabled by
//     Config.Jobs.Dir): POST /jobs spools a whole FASTA/FASTQ read set
//     and returns 202, a bounded worker pool drains it through the same
//     scheduler in capability-sized batches, and the finished
//     SAM/PAF/JSON is downloaded from /jobs/{id}/result — byte-identical
//     to the synchronous /map-align output for the same reads.
//
// The scheduler's default flush threshold comes from the engine
// backend's Capabilities (PreferredBatch), so a GPU- or multi-backed
// server batches to its backend's appetite without kind-specific
// configuration.
//
// /map-align negotiates its response representation: JSON (default, one
// buffered body) or standard SAM/PAF records (format=sam|paf, via query
// parameter or request field) streamed incrementally chunk by chunk,
// with completion signalled in the X-Genasm-Status trailer.
//
// See cmd/genasm-serve for the binary and docs/API.md for the full HTTP
// reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"genasm"
	"genasm/internal/obs"
	"genasm/internal/samfmt"
	"genasm/server/jobs"
)

// Config configures a Server.
type Config struct {
	// EngineOptions build the shared alignment engine (backend,
	// algorithm, window geometry, threads, ...). A mapper option is not
	// needed: /map-align uses the registry's per-reference mappers.
	EngineOptions []genasm.Option
	// Scheduler tunes the dynamic batcher (zero values take defaults).
	Scheduler SchedulerConfig
	// CacheSize is the LRU result-cache capacity in entries (default
	// 4096; negative disables caching).
	CacheSize int
	// MaxPairsPerRequest bounds one /align request (default 1024).
	MaxPairsPerRequest int
	// MaxReadsPerRequest bounds one /map-align request (default 1024).
	MaxReadsPerRequest int
	// MaxBodyBytes bounds any request body (default 256 MiB — a genome
	// upload or a bulk job submission are the big ones).
	MaxBodyBytes int64
	// Jobs configures the asynchronous bulk lane (POST /jobs and
	// friends). A zero Dir leaves the lane disabled: the endpoints
	// answer 503. When enabled with Workers == 0, the pool is sized
	// from the engine backend's Capabilities (Parallelism/4, min 1).
	Jobs jobs.Config
	// Logger receives the server's structured request and lifecycle
	// logs. Nil discards everything (tests, embedded use).
	Logger *slog.Logger
	// SlowRequest is the latency threshold above which a request's full
	// span tree is logged at Warn level. Zero disables slow-request
	// logging.
	SlowRequest time.Duration
	// TraceBuffer is how many recent request traces the GET
	// /debug/traces ring buffer retains (default 128).
	TraceBuffer int
	// Proxy, when it names upstreams, switches the server into the
	// stateless front-tier mode: /align and /map-align are routed to
	// upstream genasm-serve nodes by consistent hashing instead of
	// executed locally, /refs broadcasts, and no engine, scheduler,
	// cache or jobs lane is built. See ProxyConfig and docs/OPERATIONS.md
	// "Running a cluster".
	Proxy ProxyConfig
}

func (c *Config) fillDefaults() {
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxPairsPerRequest <= 0 {
		c.MaxPairsPerRequest = 1024
	}
	if c.MaxReadsPerRequest <= 0 {
		c.MaxReadsPerRequest = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 128
	}
}

// Server wires the scheduler, registry, cache and metrics behind an
// http.Handler. Construct with New, serve Handler(), stop with Close.
type Server struct {
	cfg         Config
	eng         *genasm.Engine // nil in proxy mode
	fingerprint string
	sched       *Scheduler // nil in proxy mode
	registry    *Registry
	cache       *Cache
	metrics     *Metrics
	jobs        *jobs.Manager // nil when the bulk lane is disabled
	proxy       *Proxy        // nil in local mode
	exec        executor      // localExecutor or proxyExecutor
	mux         *http.ServeMux
	log         *slog.Logger
	traces      *obs.TraceLog
	build       obs.BuildInfo
}

// New validates cfg, builds the engine (or, in proxy mode, the
// upstream ring) and assembles the service.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if len(cfg.Proxy.Upstreams) > 0 {
		return newProxyServer(cfg)
	}
	eng, err := genasm.NewEngine(cfg.EngineOptions...)
	if err != nil {
		return nil, err
	}
	m := NewMetrics(eng.BackendName())
	s := &Server{
		cfg:         cfg,
		eng:         eng,
		fingerprint: eng.Fingerprint(),
		sched:       NewScheduler(eng, cfg.Scheduler, m),
		registry:    NewRegistry(m),
		cache:       NewCache(cfg.CacheSize),
		metrics:     m,
		mux:         http.NewServeMux(),
		log:         cfg.Logger,
		traces:      obs.NewTraceLog(cfg.TraceBuffer),
		build:       obs.ReadBuildInfo(),
	}
	s.exec = localExecutor{s: s}
	s.routes()
	if cfg.Jobs.Dir != "" {
		if cfg.Jobs.Workers <= 0 {
			// Each bulk worker submits capability-sized batches, so a
			// fraction of the backend's parallelism saturates it while
			// leaving the interactive lane headroom.
			cfg.Jobs.Workers = max(1, eng.Capabilities().Parallelism/4)
		}
		if cfg.Jobs.Logger == nil {
			cfg.Jobs.Logger = cfg.Logger
		}
		mgr, err := jobs.NewManager(cfg.Jobs, s.runBulkJob)
		if err != nil {
			s.sched.Close()
			return nil, err
		}
		s.jobs = mgr
		s.cfg.Jobs = cfg.Jobs
	}
	s.registerScrapeMetrics()
	return s, nil
}

// routes installs the full endpoint surface. Both modes serve every
// route: in proxy mode the workload endpoints forward, /refs
// broadcasts, and the jobs lane (never enabled there) answers 503.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /align", s.handleAlign)
	s.mux.HandleFunc("POST /map-align", s.handleMapAlign)
	s.mux.HandleFunc("POST /refs", s.handleRefAdd)
	s.mux.HandleFunc("GET /refs", s.handleRefList)
	s.mux.HandleFunc("GET /refs/{name}", s.handleRefGet)
	s.mux.HandleFunc("DELETE /refs/{name}", s.handleRefDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /backends", s.handleBackends)
	s.mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
}

// registerScrapeMetrics hangs metrics owned by other subsystems (cache,
// engine backend, jobs lane) onto the Prometheus exposition as
// scrape-time functions, so both /metrics representations draw from the
// same sources.
func (s *Server) registerScrapeMetrics() {
	reg := s.metrics.Registry()
	reg.GaugeFunc("genasm_cache_entries", "Result-cache entries resident.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("genasm_cache_capacity", "Result-cache capacity in entries.",
		func() float64 { return float64(s.cache.Cap()) })
	if s.eng != nil {
		reg.CounterFunc("genasm_backend_batches_total", "AlignBatch executions counted by the engine backend.",
			func() float64 { return float64(s.eng.BackendStats().Batches) })
		reg.CounterFunc("genasm_backend_pairs_total", "Pairs aligned, counted by the engine backend.",
			func() float64 { return float64(s.eng.BackendStats().Pairs) })
		reg.CounterFunc("genasm_backend_shards_total", "Child dispatches performed by a composite backend.",
			func() float64 { return float64(s.eng.BackendStats().Shards) })
	}
	if s.jobs == nil {
		return
	}
	jst := func(f func(jobs.Stats) int64) func() float64 {
		return func() float64 { return float64(f(s.jobs.Stats())) }
	}
	reg.CounterFunc("genasm_jobs_submitted_total", "Bulk jobs accepted.", jst(func(st jobs.Stats) int64 { return st.Submitted }))
	reg.CounterFunc("genasm_jobs_done_total", "Bulk jobs finished successfully.", jst(func(st jobs.Stats) int64 { return st.Done }))
	reg.CounterFunc("genasm_jobs_failed_total", "Bulk jobs that errored.", jst(func(st jobs.Stats) int64 { return st.Failed }))
	reg.CounterFunc("genasm_jobs_canceled_total", "Bulk jobs canceled.", jst(func(st jobs.Stats) int64 { return st.Canceled }))
	reg.CounterFunc("genasm_jobs_swept_total", "Terminal bulk jobs garbage-collected.", jst(func(st jobs.Stats) int64 { return st.Swept }))
	reg.GaugeFunc("genasm_jobs_queued", "Bulk jobs queued, not yet running.", jst(func(st jobs.Stats) int64 { return st.Queued }))
	reg.GaugeFunc("genasm_jobs_running", "Bulk jobs running right now.", jst(func(st jobs.Stats) int64 { return st.Running }))
	reg.CounterFunc("genasm_jobs_reads_done_total", "Reads processed across bulk jobs.", jst(func(st jobs.Stats) int64 { return st.ReadsDone }))
	reg.CounterFunc("genasm_jobs_reads_failed_total", "Reads with per-read errors across bulk jobs.", jst(func(st jobs.Stats) int64 { return st.ReadsFailed }))
	reg.CounterFunc("genasm_jobs_result_bytes_total", "Bytes of completed bulk-job results produced.", jst(func(st jobs.Stats) int64 { return st.ResultBytes }))
}

// introspection reports whether path is a monitoring surface (scrapes,
// health probes, trace dumps). Those requests are served and counted
// but excluded from the e2e latency histogram, the /debug/traces ring
// and Info-level request logging, so watching the server does not
// drown out the workload being watched.
func introspection(path string) bool {
	return path == "/metrics" || path == "/healthz" || strings.HasPrefix(path, "/debug/")
}

// Handler returns the service's HTTP handler: a wrapper around the
// route mux that counts requests, starts a per-request trace (honoring
// a client-supplied X-Request-Id, echoing the ID back in the response),
// records end-to-end latency, logs a structured request line carrying
// the trace ID, and files the finished trace in the /debug/traces ring.
// Requests slower than Config.SlowRequest log their full span tree at
// Warn level.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		tr := obs.NewTrace(r.Method+" "+r.URL.Path, r.Header.Get(obs.RequestIDHeader))
		w.Header().Set(obs.RequestIDHeader, tr.ID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r.WithContext(obs.WithTrace(r.Context(), tr)))
		dur := tr.Finish()
		if rec.status >= 400 {
			s.metrics.requestErrs.Add(1)
		}
		quiet := introspection(r.URL.Path)
		if !quiet {
			s.metrics.observeRequest(dur)
			s.traces.Add(tr)
		}
		attrs := []any{
			"trace_id", tr.ID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", durToMS(dur),
		}
		switch {
		case s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest && !quiet:
			s.log.Warn("slow request", append(attrs, "spans", tr.View().Spans)...)
		case quiet:
			s.log.Debug("request", attrs...)
		default:
			s.log.Info("request", attrs...)
		}
	})
}

func durToMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Close drains the service. The bulk job lane drains first (queued jobs
// cancel; running jobs get the configured grace to finish, after which
// they are checkpointed as failed — result files are atomic either
// way), then the scheduler flushes its in-flight and pending batches.
// Subsequent submissions on either lane fail. Call after the
// http.Server has shut down.
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.Close()
	}
	if s.sched != nil {
		s.sched.Close()
	}
	if s.proxy != nil {
		s.proxy.Close()
	}
}

// Proxy returns the front-tier proxy, or nil in local mode.
func (s *Server) Proxy() *Proxy { return s.proxy }

// Jobs returns the bulk-lane job manager, or nil when the lane is
// disabled (no jobs directory configured).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Engine returns the shared alignment engine.
func (s *Server) Engine() *genasm.Engine { return s.eng }

// Registry returns the reference registry (used by the binary to preload
// genomes before serving).
func (s *Server) Registry() *Registry { return s.registry }

// Scheduler returns the dynamic batcher.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics returns the server's metrics sink.
func (s *Server) Metrics() *Metrics { return s.metrics }

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher so the streaming /map-align path can push
// records through the metrics wrapper incrementally.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ---- wire types ----

// AlignPair is one query/reference pair of an /align request.
type AlignPair struct {
	Query string `json:"query"`
	Ref   string `json:"ref"`
}

// AlignRequest is the POST /align body.
type AlignRequest struct {
	Pairs []AlignPair `json:"pairs"`
}

// AlignResult is one alignment in a response.
type AlignResult struct {
	Distance    int    `json:"distance"`
	Score       int    `json:"score"`
	Cigar       string `json:"cigar"`
	RefConsumed int    `json:"ref_consumed"`
	Cached      bool   `json:"cached"`
}

// AlignResponse is the POST /align reply, index-aligned with the request
// pairs.
type AlignResponse struct {
	Results []AlignResult `json:"results"`
}

// MapAlignRequest is the POST /map-align body: reads against one
// registered reference.
type MapAlignRequest struct {
	Ref           string   `json:"ref"`
	Reads         []ReadIn `json:"reads"`
	AllCandidates bool     `json:"all_candidates"`
	// Format selects the response representation: "json" (default, one
	// buffered MapAlignResponse body), or "sam" / "paf" (text records
	// streamed incrementally as reads finish aligning). The ?format=
	// query parameter takes precedence when both are set.
	Format string `json:"format,omitempty"`
}

// ReadIn is one read of a /map-align request. Qual (Phred+33, optional)
// is carried through to SAM output.
type ReadIn struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

// MappedRead is the /map-align outcome for one read.
type MappedRead struct {
	Read       string         `json:"read"`
	Unmapped   bool           `json:"unmapped,omitempty"`
	Error      string         `json:"error,omitempty"`
	Alignments []MapAlignment `json:"alignments,omitempty"`
}

// MapAlignment is one aligned candidate location.
type MapAlignment struct {
	Rank       int     `json:"rank"`
	RefStart   int     `json:"ref_start"`
	RefEnd     int     `json:"ref_end"`
	RevComp    bool    `json:"rev_comp"`
	ChainScore float64 `json:"chain_score"`
	AlignResult
}

// MapAlignResponse is the POST /map-align reply, index-aligned with the
// request reads.
type MapAlignResponse struct {
	Ref     string       `json:"ref"`
	Results []MappedRead `json:"results"`
}

// RefAddRequest is the POST /refs body.
type RefAddRequest struct {
	Name     string `json:"name"`
	Sequence string `json:"sequence"`
}

// ---- handlers ----

// handleAlign owns the mode-independent /align work — decode, pair
// count and per-pair admission — and hands the validated request to the
// mode's executor (local cache+scheduler execution, or a consistent-hash
// forward to an upstream).
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req AlignRequest
	raw, ok := s.readJSON(w, r, &req)
	if !ok {
		return
	}
	if len(req.Pairs) == 0 {
		httpError(w, http.StatusBadRequest, "no pairs")
		return
	}
	if len(req.Pairs) > s.cfg.MaxPairsPerRequest {
		httpError(w, http.StatusBadRequest, "%d pairs exceeds per-request limit %d",
			len(req.Pairs), s.cfg.MaxPairsPerRequest)
		return
	}
	maxQ := s.exec.maxQueryLen()
	for i, p := range req.Pairs {
		if p.Query == "" || p.Ref == "" {
			httpError(w, http.StatusBadRequest, "pair %d: empty query or ref", i)
			return
		}
		if maxQ > 0 && len(p.Query) > maxQ {
			httpError(w, http.StatusBadRequest, "pair %d: query length %d exceeds limit %d",
				i, len(p.Query), maxQ)
			return
		}
	}
	s.exec.execAlign(w, r, raw, req)
}

// handleMapAlign owns the mode-independent /map-align work — decode,
// read-count admission, format negotiation — and dispatches to the
// mode's executor. The reference lookup is the local executor's: a
// front tier holds no registry and routes by the reference name.
func (s *Server) handleMapAlign(w http.ResponseWriter, r *http.Request) {
	var req MapAlignRequest
	raw, ok := s.readJSON(w, r, &req)
	if !ok {
		return
	}
	if len(req.Reads) == 0 {
		httpError(w, http.StatusBadRequest, "no reads")
		return
	}
	if len(req.Reads) > s.cfg.MaxReadsPerRequest {
		httpError(w, http.StatusBadRequest, "%d reads exceeds per-request limit %d",
			len(req.Reads), s.cfg.MaxReadsPerRequest)
		return
	}
	format := req.Format
	if qf := r.URL.Query().Get("format"); qf != "" {
		format = qf
	}
	switch format {
	case "":
		format = "json"
	case "json", "sam", "paf":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json, sam or paf)", format)
		return
	}
	s.exec.execMapAlign(w, r, raw, req, format)
}

// alignedRead is one read's outcome from alignReads. Exactly one of err,
// unmapped, or a non-empty mals is set; cached is index-aligned with
// mals.
type alignedRead struct {
	err      error
	unmapped bool
	mals     []genasm.MappedAlignment
	cached   []bool
}

// alignReads runs map+align for a batch of reads against one registered
// reference: candidate location on the shared mapper, result-cache
// lookups, and a single scheduler submission for every cache miss in the
// batch (so the pairs coalesce with other requests' work). Per-read
// problems (empty sequence, over the engine's query limit) land in that
// read's err; the returned error is a whole-submission failure
// (backpressure, shutdown, cancellation).
func (s *Server) alignReads(ctx context.Context, ref *Reference, reads []ReadIn, all bool) ([]alignedRead, error) {
	maxQ := s.eng.MaxQueryLen()
	out := make([]alignedRead, len(reads))
	type slot struct{ read, aln int }
	var missPairs []genasm.Pair
	var missSlots []slot
	var missKeys []string
	caching := s.cache.Enabled()
	for i, rd := range reads {
		if rd.Seq == "" {
			out[i].err = errors.New("empty read sequence")
			continue
		}
		if maxQ > 0 && len(rd.Seq) > maxQ {
			out[i].err = fmt.Errorf("read length %d exceeds limit %d", len(rd.Seq), maxQ)
			continue
		}
		seq := []byte(rd.Seq)
		cands := ref.Mapper().Candidates(seq)
		if len(cands) == 0 {
			s.metrics.readsNoCands.Add(1)
			out[i].unmapped = true
			continue
		}
		s.metrics.readsMapped.Add(1)
		base := genasm.MappedAlignment{
			ReadIndex:  i,
			Read:       genasm.Read{Name: rd.Name, Seq: seq, Qual: []byte(rd.Qual)},
			Candidates: len(cands),
		}
		if len(cands) > 1 {
			base.SecondaryScore = cands[1].Score
		}
		if !all {
			cands = cands[:1]
		}
		var rc []byte // lazily computed reverse complement
		out[i].mals = make([]genasm.MappedAlignment, len(cands))
		out[i].cached = make([]bool, len(cands))
		for rank, c := range cands {
			q := seq
			if c.RevComp {
				if rc == nil {
					rc = genasm.ReverseComplement(seq)
				}
				q = rc
			}
			region := ref.Mapper().Region(c)
			out[i].mals[rank] = base
			out[i].mals[rank].Candidate, out[i].mals[rank].Rank = c, rank
			var key string
			if caching {
				key = resultKey(s.fingerprint, region, q)
				if res, ok := s.cache.Get(key); ok {
					s.metrics.cacheHits.Add(1)
					out[i].mals[rank].Result = res
					out[i].cached[rank] = true
					continue
				}
				s.metrics.cacheMisses.Add(1)
			}
			missPairs = append(missPairs, genasm.Pair{Query: q, Ref: region})
			missSlots = append(missSlots, slot{read: i, aln: rank})
			missKeys = append(missKeys, key)
		}
	}
	if len(missPairs) > 0 {
		aligned, err := s.sched.Submit(ctx, missPairs)
		if err != nil {
			return nil, err
		}
		for j, res := range aligned {
			s.cache.Put(missKeys[j], res)
			sl := missSlots[j]
			out[sl.read].mals[sl.aln].Result = res
		}
	}
	return out, nil
}

// streamChunk is how many reads the streaming /map-align path maps and
// aligns per scheduler submission: records for finished chunks flush to
// the client while later chunks are still aligning, bounding both memory
// and time-to-first-record, while each chunk still coalesces in the
// scheduler with other requests' work.
const streamChunk = 32

// TrailerStatus is the HTTP trailer set by streaming /map-align
// responses: "ok" after a complete stream, otherwise the terminal error.
// Trailers are the only error channel once records (status 200) have
// started flowing.
const TrailerStatus = "X-Genasm-Status"

// streamMapAlign answers /map-align with incrementally streamed SAM or
// PAF records instead of one buffered JSON body. Reads flow through in
// chunks of streamChunk; each chunk's records are flushed as soon as the
// chunk's alignments return. Reads the pipeline rejects (empty sequence,
// over the query limit) are skipped: SAM/PAF have no error record, so
// their count travels in the TrailerStatus trailer. A scheduler failure
// before the first flush still gets a real HTTP error status; after
// that, the trailer is the only error channel.
func (s *Server) streamMapAlign(w http.ResponseWriter, r *http.Request, ref *Reference, req MapAlignRequest, format samfmt.Format) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Trailer", TrailerStatus)
	sref := samfmt.Ref{Name: ref.Name, Length: ref.Length}
	// cw counts the body bytes that actually reached the client: until
	// the first one, a failure can still use a real HTTP status code
	// (a PAF stream whose early chunks are all unmapped writes nothing).
	cw := &countingWriter{w: w}
	sw := samfmt.NewWriter(cw, format, []samfmt.Ref{sref}, samProgram(format))
	flusher, _ := w.(http.Flusher)
	readErrs := 0
	for start := 0; start < len(req.Reads); start += streamChunk {
		chunk := req.Reads[start:min(start+streamChunk, len(req.Reads))]
		aligned, err := s.alignReads(r.Context(), ref, chunk, req.AllCandidates)
		if err != nil {
			if cw.n == 0 {
				// Nothing has been written: answer with a real status
				// code (429 backpressure, 503 shutdown, ...) so clients
				// that never read trailers still see the failure.
				w.Header().Del("Trailer")
				writeSchedError(w, err)
				return
			}
			// Mid-stream: too late for a status code, the trailer is the
			// error channel.
			w.Header().Set(TrailerStatus, "error: "+err.Error())
			sw.Flush()
			return
		}
		emitStart := time.Now()
		for i, ar := range aligned {
			if ar.err != nil {
				readErrs++
				continue
			}
			if ar.unmapped {
				_ = sw.Write(sref, unmappedAlignment(chunk[i]))
				continue
			}
			for _, m := range ar.mals {
				if err := sw.Write(sref, m); err != nil {
					w.Header().Set(TrailerStatus, "error: "+err.Error())
					sw.Flush()
					return
				}
			}
		}
		if err := sw.Flush(); err != nil {
			return // client went away; nothing left to signal
		}
		obs.FromContext(r.Context()).Record("serialize", emitStart, time.Since(emitStart),
			obs.String("format", string(format)), obs.Int("reads", len(chunk)))
		// Only force bytes (and thus the 200 status line) out once there
		// are bytes: an empty flush would commit the headers prematurely.
		if cw.n > 0 && flusher != nil {
			flusher.Flush()
		}
	}
	status := "ok"
	if readErrs > 0 {
		status = fmt.Sprintf("ok; skipped_reads=%d", readErrs)
	}
	w.Header().Set(TrailerStatus, status)
}

func (s *Server) handleRefAdd(w http.ResponseWriter, r *http.Request) {
	var req RefAddRequest
	raw, ok := s.readJSON(w, r, &req)
	if !ok {
		return
	}
	if req.Sequence == "" {
		httpError(w, http.StatusBadRequest, "empty sequence")
		return
	}
	if s.proxy != nil {
		// Every upstream must hold every reference: failover re-routes a
		// ref's traffic to the next ring node, which then needs the data.
		s.proxy.broadcast(w, r, raw, http.StatusCreated)
		return
	}
	ref, err := s.registry.Add(req.Name, []byte(req.Sequence))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateRef) {
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, ref)
}

func (s *Server) handleRefList(w http.ResponseWriter, r *http.Request) {
	if s.proxy != nil {
		s.proxy.forwardAny(w, r, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"refs": s.registry.List()})
}

func (s *Server) handleRefGet(w http.ResponseWriter, r *http.Request) {
	if s.proxy != nil {
		s.proxy.forwardAny(w, r, nil)
		return
	}
	ref, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "reference %q not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, ref)
}

func (s *Server) handleRefDelete(w http.ResponseWriter, r *http.Request) {
	if s.proxy != nil {
		s.proxy.broadcast(w, r, nil, http.StatusNoContent)
		return
	}
	if !s.registry.Remove(r.PathValue("name")) {
		httpError(w, http.StatusNotFound, "reference %q not registered", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.proxy != nil {
		s.handleProxyHealthz(w, r)
		return
	}
	h := map[string]any{
		"status":         "ok",
		"backend":        s.eng.BackendName(),
		"fingerprint":    s.fingerprint,
		"refs":           s.registry.Len(),
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"version":        s.build.Version(),
		"build":          s.build,
	}
	if s.jobs != nil {
		st := s.jobs.Stats()
		h["jobs"] = map[string]any{
			"enabled": true,
			"queued":  st.Queued,
			"running": st.Running,
		}
	} else {
		h["jobs"] = map[string]any{"enabled": false}
	}
	writeJSON(w, http.StatusOK, h)
}

// handleDebugTraces answers GET /debug/traces: the most recent finished
// request traces, newest first (?limit=N caps the count).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid limit %q", q)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  s.traces.Total(),
		"traces": s.traces.Snapshot(limit),
	})
}

// handleMetrics answers GET /metrics in one of two representations:
// the flat JSON snapshot (default) or the Prometheus text exposition
// format, selected by ?format=prometheus (which wins) or an Accept
// header naming text/plain or OpenMetrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		if a := r.Header.Get("Accept"); strings.Contains(a, "text/plain") ||
			strings.Contains(a, "application/openmetrics-text") {
			format = "prometheus"
		}
	}
	switch format {
	case "", "json":
	case "prometheus":
		w.Header().Set("Content-Type", obs.ExpositionContentType)
		_ = s.metrics.WritePrometheus(w)
		return
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or prometheus)", format)
		return
	}
	snap := s.metrics.Snapshot()
	snap["cache_size"] = s.cache.Len()
	snap["cache_capacity"] = s.cache.Cap()
	if s.eng != nil {
		// The engine backend's own counters ride along: generic batch/pair
		// totals for any backend, shard totals and per-child breakdowns for
		// composites, last device launch for device-backed ones.
		bs := s.eng.BackendStats()
		snap["backend_batches_total"] = bs.Batches
		snap["backend_pairs_total"] = bs.Pairs
		if bs.Shards > 0 || len(bs.Children) > 0 {
			snap["backend_shards_total"] = bs.Shards
			snap["backend_children"] = bs.Children
		}
		if bs.GPU != nil {
			snap["backend_gpu_last_launch"] = bs.GPU
		}
	}
	if s.proxy != nil {
		addClusterMetrics(snap, s.proxy)
	}
	if s.jobs != nil {
		addJobsMetrics(snap, s.jobs.Stats())
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleBackends answers GET /backends: every backend name registered in
// the engine's driver registry plus the active backend's capabilities
// and cumulative stats. Clients use it to discover valid -backend /
// WithBackendName values and to watch a composite backend's shard
// distribution.
func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	if s.proxy != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"registered": genasm.Backends(),
			"cluster":    s.proxy.Snapshot(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"registered": genasm.Backends(),
		"active": map[string]any{
			"name":         s.eng.BackendName(),
			"capabilities": s.eng.Capabilities(),
			"stats":        s.eng.BackendStats(),
		},
	})
}

// ---- helpers ----

// samProgram is the @PG header both SAM/PAF-producing lanes share. The
// bulk job lane deliberately reuses the interactive lane's line so the
// two surfaces emit byte-identical output for the same reads (pinned by
// TestJobSAMByteIdenticalToSync) — downstream diffing and caching never
// see a lane-dependent header.
func samProgram(format samfmt.Format) samfmt.Program {
	return samfmt.Program{
		Name: "genasm-serve", CommandLine: "POST /map-align?format=" + string(format),
	}
}

// unmappedAlignment wraps one request read as an unmapped emission for
// the SAM writer (FLAG 4; PAF drops it).
func unmappedAlignment(rd ReadIn) genasm.MappedAlignment {
	return genasm.MappedAlignment{
		Read:     genasm.Read{Name: rd.Name, Seq: []byte(rd.Seq), Qual: []byte(rd.Qual)},
		Unmapped: true,
	}
}

func toAlignResult(r genasm.Result, cached bool) AlignResult {
	return AlignResult{
		Distance: r.Distance, Score: r.Score, Cigar: r.Cigar,
		RefConsumed: r.RefConsumed, Cached: cached,
	}
}

// decodeJSON decodes the request body into v, answering 413 when the
// body exceeded the MaxBodyBytes cap and 400 on malformed JSON. It
// reports whether decoding succeeded.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", tooBig.Limit)
	} else {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
	}
	return false
}

// readJSON reads the whole request body (bounded by the MaxBytesReader
// Handler installs) and unmarshals it into v, answering 413/400 like
// decodeJSON. It additionally returns the raw bytes, so proxy mode
// forwards exactly what the client sent instead of a re-encoding.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
		} else {
			httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil, false
	}
	if err := json.Unmarshal(raw, v); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return nil, false
	}
	return raw, true
}

func writeSchedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, genasm.ErrQueryTooLong):
		// A client problem, not a service failure: the typed sentinel
		// survives the scheduler's batch wrapping, so an over-length query
		// that slipped past pre-admission (e.g. a backend capability limit)
		// still gets a 4xx.
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away; the status is moot but keep the log shape.
		httpError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// countingWriter counts the bytes written through it; the streaming
// /map-align path uses the count to decide whether an HTTP status code
// is still available for error reporting.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
