package server

import (
	"io"
	"strconv"
	"time"

	"genasm/internal/obs"

	"genasm/server/jobs"
)

// batchBuckets are the upper bounds of the batch-size histogram buckets
// (cumulative, Prometheus-style; the implicit last bucket is +Inf).
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Metrics aggregates the server's operational counters, gauges and
// stage-latency histograms on an obs.Registry, so one instrument feeds
// both the JSON snapshot (/metrics) and the Prometheus text exposition
// (/metrics?format=prometheus). All fields are safe for concurrent use.
//
// Latencies are fixed-bucket cumulative histograms, not a sliding
// window: bucket counts only ever grow, so consecutive scrapes subtract
// cleanly and percentiles come from in-bucket interpolation instead of
// a truncating sample index.
type Metrics struct {
	start   time.Time
	backend string
	reg     *obs.Registry

	requests     *obs.Counter // HTTP requests accepted (any endpoint)
	requestErrs  *obs.Counter // HTTP requests answered with a 4xx/5xx
	pairsIn      *obs.Counter // alignment pairs admitted to the scheduler
	pairsDone    *obs.Counter // alignment pairs completed by a backend batch
	rejected     *obs.Counter // submissions refused by admission control (429)
	batches      *obs.Counter // backend batches executed
	batchPairs   *obs.Counter // total pairs across executed batches
	batchErrs    *obs.Counter // backend batches that failed
	queueDepth   *obs.Gauge   // pairs queued or in flight right now
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	refsLoaded   *obs.Gauge   // references currently registered
	readsMapped  *obs.Counter // map-align reads with >= 1 candidate location
	readsNoCands *obs.Counter // map-align reads with no candidate location

	batchSize   *obs.Histogram // pairs per executed batch
	queueWait   *obs.Histogram // seconds a submission waited to be claimed
	backendExec *obs.Histogram // seconds one Engine.AlignBatch call took
	e2e         *obs.Histogram // seconds per HTTP request, handler-to-handler
}

// NewMetrics returns a Metrics clock-started now, labeled with the
// engine's backend name (e.g. "cpu", "multi(cpu,gpu)") — the label
// rides on every Prometheus series.
func NewMetrics(backend string) *Metrics {
	reg := obs.NewRegistry(obs.String("backend", backend))
	m := &Metrics{
		start:   time.Now(),
		backend: backend,
		reg:     reg,

		requests:     reg.Counter("genasm_requests_total", "HTTP requests accepted (any endpoint)."),
		requestErrs:  reg.Counter("genasm_request_errors_total", "HTTP requests answered with a 4xx or 5xx status."),
		pairsIn:      reg.Counter("genasm_pairs_enqueued_total", "Alignment pairs admitted to the scheduler."),
		pairsDone:    reg.Counter("genasm_pairs_done_total", "Alignment pairs completed by a backend batch."),
		rejected:     reg.Counter("genasm_rejected_total", "Submissions refused by admission control (429)."),
		batches:      reg.Counter("genasm_batches_total", "Backend batches executed."),
		batchPairs:   reg.Counter("genasm_batch_pairs_total", "Total pairs across executed batches."),
		batchErrs:    reg.Counter("genasm_batch_errors_total", "Backend batches that failed."),
		queueDepth:   reg.Gauge("genasm_queue_depth", "Pairs queued or in flight right now."),
		cacheHits:    reg.Counter("genasm_cache_hits_total", "Result-cache hits."),
		cacheMisses:  reg.Counter("genasm_cache_misses_total", "Result-cache misses."),
		refsLoaded:   reg.Gauge("genasm_refs_loaded", "References currently registered."),
		readsMapped:  reg.Counter("genasm_reads_mapped_total", "Map-align reads with at least one candidate location."),
		readsNoCands: reg.Counter("genasm_reads_unmapped_total", "Map-align reads with no candidate location."),

		batchSize: reg.Histogram("genasm_batch_size_pairs",
			"Pairs per executed backend batch.", batchBuckets),
		queueWait: reg.Histogram("genasm_queue_wait_seconds",
			"Time a submission spent waiting in the scheduler queue before its batch was claimed.",
			obs.DefaultLatencyBuckets),
		backendExec: reg.Histogram("genasm_backend_exec_seconds",
			"Wall time of one backend AlignBatch call.", obs.DefaultLatencyBuckets),
		e2e: reg.Histogram("genasm_e2e_latency_seconds",
			"End-to-end HTTP request latency.", obs.DefaultLatencyBuckets),
	}
	reg.GaugeFunc("genasm_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// Registry exposes the underlying metric registry so the server can
// hang scrape-time metrics (cache size, backend stats, jobs lane) onto
// the same exposition.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// WritePrometheus renders every metric in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return obs.WritePrometheus(w, m.reg)
}

func (m *Metrics) observeBatch(pairs int, execDur time.Duration) {
	m.batches.Add(1)
	m.batchPairs.Add(int64(pairs))
	m.batchSize.Observe(float64(pairs))
	m.backendExec.Observe(execDur.Seconds())
}

func (m *Metrics) observeQueueWait(d time.Duration) { m.queueWait.Observe(d.Seconds()) }

func (m *Metrics) observeRequest(d time.Duration) { m.e2e.Observe(d.Seconds()) }

// quantilesMS renders a histogram's p50/p90/p99 in milliseconds.
func quantilesMS(h *obs.Histogram) (p50, p90, p99 float64) {
	const ms = 1000
	return h.Quantile(0.50) * ms, h.Quantile(0.90) * ms, h.Quantile(0.99) * ms
}

// Snapshot returns the current metrics as a JSON-encodable map.
func (m *Metrics) Snapshot() map[string]any {
	hist := make(map[string]int64, len(batchBuckets)+1)
	cum := m.batchSize.Cumulative()
	for i, upper := range batchBuckets {
		hist[strconv.Itoa(int(upper))] = int64(cum[i])
	}
	hist["+Inf"] = int64(cum[len(cum)-1])

	p50, p90, p99 := quantilesMS(m.e2e)
	qw50, qw90, qw99 := quantilesMS(m.queueWait)
	be50, be90, be99 := quantilesMS(m.backendExec)
	batches := m.batches.Load()
	meanBatch := 0.0
	if batches > 0 {
		meanBatch = float64(m.batchPairs.Load()) / float64(batches)
	}
	return map[string]any{
		"backend":              m.backend,
		"uptime_seconds":       time.Since(m.start).Seconds(),
		"requests_total":       m.requests.Load(),
		"request_errors_total": m.requestErrs.Load(),
		"pairs_enqueued_total": m.pairsIn.Load(),
		"pairs_done_total":     m.pairsDone.Load(),
		"rejected_total":       m.rejected.Load(),
		"queue_depth":          m.queueDepth.Load(),
		"batches_total":        batches,
		"batch_errors_total":   m.batchErrs.Load(),
		"batch_size_mean":      meanBatch,
		"batch_size_hist":      hist,
		"latency_ms_p50":       p50,
		"latency_ms_p90":       p90,
		"latency_ms_p99":       p99,
		"queue_wait_ms_p50":    qw50,
		"queue_wait_ms_p90":    qw90,
		"queue_wait_ms_p99":    qw99,
		"backend_exec_ms_p50":  be50,
		"backend_exec_ms_p90":  be90,
		"backend_exec_ms_p99":  be99,
		"cache_hits_total":     m.cacheHits.Load(),
		"cache_misses_total":   m.cacheMisses.Load(),
		"refs_loaded":          m.refsLoaded.Load(),
		"reads_mapped_total":   m.readsMapped.Load(),
		"reads_unmapped_total": m.readsNoCands.Load(),
	}
}

// Scrape is the typed client-side view of the /metrics JSON snapshot:
// the fields a load client or monitoring tool needs, with json tags
// matching Snapshot's keys so an HTTP scrape unmarshals directly into
// it. Exported for internal/loadgen and cmd/genasm-loadgen; the
// Snapshot↔Scrape field agreement is pinned by
// TestSnapshotScrapeRoundTrip, so the JSON schema cannot drift away
// from its typed consumers unnoticed.
type Scrape struct {
	RequestsTotal      int64   `json:"requests_total"`
	RequestErrorsTotal int64   `json:"request_errors_total"`
	RejectedTotal      int64   `json:"rejected_total"`
	PairsEnqueuedTotal int64   `json:"pairs_enqueued_total"`
	PairsDoneTotal     int64   `json:"pairs_done_total"`
	BatchesTotal       int64   `json:"batches_total"`
	BatchSizeMean      float64 `json:"batch_size_mean"`
	QueueDepth         int64   `json:"queue_depth"`
	CacheHitsTotal     int64   `json:"cache_hits_total"`
	CacheMissesTotal   int64   `json:"cache_misses_total"`
	ReadsMappedTotal   int64   `json:"reads_mapped_total"`
	ReadsUnmappedTotal int64   `json:"reads_unmapped_total"`
	LatencyMSP50       float64 `json:"latency_ms_p50"`
	LatencyMSP99       float64 `json:"latency_ms_p99"`
}

// Scrape returns the current counters as the typed scrape view — the
// in-process equivalent of unmarshaling GET /metrics.
func (m *Metrics) Scrape() Scrape {
	p50, _, p99 := quantilesMS(m.e2e)
	batches := m.batches.Load()
	meanBatch := 0.0
	if batches > 0 {
		meanBatch = float64(m.batchPairs.Load()) / float64(batches)
	}
	return Scrape{
		RequestsTotal:      m.requests.Load(),
		RequestErrorsTotal: m.requestErrs.Load(),
		RejectedTotal:      m.rejected.Load(),
		PairsEnqueuedTotal: m.pairsIn.Load(),
		PairsDoneTotal:     m.pairsDone.Load(),
		BatchesTotal:       batches,
		BatchSizeMean:      meanBatch,
		QueueDepth:         m.queueDepth.Load(),
		CacheHitsTotal:     m.cacheHits.Load(),
		CacheMissesTotal:   m.cacheMisses.Load(),
		ReadsMappedTotal:   m.readsMapped.Load(),
		ReadsUnmappedTotal: m.readsNoCands.Load(),
		LatencyMSP50:       p50,
		LatencyMSP99:       p99,
	}
}

// Sub returns the counter-wise difference s - prev; point-in-time
// fields (queue depth, batch-size mean, latency percentiles) keep s's
// value. Load clients use it to attribute /metrics movement to one
// measurement window.
func (s Scrape) Sub(prev Scrape) Scrape {
	s.RequestsTotal -= prev.RequestsTotal
	s.RequestErrorsTotal -= prev.RequestErrorsTotal
	s.RejectedTotal -= prev.RejectedTotal
	s.PairsEnqueuedTotal -= prev.PairsEnqueuedTotal
	s.PairsDoneTotal -= prev.PairsDoneTotal
	s.BatchesTotal -= prev.BatchesTotal
	s.CacheHitsTotal -= prev.CacheHitsTotal
	s.CacheMissesTotal -= prev.CacheMissesTotal
	s.ReadsMappedTotal -= prev.ReadsMappedTotal
	s.ReadsUnmappedTotal -= prev.ReadsUnmappedTotal
	return s
}

// addJobsMetrics folds the bulk lane's counters into a /metrics
// snapshot as jobs_* fields (present only when the lane is enabled).
func addJobsMetrics(snap map[string]any, st jobs.Stats) {
	snap["jobs_submitted_total"] = st.Submitted
	snap["jobs_done_total"] = st.Done
	snap["jobs_failed_total"] = st.Failed
	snap["jobs_canceled_total"] = st.Canceled
	snap["jobs_swept_total"] = st.Swept
	snap["jobs_queued"] = st.Queued
	snap["jobs_running"] = st.Running
	snap["jobs_reads_done_total"] = st.ReadsDone
	snap["jobs_reads_failed_total"] = st.ReadsFailed
	snap["jobs_result_bytes_total"] = st.ResultBytes
}
