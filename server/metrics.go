package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"genasm/server/jobs"
)

// batchBuckets are the upper bounds of the batch-size histogram buckets
// (cumulative, Prometheus-style; the implicit last bucket is +Inf).
var batchBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// latencyWindow is how many recent request latencies the percentile
// estimator keeps (a sliding window, overwritten in arrival order).
const latencyWindow = 2048

// Metrics aggregates the server's operational counters. All methods are
// safe for concurrent use; Snapshot serializes the current state for the
// /metrics endpoint (expvar-style: flat JSON, monotonic counters plus a
// few gauges).
type Metrics struct {
	start   time.Time
	backend string

	requests     atomic.Int64 // HTTP requests accepted (any endpoint)
	requestErrs  atomic.Int64 // HTTP requests answered with a 4xx/5xx
	pairsIn      atomic.Int64 // alignment pairs admitted to the scheduler
	pairsDone    atomic.Int64 // alignment pairs completed by a backend batch
	rejected     atomic.Int64 // submissions refused by admission control (429)
	batches      atomic.Int64 // backend batches executed
	batchPairs   atomic.Int64 // total pairs across executed batches
	batchErrs    atomic.Int64 // backend batches that failed
	queueDepth   atomic.Int64 // pairs queued or in flight right now
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	refsLoaded   atomic.Int64 // references currently registered
	readsMapped  atomic.Int64 // map-align reads with >= 1 candidate location
	readsNoCands atomic.Int64 // map-align reads with no candidate location

	histMu sync.Mutex
	hist   [10]int64 // batchBuckets + +Inf

	latMu  sync.Mutex
	lat    [latencyWindow]float64 // milliseconds
	latN   int                    // total observations
	latLen int                    // filled entries
}

// NewMetrics returns a Metrics clock-started now, labeled with the
// engine's backend name (e.g. "cpu", "multi(cpu,gpu)").
func NewMetrics(backend string) *Metrics {
	return &Metrics{start: time.Now(), backend: backend}
}

func (m *Metrics) observeBatch(pairs int) {
	m.batches.Add(1)
	m.batchPairs.Add(int64(pairs))
	i := sort.SearchInts(batchBuckets, pairs)
	m.histMu.Lock()
	m.hist[i]++
	m.histMu.Unlock()
}

func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latMu.Lock()
	m.lat[m.latN%latencyWindow] = ms
	m.latN++
	if m.latLen < latencyWindow {
		m.latLen++
	}
	m.latMu.Unlock()
}

// percentiles returns the p50/p90/p99 of the latency window, in ms.
func (m *Metrics) percentiles() (p50, p90, p99 float64) {
	m.latMu.Lock()
	n := m.latLen
	window := make([]float64, n)
	copy(window, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(window)
	at := func(p float64) float64 {
		i := int(p * float64(n-1))
		return window[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// Snapshot returns the current metrics as a JSON-encodable map.
func (m *Metrics) Snapshot() map[string]any {
	m.histMu.Lock()
	hist := make(map[string]int64, len(m.hist))
	var cum int64
	for i, upper := range batchBuckets {
		cum += m.hist[i]
		hist[strconv.Itoa(upper)] = cum
	}
	cum += m.hist[len(batchBuckets)]
	hist["+Inf"] = cum
	m.histMu.Unlock()

	p50, p90, p99 := m.percentiles()
	batches := m.batches.Load()
	meanBatch := 0.0
	if batches > 0 {
		meanBatch = float64(m.batchPairs.Load()) / float64(batches)
	}
	return map[string]any{
		"backend":              m.backend,
		"uptime_seconds":       time.Since(m.start).Seconds(),
		"requests_total":       m.requests.Load(),
		"request_errors_total": m.requestErrs.Load(),
		"pairs_enqueued_total": m.pairsIn.Load(),
		"pairs_done_total":     m.pairsDone.Load(),
		"rejected_total":       m.rejected.Load(),
		"queue_depth":          m.queueDepth.Load(),
		"batches_total":        batches,
		"batch_errors_total":   m.batchErrs.Load(),
		"batch_size_mean":      meanBatch,
		"batch_size_hist":      hist,
		"latency_ms_p50":       p50,
		"latency_ms_p90":       p90,
		"latency_ms_p99":       p99,
		"cache_hits_total":     m.cacheHits.Load(),
		"cache_misses_total":   m.cacheMisses.Load(),
		"refs_loaded":          m.refsLoaded.Load(),
		"reads_mapped_total":   m.readsMapped.Load(),
		"reads_unmapped_total": m.readsNoCands.Load(),
	}
}

// addJobsMetrics folds the bulk lane's counters into a /metrics
// snapshot as jobs_* fields (present only when the lane is enabled).
func addJobsMetrics(snap map[string]any, st jobs.Stats) {
	snap["jobs_submitted_total"] = st.Submitted
	snap["jobs_done_total"] = st.Done
	snap["jobs_failed_total"] = st.Failed
	snap["jobs_canceled_total"] = st.Canceled
	snap["jobs_swept_total"] = st.Swept
	snap["jobs_queued"] = st.Queued
	snap["jobs_running"] = st.Running
	snap["jobs_reads_done_total"] = st.ReadsDone
	snap["jobs_reads_failed_total"] = st.ReadsFailed
	snap["jobs_result_bytes_total"] = st.ResultBytes
}
