package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"genasm"
)

func TestRegistryAddGetRemoveList(t *testing.T) {
	m := NewMetrics("cpu")
	g := NewRegistry(m)
	seq := genasm.GenerateGenome(60_000, 1)

	ref, err := g.Add("chr1", seq)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name != "chr1" || ref.Length != len(seq) || len(ref.SHA256) != 64 {
		t.Fatalf("ref %+v", ref)
	}
	if ref.Mapper() == nil {
		t.Fatal("no mapper")
	}
	if _, err := g.Add("chr1", seq); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if _, err := g.Add("chr2", genasm.GenerateGenome(60_000, 2)); err != nil {
		t.Fatal(err)
	}
	got, ok := g.Get("chr1")
	if !ok || got != ref {
		t.Fatal("Get did not return the registered reference")
	}
	list := g.List()
	if len(list) != 2 || list[0].Name != "chr1" || list[1].Name != "chr2" {
		t.Fatalf("list %v", list)
	}
	if m.refsLoaded.Load() != 2 {
		t.Fatalf("refs_loaded = %d", m.refsLoaded.Load())
	}
	if !g.Remove("chr1") {
		t.Fatal("Remove failed")
	}
	if g.Remove("chr1") {
		t.Fatal("second Remove succeeded")
	}
	if _, ok := g.Get("chr1"); ok {
		t.Fatal("removed reference still resolvable")
	}
	if g.Len() != 1 || m.refsLoaded.Load() != 1 {
		t.Fatalf("len=%d refs_loaded=%d", g.Len(), m.refsLoaded.Load())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	g := NewRegistry(nil)
	seq := genasm.GenerateGenome(60_000, 3)
	for _, name := range []string{"", "a/b", "a b", "a\tb", strings.Repeat("x", 129)} {
		if _, err := g.Add(name, seq); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

// TestRegistryConcurrent hammers Add/Get/List from many goroutines; run
// with -race this is the registry's concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	g := NewRegistry(NewMetrics("cpu"))
	seqs := make([][]byte, 4)
	for i := range seqs {
		seqs[i] = genasm.GenerateGenome(30_000, int64(i+10))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", w%4)
			g.Add(name, seqs[w%4]) // half of these lose the duplicate race
			if ref, ok := g.Get(name); ok {
				ref.Mapper().Candidates(seqs[w%4][100:400])
			}
			g.List()
			g.Len()
		}(w)
	}
	wg.Wait()
	if g.Len() != 4 {
		t.Fatalf("len = %d, want 4", g.Len())
	}
	// Every winner must be fully formed.
	for _, ref := range g.List() {
		if ref.Mapper() == nil || ref.Length == 0 || ref.SHA256 == "" {
			t.Fatalf("partially constructed reference %+v", ref)
		}
	}
}
