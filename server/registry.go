package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"genasm"
)

// ErrDuplicateRef reports an Add under an already-registered name (the
// HTTP layer maps it to 409 Conflict).
var ErrDuplicateRef = errors.New("server: reference already registered")

// Reference is one registered genome: indexed once at upload, then shared
// read-only by every request that names it.
type Reference struct {
	Name    string    `json:"name"`
	Length  int       `json:"length"`
	SHA256  string    `json:"sha256"`
	AddedAt time.Time `json:"added_at"`

	mapper *genasm.Mapper
}

// Mapper returns the shared minimizer index for this reference. The
// mapper is read-only and safe for any number of goroutines.
func (r *Reference) Mapper() *genasm.Mapper { return r.mapper }

// Registry holds named references. Indexing happens once per Add (the
// expensive part, outside the lock); lookups are cheap and concurrent.
type Registry struct {
	mu      sync.RWMutex
	refs    map[string]*Reference
	metrics *Metrics
}

// NewRegistry returns an empty registry. Metrics may be nil.
func NewRegistry(m *Metrics) *Registry {
	return &Registry{refs: make(map[string]*Reference), metrics: m}
}

// validRefName keeps names usable as URL path elements and cache-key
// components.
func validRefName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("server: reference name must be 1-128 characters")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("server: reference name %q contains slash or whitespace", name)
	}
	return nil
}

// Add indexes seq and registers it under name. It fails on an invalid
// name, a duplicate, or an unindexable sequence. The (slow) index build
// runs outside the registry lock, so concurrent Adds of different
// references proceed in parallel; two racing Adds of the same name
// resolve to one winner and one duplicate error.
func (g *Registry) Add(name string, seq []byte) (*Reference, error) {
	if err := validRefName(name); err != nil {
		return nil, err
	}
	g.mu.RLock()
	_, dup := g.refs[name]
	g.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateRef, name)
	}
	mapper, err := genasm.NewMapper(seq)
	if err != nil {
		return nil, fmt.Errorf("server: indexing reference %q: %w", name, err)
	}
	sum := sha256.Sum256(seq)
	ref := &Reference{
		Name:    name,
		Length:  len(seq),
		SHA256:  hex.EncodeToString(sum[:]),
		AddedAt: time.Now(),
		mapper:  mapper,
	}
	g.mu.Lock()
	if _, dup := g.refs[name]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateRef, name)
	}
	g.refs[name] = ref
	// Publish the gauge under the lock so concurrent mutations can't
	// store counts out of order.
	if g.metrics != nil {
		g.metrics.refsLoaded.Store(int64(len(g.refs)))
	}
	g.mu.Unlock()
	return ref, nil
}

// Get returns the reference registered under name.
func (g *Registry) Get(name string) (*Reference, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ref, ok := g.refs[name]
	return ref, ok
}

// Remove drops a reference; it reports whether name was registered.
func (g *Registry) Remove(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.refs[name]
	delete(g.refs, name)
	if ok && g.metrics != nil {
		g.metrics.refsLoaded.Store(int64(len(g.refs)))
	}
	return ok
}

// List returns every registered reference, sorted by name.
func (g *Registry) List() []*Reference {
	g.mu.RLock()
	out := make([]*Reference, 0, len(g.refs))
	for _, r := range g.refs {
		out = append(out, r)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports how many references are registered.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.refs)
}
