package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"genasm"
	"genasm/server/jobs"
)

// startCluster boots n real single-node servers plus a consistent-hash
// front routing over them, all in-process over httptest.
func startCluster(t *testing.T, n int, pcfg ProxyConfig) (nodes []*Server, nodeTS []*httptest.Server, front *Server, frontTS *httptest.Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
		nodes = append(nodes, srv)
		nodeTS = append(nodeTS, ts)
		pcfg.Upstreams = append(pcfg.Upstreams, ts.URL)
	}
	front, frontTS = newTestServer(t, Config{Proxy: pcfg})
	return nodes, nodeTS, front, frontTS
}

// frontHealth polls the front's /healthz until the reported healthy
// upstream count matches want (fatal after 5s).
func frontHealth(t *testing.T, frontTS *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, body := doJSON(t, frontTS.Client(), "GET", frontTS.URL+"/healthz", nil)
		if status != http.StatusOK {
			t.Fatalf("front /healthz status %d: %s", status, body)
		}
		var rep struct {
			Mode    string `json:"mode"`
			Cluster struct {
				Healthy int `json:"healthy"`
			} `json:"cluster"`
		}
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Mode != "front" {
			t.Fatalf("front /healthz mode %q, want front", rep.Mode)
		}
		if rep.Cluster.Healthy == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("front never reached %d healthy upstreams (at %d)", want, rep.Cluster.Healthy)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSAMByteIdentical is the tentpole acceptance proof: a
// 3-node cluster behind the routing front serves byte-identical SAM to
// a single local node for the same reference and reads.
func TestClusterSAMByteIdentical(t *testing.T) {
	ref := genasm.GenerateGenome(60_000, 50)
	reads, err := genasm.SimulateLongReads(ref, 5, 900, 0.1, 51)
	if err != nil {
		t.Fatal(err)
	}
	maReq := MapAlignRequest{Ref: "genome"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq), Qual: string(rd.Qual)})
	}

	// The single-node baseline.
	_, soloTS := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	if status, body := doJSON(t, soloTS.Client(), "POST", soloTS.URL+"/refs",
		RefAddRequest{Name: "genome", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("solo upload status %d: %s", status, body)
	}
	soloStatus, soloBody, soloTrailer, _ := streamMapAlignBody(t, soloTS, soloTS.URL+"/map-align?format=sam", maReq)
	if soloStatus != http.StatusOK {
		t.Fatalf("solo stream status %d", soloStatus)
	}

	// The cluster: reference uploaded once through the front (broadcast).
	_, _, _, frontTS := startCluster(t, 3, ProxyConfig{})
	if status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/refs",
		RefAddRequest{Name: "genome", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("front upload status %d: %s", status, body)
	}
	status, body, trailer, ctype := streamMapAlignBody(t, frontTS, frontTS.URL+"/map-align?format=sam", maReq)
	if status != http.StatusOK {
		t.Fatalf("cluster stream status %d: %s", status, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("cluster content type %q", ctype)
	}
	if body != soloBody {
		t.Fatalf("cluster SAM diverged from single-node SAM:\ncluster %d bytes, solo %d bytes", len(body), len(soloBody))
	}
	if got, want := trailer.Get(TrailerStatus), soloTrailer.Get(TrailerStatus); got != want || got != "ok" {
		t.Fatalf("cluster trailer %q, solo trailer %q, want ok", got, want)
	}
}

// TestClusterAlignParity: /align answers through the front are
// result-identical to a direct engine run, and repeated requests for
// the same reference always land on the same upstream (consistent
// hashing), concentrating cache hits.
func TestClusterAlignParity(t *testing.T) {
	nodes, _, _, frontTS := startCluster(t, 3, ProxyConfig{})
	pairs := testPairs(t, 8, 30)
	// Baseline from a standalone engine so no cluster node's batch
	// counter moves outside the front's routing.
	eng, err := genasm.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.AlignBatch(t.Context(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	req := AlignRequest{}
	for _, p := range pairs {
		req.Pairs = append(req.Pairs, AlignPair{Query: string(p.Query), Ref: string(p.Ref)})
	}
	for i := 0; i < 3; i++ {
		status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/align", req)
		if status != http.StatusOK {
			t.Fatalf("front /align status %d: %s", status, body)
		}
		var rep AlignResponse
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != len(want) {
			t.Fatalf("%d results, want %d", len(rep.Results), len(want))
		}
		for j, r := range rep.Results {
			if r.Distance != want[j].Distance || r.Score != want[j].Score || r.Cigar != want[j].Cigar {
				t.Fatalf("result %d diverged via front: %+v vs %+v", j, r, want[j])
			}
		}
	}
	// Exactly one node executed batches: same first-pair reference →
	// same ring owner on every repeat.
	executed := 0
	for _, n := range nodes {
		if n.Engine().BackendStats().Batches > 0 {
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("%d nodes executed the repeated batch, want exactly 1 (sticky routing)", executed)
	}
}

// TestClusterFailover: killing an upstream never surfaces a 5xx to
// clients — before ejection the forward fails over along the ring, and
// after the health prober ejects the node the ring routes around it.
func TestClusterFailover(t *testing.T) {
	_, nodeTS, _, frontTS := startCluster(t, 3, ProxyConfig{
		HealthInterval: 20 * time.Millisecond,
		FailAfter:      1,
	})
	frontHealth(t, frontTS, 3)

	send := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			// Distinct references spread the routing keys over the ring,
			// so some requests would have landed on the dead node.
			ref := strings.Repeat("ACGT", 6+i%5) + strings.Repeat("GGCA", 1+i%3)
			status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/align", AlignRequest{
				Pairs: []AlignPair{{Query: ref[2 : len(ref)-2], Ref: ref}},
			})
			if status != http.StatusOK {
				t.Fatalf("request %d: status %d (want zero client-visible errors): %s", i, status, body)
			}
		}
	}

	nodeTS[1].Close() // connection-refused from now on
	send(30)          // pre-ejection window: failover must absorb every hit
	frontHealth(t, frontTS, 2)
	send(20) // post-ejection: ring routes around the dead node

	status, body := doJSON(t, frontTS.Client(), "GET", frontTS.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("front /metrics status %d", status)
	}
	var snap struct {
		Ejections int `json:"cluster_ejections_total"`
		Healthy   int `json:"cluster_upstreams_healthy"`
		Upstreams int `json:"cluster_upstreams"`
		Proxied   int `json:"cluster_proxied_total"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ejections < 1 || snap.Healthy != 2 || snap.Upstreams != 3 || snap.Proxied < 50 {
		t.Fatalf("cluster metrics %+v: want >=1 ejection, 2/3 healthy, >=50 proxied", snap)
	}
}

// TestClusterEjectReadmit: an upstream whose /healthz starts failing is
// ejected from the ring, and readmitted on its first healthy probe.
func TestClusterEjectReadmit(t *testing.T) {
	node, _ := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	var sick atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() && r.URL.Path == "/healthz" {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		node.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()
	node2, _ := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	node2TS := httptest.NewServer(node2.Handler())
	defer node2TS.Close()

	front, frontTS := newTestServer(t, Config{Proxy: ProxyConfig{
		Upstreams:      []string{flaky.URL, node2TS.URL},
		HealthInterval: 20 * time.Millisecond,
		FailAfter:      1,
	}})
	frontHealth(t, frontTS, 2)
	sick.Store(true)
	frontHealth(t, frontTS, 1)
	sick.Store(false)
	frontHealth(t, frontTS, 2)

	cs := front.Proxy().Snapshot()
	if len(cs.Upstreams) != 2 || cs.Healthy != 2 {
		t.Fatalf("snapshot %+v, want both upstreams healthy again", cs)
	}
}

// TestRingRemapFraction pins the consistent-hashing contract: growing a
// 3-node ring to 4 nodes remaps roughly 1/4 of the keyspace — not ~all
// of it (modulo hashing) and not none.
func TestRingRemapFraction(t *testing.T) {
	labels := []string{"http://a:1", "http://b:1", "http://c:1"}
	r3 := buildRing(labels, ringReplicas)
	r4 := buildRing(append(labels, "http://d:1"), ringReplicas)
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ref:genome-%d", i)
		o3, ok3 := r3.owner(key)
		o4, ok4 := r4.owner(key)
		if !ok3 || !ok4 {
			t.Fatal("empty ring")
		}
		if o3 != o4 {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("adding a 4th node remapped %.1f%% of keys, want ~25%% (15–35%%)", frac*100)
	}
}

// TestClusterRefBroadcast: mutating /refs through the front reaches
// every upstream (uploads and deletes), so any node can serve any
// reference after failover.
func TestClusterRefBroadcast(t *testing.T) {
	_, nodeTS, _, frontTS := startCluster(t, 3, ProxyConfig{})
	ref := genasm.GenerateGenome(5_000, 52)
	if status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("front upload status %d: %s", status, body)
	}
	for i, ts := range nodeTS {
		if status, body := doJSON(t, ts.Client(), "GET", ts.URL+"/refs/g", nil); status != http.StatusOK {
			t.Fatalf("node %d missing broadcast reference: %d %s", i, status, body)
		}
	}
	if status, _ := doJSON(t, frontTS.Client(), "DELETE", frontTS.URL+"/refs/g", nil); status != http.StatusNoContent {
		t.Fatalf("front delete status %d", status)
	}
	for i, ts := range nodeTS {
		if status, _ := doJSON(t, ts.Client(), "GET", ts.URL+"/refs/g", nil); status != http.StatusNotFound {
			t.Fatalf("node %d still holds the deleted reference (status %d)", i, status)
		}
	}
	// Read-side /refs forwards to a live upstream.
	if status, body := doJSON(t, frontTS.Client(), "GET", frontTS.URL+"/refs", nil); status != http.StatusOK {
		t.Fatalf("front /refs status %d: %s", status, body)
	}
}

// TestProxyAdmission: the front sheds load past MaxInFlight with the
// same 429 + Retry-After shape as a node's scheduler queue.
func TestProxyAdmission(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/align" {
			entered <- struct{}{}
			<-release
		}
		writeJSON(w, http.StatusOK, AlignResponse{Results: []AlignResult{{}}})
	}))
	defer slow.Close()
	defer close(release)

	_, frontTS := newTestServer(t, Config{Proxy: ProxyConfig{
		Upstreams:   []string{slow.URL},
		MaxInFlight: 1,
	}})
	req := AlignRequest{Pairs: []AlignPair{{Query: "AC", Ref: "ACG"}}}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := frontTS.Client().Post(frontTS.URL+"/align", "application/json", strings.NewReader(string(payload)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the only in-flight slot is now occupied

	status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/align", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429 once the in-flight cap is reached", status, body)
	}
	release <- struct{}{}
}

// TestProxyConfigValidation covers the front tier's construction-time
// contract: jobs lane excluded, bad or duplicate upstreams rejected,
// jobs endpoints 503 in proxy mode, /backends exposing the cluster.
func TestProxyConfigValidation(t *testing.T) {
	if _, err := New(Config{Proxy: ProxyConfig{Upstreams: []string{"127.0.0.1:1"}},
		Jobs: jobs.Config{Dir: t.TempDir() + "/jobs"}}); err == nil {
		t.Fatal("proxy mode with a jobs dir must fail construction")
	}
	if _, err := New(Config{Proxy: ProxyConfig{Upstreams: []string{"ftp://x"}}}); err == nil {
		t.Fatal("non-http upstream scheme must fail construction")
	}
	if _, err := New(Config{Proxy: ProxyConfig{Upstreams: []string{"127.0.0.1:9", "http://127.0.0.1:9"}}}); err == nil {
		t.Fatal("duplicate upstreams must fail construction")
	}

	_, frontTS := newTestServer(t, Config{Proxy: ProxyConfig{Upstreams: []string{"127.0.0.1:1"}}})
	if status, body := doJSON(t, frontTS.Client(), "POST", frontTS.URL+"/jobs", map[string]any{}); status != http.StatusServiceUnavailable {
		t.Fatalf("front /jobs status %d (%s), want 503", status, body)
	}
	status, body := doJSON(t, frontTS.Client(), "GET", frontTS.URL+"/backends", nil)
	if status != http.StatusOK {
		t.Fatalf("front /backends status %d", status)
	}
	var rep struct {
		Registered []string        `json:"registered"`
		Cluster    ClusterSnapshot `json:"cluster"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cluster.Upstreams) != 1 || len(rep.Registered) == 0 {
		t.Fatalf("front /backends = %s", body)
	}
}
