package server

import (
	"net/http"

	"genasm"
	"genasm/internal/obs"
	"genasm/internal/samfmt"
)

// executor is the execution seam between the workload handlers and the
// two serving modes. The handlers own everything both modes share —
// body decode, admission control (pair/read counts, empty and
// over-length queries), format negotiation, request metrics and
// tracing — then hand the validated request to the mode:
//
//   - localExecutor runs it on this node's engine through the cache and
//     the batch scheduler (the classic single-node path).
//   - proxyExecutor (proxy.go) forwards the already-read body to an
//     upstream chosen by consistent hashing, with health-aware
//     failover, executing nothing locally.
//
// raw is the exact request body as read off the wire, so proxy mode
// forwards bytes, not a re-encoding.
type executor interface {
	// maxQueryLen is the admission query-length limit (0 = none here;
	// proxy mode defers to the upstream's own admission).
	maxQueryLen() int
	execAlign(w http.ResponseWriter, r *http.Request, raw []byte, req AlignRequest)
	execMapAlign(w http.ResponseWriter, r *http.Request, raw []byte, req MapAlignRequest, format string)
}

// localExecutor executes requests on the server's own engine: result
// cache in front, dynamic batch scheduler behind.
type localExecutor struct {
	s *Server
}

func (x localExecutor) maxQueryLen() int { return x.s.eng.MaxQueryLen() }

func (x localExecutor) execAlign(w http.ResponseWriter, r *http.Request, raw []byte, req AlignRequest) {
	s := x.s
	out := make([]AlignResult, len(req.Pairs))
	keys := make([]string, len(req.Pairs))
	var missPairs []genasm.Pair
	var missIdx []int
	caching := s.cache.Enabled()
	for i, p := range req.Pairs {
		q, ref := []byte(p.Query), []byte(p.Ref)
		if caching {
			keys[i] = resultKey(s.fingerprint, ref, q)
			if res, ok := s.cache.Get(keys[i]); ok {
				s.metrics.cacheHits.Add(1)
				out[i] = toAlignResult(res, true)
				continue
			}
			s.metrics.cacheMisses.Add(1)
		}
		missPairs = append(missPairs, genasm.Pair{Query: q, Ref: ref})
		missIdx = append(missIdx, i)
	}
	if len(missPairs) > 0 {
		results, err := s.sched.Submit(r.Context(), missPairs)
		if err != nil {
			writeSchedError(w, err)
			return
		}
		for j, res := range results {
			s.cache.Put(keys[missIdx[j]], res)
			out[missIdx[j]] = toAlignResult(res, false)
		}
	}
	sp := obs.StartSpan(r.Context(), "serialize",
		obs.String("format", "json"), obs.Int("results", len(out)))
	writeJSON(w, http.StatusOK, AlignResponse{Results: out})
	sp.End()
}

func (x localExecutor) execMapAlign(w http.ResponseWriter, r *http.Request, raw []byte, req MapAlignRequest, format string) {
	s := x.s
	ref, ok := s.registry.Get(req.Ref)
	if !ok {
		httpError(w, http.StatusNotFound, "reference %q not registered", req.Ref)
		return
	}
	if format == "sam" || format == "paf" {
		s.streamMapAlign(w, r, ref, req, samfmt.Format(format))
		return
	}
	aligned, err := s.alignReads(r.Context(), ref, req.Reads, req.AllCandidates)
	if err != nil {
		writeSchedError(w, err)
		return
	}
	sp := obs.StartSpan(r.Context(), "serialize",
		obs.String("format", "json"), obs.Int("reads", len(aligned)))
	results := make([]MappedRead, len(aligned))
	for i, ar := range aligned {
		results[i] = toMappedRead(req.Reads[i].Name, ar)
	}
	writeJSON(w, http.StatusOK, MapAlignResponse{Ref: req.Ref, Results: results})
	sp.End()
}
