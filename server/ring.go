package server

import (
	"hash/fnv"
	"sort"
)

// ringReplicas is how many virtual points each upstream contributes to
// the consistent-hash ring. More points smooth the key distribution
// across nodes (and the remap fraction toward the ideal 1/n when
// membership changes) at a small lookup cost; 128 keeps both within a
// few percent for the handful-of-nodes clusters the front targets.
const ringReplicas = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the index of the upstream that owns it.
type ringPoint struct {
	hash uint64
	node int
}

// hashRing is an immutable consistent-hash ring over upstream indices.
// The proxy rebuilds the whole ring on membership change (eject or
// readmit) under its RWMutex — rings are tiny (nodes × ringReplicas
// points), so rebuild-on-change keeps every lookup lock-free once the
// read lock is held, and an immutable value can never be observed
// half-updated.
type hashRing struct {
	points []ringPoint // sorted by hash
	nodes  int         // distinct node count
}

// buildRing places replicas virtual points per node label on the
// circle. label(i) must be stable across rebuilds (the upstream's
// address), so a node that leaves and returns reclaims exactly its old
// arc and the keyspace it used to own.
func buildRing(labels []string, replicas int) *hashRing {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	r := &hashRing{points: make([]ringPoint, 0, len(labels)*replicas), nodes: len(labels)}
	var buf [8]byte
	for node, label := range labels {
		for rep := 0; rep < replicas; rep++ {
			h := fnv.New64a()
			h.Write([]byte(label))
			buf[0], buf[1], buf[2], buf[3] = byte(rep), byte(rep>>8), byte(rep>>16), byte(rep>>24)
			h.Write(buf[:4])
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hashKey positions a routing key on the circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// owner returns the node owning key: the first virtual point at or
// after the key's position, wrapping around. ok is false on an empty
// ring.
func (r *hashRing) owner(key string) (node int, ok bool) {
	seq := r.sequence(key, 1)
	if len(seq) == 0 {
		return 0, false
	}
	return seq[0], true
}

// sequence returns up to max distinct nodes in ring order starting at
// key's owner — the failover order: the owner first, then the nodes
// whose arcs follow, so every caller that fails over from the same key
// lands on the same secondary.
func (r *hashRing) sequence(key string, max int) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if max > r.nodes {
		max = r.nodes
	}
	out := make([]int, 0, max)
	seen := make(map[int]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
