package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"genasm/internal/obs"
	"genasm/internal/readsim"
	"genasm/internal/samfmt"
	"genasm/server/jobs"
)

// The /jobs endpoints are the bulk lane next to the interactive
// /map-align lane: a FASTA/FASTQ body is accepted with 202, spooled to
// disk, drained through the same scheduler in backend-capability-sized
// batches by a bounded worker pool (package jobs), and the finished
// SAM/PAF/JSON result is downloaded separately — so a 10M-read run
// neither holds an HTTP connection open nor dies with a dropped client.
// Both lanes share alignReads and the samfmt writers, which is what
// makes a job's SAM byte-identical to /map-align?format=sam on the
// same reads (pinned by TestJobSAMByteIdenticalToSync).

// errJobsDisabled answers every /jobs request when the server was built
// without a jobs spool directory.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		httpError(w, http.StatusServiceUnavailable,
			"bulk job lane disabled (start genasm-serve with -jobs-dir)")
		return false
	}
	return true
}

// handleJobSubmit answers POST /jobs?ref=<name>&format=sam|paf|json
// [&all=1]: the raw request body is FASTA or FASTQ reads (sniffed from
// the first byte), spooled to disk, and queued. 202 Accepted carries
// the job snapshot; poll GET /jobs/{id} and fetch /jobs/{id}/result.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	q := r.URL.Query()
	refName := q.Get("ref")
	if _, ok := s.registry.Get(refName); !ok {
		httpError(w, http.StatusNotFound, "reference %q not registered", refName)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "sam"
	}
	switch format {
	case "sam", "paf", "json":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want sam, paf or json)", format)
		return
	}
	all := q.Get("all") == "1" || strings.EqualFold(q.Get("all"), "true")

	br := bufio.NewReader(r.Body)
	first, err := br.Peek(1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "empty request body (want FASTA or FASTQ reads)")
		return
	}
	var ext string
	switch first[0] {
	case '@':
		ext = ".fastq"
	case '>':
		ext = ".fasta"
	default:
		httpError(w, http.StatusBadRequest,
			"request body starts with %q: not FASTA ('>') or FASTQ ('@')", first[0])
		return
	}

	snap, err := s.jobs.Submit(jobs.Spec{Ref: refName, Format: format, AllCandidates: all}, br, ext)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
		case errors.Is(err, jobs.ErrBacklogFull):
			w.Header().Set("Retry-After", "5")
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, jobs.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	snap, ok, gone := s.jobs.Get(id)
	switch {
	case gone:
		httpError(w, http.StatusGone, "job %q has been garbage-collected", id)
	case !ok:
		httpError(w, http.StatusNotFound, "job %q not found", id)
	default:
		writeJSON(w, http.StatusOK, snap)
	}
}

// handleJobResult streams a done job's result file with the
// content type matching its format. A job that exists but is not done
// answers 409 Conflict (poll GET /jobs/{id} until state is "done"); a
// garbage-collected job answers 410 Gone.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	path, snap, ok, gone := s.jobs.ResultPath(id)
	switch {
	case gone:
		httpError(w, http.StatusGone, "job %q has been garbage-collected", id)
		return
	case !ok:
		httpError(w, http.StatusNotFound, "job %q not found", id)
		return
	case snap.State != jobs.Done:
		if snap.Error != "" {
			httpError(w, http.StatusConflict, "job %q is %s; no result to download: %s",
				id, snap.State, snap.Error)
		} else {
			httpError(w, http.StatusConflict, "job %q is %s; no result to download", id, snap.State)
		}
		return
	}
	f, err := os.Open(path)
	if err != nil {
		// Swept between the index lookup and the open.
		httpError(w, http.StatusGone, "job %q result no longer on disk", id)
		return
	}
	defer f.Close()
	ctype := "text/plain; charset=utf-8"
	if snap.Format == "json" {
		ctype = "application/json"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s.%s", id, snap.Format))
	if fi, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", fmt.Sprint(fi.Size()))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// handleJobDelete cancels a queued/running job (202 with the snapshot;
// a running job finishes canceling within one batch) or purges a
// terminal one, deleting its spool files (204).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	snap, ok, gone := s.jobs.Get(id)
	switch {
	case gone:
		httpError(w, http.StatusGone, "job %q has been garbage-collected", id)
		return
	case !ok:
		httpError(w, http.StatusNotFound, "job %q not found", id)
		return
	}
	if snap.State.Terminal() {
		if _, err := s.jobs.Remove(id); err != nil {
			// Raced back to life is impossible (terminal states are
			// final); surface whatever Remove saw.
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	snap, _ = s.jobs.Cancel(id)
	writeJSON(w, http.StatusAccepted, snap)
}

// runBulkJob is the jobs.RunFunc: it parses the spooled input, then
// drains the read set through the same alignReads path the interactive
// lane uses — candidate location on the shared mapper, result cache,
// scheduler coalescing — in batches sized from the engine backend's
// Capabilities, reporting read-level progress after every batch.
// Cancellation (DELETE, drain) is observed between batches and inside
// the scheduler wait, so a cancel takes effect within one batch.
func (s *Server) runBulkJob(ctx context.Context, spec jobs.Spec, inputPath string, out io.Writer, p *jobs.Progress) error {
	// The job gets its own trace (ID = the job ID, recovered from the
	// spool path), threaded through the scheduler like a request's: the
	// span cap bounds what a genome-sized job records, and the finished
	// trace lands in the same /debug/traces ring.
	jtr := obs.NewTrace("job "+spec.Format, filepath.Base(filepath.Dir(inputPath)))
	defer func() {
		jtr.Finish()
		s.traces.Add(jtr)
	}()
	ctx = obs.WithTrace(ctx, jtr)

	ref, ok := s.registry.Get(spec.Ref)
	if !ok {
		return fmt.Errorf("reference %q no longer registered", spec.Ref)
	}
	parseSp := jtr.Start("parse_input")
	reads, err := readsim.LoadReadsFile(inputPath)
	parseSp.End()
	if err != nil {
		return fmt.Errorf("parsing job input: %w", err)
	}
	if len(reads) == 0 {
		return errors.New("job input contains no reads")
	}
	p.SetTotal(len(reads))
	batch := s.eng.Capabilities().PreferredBatch
	if batch <= 0 {
		batch = 256
	}

	var emit func(chunk []ReadIn, aligned []alignedRead) (failed int, err error)
	var finish func() error

	switch spec.Format {
	case "sam", "paf":
		format := samfmt.Format(spec.Format)
		sref := samfmt.Ref{Name: ref.Name, Length: ref.Length}
		// The interactive lane's writer configuration, verbatim: that is
		// what makes a job's SAM byte-identical to the equivalent
		// /map-align?format=sam response.
		sw := samfmt.NewWriter(out, format, []samfmt.Ref{sref}, samProgram(format))
		emit = func(chunk []ReadIn, aligned []alignedRead) (int, error) {
			failed := 0
			for i, ar := range aligned {
				switch {
				case ar.err != nil:
					failed++ // SAM/PAF have no error record
				case ar.unmapped:
					if err := sw.Write(sref, unmappedAlignment(chunk[i])); err != nil {
						return failed, err
					}
				default:
					for _, m := range ar.mals {
						if err := sw.Write(sref, m); err != nil {
							return failed, err
						}
					}
				}
			}
			return failed, nil
		}
		finish = sw.Flush
	case "json":
		// Stream the MapAlignResponse envelope element by element so a
		// genome-sized job never buffers its whole result in memory. The
		// shape matches the interactive lane's JSON response.
		bw := bufio.NewWriter(out)
		refJSON, _ := json.Marshal(spec.Ref)
		fmt.Fprintf(bw, `{"ref":%s,"results":[`, refJSON)
		wrote := false
		emit = func(chunk []ReadIn, aligned []alignedRead) (int, error) {
			failed := 0
			for i, ar := range aligned {
				mr := toMappedRead(chunk[i].Name, ar)
				if mr.Error != "" {
					failed++
				}
				b, err := json.Marshal(mr)
				if err != nil {
					return failed, err
				}
				if wrote {
					bw.WriteByte(',')
				}
				wrote = true
				if _, err := bw.Write(b); err != nil {
					return failed, err
				}
			}
			return failed, nil
		}
		finish = func() error {
			bw.WriteString("]}\n")
			return bw.Flush()
		}
	default:
		return fmt.Errorf("unknown job format %q", spec.Format)
	}

	for start := 0; start < len(reads); start += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Convert per chunk rather than all up front: the parsed reads
		// already live in memory, and the lane exists for genome-sized
		// inputs — a second full-size copy would double peak RAM.
		end := min(start+batch, len(reads))
		chunk := make([]ReadIn, end-start)
		for i, rd := range reads[start:end] {
			chunk[i] = ReadIn{Name: rd.Name, Seq: string(rd.Seq), Qual: string(rd.Qual)}
		}
		aligned, err := s.alignReads(ctx, ref, chunk, spec.AllCandidates)
		for errors.Is(err, ErrQueueFull) {
			// Backpressure is transient by definition: the interactive
			// lane answers it with 429 + Retry-After, so the bulk lane —
			// a background job measured in minutes — backs off and
			// retries the batch instead of failing the whole job.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(queueFullBackoff):
			}
			aligned, err = s.alignReads(ctx, ref, chunk, spec.AllCandidates)
		}
		if err != nil {
			return fmt.Errorf("batch at read %d: %w", start, err)
		}
		failed, err := emit(chunk, aligned)
		p.Add(len(chunk), failed)
		if err != nil {
			return err
		}
	}
	return finish()
}

// queueFullBackoff is how long a bulk worker waits before resubmitting
// a batch the scheduler shed with ErrQueueFull (interactive traffic has
// priority; a job retries quietly).
const queueFullBackoff = 100 * time.Millisecond

// toMappedRead converts one alignReads outcome into the wire shape
// shared by the buffered /map-align JSON response and job JSON results.
func toMappedRead(name string, ar alignedRead) MappedRead {
	mr := MappedRead{Read: name}
	switch {
	case ar.err != nil:
		mr.Error = ar.err.Error()
	case ar.unmapped:
		mr.Unmapped = true
	default:
		mr.Alignments = make([]MapAlignment, len(ar.mals))
		for rank, m := range ar.mals {
			mr.Alignments[rank] = MapAlignment{
				Rank: rank, RefStart: m.Candidate.Start, RefEnd: m.Candidate.End,
				RevComp: m.Candidate.RevComp, ChainScore: m.Candidate.Score,
				AlignResult: toAlignResult(m.Result, ar.cached[rank]),
			}
		}
	}
	return mr
}
