package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"genasm/internal/loadgen"
	"genasm/internal/obs"
	"genasm/server"
)

// TestExpositionUnderSustainedLoad scrapes /metrics?format=prometheus
// repeatedly while the loadgen mixed scenario (align, streamed
// map-align in every format, cache-hit traffic) hammers the server, and
// runs every scrape through the strict exposition checker. A histogram
// whose cumulative buckets tear under concurrent observation, or a
// label that goes malformed only when counters move mid-render, only
// shows up on a live scrape — this is the pin.
func TestExpositionUnderSustainedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resc := make(chan *loadgen.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:   ts.URL,
			Scenario:  loadgen.ScenarioMixed,
			Seed:      7,
			Warmup:    200 * time.Millisecond,
			Duration:  1500 * time.Millisecond,
			GenomeLen: 30_000,
		})
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()

	scrapes := 0
	for {
		select {
		case err := <-errc:
			t.Fatalf("load run failed: %v", err)
		case res := <-resc:
			if scrapes == 0 {
				t.Fatal("no scrapes happened during the load window")
			}
			if res.Errors != 0 {
				t.Fatalf("mixed load saw %d errors (last: %s)", res.Errors, res.LastError)
			}
			t.Logf("%d live scrapes validated under %d requests", scrapes, res.Requests)
			return
		default:
		}
		resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape status %d", resp.StatusCode)
		}
		if errs := obs.CheckExposition(data); len(errs) != 0 {
			t.Fatalf("live exposition violations under load: %v\npayload:\n%s", errs, data)
		}
		scrapes++
		time.Sleep(10 * time.Millisecond)
	}
}
