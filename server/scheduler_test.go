package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"genasm"
)

// testPairs builds n distinct query/ref pairs from slices of a synthetic
// genome, with ref carrying trailing slack as the mappers produce.
func testPairs(tb testing.TB, n int, seed int64) []genasm.Pair {
	tb.Helper()
	g := genasm.GenerateGenome(n*300+1000, seed)
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]genasm.Pair, n)
	for i := range pairs {
		off := i * 300
		q := append([]byte(nil), g[off:off+200]...)
		for j := 0; j < 10; j++ { // ~5% substitutions
			q[rng.Intn(len(q))] = "ACGT"[rng.Intn(4)]
		}
		pairs[i] = genasm.Pair{Query: q, Ref: g[off : off+240]}
	}
	return pairs
}

func newTestEngine(tb testing.TB, opts ...genasm.Option) *genasm.Engine {
	tb.Helper()
	eng, err := genasm.NewEngine(opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestSchedulerCoalesces64Singles is the tentpole proof at the scheduler
// layer: 64 concurrent single-pair submissions execute as at most 8
// backend batches, and every result is bit-identical to a direct
// Engine.AlignBatch of the same pairs.
func TestSchedulerCoalesces64Singles(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 16, MaxDelay: 100 * time.Millisecond}, nil)
	defer s.Close()

	pairs := testPairs(t, 64, 1)
	want, err := eng.AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]genasm.Result, len(pairs))
	errs := make([]error, len(pairs))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := s.Submit(context.Background(), pairs[i:i+1])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res[0]
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range pairs {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("pair %d: scheduler %+v != direct %+v", i, got[i], want[i])
		}
	}
	batches := s.Metrics().batches.Load()
	if batches > 8 {
		t.Fatalf("64 single-pair submissions ran as %d batches, want <= 8", batches)
	}
	if done := s.Metrics().pairsDone.Load(); done != 64 {
		t.Fatalf("pairs_done = %d, want 64", done)
	}
	t.Logf("64 submissions coalesced into %d batches", batches)
}

// TestSchedulerDeadlineFlush: with a huge MaxBatch a lone pair must still
// ship once MaxDelay elapses.
func TestSchedulerDeadlineFlush(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 10 * time.Millisecond}, nil)
	defer s.Close()
	pairs := testPairs(t, 1, 2)
	begin := time.Now()
	res, err := s.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if waited := time.Since(begin); waited > 5*time.Second {
		t.Fatalf("deadline flush took %v", waited)
	}
	if n := s.Metrics().batches.Load(); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
}

// TestSchedulerMixedJobSizes: concurrently submitted multi-pair jobs get
// back exactly their own slice of the shared batches.
func TestSchedulerMixedJobSizes(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 32, MaxDelay: 20 * time.Millisecond}, nil)
	defer s.Close()

	all := testPairs(t, 30, 3)
	want, err := eng.AlignBatch(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs of size 1..4 carved out of the shared pair list.
	type jobSpec struct{ lo, hi int }
	var jobs []jobSpec
	for lo, n := 0, 1; lo < len(all); n = n%4 + 1 {
		hi := min(lo+n, len(all))
		jobs = append(jobs, jobSpec{lo, hi})
		lo = hi
	}
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for j, spec := range jobs {
		wg.Add(1)
		go func(j int, spec jobSpec) {
			defer wg.Done()
			res, err := s.Submit(context.Background(), all[spec.lo:spec.hi])
			if err != nil {
				errs[j] = err
				return
			}
			for k, r := range res {
				if r != want[spec.lo+k] {
					errs[j] = errors.New("result mismatch")
					return
				}
			}
		}(j, spec)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
}

// TestSchedulerQueueFull: admission control fails fast once pending pairs
// would exceed MaxQueue.
func TestSchedulerQueueFull(t *testing.T) {
	eng := newTestEngine(t)
	// Nothing dispatches for a second, so submissions park as pending.
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: time.Second, MaxQueue: 4}, nil)
	pairs := testPairs(t, 5, 4)

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), pairs[:4])
		done <- err
	}()
	// Wait until those 4 pairs are pending.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().pairsIn.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("first submission never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), pairs[4:5]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota submit: err = %v, want ErrQueueFull", err)
	}
	if rej := s.Metrics().rejected.Load(); rej != 1 {
		t.Fatalf("rejected = %d, want 1", rej)
	}
	s.Close() // flushes the parked batch
	if err := <-done; err != nil {
		t.Fatalf("parked submission after Close: %v", err)
	}
}

// TestSchedulerClose: Close drains pending work and later Submits fail
// with ErrClosed.
func TestSchedulerClose(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: time.Minute}, nil)
	pairs := testPairs(t, 2, 5)
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), pairs[:1])
		done <- err
	}()
	for s.Metrics().pairsIn.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending submission not drained by Close: %v", err)
	}
	if _, err := s.Submit(context.Background(), pairs[1:2]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestSchedulerContextCancel: a caller abandoning its wait gets ctx.Err
// promptly; the batch itself still completes.
func TestSchedulerContextCancel(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 200 * time.Millisecond}, nil)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	pairs := testPairs(t, 1, 6)
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, pairs)
		done <- err
	}()
	for s.Metrics().pairsIn.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Submit did not return")
	}
	// The abandoned pair still executes (deadline flush).
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().batches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned batch never executed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedulerBatchErrorBlastRadius documents the all-or-nothing batch
// contract: a poison pair fails every job co-batched with it (the HTTP
// layer therefore validates queries before admission).
func TestSchedulerBatchErrorBlastRadius(t *testing.T) {
	eng := newTestEngine(t, genasm.WithMaxQueryLen(100))
	s := NewScheduler(eng, SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 200 * time.Millisecond}, nil)
	defer s.Close()

	good := testPairs(t, 1, 7)
	poison := []genasm.Pair{{Query: make([]byte, 200), Ref: make([]byte, 220)}}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = s.Submit(context.Background(), good)
	}()
	// Ensure the good job is pending before the poison joins its batch
	// (the 200ms deadline leaves ample room for the second submission).
	for s.Metrics().pairsIn.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[1] = s.Submit(context.Background(), poison)
	}()
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("job %d: poison batch reported no error", i)
		}
	}
	if n := s.Metrics().batchErrs.Load(); n != 1 {
		t.Fatalf("batch_errors = %d, want 1", n)
	}
}

// TestSchedulerEmptySubmit: a zero-pair submission is a no-op.
func TestSchedulerEmptySubmit(t *testing.T) {
	eng := newTestEngine(t)
	s := NewScheduler(eng, SchedulerConfig{}, nil)
	defer s.Close()
	res, err := s.Submit(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
