package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"genasm/internal/obs"
)

func alignOnce(t *testing.T, ts *httptest.Server, seed int64) http.Header {
	t.Helper()
	pairs := testPairs(t, 1, seed)
	req := AlignRequest{Pairs: []AlignPair{{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}}}
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align: %d", resp.StatusCode)
	}
	return resp.Header
}

// TestMetricsPrometheusExposition: the live /metrics handler serves the
// Prometheus text format under ?format=prometheus and Accept-header
// negotiation, and the payload survives the strict exposition checker.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	alignOnce(t, ts, 91)

	cases := []struct {
		name   string
		url    string
		accept string
	}{
		{"query param", ts.URL + "/metrics?format=prometheus", ""},
		{"accept text/plain", ts.URL + "/metrics", "text/plain"},
		{"accept openmetrics", ts.URL + "/metrics", "application/openmetrics-text"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, tc.url, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
			}
			if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
				t.Fatalf("content type %q, want %q", ct, obs.ExpositionContentType)
			}
			if errs := obs.CheckExposition(buf.Bytes()); len(errs) != 0 {
				t.Fatalf("exposition violations: %v\n%s", errs, buf.String())
			}
			for _, want := range []string{
				`genasm_requests_total{backend="cpu"}`,
				`genasm_e2e_latency_seconds_bucket{backend="cpu",le="+Inf"}`,
				`genasm_queue_wait_seconds_count{backend="cpu"}`,
				`genasm_backend_exec_seconds_sum{backend="cpu"}`,
				"# TYPE genasm_requests_total counter",
				"# HELP genasm_requests_total ",
			} {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("exposition lacks %q", want)
				}
			}
		})
	}

	// The JSON default still decodes and carries the histogram-derived
	// percentile keys; an unknown format is a 400, not a silent default.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"latency_ms_p50", "queue_wait_ms_p90", "backend_exec_ms_p99", "batch_size_hist"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("JSON snapshot lacks %q", key)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", resp.StatusCode)
	}
}

// TestMetricsConcurrentScrape races scrapes in both formats against
// live alignment traffic — run under -race in CI, this is the
// data-race acceptance test for the registry and histograms.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1,
		Scheduler: SchedulerConfig{MaxBatch: 4, MaxDelay: time.Millisecond}})
	pairs := testPairs(t, 8, 92)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				p := pairs[(i*10+j)%len(pairs)]
				req := AlignRequest{Pairs: []AlignPair{{Query: string(p.Query), Ref: string(p.Ref)}}}
				b, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/align", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, url := range []string{ts.URL + "/metrics", ts.URL + "/metrics?format=prometheus"} {
					resp, err := http.Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("scrape %s: %d", url, resp.StatusCode)
						return
					}
					if strings.HasSuffix(url, "prometheus") {
						if errs := obs.CheckExposition(buf.Bytes()); len(errs) != 0 {
							t.Errorf("mid-load exposition violations: %v", errs)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestTraceSpansSumToLatency is the tracing acceptance test: one traced
// /align request shows distinct queue-wait, backend-exec and
// serialization spans at /debug/traces, and their durations account for
// the end-to-end latency (within scheduling noise).
func TestTraceSpansSumToLatency(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1,
		Scheduler: SchedulerConfig{MaxDelay: 5 * time.Millisecond}})
	hdr := alignOnce(t, ts, 93)
	id := hdr.Get("X-Request-Id")
	if len(id) != 16 {
		t.Fatalf("X-Request-Id %q, want generated 16-char id", id)
	}

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ring struct {
		Total  int             `json:"total"`
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if ring.Total != 1 || len(ring.Traces) != 1 {
		t.Fatalf("trace ring total=%d len=%d, want exactly the one /align trace", ring.Total, len(ring.Traces))
	}
	tr := ring.Traces[0]
	if tr.ID != id {
		t.Fatalf("trace id %q != response X-Request-Id %q", tr.ID, id)
	}
	if tr.Name != "POST /align" {
		t.Fatalf("trace name %q", tr.Name)
	}

	var sum float64
	seen := map[string]float64{}
	for _, sp := range tr.Spans {
		if sp.DurationMS < 0 {
			t.Fatalf("span %s has negative duration %v", sp.Name, sp.DurationMS)
		}
		seen[sp.Name] += sp.DurationMS
		switch sp.Name {
		case "queue_wait", "backend_exec", "serialize":
			sum += sp.DurationMS
		}
	}
	for _, want := range []string{"queue_wait", "batch_assemble", "backend_exec", "serialize"} {
		if _, ok := seen[want]; !ok {
			t.Fatalf("trace lacks %q span; spans: %v", want, seen)
		}
	}
	// The three stage spans must account for the bulk of the end-to-end
	// time and never exceed it by more than measurement slack.
	if sum > tr.DurationMS*1.05+0.5 {
		t.Fatalf("stage spans sum %.3fms exceeds e2e %.3fms", sum, tr.DurationMS)
	}
	if sum < tr.DurationMS*0.5 {
		t.Fatalf("stage spans sum %.3fms unexpectedly small next to e2e %.3fms (spans %v)", sum, tr.DurationMS, seen)
	}

	// ?limit caps the snapshot; a malformed limit is a 400.
	resp2, err := http.Get(ts.URL + "/debug/traces?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("limit=0: %d", resp2.StatusCode)
	}
	resp2, err = http.Get(ts.URL + "/debug/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=bogus: %d, want 400", resp2.StatusCode)
	}
}

// TestRequestIDPropagation: a caller-supplied X-Request-Id becomes the
// trace ID and is echoed on the response.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	pairs := testPairs(t, 1, 94)
	body, _ := json.Marshal(AlignRequest{Pairs: []AlignPair{{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}}})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/align", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chosen-id" {
		t.Fatalf("X-Request-Id echo %q", got)
	}
	resp, err = http.Get(ts.URL + "/debug/traces?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ring struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Traces) != 1 || ring.Traces[0].ID != "caller-chosen-id" {
		t.Fatalf("trace ring %+v lacks the caller id", ring.Traces)
	}
}

// TestHealthzEnriched: /healthz reports backend, build version, ref
// count and the jobs-lane status.
func TestHealthzEnriched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string  `json:"status"`
		Backend string  `json:"backend"`
		Refs    int     `json:"refs"`
		Uptime  float64 `json:"uptime_seconds"`
		Version string  `json:"version"`
		Build   struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Jobs struct {
			Enabled bool `json:"enabled"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Backend != "cpu" || h.Refs != 0 {
		t.Fatalf("healthz %+v", h)
	}
	if h.Version == "" || h.Build.GoVersion == "" {
		t.Fatalf("healthz lacks build info: %+v", h)
	}
	if h.Jobs.Enabled {
		t.Fatalf("jobs lane reported enabled without a spool dir: %+v", h)
	}
	if h.Uptime < 0 {
		t.Fatalf("negative uptime %v", h.Uptime)
	}
}

// TestSlowRequestLogging: a request slower than SlowRequest logs a
// warning that carries the trace id and the span tree.
func TestSlowRequestLogging(t *testing.T) {
	var buf syncBuffer
	logger, err := obs.NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		CacheSize:   -1,
		Logger:      logger,
		SlowRequest: time.Nanosecond, // everything is slow
	})
	alignOnce(t, ts, 95)

	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "slow request" || rec["path"] != "/align" {
			continue
		}
		found = true
		if id, _ := rec["trace_id"].(string); len(id) != 16 {
			t.Errorf("slow-request line trace_id %q", id)
		}
		if _, ok := rec["spans"]; !ok {
			t.Errorf("slow-request line lacks the span tree: %s", line)
		}
	}
	if !found {
		t.Fatalf("no slow-request warning in logs:\n%s", buf.String())
	}
}

// TestIntrospectionQuiet: scrapes of /metrics and /healthz stay out of
// the request-latency histogram and the trace ring, so monitoring does
// not pollute workload telemetry.
func TestIntrospectionQuiet(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 3; i++ {
		for _, path := range []string{"/metrics", "/healthz", "/debug/traces"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	if n := srv.metrics.e2e.Count(); n != 0 {
		t.Fatalf("introspection requests entered the e2e histogram: count=%d", n)
	}
	if n := srv.traces.Total(); n != 0 {
		t.Fatalf("introspection requests entered the trace ring: total=%d", n)
	}
	if got := srv.metrics.requests.Load(); got == 0 {
		t.Fatal("introspection requests should still count toward requests_total")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the server logs from
// request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSnapshotScrapeRoundTrip pins the Snapshot↔Scrape schema
// agreement: every typed Scrape field unmarshals from the /metrics JSON
// snapshot under its tag and carries the same value Metrics.Scrape()
// reports, so the wire schema and its typed consumers (internal/loadgen,
// cmd/genasm-loadgen) cannot drift apart unnoticed.
func TestSnapshotScrapeRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: -1})
	alignOnce(t, ts, 95)

	snap := srv.Metrics().Snapshot()
	rt := reflect.TypeOf(Scrape{})
	for i := 0; i < rt.NumField(); i++ {
		tag := strings.Split(rt.Field(i).Tag.Get("json"), ",")[0]
		if _, ok := snap[tag]; !ok {
			t.Errorf("Scrape field %s has no %q key in Snapshot()", rt.Field(i).Name, tag)
		}
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Scrape
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := srv.Metrics().Scrape()
	if got != want {
		t.Fatalf("snapshot round-trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.RequestsTotal == 0 || got.PairsDoneTotal == 0 {
		t.Fatalf("counters did not move: %+v", got)
	}
}

// TestScrapeSub: counters subtract, point-in-time fields keep the newer
// value.
func TestScrapeSub(t *testing.T) {
	prev := Scrape{RequestsTotal: 10, PairsDoneTotal: 5, CacheHitsTotal: 2, QueueDepth: 7, LatencyMSP50: 3, BatchSizeMean: 4}
	next := Scrape{RequestsTotal: 25, PairsDoneTotal: 11, CacheHitsTotal: 2, QueueDepth: 1, LatencyMSP50: 9, BatchSizeMean: 6}
	d := next.Sub(prev)
	if d.RequestsTotal != 15 || d.PairsDoneTotal != 6 || d.CacheHitsTotal != 0 {
		t.Fatalf("counter deltas wrong: %+v", d)
	}
	if d.QueueDepth != 1 || d.LatencyMSP50 != 9 || d.BatchSizeMean != 6 {
		t.Fatalf("point-in-time fields must keep the newer value: %+v", d)
	}
}
