package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"genasm"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestAlignCoalescing64Requests is the acceptance proof end to end: 64
// concurrent single-pair POST /align requests are served in at most 8
// backend batches, bit-identical to a direct Engine.AlignBatch, and
// /metrics reports the batch-size histogram.
func TestAlignCoalescing64Requests(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxBatch: 16, MaxDelay: 100 * time.Millisecond},
		CacheSize: -1, // force every pair through the scheduler
	})
	pairs := testPairs(t, 64, 20)
	want, err := srv.Engine().AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]AlignResult, len(pairs))
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, len(pairs))
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{
				Pairs: []AlignPair{{Query: string(pairs[i].Query), Ref: string(pairs[i].Ref)}},
			})
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", status, body)
				return
			}
			var resp AlignResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				errs[i] = err
				return
			}
			if len(resp.Results) != 1 {
				errs[i] = fmt.Errorf("%d results", len(resp.Results))
				return
			}
			got[i] = resp.Results[0]
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := range pairs {
		if toAlignResult(want[i], false) != got[i] {
			t.Fatalf("pair %d: served %+v != direct %+v", i, got[i], want[i])
		}
	}

	batches := srv.Metrics().batches.Load()
	if batches > 8 {
		t.Fatalf("64 concurrent /align requests ran as %d batches, want <= 8", batches)
	}
	t.Logf("64 /align requests coalesced into %d batches", batches)

	// The histogram must be present in /metrics and account for every batch.
	status, body := doJSON(t, ts.Client(), "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var snap struct {
		Batches   int64            `json:"batches_total"`
		PairsDone int64            `json:"pairs_done_total"`
		Hist      map[string]int64 `json:"batch_size_hist"`
		Backend   string           `json:"backend"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Batches != batches || snap.PairsDone != 64 {
		t.Fatalf("metrics batches=%d pairs_done=%d", snap.Batches, snap.PairsDone)
	}
	if snap.Hist["+Inf"] != batches {
		t.Fatalf("histogram +Inf bucket %d, want %d batches", snap.Hist["+Inf"], batches)
	}
	if snap.Backend != "cpu" {
		t.Fatalf("backend %q", snap.Backend)
	}
}

// TestHandlers is the table-driven sweep over every endpoint's
// validation and status codes.
func TestHandlers(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		EngineOptions:      []genasm.Option{genasm.WithMaxQueryLen(5000)},
		Scheduler:          SchedulerConfig{MaxDelay: time.Millisecond},
		MaxPairsPerRequest: 4,
		MaxReadsPerRequest: 4,
	})
	seq := genasm.GenerateGenome(60_000, 30)
	if _, err := srv.Registry().Add("chr1", seq); err != nil {
		t.Fatal(err)
	}
	pair := AlignPair{Query: string(seq[100:300]), Ref: string(seq[100:340])}
	longQuery := strings.Repeat("A", 6000)

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		raw        string // non-JSON body when set
		wantStatus int
		wantIn     string // substring of the response body
	}{
		{"align ok", "POST", "/align", AlignRequest{Pairs: []AlignPair{pair}}, "", 200, `"cigar"`},
		{"align bad json", "POST", "/align", nil, "{not json", 400, "invalid JSON"},
		{"align no pairs", "POST", "/align", AlignRequest{}, "", 400, "no pairs"},
		{"align empty query", "POST", "/align", AlignRequest{Pairs: []AlignPair{{Ref: "ACGT"}}}, "", 400, "empty query"},
		{"align too many pairs", "POST", "/align", AlignRequest{Pairs: []AlignPair{pair, pair, pair, pair, pair}}, "", 400, "exceeds per-request limit"},
		{"align over-long query", "POST", "/align", AlignRequest{Pairs: []AlignPair{{Query: longQuery, Ref: longQuery}}}, "", 400, "exceeds limit"},
		{"align wrong method", "GET", "/align", nil, "", 405, ""},
		{"map-align unknown ref", "POST", "/map-align", MapAlignRequest{Ref: "nope", Reads: []ReadIn{{Name: "r", Seq: "ACGT"}}}, "", 404, "not registered"},
		{"map-align no reads", "POST", "/map-align", MapAlignRequest{Ref: "chr1"}, "", 400, "no reads"},
		{"map-align too many reads", "POST", "/map-align", MapAlignRequest{Ref: "chr1", Reads: make([]ReadIn, 5)}, "", 400, "exceeds per-request limit"},
		{"refs add bad name", "POST", "/refs", RefAddRequest{Name: "a/b", Sequence: "ACGT"}, "", 400, "slash"},
		{"refs add empty seq", "POST", "/refs", RefAddRequest{Name: "x"}, "", 400, "empty sequence"},
		{"refs add dup", "POST", "/refs", RefAddRequest{Name: "chr1", Sequence: string(seq[:1000])}, "", 409, "already registered"},
		{"refs list", "GET", "/refs", nil, "", 200, `"chr1"`},
		{"refs get", "GET", "/refs/chr1", nil, "", 200, `"sha256"`},
		{"refs get missing", "GET", "/refs/ghost", nil, "", 404, "not registered"},
		{"refs delete missing", "DELETE", "/refs/ghost", nil, "", 404, "not registered"},
		{"healthz", "GET", "/healthz", nil, "", 200, `"ok"`},
		{"metrics", "GET", "/metrics", nil, "", 200, `"batch_size_hist"`},
		{"unknown path", "GET", "/nope", nil, "", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body []byte
			if tc.raw != "" {
				req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.raw))
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				status = resp.StatusCode
				body, _ = io.ReadAll(resp.Body)
			} else {
				status, body = doJSON(t, ts.Client(), tc.method, ts.URL+tc.path, tc.body)
			}
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			if tc.wantIn != "" && !strings.Contains(string(body), tc.wantIn) {
				t.Fatalf("body %s does not contain %q", body, tc.wantIn)
			}
		})
	}

	// Upload + delete round trip (stateful, so outside the table).
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "tmp", Sequence: string(genasm.GenerateGenome(40_000, 31))})
	if status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	if status, _ = doJSON(t, ts.Client(), "DELETE", ts.URL+"/refs/tmp", nil); status != http.StatusNoContent {
		t.Fatalf("delete status %d", status)
	}
}

// TestBodyTooLarge: a request body over MaxBodyBytes is answered 413,
// not 400, so clients can tell a size limit from malformed JSON.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "big", Sequence: strings.Repeat("A", 4096)})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", status, body)
	}
	if !strings.Contains(string(body), "exceeds 1024 bytes") {
		t.Fatalf("body %s", body)
	}
}

// TestAlignCacheHits: an identical pair served twice hits the cache the
// second time, with identical results and hit accounting.
func TestAlignCacheHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
		CacheSize: 128,
	})
	pairs := testPairs(t, 1, 40)
	req := AlignRequest{Pairs: []AlignPair{{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}}}

	var first, second AlignResponse
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/align", req)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	status, body = doJSON(t, ts.Client(), "POST", ts.URL+"/align", req)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if first.Results[0].Cached || !second.Results[0].Cached {
		t.Fatalf("cached flags: first=%v second=%v", first.Results[0].Cached, second.Results[0].Cached)
	}
	a, b := first.Results[0], second.Results[0]
	a.Cached, b.Cached = false, false
	if a != b {
		t.Fatalf("cache returned a different result: %+v != %+v", b, a)
	}
	if hits := srv.Metrics().cacheHits.Load(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if srv.Metrics().cacheMisses.Load() != 1 {
		t.Fatalf("cache misses = %d, want 1", srv.Metrics().cacheMisses.Load())
	}
}

// TestMapAlignEndToEnd: upload a reference, map-align simulated reads,
// and check the best-candidate alignments are bit-identical to the
// library's own MapAlign pipeline.
func TestMapAlignEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
	})
	ref := genasm.GenerateGenome(150_000, 50)
	reads, err := genasm.SimulateLongReads(ref, 8, 1500, 0.1, 51)
	if err != nil {
		t.Fatal(err)
	}
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "genome", Sequence: string(ref)})
	if status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}

	maReq := MapAlignRequest{Ref: "genome"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq)})
	}
	maReq.Reads = append(maReq.Reads,
		ReadIn{Name: "junk", Seq: strings.Repeat("ACGTGTCA", 40)}, // likely unmapped
		ReadIn{Name: "empty", Seq: ""},                            // per-read error
	)
	status, body = doJSON(t, ts.Client(), "POST", ts.URL+"/map-align", maReq)
	if status != http.StatusOK {
		t.Fatalf("map-align status %d: %s", status, body)
	}
	var resp MapAlignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(maReq.Reads) {
		t.Fatalf("%d results for %d reads", len(resp.Results), len(maReq.Reads))
	}

	// Reference pipeline: the library's own MapAlign on an identical
	// engine configuration over the same mapper.
	reg, _ := srv.Registry().Get("genome")
	eng, err := genasm.NewEngine(genasm.WithMapper(reg.Mapper()))
	if err != nil {
		t.Fatal(err)
	}
	var in []genasm.Read
	for _, rd := range reads {
		in = append(in, genasm.Read{Name: rd.Name, Seq: rd.Seq})
	}
	out, err := eng.MapAlign(context.Background(), genasm.StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]genasm.MappedAlignment{}
	for m := range out {
		if m.Err == nil && !m.Unmapped {
			want[m.Read.Name] = m
		}
	}

	for i, got := range resp.Results[:len(reads)] {
		w, mapped := want[got.Read]
		if !mapped {
			if !got.Unmapped {
				t.Fatalf("read %d: server mapped what the library did not", i)
			}
			continue
		}
		if got.Unmapped || len(got.Alignments) != 1 {
			t.Fatalf("read %s: %+v", got.Read, got)
		}
		a := got.Alignments[0]
		if a.Distance != w.Result.Distance || a.Cigar != w.Result.Cigar ||
			a.Score != w.Result.Score || a.RefConsumed != w.Result.RefConsumed {
			t.Fatalf("read %s: served %+v != library %+v", got.Read, a, w.Result)
		}
		if a.RefStart != w.Candidate.Start || a.RevComp != w.Candidate.RevComp {
			t.Fatalf("read %s: candidate mismatch %+v vs %+v", got.Read, a, w.Candidate)
		}
	}
	if errRead := resp.Results[len(maReq.Reads)-1]; errRead.Error == "" {
		t.Fatal("empty-sequence read reported no per-read error")
	}

	// all_candidates must emit at least as many alignments.
	maReq.AllCandidates = true
	maReq.Reads = maReq.Reads[:len(reads)]
	status, body = doJSON(t, ts.Client(), "POST", ts.URL+"/map-align", maReq)
	if status != http.StatusOK {
		t.Fatalf("all-candidates status %d", status)
	}
	var all MapAlignResponse
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	nBest, nAll := 0, 0
	for i := range reads {
		nBest += len(resp.Results[i].Alignments)
		nAll += len(all.Results[i].Alignments)
	}
	if nAll < nBest {
		t.Fatalf("all-candidates alignments %d < best-only %d", nAll, nBest)
	}
}

// TestAlignBackpressure429: once the bounded queue is full, extra /align
// requests are shed with 429 + Retry-After rather than queued without
// limit.
func TestAlignBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 300 * time.Millisecond, MaxQueue: 2},
		CacheSize: -1,
	})
	pairs := testPairs(t, 8, 60)
	statuses := make([]int, len(pairs))
	retryAfter := make([]string, len(pairs))
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(AlignRequest{Pairs: []AlignPair{
				{Query: string(pairs[i].Query), Ref: string(pairs[i].Ref)}}})
			resp, err := ts.Client().Post(ts.URL+"/align", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d: want both admission and shedding", ok, shed)
	}
}

// TestServerClose: after Close the scheduler refuses work with 503.
func TestServerClose(t *testing.T) {
	srv, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	pairs := testPairs(t, 1, 70)
	srv.Close()
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{
		Pairs: []AlignPair{{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}},
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
}

// streamMapAlignBody POSTs a /map-align request and returns status, the
// raw streamed body, and the response trailers (valid only after the
// body has been fully read).
func streamMapAlignBody(t *testing.T, ts *httptest.Server, url string, req MapAlignRequest) (int, string, http.Header, string) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Trailer, resp.Header.Get("Content-Type")
}

// TestMapAlignStreamSAM: /map-align?format=sam streams spec-shaped SAM
// whose records agree with the library's own MapAlign pipeline, reports
// unmapped reads as FLAG 4 records, and signals completion (plus skipped
// unalignable reads) through the X-Genasm-Status trailer.
func TestMapAlignStreamSAM(t *testing.T) {
	srv, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	ref := genasm.GenerateGenome(150_000, 50)
	reads, err := genasm.SimulateLongReads(ref, 8, 1500, 0.1, 51)
	if err != nil {
		t.Fatal(err)
	}
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "genome", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}

	maReq := MapAlignRequest{Ref: "genome"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq), Qual: string(rd.Qual)})
	}
	maReq.Reads = append(maReq.Reads,
		ReadIn{Name: "junk", Seq: strings.Repeat("ACGTGTCA", 40)}, // likely unmapped
		ReadIn{Name: "empty", Seq: ""},                            // skipped: SAM has no error record
	)
	status, body, trailer, ctype := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", maReq)
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %s", status, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	if got := trailer.Get(TrailerStatus); got != "ok; skipped_reads=1" {
		t.Fatalf("trailer %q", got)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if !strings.HasPrefix(lines[0], "@HD\tVN:1.6") {
		t.Fatalf("first line %q", lines[0])
	}
	wantSQ := fmt.Sprintf("@SQ\tSN:genome\tLN:%d", len(ref))
	if !strings.Contains(body, wantSQ) {
		t.Fatalf("missing %q", wantSQ)
	}

	// Reference pipeline for record-level agreement.
	reg, _ := srv.Registry().Get("genome")
	eng, err := genasm.NewEngine(genasm.WithMapper(reg.Mapper()))
	if err != nil {
		t.Fatal(err)
	}
	var in []genasm.Read
	for _, rd := range reads {
		in = append(in, genasm.Read{Name: rd.Name, Seq: rd.Seq})
	}
	out, err := eng.MapAlign(context.Background(), genasm.StreamReads(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]genasm.MappedAlignment{}
	for m := range out {
		if m.Err == nil && !m.Unmapped {
			want[m.Read.Name] = m
		}
	}
	records := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "@") {
			continue
		}
		records++
		f := strings.Split(line, "\t")
		if len(f) < 11 {
			t.Fatalf("short record %q", line)
		}
		if f[0] == "junk" {
			if f[1] != "4" {
				t.Fatalf("junk read not FLAG 4: %q", line)
			}
			continue
		}
		w, ok := want[f[0]]
		if !ok {
			if f[1] == "4" {
				continue
			}
			t.Fatalf("server mapped %q, library did not", f[0])
		}
		if f[5] != w.Result.Cigar {
			t.Fatalf("read %s: CIGAR %q != library %q", f[0], f[5], w.Result.Cigar)
		}
		if wantNM := fmt.Sprintf("NM:i:%d", w.Result.Distance); !strings.Contains(line, wantNM) {
			t.Fatalf("read %s: missing %s", f[0], wantNM)
		}
		if len(f[9]) != len(f[10]) {
			t.Fatalf("read %s: SEQ/QUAL length mismatch", f[0])
		}
	}
	// Every read except the skipped empty one yields exactly one record.
	if records != len(maReq.Reads)-1 {
		t.Fatalf("%d records for %d reads", records, len(maReq.Reads)-1)
	}
}

// TestMapAlignStreamPAF: format negotiation through the JSON body, PAF
// record shape, and chunked streaming across a >streamChunk read count.
func TestMapAlignStreamPAF(t *testing.T) {
	_, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	ref := genasm.GenerateGenome(60_000, 30)
	reads, err := genasm.SimulateLongReads(ref, streamChunk+8, 400, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	maReq := MapAlignRequest{Ref: "g", Format: "paf"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq)})
	}
	status, body, trailer, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align", maReq)
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %s", status, body)
	}
	if got := trailer.Get(TrailerStatus); got != "ok" {
		t.Fatalf("trailer %q", got)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < len(reads)*8/10 {
		t.Fatalf("only %d PAF lines for %d reads", len(lines), len(reads))
	}
	for _, line := range lines {
		f := strings.Split(line, "\t")
		if len(f) < 12 {
			t.Fatalf("short PAF line %q", line)
		}
		if f[4] != "+" && f[4] != "-" {
			t.Fatalf("bad strand in %q", line)
		}
		if f[5] != "g" {
			t.Fatalf("bad target name in %q", line)
		}
		if !strings.Contains(line, "cg:Z:") {
			t.Fatalf("missing cg tag in %q", line)
		}
	}
}

// TestMapAlignStreamErrors: unknown formats 400 up front; the query
// parameter wins over the body field.
func TestMapAlignStreamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	ref := genasm.GenerateGenome(40_000, 3)
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	req := MapAlignRequest{Ref: "g", Reads: []ReadIn{{Name: "r", Seq: string(ref[100:400])}}}
	if status, _ := doJSON(t, ts.Client(), "POST", ts.URL+"/map-align?format=bam", req); status != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", status)
	}
	// Body says paf, query says sam: SAM header must appear.
	req.Format = "paf"
	status, body, _, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", req)
	if status != http.StatusOK || !strings.HasPrefix(body, "@HD") {
		t.Fatalf("query-param precedence: status %d body %q", status, body)
	}
}

// TestMapAlignStreamFirstChunkError: a scheduler failure before any
// record has been flushed must surface as a real HTTP error status, not
// a 200 with a trailer nobody reads.
func TestMapAlignStreamFirstChunkError(t *testing.T) {
	srv, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}, CacheSize: -1})
	ref := genasm.GenerateGenome(40_000, 3)
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	srv.Close() // scheduler now refuses work
	req := MapAlignRequest{Ref: "g", Reads: []ReadIn{{Name: "r", Seq: string(ref[100:400])}}}
	status, body, _, ctype := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("error content type %q", ctype)
	}
}

// TestHandlerForwardsFlush: the metrics wrapper must not swallow
// http.Flusher, or streamed records sit in net/http's buffer until the
// handler returns.
func TestHandlerForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	var w http.ResponseWriter = &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

// TestMapAlignStreamErrorAfterEmptyChunks: a PAF stream whose early
// chunks write no records (all unmapped) has committed no bytes, so a
// later scheduler failure must still surface as a real HTTP status.
func TestMapAlignStreamErrorAfterEmptyChunks(t *testing.T) {
	srv, ts := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}, CacheSize: -1})
	ref := genasm.GenerateGenome(40_000, 3)
	foreign := genasm.GenerateGenome(80_000, 99) // unrelated: its reads map nowhere
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	// First chunk: streamChunk unmapped reads (no scheduler submission,
	// no PAF records). Second chunk: a mappable read that needs the
	// (closed) scheduler.
	req := MapAlignRequest{Ref: "g", Format: "paf"}
	for i := 0; i < streamChunk; i++ {
		seq := foreign[i*500 : i*500+300]
		req.Reads = append(req.Reads, ReadIn{Name: fmt.Sprintf("alien%d", i), Seq: string(seq)})
	}
	req.Reads = append(req.Reads, ReadIn{Name: "real", Seq: string(ref[1000:1500])})
	srv.Close()
	status, body, _, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align", req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
}

// TestBackendsEndpoint: GET /backends lists every registered backend
// name and the active backend's capabilities and cumulative stats.
func TestBackendsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: -1})
	pairs := testPairs(t, 4, 77)
	if _, err := srv.Engine().AlignBatch(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	status, body := doJSON(t, ts.Client(), "GET", ts.URL+"/backends", nil)
	if status != http.StatusOK {
		t.Fatalf("/backends status %d: %s", status, body)
	}
	var resp struct {
		Registered []string `json:"registered"`
		Active     struct {
			Name         string              `json:"name"`
			Capabilities genasm.Capabilities `json:"capabilities"`
			Stats        genasm.BackendStats `json:"stats"`
		} `json:"active"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cpu", "gpu", "multi"} {
		found := false
		for _, n := range resp.Registered {
			found = found || n == want
		}
		if !found {
			t.Fatalf("registered %v missing %q", resp.Registered, want)
		}
	}
	if resp.Active.Name != "cpu" {
		t.Fatalf("active backend %q", resp.Active.Name)
	}
	if resp.Active.Capabilities.Parallelism <= 0 || resp.Active.Capabilities.PreferredBatch <= 0 {
		t.Fatalf("capabilities %+v", resp.Active.Capabilities)
	}
	if resp.Active.Stats.Pairs < uint64(len(pairs)) {
		t.Fatalf("stats %+v saw fewer than %d pairs", resp.Active.Stats, len(pairs))
	}
}

// TestServerOnMultiBackend serves requests on the sharding composite:
// results must match a CPU engine bit-for-bit, /metrics must carry the
// per-child backend breakdown, and /backends must show the active
// composite.
func TestServerOnMultiBackend(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		EngineOptions: []genasm.Option{genasm.WithBackendName("multi(cpu,gpu)")},
		Scheduler:     SchedulerConfig{MaxDelay: time.Millisecond},
		CacheSize:     -1,
	})
	if got := srv.Engine().BackendName(); got != "multi(cpu,gpu)" {
		t.Fatalf("engine backend %q", got)
	}
	pairs := testPairs(t, 16, 78)
	cpuEng, err := genasm.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpuEng.AlignBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	req := AlignRequest{}
	for _, p := range pairs {
		req.Pairs = append(req.Pairs, AlignPair{Query: string(p.Query), Ref: string(p.Ref)})
	}
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/align", req)
	if status != http.StatusOK {
		t.Fatalf("/align status %d: %s", status, body)
	}
	var resp AlignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if toAlignResult(want[i], false) != resp.Results[i] {
			t.Fatalf("pair %d: multi-served %+v != cpu %+v", i, resp.Results[i], want[i])
		}
	}

	status, body = doJSON(t, ts.Client(), "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var snap struct {
		Backend  string                `json:"backend"`
		Batches  uint64                `json:"backend_batches_total"`
		Children []genasm.BackendStats `json:"backend_children"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Backend != "multi(cpu,gpu)" {
		t.Fatalf("metrics backend %q", snap.Backend)
	}
	if snap.Batches == 0 || len(snap.Children) != 2 {
		t.Fatalf("backend metrics batches=%d children=%+v", snap.Batches, snap.Children)
	}
}

// TestSchedulerSizedFromCapabilities: with no explicit MaxBatch the
// scheduler flushes at the backend's PreferredBatch, not a hardcoded 64.
func TestSchedulerSizedFromCapabilities(t *testing.T) {
	eng, err := genasm.NewEngine(genasm.WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(eng, SchedulerConfig{MaxDelay: time.Minute, MaxQueue: 1 << 20}, nil)
	defer s.Close()
	want := eng.Capabilities().PreferredBatch // 4 pairs per worker
	if want != 12 {
		t.Fatalf("unexpected preferred batch %d for 3 threads", want)
	}
	// Submit exactly PreferredBatch pairs from separate goroutines; the
	// size trigger must flush them as one batch long before the
	// minute-long deadline.
	pairs := testPairs(t, want, 79)
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), pairs[i:i+1]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Metrics().batches.Load(); got != 1 {
		t.Fatalf("%d pairs ran as %d batches, want 1 size-triggered flush", want, got)
	}
}

// TestQueryTooLongMapsToBadRequest: the typed genasm.ErrQueryTooLong
// sentinel surviving the scheduler's wrapping must map to 400, not 500.
func TestQueryTooLongMapsToBadRequest(t *testing.T) {
	err := fmt.Errorf("server: batch of 3 pairs: %w",
		fmt.Errorf("pair 1: query length 9000 exceeds limit 100: %w", genasm.ErrQueryTooLong))
	rec := httptest.NewRecorder()
	writeSchedError(rec, err)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "9000") {
		t.Fatalf("body %q lost the detail", rec.Body.String())
	}
}

// TestAdmissionEdgeCases pins the scheduler's admission-control corners
// the load harness leans on: bounded-queue shedding answers 429 with
// Retry-After while queued work is untouched, a graceful drain finishes
// admitted work before new submissions see 503, and a single submission
// larger than the whole queue is refused outright.
func TestAdmissionEdgeCases(t *testing.T) {
	t.Run("queue full sheds 429 with Retry-After", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{
			Scheduler: SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 250 * time.Millisecond, MaxQueue: 2},
			CacheSize: -1,
		})
		pairs := testPairs(t, 3, 81)
		// Fill the queue: a 2-pair request sits pending for MaxDelay.
		bgStatus := make(chan int, 1)
		go func() {
			status, _ := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{Pairs: []AlignPair{
				{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)},
				{Query: string(pairs[1].Query), Ref: string(pairs[1].Ref)},
			}})
			bgStatus <- status
		}()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Metrics().queueDepth.Load() < 2 {
			if time.Now().After(deadline) {
				t.Fatal("queue never filled")
			}
			time.Sleep(time.Millisecond)
		}
		// 2 pending + 1 new > MaxQueue: must shed, and must say when to
		// come back.
		b, _ := json.Marshal(AlignRequest{Pairs: []AlignPair{
			{Query: string(pairs[2].Query), Ref: string(pairs[2].Ref)}}})
		resp, err := ts.Client().Post(ts.URL+"/align", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if got := <-bgStatus; got != http.StatusOK {
			t.Fatalf("queued request finished %d, want 200 (shedding must not evict admitted work)", got)
		}
	})

	t.Run("graceful drain finishes admitted work then 503s", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{
			Scheduler: SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 250 * time.Millisecond},
			CacheSize: -1,
		})
		pairs := testPairs(t, 2, 82)
		bgStatus := make(chan int, 1)
		go func() {
			status, _ := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{Pairs: []AlignPair{
				{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}}})
			bgStatus <- status
		}()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Metrics().queueDepth.Load() < 1 {
			if time.Now().After(deadline) {
				t.Fatal("queue never filled")
			}
			time.Sleep(time.Millisecond)
		}
		// Close drains: the pending pair must complete with 200, well
		// before its 250ms flush deadline would have fired.
		srv.sched.Close()
		if got := <-bgStatus; got != http.StatusOK {
			t.Fatalf("drained request finished %d, want 200", got)
		}
		status, _ := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{Pairs: []AlignPair{
			{Query: string(pairs[1].Query), Ref: string(pairs[1].Ref)}}})
		if status != http.StatusServiceUnavailable {
			t.Fatalf("post-drain status %d, want 503", status)
		}
	})

	t.Run("submission larger than the queue splits and completes", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{
			Scheduler: SchedulerConfig{MaxQueue: 4, MaxDelay: time.Millisecond},
			CacheSize: -1,
		})
		pairs := testPairs(t, 8, 83)
		req := AlignRequest{}
		for _, p := range pairs {
			req.Pairs = append(req.Pairs, AlignPair{Query: string(p.Query), Ref: string(p.Ref)})
		}
		// 8 pairs can never be admitted whole into a 4-slot queue: the
		// scheduler must split them into sub-queue chunks, not reject.
		status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/align", req)
		if status != http.StatusOK {
			t.Fatalf("status %d (%s), want 200 via split submission", status, body)
		}
		var resp AlignResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(pairs) {
			t.Fatalf("%d results, want %d", len(resp.Results), len(pairs))
		}
		if batches := srv.Metrics().batches.Load(); batches < 2 {
			t.Fatalf("oversized submission ran as %d batches, want >= 2 (split)", batches)
		}
	})
}

// TestStreamTrailerEdgeCases pins the two halves of the streaming error
// contract deterministically: before the first body byte a failure is a
// real HTTP status and no trailer is announced; after bytes have flowed
// the response is a committed 200 and the error travels only in the
// X-Genasm-Status trailer.
func TestStreamTrailerEdgeCases(t *testing.T) {
	// mappable yields n reads the mapper will find.
	mappable := func(ref []byte, n int) []ReadIn {
		reads := make([]ReadIn, n)
		for i := range reads {
			off := 1000 + i*400
			reads[i] = ReadIn{Name: fmt.Sprintf("m%d", i), Seq: string(ref[off : off+300])}
		}
		return reads
	}

	t.Run("error before first byte: real status, no trailer", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{
			Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
			CacheSize: -1,
		})
		ref := genasm.GenerateGenome(40_000, 3)
		if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
			RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
			t.Fatalf("upload status %d: %s", status, body)
		}
		srv.sched.Close() // first chunk's submission now fails up front
		req := MapAlignRequest{Ref: "g", Reads: mappable(ref, 8)}
		status, body, trailer, ctype := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", req)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("status %d (%s), want 503", status, body)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("error content type %q, want JSON error body", ctype)
		}
		if got := trailer.Get(TrailerStatus); got != "" {
			t.Fatalf("early error still set trailer %q", got)
		}
	})

	t.Run("error mid-stream: committed 200, error trailer", func(t *testing.T) {
		// MaxDelay is generous so chunk one's single mappable pair sits
		// pending until the test drains the scheduler — a deterministic
		// window, no sleep-based racing: the test observes the pair in
		// the queue (depth > 0), closes the scheduler, chunk one then
		// completes via the drain and flushes its records (committing the
		// 200), and chunk two's submission fails against the now-closed
		// scheduler with the error in the trailer.
		srv, ts := newTestServer(t, Config{
			Scheduler: SchedulerConfig{MaxBatch: 1 << 20, MaxDelay: 30 * time.Second},
			CacheSize: -1,
		})
		ref := genasm.GenerateGenome(40_000, 3)
		foreign := genasm.GenerateGenome(80_000, 99) // its reads map nowhere
		if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
			RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
			t.Fatalf("upload status %d: %s", status, body)
		}
		req := MapAlignRequest{Ref: "g"}
		// Chunk one: 31 unmapped reads plus one mappable — the unmapped
		// FLAG-4 records guarantee body bytes, the mappable pair parks
		// the chunk in the scheduler.
		for i := 0; i < streamChunk-1; i++ {
			seq := foreign[i*500 : i*500+300]
			req.Reads = append(req.Reads, ReadIn{Name: fmt.Sprintf("alien%d", i), Seq: string(seq)})
		}
		req.Reads = append(req.Reads, mappable(ref, 1)...)
		// Chunk two: mappable reads that will meet a closed scheduler.
		req.Reads = append(req.Reads, mappable(ref, 4)...)

		type streamOut struct {
			status  int
			body    string
			trailer http.Header
		}
		outc := make(chan streamOut, 1)
		go func() {
			status, body, trailer, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", req)
			outc <- streamOut{status, body, trailer}
		}()
		deadline := time.Now().Add(10 * time.Second)
		for srv.Metrics().queueDepth.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("chunk one never reached the scheduler")
			}
			time.Sleep(time.Millisecond)
		}
		srv.sched.Close()
		out := <-outc
		if out.status != http.StatusOK {
			t.Fatalf("status %d, want committed 200", out.status)
		}
		if !strings.HasPrefix(out.body, "@HD") || !strings.Contains(out.body, "alien0") {
			t.Fatalf("first chunk's records missing from body:\n%.300s", out.body)
		}
		got := out.trailer.Get(TrailerStatus)
		if !strings.HasPrefix(got, "error:") {
			t.Fatalf("trailer %q, want error", got)
		}
	})
}

// TestStreamClientDisconnectMidStream: a client that walks away in the
// middle of a SAM stream must not wedge or poison the server — the
// handler notices the dead connection and later requests are served
// normally.
func TestStreamClientDisconnectMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
		CacheSize: -1,
	})
	ref := genasm.GenerateGenome(80_000, 3)
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "g", Sequence: string(ref)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	req := MapAlignRequest{Ref: "g"}
	for i := 0; i < 160; i++ {
		off := (i * 450) % 70_000
		req.Reads = append(req.Reads, ReadIn{Name: fmt.Sprintf("r%d", i), Seq: string(ref[off : off+300])})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/map-align?format=sam", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk's worth of records, then vanish mid-body.
	if _, err := io.ReadAtLeast(resp.Body, make([]byte, 512), 512); err != nil {
		t.Fatalf("first chunk never arrived: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The server must still answer: the full stream and a plain align.
	status, body, trailer, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", req)
	if status != http.StatusOK {
		t.Fatalf("post-disconnect stream status %d (%s)", status, body)
	}
	if got := trailer.Get(TrailerStatus); !strings.HasPrefix(got, "ok") {
		t.Fatalf("post-disconnect trailer %q, want ok", got)
	}
	pairs := testPairs(t, 1, 84)
	if status, _ := doJSON(t, ts.Client(), "POST", ts.URL+"/align", AlignRequest{Pairs: []AlignPair{
		{Query: string(pairs[0].Query), Ref: string(pairs[0].Ref)}}}); status != http.StatusOK {
		t.Fatalf("post-disconnect align status %d", status)
	}
}

// TestRefChurnUnderMapAlign hammers the registry lifecycle the churn
// scenario models: one goroutine uploads and deletes a reference in a
// loop while others run /map-align against it and against a stable
// reference. A churned lookup may race to 200 or 404, but it must never
// 500 and every 200 must carry the same (complete, untorn) body.
func TestRefChurnUnderMapAlign(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
		CacheSize: -1, // identical 200s must be bit-identical bodies
	})
	stable := genasm.GenerateGenome(40_000, 3)
	churn := genasm.GenerateGenome(12_000, 5)
	if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs",
		RefAddRequest{Name: "stable", Sequence: string(stable)}); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	churnAdd := RefAddRequest{Name: "churn", Sequence: string(churn)}
	churnReq := MapAlignRequest{Ref: "churn", Reads: []ReadIn{
		{Name: "c0", Seq: string(churn[500:800])},
		{Name: "c1", Seq: string(churn[4_000:4_300])},
	}}
	stableReq := MapAlignRequest{Ref: "stable", Reads: []ReadIn{
		{Name: "s0", Seq: string(stable[1_000:1_300])},
	}}

	const cycles = 40
	var wg sync.WaitGroup
	done := make(chan struct{})
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	wg.Add(1)
	go func() { // the churner
		defer wg.Done()
		defer close(done)
		for i := 0; i < cycles; i++ {
			if status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/refs", churnAdd); status != http.StatusCreated && status != http.StatusConflict {
				report(fmt.Errorf("churn add: status %d: %s", status, body))
				return
			}
			if status, body := doJSON(t, ts.Client(), "DELETE", ts.URL+"/refs/churn", nil); status != http.StatusNoContent && status != http.StatusNotFound {
				report(fmt.Errorf("churn delete: status %d: %s", status, body))
				return
			}
		}
	}()

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // map-align against the churning name
			defer wg.Done()
			var want []byte
			for {
				select {
				case <-done:
					return
				default:
				}
				status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/map-align", churnReq)
				switch status {
				case http.StatusOK:
					if want == nil {
						want = body
					} else if !bytes.Equal(want, body) {
						report(fmt.Errorf("churned ref served a diverging body:\n%.200s\nvs\n%.200s", want, body))
						return
					}
				case http.StatusNotFound:
					// deleted out from under us: fine
				default:
					report(fmt.Errorf("churned map-align: status %d: %s", status, body))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // the stable reference must be untouched by churn
		defer wg.Done()
		var want []byte
		for {
			select {
			case <-done:
				return
			default:
			}
			status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/map-align", stableReq)
			if status != http.StatusOK {
				report(fmt.Errorf("stable map-align: status %d: %s", status, body))
				return
			}
			if want == nil {
				want = body
			} else if !bytes.Equal(want, body) {
				report(fmt.Errorf("stable ref body diverged under churn"))
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
