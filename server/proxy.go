package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genasm/internal/obs"
)

// ProxyConfig configures the front-tier proxy mode (Config.Proxy). A
// non-empty Upstreams switches server.New into a stateless routing
// front: no engine, scheduler, cache or jobs lane is built; /align and
// /map-align forward to upstream genasm-serve nodes chosen by
// consistent hashing on the request's reference, /refs broadcasts to
// every upstream, and health probes eject and readmit upstreams from
// the routing ring.
type ProxyConfig struct {
	// Upstreams are the node addresses ("host:port" or full base URLs;
	// http:// is assumed without a scheme). At least one is required.
	Upstreams []string
	// HealthInterval is the /healthz probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default HealthInterval, max 2s).
	HealthTimeout time.Duration
	// FailAfter is how many consecutive probe failures eject an
	// upstream from the ring (default 2). One probe success readmits.
	FailAfter int
	// MaxInFlight bounds concurrently forwarded workload requests;
	// beyond it the front sheds with the same 429 + Retry-After answer
	// as a node's scheduler queue (default 1024).
	MaxInFlight int
	// Replicas is the virtual-node count per upstream on the hash ring
	// (default 128).
	Replicas int
	// Client overrides the forwarding HTTP client (tests). The default
	// client sets no whole-request timeout — streamed SAM/PAF responses
	// are unbounded by design — and bounds connect and response-header
	// latency on its transport instead.
	Client *http.Client
}

func (c *ProxyConfig) fillDefaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = min(c.HealthInterval, 2*time.Second)
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.Replicas <= 0 {
		c.Replicas = ringReplicas
	}
	if c.Client == nil {
		// Streaming responses rule out a whole-request Timeout: a long
		// SAM stream is healthy traffic. Connect and header latency are
		// bounded on the transport; request contexts cancel the rest.
		//lint:allow httpclient streamed upstream responses have no bounded duration; connect and response-header latency are capped on the Transport and every request carries the client's context
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost:   16,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
}

// upstream is one node behind the front: its address, health state and
// forwarding counters. consecFails is touched only by the health loop.
type upstream struct {
	base        string
	healthy     atomic.Bool
	consecFails int
	proxied     atomic.Uint64
	errs        atomic.Uint64
	lastErr     atomic.Value // string
}

// Proxy is the consistent-hash routing front over a set of upstream
// genasm-serve nodes: health-checked membership, per-key failover
// order, bounded in-flight admission, and streaming-safe relay.
type Proxy struct {
	cfg     ProxyConfig
	ups     []*upstream
	client  *http.Client
	log     *slog.Logger
	metrics *Metrics

	inflight chan struct{}

	mu      sync.RWMutex
	ring    *hashRing
	members []int // ring node index -> ups index

	proxied      *obs.Counter
	failovers    *obs.Counter
	upstreamErrs *obs.Counter
	ejections    *obs.Counter
	readmissions *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// newProxyServer assembles the front-tier variant of the Server: full
// endpoint surface, shared Handler/metrics/trace pipeline, proxy
// executor behind the workload handlers, no local execution.
func newProxyServer(cfg Config) (*Server, error) {
	if cfg.Jobs.Dir != "" {
		return nil, errors.New("server: the bulk jobs lane requires local execution; run it on the upstream nodes and submit to them directly")
	}
	m := NewMetrics("front")
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(m),
		cache:    NewCache(-1), // routing fronts hold no results
		metrics:  m,
		mux:      http.NewServeMux(),
		log:      cfg.Logger,
		traces:   obs.NewTraceLog(cfg.TraceBuffer),
		build:    obs.ReadBuildInfo(),
	}
	p, err := newProxy(cfg.Proxy, m, s.log)
	if err != nil {
		return nil, err
	}
	s.proxy = p
	s.exec = proxyExecutor{p: p}
	s.routes()
	s.registerScrapeMetrics()
	return s, nil
}

// newProxy validates the upstream set, registers the cluster metrics,
// builds the initial all-healthy ring and starts the health prober.
func newProxy(cfg ProxyConfig, m *Metrics, log *slog.Logger) (*Proxy, error) {
	cfg.fillDefaults()
	if len(cfg.Upstreams) == 0 {
		return nil, errors.New("server: proxy mode needs at least one upstream")
	}
	seen := make(map[string]bool, len(cfg.Upstreams))
	ups := make([]*upstream, 0, len(cfg.Upstreams))
	for _, raw := range cfg.Upstreams {
		base, err := normalizeUpstream(raw)
		if err != nil {
			return nil, err
		}
		if seen[base] {
			return nil, fmt.Errorf("server: duplicate upstream %s", base)
		}
		seen[base] = true
		up := &upstream{base: base}
		up.healthy.Store(true) // optimistic: first probe round corrects
		ups = append(ups, up)
	}
	reg := m.Registry()
	p := &Proxy{
		cfg:      cfg,
		ups:      ups,
		client:   cfg.Client,
		log:      log,
		metrics:  m,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		proxied: reg.Counter("genasm_cluster_proxied_total",
			"Workload requests forwarded to an upstream by the front tier."),
		failovers: reg.Counter("genasm_cluster_failovers_total",
			"Forwards retried on the next ring node after an upstream failure."),
		upstreamErrs: reg.Counter("genasm_cluster_upstream_errors_total",
			"Upstream attempts that failed (transport error or 502/503/504)."),
		ejections: reg.Counter("genasm_cluster_ejections_total",
			"Upstreams ejected from the routing ring by health probes."),
		readmissions: reg.Counter("genasm_cluster_readmissions_total",
			"Ejected upstreams readmitted to the routing ring."),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	reg.GaugeFunc("genasm_cluster_upstreams", "Upstream nodes configured.",
		func() float64 { return float64(len(p.ups)) })
	reg.GaugeFunc("genasm_cluster_upstreams_healthy", "Upstream nodes currently in the routing ring.",
		func() float64 { return float64(p.healthyCount()) })
	p.rebuildRing()
	go p.healthLoop()
	return p, nil
}

// normalizeUpstream turns "host:port" or a base URL into a canonical
// scheme://host[:port] base.
func normalizeUpstream(raw string) (string, error) {
	addr := strings.TrimSpace(raw)
	if addr == "" {
		return "", errors.New("server: empty upstream address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("server: upstream %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("server: upstream %q: unsupported scheme %q", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("server: upstream %q names no host", raw)
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}

// Close stops the health prober. In-flight forwards finish on their own
// request contexts.
func (p *Proxy) Close() {
	close(p.stop)
	<-p.done
}

// Upstreams returns the configured upstream base URLs, in ring-label
// order.
func (p *Proxy) Upstreams() []string {
	out := make([]string, len(p.ups))
	for i, up := range p.ups {
		out[i] = up.base
	}
	return out
}

// ---- health ----

func (p *Proxy) healthLoop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// probeAll probes every upstream once, flips health state at the
// configured thresholds, and rebuilds the ring when membership changed.
func (p *Proxy) probeAll() {
	changed := false
	for _, up := range p.ups {
		if p.probe(up) {
			up.consecFails = 0
			if !up.healthy.Load() {
				up.healthy.Store(true)
				p.readmissions.Add(1)
				p.log.Info("upstream readmitted", "upstream", up.base)
				changed = true
			}
			continue
		}
		up.consecFails++
		if up.healthy.Load() && up.consecFails >= p.cfg.FailAfter {
			up.healthy.Store(false)
			p.ejections.Add(1)
			p.log.Warn("upstream ejected",
				"upstream", up.base, "consecutive_failures", up.consecFails)
			changed = true
		}
	}
	if changed {
		p.rebuildRing()
	}
}

// probe asks one upstream's /healthz under the probe timeout.
func (p *Proxy) probe(up *upstream) bool {
	//lint:allow ctxflow the health prober is a background loop that outlives any request; Close stops it and each probe bounds itself
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, up.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		up.lastErr.Store(err.Error())
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		up.lastErr.Store(fmt.Sprintf("healthz status %d", resp.StatusCode))
		return false
	}
	return true
}

// rebuildRing recomputes the ring over the currently healthy upstreams.
// Labels are the upstream base URLs, so a node that returns reclaims
// exactly the keyspace arc it owned before ejection.
func (p *Proxy) rebuildRing() {
	var labels []string
	var members []int
	for i, up := range p.ups {
		if up.healthy.Load() {
			labels = append(labels, up.base)
			members = append(members, i)
		}
	}
	ring := buildRing(labels, p.cfg.Replicas)
	p.mu.Lock()
	p.ring, p.members = ring, members
	p.mu.Unlock()
}

func (p *Proxy) healthyCount() int {
	n := 0
	for _, up := range p.ups {
		if up.healthy.Load() {
			n++
		}
	}
	return n
}

// candidates returns the healthy upstreams in the key's failover order:
// the consistent-hash owner first, then the nodes whose ring arcs
// follow it.
func (p *Proxy) candidates(key string) []*upstream {
	p.mu.RLock()
	ring, members := p.ring, p.members
	p.mu.RUnlock()
	if ring == nil {
		return nil
	}
	seq := ring.sequence(key, len(members))
	out := make([]*upstream, len(seq))
	for i, node := range seq {
		out[i] = p.ups[members[node]]
	}
	return out
}

// ---- forwarding ----

// proxyExecutor is the front tier's executor: the shared handlers have
// already decoded and admitted the request; forward it to the ring.
type proxyExecutor struct {
	p *Proxy
}

// maxQueryLen is 0 at the front: each upstream enforces its own
// engine's limit and its 400 relays through unchanged.
func (x proxyExecutor) maxQueryLen() int { return 0 }

func (x proxyExecutor) execAlign(w http.ResponseWriter, r *http.Request, raw []byte, req AlignRequest) {
	// Route by the first pair's reference sequence — the same content a
	// node's result cache keys on — so repeat traffic for a reference
	// region keeps hitting the node whose cache is hot for it.
	x.p.forward(w, r, "align:"+req.Pairs[0].Ref, raw)
}

func (x proxyExecutor) execMapAlign(w http.ResponseWriter, r *http.Request, raw []byte, req MapAlignRequest, format string) {
	// Route by reference name: the registry entry and every cached
	// region result for a reference live hot on its owner node.
	x.p.forward(w, r, "ref:"+req.Ref, raw)
}

// forward routes one workload request: bounded-in-flight admission
// (shed with the same 429 + Retry-After answer as a node's scheduler),
// candidate selection by key, failover across ring order, and relay of
// the first usable response. Failover only ever happens before a
// response is chosen, so a client never sees a half-proxied body.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	select {
	case p.inflight <- struct{}{}:
		defer func() { <-p.inflight }()
	default:
		p.metrics.rejected.Add(1)
		writeSchedError(w, ErrQueueFull)
		return
	}
	cands := p.candidates(key)
	if len(cands) == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy upstreams")
		return
	}
	sp := obs.StartSpan(r.Context(), "proxy", obs.Int("candidates", len(cands)))
	defer sp.End()
	var lastErr error
	for i, up := range cands {
		if r.Context().Err() != nil {
			writeSchedError(w, r.Context().Err())
			return
		}
		if i > 0 {
			p.failovers.Add(1)
		}
		resp, err := p.tryUpstream(r, up, body)
		if err != nil {
			lastErr = p.noteUpstreamError(up, err)
			continue
		}
		// An upstream that answers 502/503/504 is not serving (draining,
		// overloaded past its queue, or itself fronting a dead node);
		// the next ring node can still own this request.
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			drain(resp)
			lastErr = p.noteUpstreamError(up, fmt.Errorf("upstream %s answered %d", up.base, resp.StatusCode))
			continue
		}
		up.proxied.Add(1)
		p.proxied.Add(1)
		obs.FromContext(r.Context()).Record("upstream", time.Now(), 0,
			obs.String("upstream", up.base), obs.Int("attempt", i+1))
		p.relay(w, resp)
		return
	}
	httpError(w, http.StatusBadGateway, "every candidate upstream failed: %v", lastErr)
}

func (p *Proxy) noteUpstreamError(up *upstream, err error) error {
	p.upstreamErrs.Add(1)
	up.errs.Add(1)
	up.lastErr.Store(err.Error())
	return err
}

// tryUpstream rebuilds the client's request against one upstream: same
// method, path and query, the already-read body, content negotiation
// headers, and the trace ID so the hop stitches into one cross-node
// trace.
func (p *Proxy) tryUpstream(r *http.Request, up *upstream, body []byte) (*http.Response, error) {
	u := up.base + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if a := r.Header.Get("Accept"); a != "" {
		req.Header.Set("Accept", a)
	}
	obs.SetRequestID(r.Context(), req.Header)
	return p.client.Do(req)
}

// relay copies the chosen upstream response to the client: status,
// content type, announced trailers, the body flushed incrementally (so
// upstream SAM/PAF streaming survives the hop), and the trailer values
// once the body ends.
func (p *Proxy) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for k := range resp.Trailer {
		w.Header().Add("Trailer", k)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			break
		}
	}
	// The client has populated resp.Trailer now that the body is done.
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			w.Header().Set(k, v)
		}
	}
}

// broadcast sends one mutating /refs request to every configured
// upstream concurrently and answers with the best outcome: the
// preferred success status if any node returned it, else any other
// response, else 502. Refs must exist everywhere for failover to be
// loss-free, so broadcasts include currently-ejected upstreams — a
// briefly unhealthy node may still accept the write.
func (p *Proxy) broadcast(w http.ResponseWriter, r *http.Request, body []byte, wantStatus int) {
	type reply struct {
		resp *http.Response
		err  error
	}
	replies := make([]reply, len(p.ups))
	var wg sync.WaitGroup
	for i, up := range p.ups {
		wg.Add(1)
		go func(i int, up *upstream) {
			defer wg.Done()
			resp, err := p.tryUpstream(r, up, body)
			if err != nil {
				p.noteUpstreamError(up, err)
			}
			replies[i] = reply{resp: resp, err: err}
		}(i, up)
	}
	wg.Wait()
	best, bestRank := -1, 4
	for i, rp := range replies {
		if rp.resp == nil {
			continue
		}
		rank := 2
		switch {
		case rp.resp.StatusCode == wantStatus:
			rank = 0
		case rp.resp.StatusCode < 300:
			rank = 1
		}
		if rank < bestRank || best == -1 {
			best, bestRank = i, rank
		}
	}
	if best == -1 {
		httpError(w, http.StatusBadGateway, "no upstream accepted the request: %v", replies[0].err)
		return
	}
	for i, rp := range replies {
		if rp.resp != nil && i != best {
			drain(rp.resp)
		}
	}
	p.relay(w, replies[best].resp)
}

// forwardAny relays a read-only request to any healthy upstream
// (consistent order by path, with failover). Refs broadcast on write,
// so any node's view answers.
func (p *Proxy) forwardAny(w http.ResponseWriter, r *http.Request, body []byte) {
	p.forward(w, r, "path:"+r.URL.Path, body)
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// ---- surfaces ----

// UpstreamStatus is one upstream's health and accounting in cluster
// snapshots (/healthz and /backends in proxy mode).
type UpstreamStatus struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	ProxiedTotal uint64 `json:"proxied_total"`
	ErrorsTotal  uint64 `json:"errors_total"`
	LastError    string `json:"last_error,omitempty"`
}

// ClusterSnapshot is the front tier's membership view.
type ClusterSnapshot struct {
	Upstreams []UpstreamStatus `json:"upstreams"`
	Healthy   int              `json:"healthy"`
}

// Snapshot reports every upstream's current health and counters.
func (p *Proxy) Snapshot() ClusterSnapshot {
	cs := ClusterSnapshot{Upstreams: make([]UpstreamStatus, len(p.ups))}
	for i, up := range p.ups {
		st := UpstreamStatus{
			URL:          up.base,
			Healthy:      up.healthy.Load(),
			ProxiedTotal: up.proxied.Load(),
			ErrorsTotal:  up.errs.Load(),
		}
		if e, ok := up.lastErr.Load().(string); ok {
			st.LastError = e
		}
		if st.Healthy {
			cs.Healthy++
		}
		cs.Upstreams[i] = st
	}
	return cs
}

// handleProxyHealthz is /healthz in proxy mode: the front's own
// liveness plus the ring membership. "degraded" (still 200 — the front
// itself is up) signals an empty ring.
func (s *Server) handleProxyHealthz(w http.ResponseWriter, r *http.Request) {
	cs := s.proxy.Snapshot()
	status := "ok"
	if cs.Healthy == 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"mode":           "front",
		"backend":        s.metrics.backend,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"version":        s.build.Version(),
		"build":          s.build,
		"cluster":        cs,
		"jobs":           map[string]any{"enabled": false},
	})
}

// addClusterMetrics folds the front tier's counters into a /metrics
// JSON snapshot as cluster_* fields (present only in proxy mode).
func addClusterMetrics(snap map[string]any, p *Proxy) {
	snap["cluster_proxied_total"] = p.proxied.Load()
	snap["cluster_failovers_total"] = p.failovers.Load()
	snap["cluster_upstream_errors_total"] = p.upstreamErrs.Load()
	snap["cluster_ejections_total"] = p.ejections.Load()
	snap["cluster_readmissions_total"] = p.readmissions.Load()
	snap["cluster_upstreams"] = len(p.ups)
	snap["cluster_upstreams_healthy"] = p.healthyCount()
}
