package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"genasm"
	"genasm/server"
	"genasm/server/jobs"
)

// ExampleServer_jobs walks the bulk-lane client path end to end:
// submit a FASTQ read set as an asynchronous job (POST /jobs), poll it
// to completion (GET /jobs/{id}), and download the finished SAM
// (GET /jobs/{id}/result). cmd/genasm-submit packages exactly this
// flow as a CLI.
func ExampleServer_jobs() {
	spool, err := os.MkdirTemp("", "genasm-jobs-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spool)

	srv, err := server.New(server.Config{
		Scheduler: server.SchedulerConfig{MaxDelay: time.Millisecond},
		Jobs:      jobs.Config{Dir: filepath.Join(spool, "spool"), Workers: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// One registered reference and a few simulated reads to map.
	ref := genasm.GenerateGenome(60_000, 11)
	if _, err := srv.Registry().Add("chr", ref); err != nil {
		log.Fatal(err)
	}
	reads, err := genasm.SimulateLongReads(ref, 4, 500, 0.08, 12)
	if err != nil {
		log.Fatal(err)
	}
	var fastq strings.Builder
	for _, rd := range reads {
		fmt.Fprintf(&fastq, "@%s\n%s\n+\n%s\n", rd.Name, rd.Seq, rd.Qual)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit: the raw FASTA/FASTQ body is spooled and queued; 202
	// returns immediately with the job snapshot.
	resp, err := http.Post(ts.URL+"/jobs?ref=chr&format=sam", "text/plain", strings.NewReader(fastq.String()))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("submitted:", job.State)

	// Poll until the job reaches a terminal state.
	for job.State != "done" && job.State != "failed" && job.State != "canceled" {
		time.Sleep(10 * time.Millisecond)
		poll, err := http.Get(ts.URL + "/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(poll.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		poll.Body.Close()
	}
	fmt.Println("final:", job.State)

	// Fetch the finished result — byte-identical to what the
	// synchronous /map-align?format=sam lane would have streamed.
	res, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	sam, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sam header:", strings.HasPrefix(string(sam), "@HD\tVN:1.6"))
	// Output:
	// submitted: queued
	// final: done
	// sam header: true
}
