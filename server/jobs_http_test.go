package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"genasm"
	"genasm/server/jobs"
)

// slowBackend wraps a real CPU engine behind a fixed per-batch delay so
// tests can observe (and cancel) a job mid-run deterministically. Its
// small PreferredBatch forces bulk jobs into many batches.
type slowBackend struct {
	inner *genasm.Engine
	delay time.Duration
}

func (b *slowBackend) AlignBatch(ctx context.Context, cfg genasm.Config, pairs []genasm.Pair) ([]genasm.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(b.delay):
	}
	return b.inner.AlignBatch(ctx, pairs)
}

func (b *slowBackend) Capabilities() genasm.Capabilities {
	return genasm.Capabilities{PreferredBatch: 4, Parallelism: 1}
}

func (b *slowBackend) Stats() genasm.BackendStats {
	return genasm.BackendStats{Name: "slowtest"}
}

func init() {
	genasm.Register("slowtest", func(spec string, cfg genasm.Config, opts genasm.BackendOptions) (genasm.Backend, error) {
		inner, err := genasm.NewEngine()
		if err != nil {
			return nil, err
		}
		return &slowBackend{inner: inner, delay: 150 * time.Millisecond}, nil
	})
}

// jobsTestConfig returns a Config with the bulk lane enabled on a fresh
// spool dir and fast drain for test teardown.
func jobsTestConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Scheduler: SchedulerConfig{MaxDelay: time.Millisecond},
		Jobs: jobs.Config{
			Dir:        filepath.Join(t.TempDir(), "spool"),
			Workers:    1,
			DrainGrace: 100 * time.Millisecond,
		},
	}
}

// fastqBody renders reads as single-line FASTQ, the format POST /jobs
// consumes.
func fastqBody(reads []genasm.SimulatedRead) string {
	var b strings.Builder
	for _, rd := range reads {
		fmt.Fprintf(&b, "@%s\n%s\n+\n%s\n", rd.Name, rd.Seq, rd.Qual)
	}
	return b.String()
}

// submitJob POSTs body to /jobs and returns the decoded 202 snapshot.
func submitJob(t *testing.T, ts *httptest.Server, query, body string) jobs.Snapshot {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/jobs?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d (%+v)", resp.StatusCode, snap)
	}
	if snap.ID == "" || snap.State != jobs.Queued {
		t.Fatalf("submit snapshot %+v", snap)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+snap.ID {
		t.Fatalf("Location %q", loc)
	}
	return snap
}

// getJob decodes GET /jobs/{id}.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobs.Snapshot) {
	t.Helper()
	status, body := doJSON(t, ts.Client(), "GET", ts.URL+"/jobs/"+id, nil)
	var snap jobs.Snapshot
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
	}
	return status, snap
}

// waitJob polls GET /jobs/{id} until want (failing fast on any other
// terminal state).
func waitJob(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, snap := getJob(t, ts, id)
		if status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Snapshot{}
}

// fetchResult downloads GET /jobs/{id}/result.
func fetchResult(t *testing.T, ts *httptest.Server, id string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String(), resp.Header
}

// TestJobSAMByteIdenticalToSync is the acceptance proof: the same
// simulated read set submitted as an async bulk job produces a SAM
// download byte-identical to the synchronous /map-align?format=sam
// response — the two lanes share alignReads, the samfmt writer and the
// @PG header, so neither can drift. With GENASM_JOB_E2E_SAM set, the
// downloaded SAM is written there (CI uploads it as an artifact).
func TestJobSAMByteIdenticalToSync(t *testing.T) {
	cfg := jobsTestConfig(t)
	cfg.CacheSize = -1
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(120_000, 61)
	reads, err := genasm.SimulateLongReads(ref, 24, 1200, 0.1, 62)
	if err != nil {
		t.Fatal(err)
	}
	// A read that maps nowhere: both lanes must emit the same FLAG 4
	// record for it.
	junk := strings.Repeat("ACGTGTCA", 50)
	reads = append(reads, genasm.SimulatedRead{
		Name: "junk", Seq: []byte(junk), Qual: []byte(strings.Repeat("I", len(junk))),
	})
	if _, err := srv.Registry().Add("genome", ref); err != nil {
		t.Fatal(err)
	}

	// Synchronous lane.
	maReq := MapAlignRequest{Ref: "genome"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq), Qual: string(rd.Qual)})
	}
	status, syncSAM, trailer, _ := streamMapAlignBody(t, ts, ts.URL+"/map-align?format=sam", maReq)
	if status != http.StatusOK {
		t.Fatalf("sync status %d: %s", status, syncSAM)
	}
	if got := trailer.Get(TrailerStatus); got != "ok" {
		t.Fatalf("sync trailer %q", got)
	}

	// Bulk lane: same reads as a FASTQ job.
	snap := submitJob(t, ts, "ref=genome&format=sam", fastqBody(reads))
	snap = waitJob(t, ts, snap.ID, jobs.Done)
	if snap.ReadsTotal != int64(len(reads)) || snap.ReadsDone != snap.ReadsTotal {
		t.Fatalf("progress %+v for %d reads", snap, len(reads))
	}
	rstatus, jobSAM, hdr := fetchResult(t, ts, snap.ID)
	if rstatus != http.StatusOK {
		t.Fatalf("result status %d: %s", rstatus, jobSAM)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("result content type %q", ct)
	}
	if snap.ResultBytes != int64(len(jobSAM)) {
		t.Fatalf("result_bytes %d != downloaded %d", snap.ResultBytes, len(jobSAM))
	}

	if jobSAM != syncSAM {
		t.Fatalf("job SAM differs from sync SAM:\njob:  %q...\nsync: %q...",
			head(jobSAM, 200), head(syncSAM, 200))
	}
	if !strings.HasPrefix(jobSAM, "@HD\tVN:1.6") {
		t.Fatalf("SAM header missing: %q", head(jobSAM, 80))
	}
	// A second download must serve identical bytes (results are spooled,
	// not recomputed).
	if _, again, _ := fetchResult(t, ts, snap.ID); again != jobSAM {
		t.Fatal("second download differs")
	}

	if out := os.Getenv("GENASM_JOB_E2E_SAM"); out != "" {
		if err := os.WriteFile(out, []byte(jobSAM), 0o644); err != nil {
			t.Fatalf("writing e2e artifact: %v", err)
		}
		t.Logf("wrote job e2e SAM artifact to %s", out)
	}
}

func head(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// TestJobJSONMatchesSync: a format=json job downloads the same
// MapAlignResponse the synchronous JSON lane returns.
func TestJobJSONMatchesSync(t *testing.T) {
	cfg := jobsTestConfig(t)
	cfg.CacheSize = -1 // keep Cached flags identical across lanes
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(60_000, 63)
	reads, err := genasm.SimulateLongReads(ref, 8, 600, 0.08, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}
	maReq := MapAlignRequest{Ref: "g"}
	for _, rd := range reads {
		maReq.Reads = append(maReq.Reads, ReadIn{Name: rd.Name, Seq: string(rd.Seq), Qual: string(rd.Qual)})
	}
	status, body := doJSON(t, ts.Client(), "POST", ts.URL+"/map-align", maReq)
	if status != http.StatusOK {
		t.Fatalf("sync status %d: %s", status, body)
	}
	var want MapAlignResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	snap := submitJob(t, ts, "ref=g&format=json", fastqBody(reads))
	snap = waitJob(t, ts, snap.ID, jobs.Done)
	rstatus, res, hdr := fetchResult(t, ts, snap.ID)
	if rstatus != http.StatusOK {
		t.Fatalf("result status %d: %s", rstatus, res)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("result content type %q", ct)
	}
	var got MapAlignResponse
	if err := json.Unmarshal([]byte(res), &got); err != nil {
		t.Fatalf("job JSON does not parse: %v (%s)", err, head(res, 200))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("job JSON differs from sync JSON:\njob:  %+v\nsync: %+v", got, want)
	}
}

// TestJobCancelMidRun: DELETE on a running job cancels it within one
// batch (the slow backend makes batches observable), releases the
// worker for the next job, and a second DELETE purges it to 410.
func TestJobCancelMidRun(t *testing.T) {
	cfg := jobsTestConfig(t)
	cfg.EngineOptions = []genasm.Option{genasm.WithBackendName("slowtest")}
	cfg.CacheSize = -1
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(60_000, 65)
	reads, err := genasm.SimulateLongReads(ref, 40, 400, 0.08, 66)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}

	// ~40 mappable reads at PreferredBatch 4 and 150ms per batch: the
	// job runs for seconds unless canceled.
	snap := submitJob(t, ts, "ref=g&format=sam", fastqBody(reads))
	waitJob(t, ts, snap.ID, jobs.Running)

	// Result before completion: 409.
	if status, body, _ := fetchResult(t, ts, snap.ID); status != http.StatusConflict {
		t.Fatalf("early result status %d: %s", status, body)
	}

	delStatus, delBody := doJSON(t, ts.Client(), "DELETE", ts.URL+"/jobs/"+snap.ID, nil)
	if delStatus != http.StatusAccepted {
		t.Fatalf("cancel status %d: %s", delStatus, delBody)
	}
	canceled := waitJob(t, ts, snap.ID, jobs.Canceled)
	if canceled.ReadsDone >= canceled.ReadsTotal {
		t.Fatalf("job finished despite cancel: %+v", canceled)
	}
	if status, body, _ := fetchResult(t, ts, snap.ID); status != http.StatusConflict || !strings.Contains(body, "canceled") {
		t.Fatalf("canceled result status %d: %s", status, body)
	}

	// The worker is free again: a fresh small job completes.
	small := submitJob(t, ts, "ref=g&format=paf", fastqBody(reads[:2]))
	waitJob(t, ts, small.ID, jobs.Done)

	// DELETE on the terminal job purges it; all lookups then say 410.
	if status, _ := doJSON(t, ts.Client(), "DELETE", ts.URL+"/jobs/"+snap.ID, nil); status != http.StatusNoContent {
		t.Fatalf("purge status %d", status)
	}
	if status, _ := getJob(t, ts, snap.ID); status != http.StatusGone {
		t.Fatalf("purged job GET status %d, want 410", status)
	}
	if status, _, _ := fetchResult(t, ts, snap.ID); status != http.StatusGone {
		t.Fatalf("purged result status %d, want 410", status)
	}
	if status, _ := doJSON(t, ts.Client(), "DELETE", ts.URL+"/jobs/"+snap.ID, nil); status != http.StatusGone {
		t.Fatalf("purged DELETE status %d, want 410", status)
	}
}

// TestJobResultGoneAfterTTLSweep: once retention expires and the
// sweeper collects a finished job, a duplicate download answers 410
// and the spool files are gone from disk.
func TestJobResultGoneAfterTTLSweep(t *testing.T) {
	cfg := jobsTestConfig(t)
	cfg.Jobs.TTL = 10 * time.Millisecond
	cfg.Jobs.SweepEvery = time.Hour // swept explicitly below
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(40_000, 67)
	reads, err := genasm.SimulateLongReads(ref, 2, 400, 0.08, 68)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}
	snap := submitJob(t, ts, "ref=g&format=sam", fastqBody(reads))
	waitJob(t, ts, snap.ID, jobs.Done)
	if status, _, _ := fetchResult(t, ts, snap.ID); status != http.StatusOK {
		t.Fatalf("first download status %d", status)
	}
	jobDir := filepath.Join(cfg.Jobs.Dir, snap.ID)
	if _, err := os.Stat(jobDir); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := srv.Jobs().Sweep(); n != 1 {
		t.Fatalf("sweep collected %d jobs, want 1", n)
	}
	if _, err := os.Stat(jobDir); !os.IsNotExist(err) {
		t.Fatalf("spool dir survived sweep: %v", err)
	}
	if status, body, _ := fetchResult(t, ts, snap.ID); status != http.StatusGone {
		t.Fatalf("post-GC download status %d: %s", status, body)
	}
}

// TestJobSubmitValidation sweeps the /jobs admission errors and the
// disabled-lane behavior.
func TestJobSubmitValidation(t *testing.T) {
	cfg := jobsTestConfig(t)
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(40_000, 69)
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}
	post := func(query, body string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/jobs?"+query, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	cases := []struct {
		name, query, body string
		wantStatus        int
		wantIn            string
	}{
		{"unknown ref", "ref=nope&format=sam", "@r\nACGT\n+\nIIII\n", 404, "not registered"},
		{"bad format", "ref=g&format=bam", "@r\nACGT\n+\nIIII\n", 400, "unknown format"},
		{"empty body", "ref=g&format=sam", "", 400, "empty request body"},
		{"not fasta or fastq", "ref=g&format=sam", "ACGT\n", 400, "not FASTA"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(tc.query, tc.body)
			if status != tc.wantStatus || !strings.Contains(body, tc.wantIn) {
				t.Fatalf("status %d body %s, want %d containing %q", status, body, tc.wantStatus, tc.wantIn)
			}
		})
	}

	// A job whose input does not parse fails at run time with a useful
	// error (admission only sniffs the first byte).
	snap := submitJob(t, ts, "ref=g&format=sam", "@truncated\nACGT\n")
	failed := waitJob(t, ts, snap.ID, jobs.Failed)
	if !strings.Contains(failed.Error, "parsing job input") {
		t.Fatalf("malformed-input job error %q", failed.Error)
	}

	// Unknown job id: 404 everywhere.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/jobs/ffffffffffff"},
		{"GET", "/jobs/ffffffffffff/result"},
		{"DELETE", "/jobs/ffffffffffff"},
	} {
		if status, _ := doJSON(t, ts.Client(), probe.method, ts.URL+probe.path, nil); status != http.StatusNotFound {
			t.Fatalf("%s %s status %d, want 404", probe.method, probe.path, status)
		}
	}

	// Lane disabled: every /jobs endpoint answers 503 with a pointer to
	// the flag.
	_, off := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	status, body := doJSON(t, off.Client(), "POST", off.URL+"/jobs?ref=g", nil)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "-jobs-dir") {
		t.Fatalf("disabled lane: %d %s", status, body)
	}
	if status, _ := doJSON(t, off.Client(), "GET", off.URL+"/jobs", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("disabled list status %d", status)
	}
}

// TestJobListAndMetrics: GET /jobs lists newest first and /metrics
// exposes the jobs_* counters only when the lane is on.
func TestJobListAndMetrics(t *testing.T) {
	cfg := jobsTestConfig(t)
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(40_000, 70)
	reads, err := genasm.SimulateLongReads(ref, 3, 400, 0.08, 71)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}
	first := submitJob(t, ts, "ref=g&format=sam", fastqBody(reads))
	waitJob(t, ts, first.ID, jobs.Done)
	second := submitJob(t, ts, "ref=g&format=paf", fastqBody(reads))
	waitJob(t, ts, second.ID, jobs.Done)

	status, body := doJSON(t, ts.Client(), "GET", ts.URL+"/jobs", nil)
	if status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	var list struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != second.ID || list.Jobs[1].ID != first.ID {
		t.Fatalf("list %+v", list.Jobs)
	}

	status, body = doJSON(t, ts.Client(), "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap["jobs_submitted_total"]; got != float64(2) {
		t.Fatalf("jobs_submitted_total = %v", got)
	}
	if got := snap["jobs_done_total"]; got != float64(2) {
		t.Fatalf("jobs_done_total = %v", got)
	}
	if got := snap["jobs_running"]; got != float64(0) {
		t.Fatalf("jobs_running = %v", got)
	}
	if _, ok := snap["jobs_reads_done_total"]; !ok {
		t.Fatal("jobs_reads_done_total missing")
	}

	// With the lane disabled the fields are absent entirely.
	_, off := newTestServer(t, Config{Scheduler: SchedulerConfig{MaxDelay: time.Millisecond}})
	_, body = doJSON(t, off.Client(), "GET", off.URL+"/metrics", nil)
	var offSnap map[string]any
	if err := json.Unmarshal(body, &offSnap); err != nil {
		t.Fatal(err)
	}
	if _, ok := offSnap["jobs_submitted_total"]; ok {
		t.Fatal("jobs_* fields present with the lane disabled")
	}
}

// TestServerRefusesStaleJobsDir: restarting onto a spool dir with
// leftover jobs fails server construction with a clear error.
func TestServerRefusesStaleJobsDir(t *testing.T) {
	cfg := jobsTestConfig(t)
	srv, ts := newTestServer(t, cfg)
	ref := genasm.GenerateGenome(40_000, 72)
	reads, err := genasm.SimulateLongReads(ref, 2, 400, 0.08, 73)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("g", ref); err != nil {
		t.Fatal(err)
	}
	snap := submitJob(t, ts, "ref=g&format=sam", fastqBody(reads))
	waitJob(t, ts, snap.ID, jobs.Done)
	srv.Close()

	_, err = New(cfg)
	if err == nil {
		t.Fatal("stale jobs dir accepted on restart")
	}
	if !strings.Contains(err.Error(), "stale") || !strings.Contains(err.Error(), cfg.Jobs.Dir) {
		t.Fatalf("restart error %q lacks the stale-dir explanation", err)
	}
}
