package genasm

import (
	"context"
	"fmt"
	"sync"

	"genasm/internal/cigar"
	"genasm/internal/dna"
	"genasm/internal/gpu"
	"genasm/internal/gpualign"
)

// backend executes alignments for an Engine. Implementations must be safe
// for concurrent use and must produce bit-identical Results for the same
// configuration (the paper's CPU/GPU equivalence claim).
type backend interface {
	align(ctx context.Context, p Pair) (Result, error)
	alignBatch(ctx context.Context, pairs []Pair) ([]Result, error)
	gpuStats() (GPUStats, bool)
}

// cpuBackend pools per-goroutine Aligners (the kernels keep scratch, so
// an Aligner is single-goroutine; the pool amortizes construction across
// calls instead of rebuilding one per AlignBatch worker).
type cpuBackend struct {
	threads int
	pool    sync.Pool
}

func newCPUBackend(cfg Config, threads int) (*cpuBackend, error) {
	if _, err := New(cfg); err != nil { // validate eagerly, once
		return nil, err
	}
	b := &cpuBackend{threads: threads}
	b.pool.New = func() any {
		a, err := New(cfg)
		if err != nil {
			panic(err) // unreachable: cfg validated in newCPUBackend
		}
		return a
	}
	return b, nil
}

func (b *cpuBackend) gpuStats() (GPUStats, bool) { return GPUStats{}, false }

func (b *cpuBackend) align(ctx context.Context, p Pair) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	a := b.pool.Get().(*Aligner)
	defer b.pool.Put(a)
	return a.Align(p.Query, p.Ref)
}

func (b *cpuBackend) alignBatch(ctx context.Context, pairs []Pair) ([]Result, error) {
	if len(pairs) == 0 {
		return []Result{}, ctx.Err()
	}
	threads := min(b.threads, len(pairs))
	results := make([]Result, len(pairs))
	if threads <= 1 {
		a := b.pool.Get().(*Aligner)
		defer b.pool.Put(a)
		for i := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := a.Align(pairs[i].Query, pairs[i].Ref)
			if err != nil {
				return nil, fmt.Errorf("pair %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int, len(pairs))
	for i := range pairs {
		jobs <- i
	}
	close(jobs)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			a := b.pool.Get().(*Aligner)
			defer b.pool.Put(a)
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[t] = err
					return
				}
				r, err := a.Align(pairs[i].Query, pairs[i].Ref)
				if err != nil {
					errs[t] = fmt.Errorf("pair %d: %w", i, err)
					cancel() // stop the other workers promptly
					return
				}
				results[i] = r
			}
		}(t)
	}
	wg.Wait()
	// Report a real alignment failure over a cancellation it triggered.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return results, nil
}

// gpuBackend wraps the simulated-GPU batch path. A launch is monolithic
// (as a real device launch would be), so cancellation is honoured at
// launch boundaries, not within one.
type gpuBackend struct {
	gcfg gpualign.Config
	pen  cigar.AffinePenalties

	mu   sync.Mutex
	last GPUStats
	has  bool
}

func newGPUBackend(cfg Config, blocksPerSM int) (*gpuBackend, error) {
	gcfg := gpualign.DefaultConfig(gpualign.Improved)
	switch cfg.Algorithm {
	case GenASM:
	case GenASMUnimproved:
		gcfg.Algorithm = gpualign.Unimproved
	default:
		return nil, fmt.Errorf("genasm: algorithm %q has no GPU kernel", cfg.Algorithm)
	}
	if cfg.DisableSENE || cfg.DisableDENT || cfg.DisableET {
		return nil, fmt.Errorf("genasm: ablation toggles are CPU-only")
	}
	gcfg.W, gcfg.O, gcfg.InitialK = cfg.WindowSize, cfg.Overlap, cfg.ErrorK
	if blocksPerSM > 0 {
		gcfg.TargetBlocksPerSM = blocksPerSM
	}
	gcfg.Device = gpu.A6000()
	// Validate the window geometry eagerly with a throwaway launch config
	// check: the same Config constructor the CPU path uses.
	if _, err := New(Config{Algorithm: cfg.Algorithm, WindowSize: cfg.WindowSize,
		Overlap: cfg.Overlap, ErrorK: cfg.ErrorK}); err != nil {
		return nil, err
	}
	return &gpuBackend{gcfg: gcfg, pen: cfg.penalties()}, nil
}

func (b *gpuBackend) gpuStats() (GPUStats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last, b.has
}

func (b *gpuBackend) align(ctx context.Context, p Pair) (Result, error) {
	res, err := b.alignBatch(ctx, []Pair{p})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

func (b *gpuBackend) alignBatch(ctx context.Context, pairs []Pair) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jobs := make([]gpualign.Pair, len(pairs))
	for i, p := range pairs {
		jobs[i] = gpualign.Pair{Query: dna.EncodeSeq(p.Query), Ref: dna.EncodeSeq(p.Ref)}
	}
	batch, err := gpualign.AlignBatch(jobs, b.gcfg)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(pairs))
	for i, r := range batch.Results {
		results[i] = Result{
			Distance:    r.Distance,
			Score:       r.Cigar.AffineScore(b.pen),
			Cigar:       r.Cigar.String(),
			RefConsumed: r.RefConsumed,
		}
	}
	st := GPUStats{
		Device:         batch.Launch.Device,
		Seconds:        batch.Launch.Seconds,
		MakespanCycles: batch.Launch.MakespanCycles,
		BlocksPerSM:    batch.Launch.BlocksPerSM,
		SharedBlocks:   batch.SharedBlocks,
		SpilledBlocks:  batch.SpilledBlocks,
		PairsPerSecond: batch.Launch.Throughput(),
	}
	b.mu.Lock()
	b.last, b.has = st, true
	b.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
